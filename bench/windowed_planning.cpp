// Extension experiment (paper §2): "the resource shares can be
// determined with respect to arbitrary time windows". This bench
// exercises the windowed resource-share planner end to end:
//
//   1. Record a 5-day diurnal click-rate trace (per-10-minute samples)
//      and backtest the forecaster family on it — the planner needs a
//      forecast, and the seasonal-naive forecaster should win on a
//      diurnal signal.
//   2. Feed the day-ahead seasonal forecast into the
//      WindowedShareAnalyzer to produce one provisioning plan per
//      4-hour window under a budget and dependency constraints.
//   3. Compare the planned-capacity cost against static peak
//      provisioning (the proactive counterpart of the COST bench).
//   4. Re-plan a finer (1-hour-window) horizon at 1 thread and at
//      --threads N: the plans must be bit-identical, and on machines
//      with enough cores the windows parallelize near-linearly.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/windowed_share.h"
#include "stats/forecast.h"
#include "tools/flag_parser.h"

namespace flower {
namespace {

// Synthetic 5-day history: diurnal + weekly drift + noise.
TimeSeries History(uint64_t seed) {
  TimeSeries out("rate");
  Rng rng(seed);
  const double step = 10.0 * kMinute;
  for (double t = 0.0; t < 5.0 * kDay; t += step) {
    double diurnal = 1200.0 + 900.0 * std::sin(2.0 * M_PI * (t - 6 * kHour) / kDay);
    double drift = 40.0 * (t / kDay);
    double noise = rng.Normal(0.0, 40.0);
    out.AppendUnchecked(t, std::max(50.0, diurnal + drift + noise));
  }
  return out;
}

bool PlansIdentical(const std::vector<core::WindowPlan>& a,
                    const std::vector<core::WindowPlan>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != b[i].start || a[i].end != b[i].end ||
        a[i].forecast_rate != b[i].forecast_rate ||
        a[i].within_budget != b[i].within_budget ||
        a[i].plan.hourly_cost_usd != b[i].plan.hourly_cost_usd) {
      return false;
    }
    for (int l = 0; l < core::kNumLayers; ++l) {
      if (a[i].plan.shares[l] != b[i].plan.shares[l] ||
          a[i].demand.shares[l] != b[i].demand.shares[l]) {
        return false;
      }
    }
  }
  return true;
}

int Run(size_t threads, bool warm_start, size_t stall_generations) {
  bench::Header(
      "PLAN  Windowed resource shares from forecasts (paper §2 extension)");
  if (warm_start || stall_generations > 0) {
    std::cout << "incremental planning: warm_start="
              << (warm_start ? "on" : "off")
              << " stall_generations=" << stall_generations << "\n";
  }
  TimeSeries history = History(7);
  const double step = 10.0 * kMinute;

  // --- 1. Forecaster backtest.
  stats::NaiveForecaster naive;
  stats::EmaForecaster ema(0.3);
  stats::HoltForecaster holt(0.5, 0.2);
  stats::SeasonalNaiveForecaster seasonal(kDay, step);
  // Planning schedules capacity hours ahead, so evaluate forecasters at
  // the 4-hour horizon (24 ten-minute steps) alongside one-step error.
  const size_t kPlanningSteps = 24;
  TablePrinter ftable(
      {"forecaster", "one-step MAE (rec/s)", "4h-ahead MAE (rec/s)"});
  double mae_seasonal = 0.0, mae_naive = 0.0;
  for (stats::Forecaster* f :
       std::initializer_list<stats::Forecaster*>{&naive, &ema, &holt,
                                                 &seasonal}) {
    stats::NaiveForecaster n2;
    stats::EmaForecaster e2(0.3);
    stats::HoltForecaster h2(0.5, 0.2);
    stats::SeasonalNaiveForecaster s2(kDay, step);
    stats::Forecaster* fresh = f == &naive  ? static_cast<stats::Forecaster*>(&n2)
                               : f == &ema  ? static_cast<stats::Forecaster*>(&e2)
                               : f == &holt ? static_cast<stats::Forecaster*>(&h2)
                                            : static_cast<stats::Forecaster*>(&s2);
    auto mae1 = stats::BacktestOneStepMae(f, history);
    auto maeH = stats::BacktestHorizonMae(fresh, history, kPlanningSteps);
    if (!mae1.ok() || !maeH.ok()) continue;
    ftable.AddRow({f->name(), TablePrinter::Num(*mae1, 1),
                   TablePrinter::Num(*maeH, 1)});
    if (f == &seasonal) mae_seasonal = *maeH;
    if (f == &naive) mae_naive = *maeH;
  }
  ftable.Print(std::cout);

  // --- 2. Day-ahead forecast (seasonal naive) and window plans.
  TimeSeries forecast("rate-forecast");
  stats::SeasonalNaiveForecaster day_ahead(kDay, step);
  for (const Sample& s : history.samples()) {
    day_ahead.Observe(s.time, s.value);
  }
  double t_end = history.end_time();
  for (double h = step; h <= kDay; h += step) {
    auto f = day_ahead.Forecast(h);
    if (f.ok()) forecast.AppendUnchecked(t_end + h, *f);
  }

  core::ResourceShareRequest base;
  base.hourly_budget_usd = 4.0;
  pricing::PriceBook book;
  base.SetPricesFrom(book);
  base.bounds[0] = {1.0, 64.0};
  base.bounds[1] = {1.0, 40.0};
  base.bounds[2] = {1.0, 4000.0};
  base.constraints.push_back(core::LinearConstraint::AtMost(
      core::Layer::kIngestion, 2.0, core::Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  core::DemandModel model;
  opt::Nsga2Config solver;
  solver.population_size = 80;
  solver.generations = 100;
  core::IncrementalPlanning inc;
  inc.warm_start = warm_start;
  inc.stall_generations = stall_generations;
  core::WindowedShareAnalyzer analyzer(base, model, solver,
                                       /*num_threads=*/1, inc);
  auto plans = analyzer.PlanHorizon(forecast, 4.0 * kHour);
  if (!plans.ok()) {
    std::cerr << plans.status() << "\n";
    return 1;
  }

  TablePrinter ptable({"window (h)", "peak forecast (rec/s)",
                       "demand I/A/S", "plan I/A/S", "plan $/h",
                       "in budget"});
  double planned_cost_day = 0.0;
  double max_demand_vms = 0.0;
  for (const core::WindowPlan& wp : *plans) {
    ptable.AddRow(
        {TablePrinter::Num((wp.start - t_end) / kHour, 0) + "-" +
             TablePrinter::Num((wp.end - t_end) / kHour, 0),
         TablePrinter::Num(wp.forecast_rate, 0),
         TablePrinter::Num(wp.demand.ingestion(), 0) + "/" +
             TablePrinter::Num(wp.demand.analytics(), 0) + "/" +
             TablePrinter::Num(wp.demand.storage(), 0),
         TablePrinter::Num(wp.plan.ingestion(), 0) + "/" +
             TablePrinter::Num(wp.plan.analytics(), 0) + "/" +
             TablePrinter::Num(wp.plan.storage(), 0),
         TablePrinter::Num(wp.plan.hourly_cost_usd, 3),
         wp.within_budget ? "yes" : "NO"});
    // Cost of provisioning the *demand* for each window.
    double window_hours = (wp.end - wp.start) / kHour;
    double demand_cost = 0.0;
    for (int i = 0; i < core::kNumLayers; ++i) {
      demand_cost += wp.demand.shares[i] * base.unit_price[i];
    }
    planned_cost_day += demand_cost * window_hours;
    max_demand_vms = std::max(max_demand_vms, wp.demand.analytics());
  }
  ptable.Print(std::cout);

  // --- 3. Static peak provisioning cost for the same day.
  core::ProvisioningPlan peak =
      model.MinimumFor(2400.0);  // True diurnal peak is ~2300-2400.
  double static_cost_day = 0.0;
  for (int i = 0; i < core::kNumLayers; ++i) {
    static_cost_day += peak.shares[i] * base.unit_price[i] * 24.0;
  }
  double saving = 100.0 * (static_cost_day - planned_cost_day) /
                  static_cost_day;
  std::cout << "\nStatic-peak day cost: $"
            << TablePrinter::Num(static_cost_day, 2)
            << "  planned (windowed) day cost: $"
            << TablePrinter::Num(planned_cost_day, 2) << "  saving: "
            << TablePrinter::Num(saving, 1) << "%\n";

  // --- 4. Parallel re-planning: 1-hour windows give 24 independent
  // NSGA-II runs, the coarse grain the exec::ThreadPool fans out over.
  // A warm chain is inherently sequential across windows, so this
  // comparison keeps warm starts off and carries only the stall knob
  // (deterministic and thread-count-invariant).
  std::cout << "\nParallel re-planning (1h windows, 24 solver runs):\n";
  core::IncrementalPlanning stall_only;
  stall_only.stall_generations = stall_generations;
  core::WindowedShareAnalyzer serial_analyzer(base, model, solver,
                                              /*num_threads=*/1, stall_only);
  auto ps0 = std::chrono::steady_clock::now();
  auto serial_plans = serial_analyzer.PlanHorizon(forecast, 1.0 * kHour);
  auto ps1 = std::chrono::steady_clock::now();
  core::WindowedShareAnalyzer parallel_analyzer(base, model, solver, threads,
                                                stall_only);
  auto pp0 = std::chrono::steady_clock::now();
  auto parallel_plans = parallel_analyzer.PlanHorizon(forecast, 1.0 * kHour);
  auto pp1 = std::chrono::steady_clock::now();
  bool speedup_ok = false;
  bool plans_identical = false;
  double serial_ms = std::chrono::duration<double, std::milli>(ps1 - ps0).count();
  double parallel_ms =
      std::chrono::duration<double, std::milli>(pp1 - pp0).count();
  unsigned hw = std::thread::hardware_concurrency();
  if (serial_plans.ok() && parallel_plans.ok()) {
    plans_identical = PlansIdentical(*serial_plans, *parallel_plans);
    double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    std::cout << "  1 thread:  " << TablePrinter::Num(serial_ms, 1)
              << " ms over " << serial_plans->size() << " windows\n"
              << "  " << threads << " threads: "
              << TablePrinter::Num(parallel_ms, 1) << " ms  (speedup "
              << TablePrinter::Num(speedup, 2) << "x, "
              << hw << " hardware threads available)\n";
    speedup_ok = speedup >= 3.0;
  } else {
    if (!serial_plans.ok()) std::cerr << serial_plans.status() << "\n";
    if (!parallel_plans.ok()) std::cerr << parallel_plans.status() << "\n";
  }

  bool ok = true;
  ok &= bench::Verdict(
      "seasonal-naive beats last-value naive at the 4h planning horizon",
      mae_seasonal > 0.0 && mae_seasonal < mae_naive);
  ok &= bench::Verdict(
      "1h-window horizon is bit-identical at 1 vs " +
          std::to_string(threads) + " threads",
      plans_identical);
  if (hw >= 8 && threads >= 8) {
    ok &= bench::Verdict("re-planning speeds up >= 3x at 8+ threads",
                         speedup_ok);
  } else {
    std::cout << "[SKIP] speedup >= 3x check needs 8+ hardware threads "
                 "(have "
              << hw << ", requested " << threads << ")\n";
  }
  bool follows = false;
  double min_vms = 1e18, max_vms = 0.0;
  for (const core::WindowPlan& wp : *plans) {
    min_vms = std::min(min_vms, wp.demand.analytics());
    max_vms = std::max(max_vms, wp.demand.analytics());
  }
  follows = max_vms >= 1.5 * min_vms;
  ok &= bench::Verdict("window plans follow the diurnal forecast "
                       "(peak demand >= 1.5x trough demand)",
                       follows);
  ok &= bench::Verdict("every window is plannable within the budget",
                       std::all_of(plans->begin(), plans->end(),
                                   [](const core::WindowPlan& wp) {
                                     return wp.within_budget;
                                   }));
  ok &= bench::Verdict("windowed planning undercuts static peak cost by "
                       ">= 20%",
                       saving >= 20.0);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status()
              << "\nusage: windowed_planning [--threads=N] [--warm-start] "
                 "[--stall-generations=N]\n";
    return 2;
  }
  auto threads = flags->GetInt("threads", 8);
  if (!threads.ok() || *threads < 1) {
    std::cerr << "--threads expects a positive integer\n";
    return 2;
  }
  auto stall = flags->GetInt("stall-generations", 0);
  if (!stall.ok() || *stall < 0) {
    std::cerr << "--stall-generations expects a non-negative integer\n";
    return 2;
  }
  return flower::Run(static_cast<size_t>(*threads),
                     flags->GetBool("warm-start"),
                     static_cast<size_t>(*stall));
}
