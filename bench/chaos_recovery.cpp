// Chaos-recovery benchmark: replay the canonical click-stream flow
// through a flash crowd while a seeded fault schedule batters the
// analytics control loop (transient resize failures during the surge, a
// metric-store gap right after the ramp, a sensor spike later on), and
// compare the hardened manager (bounded retries, circuit breaker,
// hold-last-value sensing) against the unhardened fair-weather default.
//
// Reported per configuration, from the ground-truth CPU series in the
// metric store (not the loop's own possibly-faulted sensor):
//   - SLO-violation seconds: time the cluster spends above the 85% CPU
//     alarm line from surge onset to the end of the run.
//   - Time-to-recover: first moment after the overload begins where CPU
//     stays back under the alarm line for 5 sustained minutes.
// The whole scenario is deterministic: the same seed replays the exact
// same fault draws and workload, which the bench proves by running the
// hardened configuration twice and diffing the serialized results.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "obs/health/health_monitor.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/fault_injector.h"

namespace flower {
namespace {

constexpr double kBaseRate = 600.0;       // rec/s before the crowd.
constexpr double kCrowdExtra = 2400.0;    // extra rec/s at the peak.
constexpr SimTime kSurgeStart = kHour;    // crowd onset.
constexpr double kSurgeLength = 30.0 * kMinute;
constexpr SimTime kHorizon = 2.5 * kHour;
constexpr double kCpuSlo = 85.0;          // alarm line (dashboard example).
constexpr double kRecoverHold = 5.0 * kMinute;
constexpr double kControlPeriod = 120.0;  // FlowBuilder default.
constexpr double kHealthEval = 60.0;      // anomaly-bank tick spacing.
// The flow-health layer must notice each fault window this fast.
constexpr double kDetectBudget = 2.0 * kControlPeriod;

struct RunResult {
  double violation_sec = 0.0;
  double recover_sec = 0.0;   // Time-to-recover; kHorizon-censored.
  bool recovered = false;
  double drop_pct = 0.0;
  /// Plain-value counter snapshot: the registry-backed live state dies
  /// with the manager at the end of RunScenario.
  core::LoopCounterSnapshot analytics;
  size_t analytics_actuations = 0;
  uint64_t injected_failures = 0;
  uint64_t injected_gaps = 0;
  std::vector<double> cpu_trace;
  /// Seconds from each fault window's onset to the first anomaly event
  /// the health layer raised on the matching stream; < 0 = never seen.
  double detect_actuator_sec = -1.0;
  double detect_gap_sec = -1.0;
  double detect_spike_sec = -1.0;
  size_t anomaly_events = 0;
  /// Seconds from surge onset to the first decision whose causal span
  /// chain *attributes* the trouble — a kActuate child that failed —
  /// rather than merely flagging an anomalous stream; < 0 = never.
  double attribute_cause_sec = -1.0;
  uint64_t spans_recorded = 0;

  // Everything observable, fixed precision: two serializations are equal
  // iff the runs took identical trajectories.
  std::string Serialize() const {
    std::ostringstream os;
    os.precision(12);
    os << violation_sec << '|' << recover_sec << '|' << recovered << '|'
       << drop_pct << '|' << analytics_actuations << '|'
       << analytics.sensor_misses << '|' << analytics.stale_sensor_reads
       << '|' << analytics.actuation_failures << '|'
       << analytics.actuation_retries << '|' << analytics.retry_successes
       << '|' << analytics.breaker_trips << '|'
       << analytics.breaker_skipped_steps << '|' << injected_failures << '|'
       << injected_gaps << '|' << detect_actuator_sec << '|' << detect_gap_sec
       << '|' << detect_spike_sec << '|' << anomaly_events << '|'
       << attribute_cause_sec << '|' << spans_recorded;
    for (double v : cpu_trace) os << '|' << v;
    return os.str();
  }
};

// First anomaly the health layer raised at/after `t0` on a stream whose
// id contains `metric`, as a latency from `t0`; -1 if never flagged.
double DetectionLatency(const std::deque<obs::health::AnomalyEvent>& log,
                        const std::string& metric, SimTime t0) {
  for (const obs::health::AnomalyEvent& ev : log) {
    if (ev.time >= t0 && ev.stream.find(metric) != std::string::npos) {
      return ev.time - t0;
    }
  }
  return -1.0;
}

// The fault schedule every run replays, seeded identically.
void ScheduleFaults(sim::FaultInjector* chaos) {
  // Resizes fail 80% of the time while the crowd is hammering the flow —
  // exactly when the loop most needs to act. Transient: retries redraw.
  chaos->FailActuator("analytics", kSurgeStart, kSurgeStart + 25.0 * kMinute,
                      0.8);
  // The metric store goes dark for 6 minutes just after the ramp, when
  // the last good reading already shows the overload.
  chaos->DropMetrics("analytics", kSurgeStart + 6.0 * kMinute,
                     kSurgeStart + 12.0 * kMinute);
  // A later telemetry glitch quadruples the sensed CPU for two minutes.
  chaos->SpikeSensor("analytics", 110.0 * kMinute, 112.0 * kMinute, 4.0);
}

core::ResiliencePolicy HardenedPolicy() {
  core::ResiliencePolicy p;
  p.retry.max_retries = 3;
  p.retry.initial_backoff_sec = 5.0;
  p.retry.backoff_multiplier = 2.0;
  p.retry.jitter_fraction = 0.2;
  p.breaker.failure_threshold = 6;
  p.breaker.cooldown_sec = 3.0 * kMinute;
  p.sensor.on_miss = core::SensorMissPolicy::kHoldLastValue;
  p.sensor.max_hold_sec = 10.0 * kMinute;
  return p;
}

Result<RunResult> RunScenario(bool hardened, uint64_t seed) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  obs::Telemetry telemetry;
  // Causal spans on: the bench measures time-to-attributed-cause from
  // the recorded sense -> decide -> actuate chains after the run.
  telemetry.spans().set_enabled(true);
  sim::FaultInjector chaos(&sim, seed);
  ScheduleFaults(&chaos);

  // The flow-health layer rides along: one anomaly detector per
  // resilience counter plus the sensed signal itself, so every fault
  // window in the schedule has a stream that should light up.
  obs::health::HealthMonitorConfig health_cfg;
  health_cfg.eval_period_sec = kHealthEval;
  obs::health::HealthMonitor health(&telemetry, health_cfg);
  for (const char* metric :
       {"loop.actuation_failures", "loop.sensor_misses",
        "loop.stale_sensor_reads"}) {
    FLOWER_RETURN_NOT_OK(health.Watch(
        obs::health::AnomalyBank::Source::kCounterRate,
        {metric, {{"loop", "analytics"}, {"layer", "analytics"}}},
        "analytics"));
  }
  FLOWER_RETURN_NOT_OK(health.Watch(
      obs::health::AnomalyBank::Source::kGauge,
      {"loop.sensed_y", {{"loop", "analytics"}, {"layer", "analytics"}}},
      "analytics"));
  (void)sim.SchedulePeriodic(kHealthEval, kHealthEval, [&] {
    health.Evaluate(sim.Now());
    return true;
  });

  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(std::make_shared<workload::ConstantArrival>(kBaseRate));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, kCrowdExtra, kSurgeStart, kSurgeLength, 2.0 * kMinute));

  core::FlowBuilder builder;
  builder.WithFlowConfig(bench::CanonicalFlow())
      .WithWorkload(arrival, bench::CanonicalWorkload())
      .WithSeed(seed)
      .WithTelemetry(&telemetry)
      .WithFaultInjector(&chaos);
  if (hardened) builder.WithResilience(HardenedPolicy());
  FLOWER_ASSIGN_OR_RETURN(core::ManagedFlow mf,
                          builder.Build(&sim, &metrics));
  sim.RunUntil(kHorizon);

  RunResult out;
  FLOWER_ASSIGN_OR_RETURN(
      const TimeSeries* cpu,
      metrics.GetSeries({"Flower/Storm", "CpuUtilization", "storm"}));

  // SLO-violation seconds and time-to-recover from the ground truth.
  SimTime first_violation = -1.0;
  SimTime prev = kSurgeStart;
  for (const Sample& s : cpu->samples()) {
    if (s.time < kSurgeStart) continue;
    if (s.value > kCpuSlo) {
      out.violation_sec += s.time - prev;
      if (first_violation < 0.0) first_violation = s.time;
    }
    prev = s.time;
    out.cpu_trace.push_back(s.value);
  }
  if (first_violation >= 0.0) {
    for (const Sample& s : cpu->samples()) {
      if (s.time < first_violation) continue;
      TimeSeries hold = cpu->Window(s.time - 1.0, s.time + kRecoverHold);
      bool calm = true;
      for (const Sample& h : hold.samples()) calm &= h.value <= kCpuSlo;
      if (calm && s.time + kRecoverHold <= kHorizon) {
        out.recover_sec = s.time - kSurgeStart;
        out.recovered = true;
        break;
      }
    }
    if (!out.recovered) out.recover_sec = kHorizon - kSurgeStart;
  } else {
    out.recovered = true;  // Never violated: nothing to recover from.
  }

  out.drop_pct =
      100.0 *
      static_cast<double>(mf.flow->generator()->total_dropped()) /
      std::max<double>(
          1.0, static_cast<double>(mf.flow->generator()->total_generated()));
  FLOWER_ASSIGN_OR_RETURN(const core::LayerControlState* state,
                          mf.manager->GetState(core::Layer::kAnalytics));
  out.analytics = state->CountersSnapshot();
  out.analytics_actuations = state->actuations.size();
  out.injected_failures = chaos.stats().actuator_failures;
  out.injected_gaps = chaos.stats().metric_gaps;

  // Detection latency per fault window, from the anomaly log. The gap
  // shows up as sensor misses (unhardened) or stale hold-last reads
  // (hardened) — either stream counts as noticing it.
  const auto& anomaly_log = health.anomaly_log();
  out.anomaly_events = anomaly_log.size();
  out.detect_actuator_sec =
      DetectionLatency(anomaly_log, "loop.actuation_failures", kSurgeStart);
  double gap_start = kSurgeStart + 6.0 * kMinute;
  double via_miss =
      DetectionLatency(anomaly_log, "loop.sensor_misses", gap_start);
  double via_stale =
      DetectionLatency(anomaly_log, "loop.stale_sensor_reads", gap_start);
  out.detect_gap_sec = via_miss < 0.0
                           ? via_stale
                           : (via_stale < 0.0 ? via_miss
                                              : std::min(via_miss, via_stale));
  out.detect_spike_sec =
      DetectionLatency(anomaly_log, "loop.sensed_y", 110.0 * kMinute);

  // Time-to-attributed-cause: the anomaly bank says *something* is off;
  // the span chains say *what*. Walk the decision log from surge onset
  // and find the first analytics decision whose resolved chain contains
  // a failed actuation attempt — that is the moment a post-mortem query
  // (SpanIndex::EffectOf) pins the outage on the actuator.
  out.spans_recorded = telemetry.spans().total_started();
  obs::SpanIndex index(telemetry.spans());
  for (const obs::ControlDecisionRecord& d :
       telemetry.decisions().Snapshot()) {
    if (d.time < kSurgeStart || d.loop != "analytics" || d.span_id == 0) {
      continue;
    }
    auto chain = index.EffectOf(d.span_id);
    if (!chain.ok()) continue;
    bool failed_attempt = false;
    for (const obs::SpanRecord* a : chain->actuations) {
      failed_attempt |=
          a->outcome ==
          static_cast<uint8_t>(obs::StepOutcome::kActuationFailed);
    }
    if (failed_attempt) {
      out.attribute_cause_sec = d.time - kSurgeStart;
      break;
    }
  }
  return out;
}

int Run() {
  // Dozens of injected actuation failures are the whole point here; the
  // per-failure warnings would drown the report.
  SetLogLevel(LogLevel::kError);
  bench::Header(
      "CHAOS  Fault-schedule recovery: hardened vs unhardened control");
  constexpr uint64_t kSeed = 11;

  auto unhardened = RunScenario(false, kSeed);
  auto hardened = RunScenario(true, kSeed);
  auto replay = RunScenario(true, kSeed);
  if (!unhardened.ok() || !hardened.ok() || !replay.ok()) {
    std::cerr << (unhardened.ok() ? (hardened.ok() ? replay : hardened)
                                  : unhardened)
                     .status()
              << "\n";
    return 1;
  }

  std::cout << "\nFlash crowd " << kBaseRate << " -> "
            << kBaseRate + kCrowdExtra << " rec/s at t=60min for 30min;\n"
            << "analytics resizes fail p=0.8 for 25min, metrics dark for "
               "6min,\nsensor spikes x4 for 2min. Same seed, same faults, "
               "both runs.\n\n";

  TablePrinter table({"config", "SLO-violation s", "recover s", "drops %",
                      "act fails", "retries", "retry ok", "brk trips",
                      "stale", "misses"});
  auto row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, TablePrinter::Num(r.violation_sec, 0),
                  r.recovered ? TablePrinter::Num(r.recover_sec, 0)
                              : (">" + TablePrinter::Num(r.recover_sec, 0)),
                  TablePrinter::Num(r.drop_pct, 2),
                  std::to_string(r.analytics.actuation_failures),
                  std::to_string(r.analytics.actuation_retries),
                  std::to_string(r.analytics.retry_successes),
                  std::to_string(r.analytics.breaker_trips),
                  std::to_string(r.analytics.stale_sensor_reads),
                  std::to_string(r.analytics.sensor_misses)});
  };
  row("unhardened", *unhardened);
  row("hardened", *hardened);
  table.Print(std::cout);

  auto latency = [](double v) {
    return v < 0.0 ? std::string("never") : TablePrinter::Num(v, 0) + "s";
  };
  std::cout << "\nAnomaly detection latency (hardened run, budget "
            << kDetectBudget << "s = 2 control periods):\n"
            << "  actuator-failure window: " << latency(hardened->detect_actuator_sec)
            << "\n  metric-gap window:       " << latency(hardened->detect_gap_sec)
            << "\n  sensor-spike window:     " << latency(hardened->detect_spike_sec)
            << "\n  total anomaly events:    " << hardened->anomaly_events
            << "\n";

  std::cout << "\nTime-to-attributed-cause (first decision whose span "
               "chain holds a\nfailed actuation, via SpanIndex::EffectOf; "
            << hardened->spans_recorded << " spans recorded):\n"
            << "  unhardened: " << latency(unhardened->attribute_cause_sec)
            << "\n  hardened:   " << latency(hardened->attribute_cause_sec)
            << "\n";

  std::cout << "\nGround-truth analytics CPU from surge onset:\n";
  std::cout << AsciiChart(unhardened->cpu_trace, 6, 72,
                          "unhardened (85% = SLO line)");
  std::cout << AsciiChart(hardened->cpu_trace, 6, 72, "hardened");

  bool ok = true;
  ok &= bench::Verdict("fault schedule fired in both runs",
                       unhardened->injected_failures > 0 &&
                           hardened->injected_failures > 0 &&
                           hardened->injected_gaps > 0);
  ok &= bench::Verdict(
      "deterministic: same seed reproduces the identical run",
      hardened->Serialize() == replay->Serialize());
  ok &= bench::Verdict(
      "hardening recovered retries succeeded where raw actuation failed",
      hardened->analytics.retry_successes > 0);
  ok &= bench::Verdict(
      "hardened loop spends measurably less time in SLO violation",
      hardened->violation_sec < 0.8 * unhardened->violation_sec);
  ok &= bench::Verdict("hardened loop recovers sooner",
                       hardened->recovered &&
                           hardened->recover_sec < unhardened->recover_sec);
  auto detected = [&](double v) { return v >= 0.0 && v <= kDetectBudget; };
  ok &= bench::Verdict(
      "anomaly bank flags the actuator-failure window within 2 periods",
      detected(hardened->detect_actuator_sec));
  ok &= bench::Verdict(
      "anomaly bank flags the metric-gap window within 2 periods",
      detected(hardened->detect_gap_sec));
  ok &= bench::Verdict(
      "anomaly bank flags the sensor-spike window within 2 periods",
      detected(hardened->detect_spike_sec));
  ok &= bench::Verdict(
      "span chains attribute the actuator failure within 2 periods",
      detected(hardened->attribute_cause_sec) &&
          detected(unhardened->attribute_cause_sec));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main() { return flower::Run(); }
