// Reproduces the paper's §3.3 controller-comparison claim (backed by
// the companion journal paper [9]): Flower's adaptive-gain controller
// with gain memory outperforms the fixed-gain [Lim et al. 2010] and
// quasi-adaptive [Padala et al. 2007] baselines, plus the rule-based
// autoscaler cloud providers ship [1], and its own no-memory ablation.
//
// Scenario: identical managed click-stream flow and workload (diurnal
// base + unforeseen flash crowd); only the controller family differs.
// Reported per family: out-of-band %, overload %, MAE vs the 60%
// reference, settling time after the surge, mean resources held,
// actuation changes, and the ingestion drop rate.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "control/metrics.h"

namespace flower {
namespace {

constexpr double kHorizon = 6.0 * kHour;
constexpr double kSurgeTime = 2.0 * kHour;

struct FamilyResult {
  std::string name;
  control::ControlQuality analytics;
  double settle_after_surge = -1.0;  // < 0: never settled.
  double drop_rate = 0.0;
  double mean_workers = 0.0;
  double p99_latency = 0.0;  ///< Worst per-period p99 complete latency (s).
};

std::shared_ptr<workload::ArrivalProcess> ComparisonLoad() {
  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(std::make_shared<workload::DiurnalArrival>(1000.0, 600.0,
                                                          5.0 * kHour));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 3000.0, kSurgeTime, 50.0 * kMinute, 4.0 * kMinute));
  return arrival;
}

Result<FamilyResult> RunFamily(core::ControllerKind kind) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  core::LayerElasticityConfig analytics;
  analytics.controller = kind;
  analytics.max_resource = 60.0;
  FLOWER_ASSIGN_OR_RETURN(
      core::ManagedFlow mf,
      core::FlowBuilder()
          .WithFlowConfig(bench::CanonicalFlow())
          .WithAnalytics(analytics)
          .WithControllerKind(kind)
          .WithWorkload(ComparisonLoad(), bench::CanonicalWorkload())
          .WithSeed(4321)
          .Build(&sim, &metrics));
  sim.RunUntil(kHorizon);

  FamilyResult out;
  out.name = core::ControllerKindToString(kind);
  FLOWER_ASSIGN_OR_RETURN(const core::LayerControlState* state,
                          mf.manager->GetState(core::Layer::kAnalytics));
  double reference =
      mf.manager->GetController(core::Layer::kAnalytics).ValueOrDie()
          ->reference();
  FLOWER_ASSIGN_OR_RETURN(
      out.analytics,
      control::EvaluateControl(
          state->sensed.Window(30.0 * kMinute, kHorizon),
          state->actuations, reference, 15.0, kHorizon));
  auto settle = control::SettlingTime(state->sensed, kSurgeTime, reference,
                                      15.0, 20.0 * kMinute);
  out.settle_after_surge = settle.ok() ? *settle : -1.0;
  out.drop_rate =
      static_cast<double>(mf.flow->generator()->total_dropped()) /
      std::max<double>(1.0,
                       static_cast<double>(
                           mf.flow->generator()->total_generated()));
  out.mean_workers = out.analytics.mean_resource;
  out.p99_latency =
      metrics
          .GetStatistic({"Flower/Storm", "CompleteLatencyP99", "storm"},
                        30.0 * kMinute, kHorizon,
                        cloudwatch::Statistic::kMaximum)
          .ValueOr(0.0);
  return out;
}

int Run() {
  bench::Header(
      "CTRL  Controller family comparison (paper §3.3 claim, ref [9])");
  std::vector<core::ControllerKind> kinds = {
      core::ControllerKind::kAdaptiveGain,
      core::ControllerKind::kAdaptiveGainNoMemory,
      core::ControllerKind::kFixedGain,
      core::ControllerKind::kQuasiAdaptive,
      core::ControllerKind::kRuleBased,
      core::ControllerKind::kTargetTracking,
      core::ControllerKind::kFeedforward,
  };
  std::vector<FamilyResult> results;
  for (core::ControllerKind kind : kinds) {
    auto r = RunFamily(kind);
    if (!r.ok()) {
      std::cerr << core::ControllerKindToString(kind) << ": " << r.status()
                << "\n";
      return 1;
    }
    results.push_back(*r);
  }

  TablePrinter table({"controller", "out-of-band %", "overload %", "MAE",
                      "settle after surge (min)", "mean VMs", "resizes",
                      "drop %", "worst p99 lat (s)"});
  for (const FamilyResult& r : results) {
    table.AddRow(
        {r.name, TablePrinter::Num(100.0 * r.analytics.violation_fraction, 1),
         TablePrinter::Num(100.0 * r.analytics.overload_fraction, 1),
         TablePrinter::Num(r.analytics.mean_abs_error, 1),
         r.settle_after_surge < 0.0
             ? "never"
             : TablePrinter::Num(r.settle_after_surge / kMinute, 1),
         TablePrinter::Num(r.mean_workers, 1),
         std::to_string(r.analytics.actuation_changes),
         TablePrinter::Num(100.0 * r.drop_rate, 2),
         TablePrinter::Num(r.p99_latency, 1)});
  }
  table.Print(std::cout);

  const FamilyResult& adaptive = results[0];
  const FamilyResult& no_memory = results[1];
  const FamilyResult& fixed = results[2];
  const FamilyResult& rules = results[4];

  const FamilyResult& quasi = results[3];
  bool ok = true;
  // The paper's SLO concern is performance breach (overload); staying
  // *below* the reference is a cost matter, reported separately. Eq. 7
  // deliberately shrinks the gain on negative error (slow, stable
  // scale-down), so the symmetric out-of-band column is expected to
  // favour dead-zone controllers.
  ok &= bench::Verdict(
      "adaptive-gain has the lowest SLO-violating (overload) fraction of "
      "the published baselines",
      adaptive.analytics.overload_fraction <=
              fixed.analytics.overload_fraction &&
          adaptive.analytics.overload_fraction <=
              quasi.analytics.overload_fraction &&
          adaptive.analytics.overload_fraction <=
              rules.analytics.overload_fraction);
  ok &= bench::Verdict(
      "gain memory helps: adaptive <= no-memory ablation on out-of-band %",
      adaptive.analytics.violation_fraction <=
          no_memory.analytics.violation_fraction + 1e-9);
  bool adaptive_settles = adaptive.settle_after_surge >= 0.0;
  bool fixed_slower = !(fixed.settle_after_surge >= 0.0) ||
                      fixed.settle_after_surge >=
                          adaptive.settle_after_surge;
  ok &= bench::Verdict(
      "adaptive-gain settles after the surge, at least as fast as "
      "fixed-gain",
      adaptive_settles && fixed_slower);
  ok &= bench::Verdict(
      "rule-based has the highest overload exposure after the unforeseen "
      "surge",
      rules.analytics.overload_fraction >=
          adaptive.analytics.overload_fraction);
  const FamilyResult& feedforward = results[6];
  bool ff_best_mae = true;
  for (const FamilyResult& r : results) {
    if (r.analytics.mean_abs_error <
        feedforward.analytics.mean_abs_error - 1e-9) {
      ff_best_mae = false;
    }
  }
  ok &= bench::Verdict(
      "feedforward extension (dependency-driven) has the best tracking "
      "(lowest MAE) of all families and settles after the surge",
      ff_best_mae && feedforward.settle_after_surge >= 0.0);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main() { return flower::Run(); }
