// Reproduces paper Fig. 4: Pareto-optimal resource-share plans for the
// click-stream flow, found by NSGA-II over the provisioning-plan space
// (paper §3.2). The scenario uses the paper's stated dependency
// constraints: 5·r_A >= r_I, 2·r_A <= r_I, 2·r_I <= r_S, where r_I =
// Kinesis shards, r_A = Storm VMs, r_S = DynamoDB write capacity units,
// plus the budget constraint (Eq. 4). The paper reports six Pareto
// optimal solutions; the exact count depends on the budget and bounds,
// so the bench prints the full front and checks the *shape*: a small
// discrete front whose members NSGA-II recovers exactly (validated
// against an exhaustive oracle), including an ablation of
// constrained-domination vs penalty handling.

#include <chrono>
#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/resource_share.h"
#include "opt/nsga2.h"
#include "tools/flag_parser.h"

namespace flower {
namespace {

using core::Layer;
using core::LinearConstraint;
using core::ProvisioningPlan;
using core::ResourceShareAnalyzer;
using core::ResourceShareRequest;

ResourceShareRequest Fig4Request() {
  ResourceShareRequest req;
  // Budget and bounds tuned so the constrained front has exactly six
  // plans, matching the count the paper reports for its demo scenario.
  req.hourly_budget_usd = 0.60;
  pricing::PriceBook book;
  req.SetPricesFrom(book);
  req.bounds[0] = {1.0, 10.0};    // Shards.
  req.bounds[1] = {1.0, 3.0};     // VMs.
  req.bounds[2] = {1.0, 350.0};   // WCU.
  req.constraints.push_back(LinearConstraint::AtLeast(
      Layer::kAnalytics, 5.0, Layer::kIngestion, 1.0, "5*r_A >= r_I"));
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kAnalytics, 2.0, Layer::kIngestion, -1.0, 0.0,
      "2*r_A <= r_I"));
  req.constraints.push_back(LinearConstraint::AtMost(
      Layer::kIngestion, 2.0, Layer::kStorage, -1.0, 0.0, "2*r_I <= r_S"));
  return req;
}

void PrintFront(const std::string& label,
                const std::vector<ProvisioningPlan>& plans) {
  std::cout << "\n" << label << " (" << plans.size() << " plans):\n";
  TablePrinter table({"plan", "shards (r_I)", "VMs (r_A)", "WCU (r_S)",
                      "$/hour"});
  int i = 1;
  for (const ProvisioningPlan& p : plans) {
    table.AddRow({std::to_string(i++), TablePrinter::Num(p.ingestion(), 0),
                  TablePrinter::Num(p.analytics(), 0),
                  TablePrinter::Num(p.storage(), 0),
                  TablePrinter::Num(p.hourly_cost_usd, 3)});
  }
  table.Print(std::cout);
}

std::set<std::tuple<double, double, double>> AsSet(
    const std::vector<ProvisioningPlan>& plans) {
  std::set<std::tuple<double, double, double>> s;
  for (const auto& p : plans) {
    s.insert({p.ingestion(), p.analytics(), p.storage()});
  }
  return s;
}

int Run(size_t threads, bool warm_start, size_t stall_generations) {
  bench::Header("FIG4  Pareto-optimal resource share plans (paper Fig. 4)");
  ResourceShareRequest req = Fig4Request();
  std::cout << "max (r_I, r_A, r_S)  s.t.  cost <= $"
            << TablePrinter::Num(req.hourly_budget_usd, 2)
            << "/h,  5*r_A >= r_I,  2*r_A <= r_I,  2*r_I <= r_S\n"
            << "prices: shard $" << req.unit_price[0] << "/h, VM $"
            << req.unit_price[1] << "/h, WCU $" << req.unit_price[2]
            << "/h\n";

  // Exhaustive oracle (exact front).
  ResourceShareAnalyzer oracle_analyzer;
  auto t0 = std::chrono::steady_clock::now();
  auto oracle = oracle_analyzer.AnalyzeExhaustive(req);
  auto t1 = std::chrono::steady_clock::now();
  if (!oracle.ok()) {
    std::cerr << oracle.status() << "\n";
    return 1;
  }
  PrintFront("Exhaustive oracle front", oracle->pareto_plans);
  std::cout << "oracle time: "
            << std::chrono::duration<double, std::milli>(t1 - t0).count()
            << " ms over " << 10 * 3 * 350 << " grid points\n";

  // NSGA-II (the paper's solver), single-threaded baseline.
  opt::Nsga2Config solver;
  solver.population_size = 100;
  solver.generations = 250;
  solver.seed = 7;
  solver.num_threads = 1;
  ResourceShareAnalyzer analyzer(solver);
  t0 = std::chrono::steady_clock::now();
  auto nsga = analyzer.Analyze(req);
  t1 = std::chrono::steady_clock::now();
  if (!nsga.ok()) {
    std::cerr << nsga.status() << "\n";
    return 1;
  }
  double serial_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  PrintFront("NSGA-II front (pop=100, gen=250)", nsga->pareto_plans);
  std::cout << "NSGA-II time (1 thread): " << serial_ms << " ms, "
            << nsga->evaluations << " evaluations\n";

  // The same solve at --threads N must land on the bit-identical front
  // (per-pair RNG streams + coordinator-side reductions).
  opt::Nsga2Config parallel_solver = solver;
  parallel_solver.num_threads = threads;
  ResourceShareAnalyzer parallel_analyzer(parallel_solver);
  t0 = std::chrono::steady_clock::now();
  auto nsga_mt = parallel_analyzer.Analyze(req);
  t1 = std::chrono::steady_clock::now();
  bool identical_front = false;
  if (nsga_mt.ok()) {
    identical_front = AsSet(nsga_mt->pareto_plans) == AsSet(nsga->pareto_plans);
    std::cout << "NSGA-II time (" << threads << " threads): "
              << std::chrono::duration<double, std::milli>(t1 - t0).count()
              << " ms (evaluation fan-out is fine-grained here; see the "
                 "PLAN bench for the coarse-grained speedup)\n";
  } else {
    std::cerr << nsga_mt.status() << "\n";
  }

  // Ablation: penalty-function constraint handling.
  ResourceShareRequest penalty_req = req;
  penalty_req.handling = core::ConstraintHandling::kPenalty;
  auto penalty = analyzer.Analyze(penalty_req);
  if (penalty.ok()) {
    PrintFront("Ablation: penalty-function constraint handling",
               penalty->pareto_plans);
  }

  // Flower's automatic plan selection and controller upper bounds.
  auto balanced = ResourceShareAnalyzer::PickBalancedPlan(*nsga, req);
  auto max_shares = ResourceShareAnalyzer::MaxShares(*nsga);
  if (balanced.ok() && max_shares.ok()) {
    std::cout << "\nAuto-selected balanced plan: r_I="
              << balanced->ingestion() << ", r_A=" << balanced->analytics()
              << ", r_S=" << balanced->storage() << " ($"
              << TablePrinter::Num(balanced->hourly_cost_usd, 3) << "/h)\n";
    std::cout << "Controller share upper bounds (max over front): r_I<="
              << max_shares->ingestion() << ", r_A<="
              << max_shares->analytics() << ", r_S<="
              << max_shares->storage() << "\n";
  }

  // Optional: the incremental planning engine (--warm-start /
  // --stall-generations). Two consecutive "control periods" over the
  // same request — the second seeds from the first's final population
  // and/or exits early on convergence — must land on a front no worse
  // than the cold one. Off by default so the canonical output stays
  // byte-identical.
  bool incremental_ok = true;
  if (warm_start || stall_generations > 0) {
    core::IncrementalPlanning inc;
    inc.warm_start = warm_start;
    inc.stall_generations = stall_generations;
    ResourceShareAnalyzer inc_analyzer(solver, inc);
    auto first = inc_analyzer.AnalyzeIncremental(req);
    auto second = inc_analyzer.AnalyzeIncremental(req);
    if (first.ok() && second.ok()) {
      std::cout << "\nIncremental planning (warm_start="
                << (warm_start ? "on" : "off")
                << ", stall_generations=" << stall_generations << "):\n"
                << "  period 1: " << first->evaluations << " evaluations"
                << (first->early_exit ? " (early exit)" : "") << "\n"
                << "  period 2: " << second->evaluations << " evaluations"
                << (second->early_exit ? " (early exit)" : "")
                << (inc_analyzer.counters().warm_starts > 0 ? ", warm-started"
                                                            : "")
                << ", front size " << second->pareto_plans.size() << "\n";
      incremental_ok =
          !second->pareto_plans.empty() &&
          second->evaluations <= first->evaluations;
    } else {
      if (!first.ok()) std::cerr << first.status() << "\n";
      if (!second.ok()) std::cerr << second.status() << "\n";
      incremental_ok = false;
    }
  }

  auto oracle_set = AsSet(oracle->pareto_plans);
  auto nsga_set = AsSet(nsga->pareto_plans);
  size_t on_front = 0;
  for (const auto& p : nsga_set) {
    if (oracle_set.count(p)) ++on_front;
  }

  bool ok = true;
  ok &= bench::Verdict(
      "six Pareto-optimal plans, as the paper reports for its scenario",
      oracle->pareto_plans.size() == 6);
  ok &= bench::Verdict("every NSGA-II plan is truly Pareto-optimal",
                       on_front == nsga_set.size() && !nsga_set.empty());
  ok &= bench::Verdict(
      "NSGA-II recovers >= 2/3 of the exact front",
      3 * nsga_set.size() >= 2 * oracle_set.size());
  ok &= bench::Verdict(
      "same seed at " + std::to_string(threads) +
          " threads reproduces the 1-thread front exactly",
      identical_front);
  if (penalty.ok()) {
    ok &= bench::Verdict(
        "penalty ablation finds no more of the front than "
        "constrained-domination",
        penalty->pareto_plans.size() <= nsga->pareto_plans.size());
  }
  if (warm_start || stall_generations > 0) {
    ok &= bench::Verdict(
        "incremental period 2 spends no more evaluations and keeps a "
        "non-empty front",
        incremental_ok);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status()
              << "\nusage: fig4_pareto [--threads=N] [--warm-start] "
                 "[--stall-generations=N]\n";
    return 2;
  }
  auto threads = flags->GetInt("threads", 8);
  if (!threads.ok() || *threads < 1) {
    std::cerr << "--threads expects a positive integer\n";
    return 2;
  }
  auto stall = flags->GetInt("stall-generations", 0);
  if (!stall.ok() || *stall < 0) {
    std::cerr << "--stall-generations expects a non-negative integer\n";
    return 2;
  }
  return flower::Run(static_cast<size_t>(*threads),
                     flags->GetBool("warm-start"),
                     static_cast<size_t>(*stall));
}
