// Micro-benchmarks of Flower's infrastructure (google-benchmark):
// NSGA-II generations, OLS fits, correlation scans, simulation event
// throughput, controller updates, metric-store writes/queries, and the
// sliding-window counter. These quantify the overhead of the manager
// itself — the paper's implicit requirement that the elasticity layer
// is cheap relative to the systems it manages.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_util.h"
#include "cloudwatch/metric_store.h"
#include "common/random.h"
#include "exec/thread_pool.h"
#include "flow/flow.h"
#include "control/adaptive_gain.h"
#include "core/resource_share.h"
#include "fleet/budget_mailbox.h"
#include "fleet/fleet_manager.h"
#include "flow/sliding_window.h"
#include "obs/metrics_registry.h"
#include "obs/replay/flight_recorder.h"
#include "opt/nsga2.h"
#include "sim/simulation.h"
#include "stats/correlation.h"
#include "stats/linreg.h"

// Allocation-counting hook: global operator new/delete bump a relaxed
// counter, so the metrics hot-path guard below can assert that counter
// increments and histogram records perform zero heap allocations.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace flower {
namespace {

core::ResourceShareRequest BenchRequest() {
  core::ResourceShareRequest req;
  req.hourly_budget_usd = 2.0;
  req.bounds[0] = {1.0, 40.0};
  req.bounds[1] = {1.0, 20.0};
  req.bounds[2] = {1.0, 400.0};
  req.constraints.push_back(core::LinearConstraint::AtLeast(
      core::Layer::kAnalytics, 5.0, core::Layer::kIngestion, 1.0));
  req.constraints.push_back(core::LinearConstraint::AtMost(
      core::Layer::kAnalytics, 2.0, core::Layer::kIngestion, -1.0, 0.0));
  return req;
}

void BM_Nsga2ResourceShare(benchmark::State& state) {
  core::ShareProblem problem(BenchRequest());
  opt::Nsga2Config cfg;
  cfg.population_size = 100;
  cfg.generations = static_cast<size_t>(state.range(0));
  opt::Nsga2 solver(cfg);
  for (auto _ : state) {
    auto res = solver.Solve(problem);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 100);
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0) * 100),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Nsga2ResourceShare)->Arg(10)->Arg(50)->Arg(250);

void BM_OlsSimpleFit(benchmark::State& state) {
  Rng rng(1);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x, y;
  for (size_t i = 0; i < n; ++i) {
    double xi = rng.Uniform(0, 50000);
    x.push_back(xi);
    y.push_back(4.8 + 0.0002 * xi + rng.Normal(0, 0.5));
  }
  for (auto _ : state) {
    auto fit = stats::FitSimple(x, y);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_OlsSimpleFit)->Arg(550)->Arg(10000);

void BM_CrossCorrelationScan(benchmark::State& state) {
  Rng rng(2);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x, y;
  for (size_t i = 0; i < n; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  for (auto _ : state) {
    auto r = stats::CrossCorrelation(x, y, 30);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CrossCorrelationScan)->Arg(550)->Arg(5000);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t n = state.range(0);
    for (int64_t i = 0; i < n; ++i) {
      (void)sim.ScheduleAt(static_cast<double>(i % 100), [] {});
    }
    sim.RunUntil(1000.0);
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulationEventThroughput)->Arg(100000);

void BM_AdaptiveControllerUpdate(benchmark::State& state) {
  control::AdaptiveGainConfig cfg;
  cfg.limits.min = 1.0;
  cfg.limits.max = 1000.0;
  control::AdaptiveGainController c(cfg);
  c.Reset(10.0);
  double t = 0.0;
  double y = 50.0;
  for (auto _ : state) {
    t += 60.0;
    y = y < 80.0 ? y + 1.0 : 40.0;
    auto u = c.Update(t, y);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AdaptiveControllerUpdate);

void BM_MetricStorePut(benchmark::State& state) {
  cloudwatch::MetricStore store;
  cloudwatch::MetricId id{"Flower/Storm", "CpuUtilization", "c"};
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(store.Put(id, t, 42.0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricStorePut);

void BM_MetricStoreWindowQuery(benchmark::State& state) {
  cloudwatch::MetricStore store;
  cloudwatch::MetricId id{"Flower/Storm", "CpuUtilization", "c"};
  for (int i = 0; i < 100000; ++i) {
    (void)store.Put(id, static_cast<double>(i), 42.0);
  }
  for (auto _ : state) {
    auto v = store.GetStatistic(id, 99000.0, 100000.0,
                                cloudwatch::Statistic::kAverage);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MetricStoreWindowQuery);

void BM_SlidingWindowAdd(benchmark::State& state) {
  auto counter = flow::SlidingWindowCounter::Create(60.0, 10.0)
                     .MoveValueOrDie();
  Rng rng(3);
  double t = 0.0;
  uint64_t emitted = 0;
  for (auto _ : state) {
    t += 0.001;
    counter.Add(rng.UniformInt(0, 499), t);
    counter.AdvanceTo(t, [&](int64_t, double, double) { ++emitted; });
  }
  benchmark::DoNotOptimize(emitted);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlidingWindowAdd);

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter =
      registry.GetCounter("bench.ops", {{"layer", "analytics"}});
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist =
      registry.GetHistogram("bench.latency_us", {{"layer", "analytics"}});
  Rng rng(4);
  double v = 1.0;
  for (auto _ : state) {
    v = v < 1e6 ? v * 1.37 : rng.Uniform(0.0, 10.0);
    hist->Record(v);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramRecord);

// Hard guard, run before the benchmarks: 1e5 counter increments plus
// 1e5 histogram records must not allocate at all once the instruments
// are registered. Returns false (and fails the binary) on any heap
// traffic, which would invalidate every hot-path number above.
bool MetricsHotPathIsAllocationFree() {
  obs::MetricsRegistry registry;
  obs::Counter* counter =
      registry.GetCounter("guard.ops", {{"layer", "analytics"}});
  obs::Histogram* hist =
      registry.GetHistogram("guard.latency_us", {{"layer", "analytics"}});
  constexpr int kOps = 100000;
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kOps; ++i) {
    counter->Increment();
    hist->Record(static_cast<double>(i % 4096) * 0.37);
  }
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - before;
  std::printf("metrics hot-path allocation guard: %llu allocations over %d "
              "counter increments + %d histogram records\n",
              static_cast<unsigned long long>(allocs), kOps, kOps);
  return allocs == 0;
}

// Minimal 2-variable / 2-objective / 1-constraint problem whose
// Evaluate performs no allocations once the caller's buffers hold two
// elements — isolates the solver's own heap behavior.
class GuardProblem final : public opt::Problem {
 public:
  GuardProblem() {
    specs_.push_back({"a", 0.0, 10.0, false});
    specs_.push_back({"b", 0.0, 10.0, false});
  }
  const std::vector<opt::VariableSpec>& variables() const override {
    return specs_;
  }
  size_t num_objectives() const override { return 2; }
  size_t num_constraints() const override { return 1; }
  void Evaluate(const std::vector<double>& x,
                std::vector<double>* objectives,
                std::vector<double>* violations) const override {
    objectives->push_back(x[0]);
    objectives->push_back(10.0 - x[0] + 0.1 * x[1]);
    violations->push_back(std::max(0.0, x[0] + x[1] - 15.0));
  }

 private:
  std::vector<opt::VariableSpec> specs_;
};

// Second hard guard: NSGA-II's generation loop must be allocation-free
// in steady state. The first generations warm the arena/workspace/
// scratch capacities (and the thread_local violation buffer); every
// generation after the warm-up window must perform zero heap
// allocations, with the convergence-stall bookkeeping enabled so the
// early-exit path is covered too.
bool PlannerSteadyStateIsAllocationLean() {
  constexpr size_t kGenerations = 12;
  constexpr size_t kWarmupGenerations = 2;
  static uint64_t per_gen[kGenerations];
  static uint64_t last_mark;
  GuardProblem problem;
  opt::Nsga2Config cfg;
  cfg.population_size = 32;
  cfg.generations = kGenerations;
  cfg.num_threads = 1;
  cfg.stall_generations = kGenerations + 1;  // Bookkeeping on, no exit.
  cfg.on_generation = [](const opt::Nsga2GenerationStats& s) {
    uint64_t now = g_allocations.load(std::memory_order_relaxed);
    per_gen[s.generation] = now - last_mark;
    last_mark = now;
  };
  opt::Nsga2 solver(cfg);
  last_mark = g_allocations.load(std::memory_order_relaxed);
  auto res = solver.Solve(problem);
  if (!res.ok()) {
    std::printf("planner steady-state guard: solve failed\n");
    return false;
  }
  uint64_t steady = 0;
  for (size_t g = kWarmupGenerations; g < kGenerations; ++g) {
    steady += per_gen[g];
  }
  std::printf("planner steady-state allocation guard: %llu allocations over "
              "generations %zu..%zu (warm-up gens excluded)\n",
              static_cast<unsigned long long>(steady), kWarmupGenerations,
              kGenerations - 1);
  return steady == 0;
}

// Third hard guard: the simulated flow's steady-state tick must be
// allocation-free. One full analytics flow (Kinesis -> Storm ->
// DynamoDB, no metric store) is warmed past a complete timer-wheel
// rotation (64 s) and a slide-boundary emission, so every ring buffer,
// tuple queue and wheel bucket holds its high-water capacity; six
// subsequent cluster ticks — pure spout-pull / tuple-transfer /
// window-add work, no slide boundary — must then perform zero heap
// allocations. Boundary ticks (window emission + DynamoDB persist) are
// deliberately outside the guarantee.
bool SimSteadyTickIsAllocationFree() {
  sim::Simulation sim;
  flow::FlowConfig cfg = bench::CanonicalFlow();
  // Enough WCU that a slide boundary's persist burst completes inside
  // the boundary tick instead of draining into the measured window.
  cfg.table.initial_wcu = 2000.0;
  auto f = flow::DataAnalyticsFlow::Create(&sim, nullptr, cfg);
  if (!f.ok()) {
    std::printf("sim steady-tick guard: flow creation failed\n");
    return false;
  }
  // ~80% of the 2-worker cluster's capacity: an overloaded cluster
  // never reaches steady state (the window bolt starves behind the
  // backlog and keeps first-touching entities past any warm-up).
  Status st = (*f)->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(300.0),
      bench::CanonicalWorkload(), /*seed=*/7);
  if (!st.ok()) {
    std::printf("sim steady-tick guard: workload attach failed\n");
    return false;
  }
  // Past one wheel rotation (64 s) and one sliding-window ring
  // rotation (8 slots x 10 s); boundary-100's emission lands ~101-102.
  sim.RunUntil(103.0);
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim.RunUntil(109.0);  // Ticks 104..109; boundary-110 emits ~111.
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - before;
  std::printf("sim steady-tick allocation guard: %llu allocations over 6 "
              "steady-state cluster ticks\n",
              static_cast<unsigned long long>(allocs));
  return allocs == 0;
}

// Fourth hard guard: the flight recorder's steady-tick path must be
// allocation-free. Every ring is preallocated at construction; after
// that, 1e5 decision records plus interleaved grant/re-plan entries —
// including ring wrap-around and checkpoint pushes — must perform zero
// heap allocations, or a recorder per fleet partition would violate
// the partitions' hot-path allocation budget.
bool FlightRecorderHotPathIsAllocationFree() {
  obs::replay::FlightRecorder recorder;
  recorder.SetIdentity("guard-tenant", 0, 42, 0);
  obs::ControlDecisionRecord rec;
  rec.loop = "analytics";
  rec.layer = "analytics";
  rec.law = "adaptive-gain";
  constexpr int kOps = 100000;
  const double shares[3] = {8.0, 4.0, 120.0};
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kOps; ++i) {
    rec.time = 60.0 * static_cast<double>(i);
    rec.sensed_y = 40.0 + static_cast<double>(i % 50);
    rec.raw_u = 3.0 + 0.001 * static_cast<double>(i % 100);
    rec.clamped_u = rec.raw_u;
    recorder.RecordDecision(rec);
    if (i % 15 == 0) recorder.RecordGrant(rec.time, 1.0, 0.5);
    if (i % 15 == 7) recorder.RecordReplan(rec.time, 0.5, shares, 3, true);
  }
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - before;
  std::printf("flight recorder allocation guard: %llu allocations over %d "
              "decisions + interleaved grants/re-plans (chain=%llu)\n",
              static_cast<unsigned long long>(allocs), kOps,
              static_cast<unsigned long long>(recorder.chain_hash()));
  return allocs == 0;
}

// Fifth hard guard: the budget mailbox's post/receive handoff must be
// allocation-free. The mailbox is the per-boundary rendezvous of every
// fleet partition — 1e5 demand-post / grant-post / grant-receive
// cycles (the exact calls the work-stealing sweep makes at every
// arbitration boundary) must never touch the heap.
bool BudgetMailboxHotPathIsAllocationFree() {
  fleet::BudgetMailbox box;
  constexpr int kOps = 100000;
  fleet::BudgetMailbox::Demand d;
  fleet::BudgetMailbox::Grant g;
  fleet::BudgetMailbox::Grant received;
  uint64_t consumed = 0;
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kOps; ++i) {
    d.boundary = 900.0 * static_cast<double>(i);
    d.demand_usd = 1.0 + 0.001 * static_cast<double>(i % 100);
    d.spend_usd = 0.5;
    d.steps = static_cast<uint64_t>(i);
    box.PostDemand(d);
    g.boundary = d.boundary;
    g.demand_usd = d.demand_usd;
    g.grant_usd = 0.5 * d.demand_usd;
    box.PostGrant(g);
    if (box.TryReceiveGrant(static_cast<uint64_t>(i) + 1, &received)) {
      ++consumed;
    }
  }
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - before;
  std::printf("budget mailbox allocation guard: %llu allocations over %d "
              "demand/grant cycles (%llu received)\n",
              static_cast<unsigned long long>(allocs), kOps,
              static_cast<unsigned long long>(consumed));
  return allocs == 0 && consumed == kOps;
}

// Sixth hard guard: the work-stealing task loop must be allocation-free
// per task in steady state. A chain of N tasks (each spawning the next)
// keeps exactly one entry in the deque, so after the first push warms
// the deque's capacity every pop/execute/spawn cycle is pure pointer
// work. Comparing a long chain against a short one cancels the per-
// sweep setup cost (sweep state, deque array): the difference must be
// zero or the fleet's per-boundary task churn would allocate O(events).
bool TaskSweepSteadyStateIsAllocationFree() {
  exec::ThreadPool pool(1);  // Inline: deterministic, no worker wakeups.
  auto run_chain = [&pool](uint64_t length) -> uint64_t {
    uint64_t before = g_allocations.load(std::memory_order_relaxed);
    Status s = pool.RunTasks(
        {0},
        [length](uint64_t id, exec::ThreadPool::TaskContext& ctx) {
          if (id + 1 < length) ctx.Spawn(id + 1);
          return Status::OK();
        });
    if (!s.ok()) return ~uint64_t{0};
    return g_allocations.load(std::memory_order_relaxed) - before;
  };
  run_chain(16);  // Warm one-off lazy state (locale, TLS, ...).
  uint64_t short_allocs = run_chain(16);
  uint64_t long_allocs = run_chain(100000);
  std::printf("task sweep allocation guard: %llu allocations over a 100k "
              "spawn chain vs %llu over 16 (difference must be 0)\n",
              static_cast<unsigned long long>(long_allocs),
              static_cast<unsigned long long>(short_allocs));
  return long_allocs == short_allocs;
}

// Capacity-stability assertion: FleetManager::RunFor must reserve its
// report vector exactly once per sweep — steady-state report appends
// never reallocate, and repeated sweeps keep capacity == size. Guards
// the reserve sizing from silently rotting into growth-doubling.
bool FleetReportsCapacityIsStable() {
  fleet::FleetConfig config;
  config.fleet_budget_usd_per_hour = 2.0;
  config.arbitration_period_sec = 300.0;
  config.partition.workload_emit_period_sec = 10.0;
  config.partition.storm_tick_period_sec = 10.0;
  config.arbiter_solver.population_size = 16;
  config.arbiter_solver.generations = 8;
  config.partition.flow_solver.population_size = 8;
  config.partition.flow_solver.generations = 4;
  fleet::FleetManager manager(config);
  for (fleet::TenantConfig& t : fleet::MakeTenantFleet(3, 7)) {
    if (!manager.AddTenant(std::move(t)).ok()) return false;
  }
  if (!manager.Start().ok()) return false;
  for (int sweep = 0; sweep < 3; ++sweep) {
    if (!manager.RunFor(900.0).ok()) return false;
    if (manager.reports().capacity() != manager.reports().size()) {
      std::printf("fleet reports capacity guard: sweep %d capacity %zu != "
                  "size %zu\n",
                  sweep, manager.reports().capacity(),
                  manager.reports().size());
      return false;
    }
  }
  std::printf("fleet reports capacity guard: capacity == size (%zu) across "
              "3 sweeps\n",
              manager.reports().size());
  return true;
}

}  // namespace
}  // namespace flower

// BENCHMARK_MAIN, plus the allocation guards up front.
int main(int argc, char** argv) {
  if (!flower::MetricsHotPathIsAllocationFree()) {
    std::fprintf(stderr,
                 "FAIL: metrics hot path allocated; registry is not "
                 "allocation-free\n");
    return 1;
  }
  if (!flower::PlannerSteadyStateIsAllocationLean()) {
    std::fprintf(stderr,
                 "FAIL: NSGA-II generation loop allocated in steady state\n");
    return 1;
  }
  if (!flower::SimSteadyTickIsAllocationFree()) {
    std::fprintf(stderr,
                 "FAIL: steady-state simulation tick allocated\n");
    return 1;
  }
  if (!flower::FlightRecorderHotPathIsAllocationFree()) {
    std::fprintf(stderr,
                 "FAIL: flight recorder allocated on its hot path\n");
    return 1;
  }
  if (!flower::BudgetMailboxHotPathIsAllocationFree()) {
    std::fprintf(stderr,
                 "FAIL: budget mailbox allocated on its post/receive path\n");
    return 1;
  }
  if (!flower::TaskSweepSteadyStateIsAllocationFree()) {
    std::fprintf(stderr,
                 "FAIL: work-stealing task loop allocated in steady state\n");
    return 1;
  }
  if (!flower::FleetReportsCapacityIsStable()) {
    std::fprintf(stderr,
                 "FAIL: fleet report vector reallocated in steady state\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
