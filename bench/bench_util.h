#ifndef FLOWER_BENCH_BENCH_UTIL_H_
#define FLOWER_BENCH_BENCH_UTIL_H_

// Shared scenario builders for the paper-reproduction benchmark
// harness. Every bench binary prints the regenerated table/figure data
// to stdout, followed by a PASS/FAIL shape verdict against the paper's
// qualitative claims.

#include <iostream>
#include <memory>
#include <string>

#include "core/flow_builder.h"
#include "flow/flow.h"
#include "workload/arrival.h"

namespace flower::bench {

/// The canonical click-stream flow configuration used across benches:
/// m4.large-class workers, 60 s metric periods, 60 s sliding windows.
inline flow::FlowConfig CanonicalFlow() {
  flow::FlowConfig cfg;
  cfg.stream.name = "clickstream";
  cfg.stream.initial_shards = 2;
  cfg.stream.max_shards = 64;
  cfg.cluster.name = "storm";
  cfg.initial_workers = 2;
  cfg.instance_type = {"m4.large", 2, 1.0e6, 0.10};
  cfg.worker_boot_delay_sec = 90.0;
  cfg.table.name = "aggregates";
  cfg.table.initial_wcu = 100.0;
  cfg.table.max_wcu = 5000.0;
  cfg.window_sec = 60.0;
  cfg.slide_sec = 10.0;
  return cfg;
}

inline workload::ClickStreamConfig CanonicalWorkload() {
  workload::ClickStreamConfig cfg;
  cfg.num_users = 50000;
  cfg.num_urls = 500;
  cfg.url_zipf_skew = 1.1;
  cfg.generator_instances = 4;
  return cfg;
}

/// Prints a PASS/FAIL shape verdict line.
inline bool Verdict(const std::string& claim, bool ok) {
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << claim << "\n";
  return ok;
}

inline void Header(const std::string& title) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "================================================================\n";
}

}  // namespace flower::bench

#endif  // FLOWER_BENCH_BENCH_UTIL_H_
