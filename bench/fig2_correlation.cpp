// Reproduces paper Fig. 2: the data arrival rate at the ingestion
// layer (Kinesis) is strongly correlated (paper: coefficient = 0.95)
// with the CPU load at the analytics layer (Storm).
//
// Method: deploy the click-stream flow with *static* provisioning
// (observation run — elasticity off, as in the paper's measurement),
// drive it with a diurnal + bursty workload for 550 simulated minutes,
// sample both metrics per minute from the metric store, and compute the
// Pearson correlation.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace flower {
namespace {

int Run() {
  bench::Header(
      "FIG2  Ingestion arrival rate vs analytics CPU (paper Fig. 2)");

  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  flow::FlowConfig cfg = bench::CanonicalFlow();
  cfg.stream.initial_shards = 8;   // Static, ample for the peak.
  cfg.initial_workers = 24;        // Keeps CPU below saturation at peak.
  auto flow =
      flow::DataAnalyticsFlow::Create(&sim, &metrics, cfg).MoveValueOrDie();

  // Workload: a compressed "day" with two bursts, as in the paper's
  // 550-minute observation window.
  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(std::make_shared<workload::DiurnalArrival>(1400.0, 1100.0,
                                                          300.0 * kMinute));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 1500.0, 120.0 * kMinute, 30.0 * kMinute, 5.0 * kMinute));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 1200.0, 400.0 * kMinute, 20.0 * kMinute, 5.0 * kMinute));
  if (!flow->AttachWorkload(arrival, bench::CanonicalWorkload(), 2024).ok()) {
    return 1;
  }

  const double kHorizon = 550.0 * kMinute;
  sim.RunUntil(kHorizon);

  auto in_series = metrics.GetSeries(
      {"Flower/Kinesis", "IncomingRecords", "clickstream"});
  auto cpu_series =
      metrics.GetSeries({"Flower/Storm", "CpuUtilization", "storm"});
  if (!in_series.ok() || !cpu_series.ok()) {
    std::cerr << "metrics missing\n";
    return 1;
  }
  TimeSeries in_min = (*in_series)->BucketMean(0.0, kMinute);
  TimeSeries cpu_min = (*cpu_series)->BucketMean(0.0, kMinute);
  size_t n = std::min(in_min.size(), cpu_min.size());
  std::vector<double> records, cpu;
  for (size_t i = 0; i < n; ++i) {
    records.push_back(in_min[i].value);
    cpu.push_back(cpu_min[i].value);
  }

  // Fig. 2's two panels, as 10-minute aggregates.
  TablePrinter table({"t (min)", "input records (rec/min)", "CPU (%)"});
  for (size_t i = 0; i + 9 < n; i += 10) {
    double rec10 = 0.0, cpu10 = 0.0;
    for (size_t j = i; j < i + 10; ++j) {
      rec10 += records[j];
      cpu10 += cpu[j];
    }
    table.AddRow({std::to_string(i), TablePrinter::Num(rec10 / 10.0, 0),
                  TablePrinter::Num(cpu10 / 10.0, 1)});
  }
  table.Print(std::cout);

  std::cout << AsciiChart(records, 6, 72, "Ingestion layer (Kinesis): "
                                          "input records per minute");
  std::cout << AsciiChart(cpu, 6, 72,
                          "Analytics layer (Storm): CPU %");

  auto r = stats::PearsonCorrelation(records, cpu);
  if (!r.ok()) {
    std::cerr << r.status() << "\n";
    return 1;
  }
  auto lag = stats::CrossCorrelation(records, cpu, 10);
  std::cout << "\nSamples: " << n << " one-minute intervals\n";
  std::cout << "Pearson correlation (paper reports 0.95): "
            << TablePrinter::Num(*r, 3) << "\n";
  if (lag.ok()) {
    std::cout << "Best-lag correlation: " << TablePrinter::Num(lag->best_r, 3)
              << " at lag " << lag->best_lag << " min\n";
  }

  bool ok = bench::Verdict(
      "ingestion arrival strongly correlated with analytics CPU (r >= 0.9)",
      *r >= 0.9);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main() { return flower::Run(); }
