// Reproduces paper Fig. 6: the elasticity control and monitoring view —
// per-layer provisioned capacity and utilization traces while Flower's
// adaptive controllers react to workload dynamics (demo step 3).
//
// Scenario: the managed click-stream flow runs for 6 simulated hours
// under a diurnal load with a flash crowd; each layer's controller
// (adaptive gain, reference 60% utilization) resizes its resource. The
// bench prints the consolidated dashboard (the text stand-in for the
// Fig. 6 UI), the per-layer traces, and a monitoring-period ablation
// (the "monitoring period" knob the demo lets the audience adjust).

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "control/metrics.h"
#include "core/monitor.h"

namespace flower {
namespace {

struct RunResult {
  double mean_cpu = 0.0;
  double violation_pct = 0.0;
  int min_workers = 1 << 30;
  int max_workers = 0;
  double drop_rate = 0.0;
  std::vector<double> cpu_trace;
  std::vector<double> worker_trace;
  std::vector<double> shard_trace;
  std::vector<double> wcu_trace;
};

std::shared_ptr<workload::ArrivalProcess> Fig6Load() {
  auto arrival = std::make_shared<workload::CompositeArrival>();
  arrival->Add(std::make_shared<workload::DiurnalArrival>(900.0, 700.0,
                                                          4.0 * kHour));
  arrival->Add(std::make_shared<workload::FlashCrowdArrival>(
      0.0, 1800.0, 2.0 * kHour, 40.0 * kMinute, 5.0 * kMinute));
  return arrival;
}

Result<RunResult> RunManaged(double monitoring_period_sec, bool verbose) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  core::LayerElasticityConfig analytics;
  analytics.monitoring_period_sec = monitoring_period_sec;
  analytics.monitoring_window_sec = 2.0 * monitoring_period_sec;
  analytics.max_resource = 40.0;
  core::LayerElasticityConfig ingestion;
  ingestion.monitoring_period_sec = monitoring_period_sec;
  ingestion.monitoring_window_sec = 2.0 * monitoring_period_sec;
  ingestion.max_resource = 64.0;
  core::LayerElasticityConfig storage;
  storage.monitoring_period_sec = monitoring_period_sec;
  storage.monitoring_window_sec = 2.0 * monitoring_period_sec;
  storage.min_resource = 5.0;
  storage.max_resource = 2000.0;

  FLOWER_ASSIGN_OR_RETURN(
      core::ManagedFlow mf,
      core::FlowBuilder()
          .WithFlowConfig(bench::CanonicalFlow())
          .WithIngestion(ingestion)
          .WithAnalytics(analytics)
          .WithStorage(storage)
          .WithWorkload(Fig6Load(), bench::CanonicalWorkload())
          .WithSeed(1234)
          .Build(&sim, &metrics));

  const double kHorizon = 6.0 * kHour;
  RunResult out;
  // Sample capacity/CPU every minute for the trace.
  Status st = sim.SchedulePeriodic(kMinute, kMinute, [&] {
    out.worker_trace.push_back(
        static_cast<double>(mf.flow->cluster().worker_count()));
    out.shard_trace.push_back(
        static_cast<double>(mf.flow->stream().shard_count()));
    out.wcu_trace.push_back(mf.flow->table().provisioned_wcu());
    out.min_workers =
        std::min(out.min_workers, mf.flow->cluster().worker_count());
    out.max_workers =
        std::max(out.max_workers, mf.flow->cluster().worker_count());
    return sim.Now() < kHorizon;
  });
  FLOWER_RETURN_NOT_OK(st);
  sim.RunUntil(kHorizon);

  FLOWER_ASSIGN_OR_RETURN(const core::LayerControlState* analytics_state,
                          mf.manager->GetState(core::Layer::kAnalytics));
  // Skip the first 30 min (cold start) for quality metrics.
  FLOWER_ASSIGN_OR_RETURN(
      control::ControlQuality q,
      control::EvaluateControl(
          analytics_state->sensed.Window(30.0 * kMinute, kHorizon),
          analytics_state->actuations, 60.0, 15.0, kHorizon));
  out.mean_cpu = 60.0;  // Placeholder, replaced below.
  {
    auto vals = analytics_state->sensed.Window(30.0 * kMinute, kHorizon)
                    .Values();
    double sum = 0.0;
    for (double v : vals) sum += v;
    out.mean_cpu = vals.empty() ? 0.0 : sum / static_cast<double>(vals.size());
    out.cpu_trace = analytics_state->sensed.Values();
  }
  out.violation_pct = 100.0 * q.violation_fraction;
  out.drop_rate =
      mf.flow->generator()->total_generated() > 0
          ? static_cast<double>(mf.flow->generator()->total_dropped()) /
                static_cast<double>(mf.flow->generator()->total_generated())
          : 0.0;

  if (verbose) {
    std::cout << AsciiChart(out.cpu_trace, 7, 72,
                            "Analytics CPU % (reference 60%)");
    std::cout << AsciiChart(out.worker_trace, 7, 72,
                            "Analytics capacity: Storm worker VMs");
    std::cout << AsciiChart(out.shard_trace, 7, 72,
                            "Ingestion capacity: Kinesis shards");
    std::cout << AsciiChart(out.wcu_trace, 7, 72,
                            "Storage capacity: DynamoDB WCU");
    core::CrossPlatformMonitor monitor(&metrics);
    monitor.Watch({"Flower/Kinesis", "WriteUtilization", "clickstream"});
    monitor.Watch({"Flower/Kinesis", "ShardCount", "clickstream"});
    monitor.Watch({"Flower/Storm", "CpuUtilization", "storm"});
    monitor.Watch({"Flower/Storm", "WorkerCount", "storm"});
    monitor.Watch({"Flower/DynamoDB", "WriteUtilization", "aggregates"});
    monitor.Watch(
        {"Flower/DynamoDB", "ProvisionedWriteCapacityUnits", "aggregates"});
    std::cout << "\nAll-in-one-place dashboard over the last hour:\n";
    monitor.RenderDashboard(std::cout, kHorizon - kHour, kHorizon);
  }
  return out;
}

int Run() {
  bench::Header(
      "FIG6  Live elasticity control traces (paper Fig. 6 / demo step 3)");
  auto main_run = RunManaged(60.0, /*verbose=*/true);
  if (!main_run.ok()) {
    std::cerr << main_run.status() << "\n";
    return 1;
  }

  // Ablation: monitoring period (the wizard's knob).
  std::cout << "\nMonitoring-period ablation (analytics layer):\n";
  TablePrinter table({"period (s)", "mean CPU %", "out-of-band %",
                      "workers min..max", "drop rate %"});
  bool ok = true;
  for (double period : {30.0, 60.0, 120.0, 300.0}) {
    auto r = period == 60.0 ? main_run : RunManaged(period, false);
    if (!r.ok()) continue;
    table.AddRow({TablePrinter::Num(period, 0),
                  TablePrinter::Num(r->mean_cpu, 1),
                  TablePrinter::Num(r->violation_pct, 1),
                  std::to_string(r->min_workers) + ".." +
                      std::to_string(r->max_workers),
                  TablePrinter::Num(100.0 * r->drop_rate, 2)});
  }
  table.Print(std::cout);

  ok &= bench::Verdict(
      "mean analytics CPU within 20 points of the 60% reference",
      std::fabs(main_run->mean_cpu - 60.0) <= 20.0);
  ok &= bench::Verdict("capacity followed the load (workers varied >= 3x)",
                       main_run->max_workers >= 3 * main_run->min_workers);
  ok &= bench::Verdict("ingestion drop rate below 5%",
                       main_run->drop_rate < 0.05);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main() { return flower::Run(); }
