// Simulation-core throughput bench: quantifies the bucketed timer
// wheel (PR "simulation-core fast path") against the binary-heap
// calendar it replaced (kept as sim::RefCalendar). Three parts:
//
//   calendar   raw event throughput: a pool of self-rescheduling
//              actors drives each engine through an identical
//              schedule; reports events/s for the wheel and the heap
//              and the wheel's speedup.
//   flows      end-to-end sim rate with 1 / 4 / 16 full analytics
//              flows (Kinesis -> Storm -> DynamoDB, no metric store):
//              events/s and tuples/s of simulated work.
//   steady     allocations per steady-state cluster tick, measured
//              with a global operator-new hook after the flow has
//              warmed every ring buffer and wheel bucket.
//
// A determinism check drives both engines through a mixed schedule
// (same-instant ties, sub-tick delays, far-future overflow events) and
// compares the execution logs entry for entry — times compared
// bitwise. Results land in a JSON file (default BENCH_simcore.json).
// Full mode gates on the PR's acceptance criteria: wheel >= 5x the
// heap calendar and >= 1M events/s, zero allocations per steady tick,
// and an identical determinism verdict. --smoke shrinks the workloads,
// skips the gates, and always exits 0.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "flow/flow.h"
#include "sim/ref_calendar.h"
#include "sim/simulation.h"
#include "tools/flag_parser.h"
#include "workload/arrival.h"

// Allocation-counting hook (same pattern as perf_micro): global
// operator new bumps a relaxed counter so the steady-tick guard can
// count heap traffic inside RunUntil windows.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace flower {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------
// Part A: raw calendar throughput. kActors events are always pending;
// each firing reschedules itself with a delay drawn from a fixed table
// (sub-tick to multi-second, so buckets, ties and sorted-activation all
// get exercised). Identical code drives both engines.

constexpr size_t kActors = 262144;

template <typename Engine>
struct ActorLoad {
  Engine eng;
  uint64_t remaining = 0;
  double delays[64];

  explicit ActorLoad(uint64_t total_events) : remaining(total_events) {
    // Exactly representable delays spanning sub-tick (1/64 s ticks) to
    // ~4 s; repeats generate same-instant ties, and the spread keeps
    // tens of thousands of timers pending — the regime the wheel is
    // built for (the heap pays O(log n) per op here).
    for (size_t i = 0; i < 64; ++i) {
      delays[i] = 0.0625 * static_cast<double>((i % 61) + 1);
    }
  }

  void Fire(uint32_t idx) {
    if (remaining == 0) return;
    --remaining;
    (void)eng.ScheduleAfter(delays[(idx + static_cast<uint32_t>(remaining)) &
                                   63],
                            [this, idx] { Fire(idx); });
  }

  double Run() {  // Returns events/s.
    for (uint32_t i = 0; i < kActors; ++i) {
      (void)eng.ScheduleAt(delays[i & 63], [this, i] { Fire(i); });
    }
    auto t0 = std::chrono::steady_clock::now();
    while (eng.Step()) {
    }
    double sec = MsSince(t0) / 1000.0;
    return sec > 0.0 ? static_cast<double>(eng.events_executed()) / sec : 0.0;
  }
};

// ---------------------------------------------------------------------
// Determinism: both engines run a mixed schedule; the (id, time) logs
// must match entry for entry, times compared bitwise.

template <typename Engine>
std::vector<std::pair<int, double>> DeterminismLog() {
  Engine eng;
  std::vector<std::pair<int, double>> log;
  int next_id = 0;
  // Same-instant bursts on and off tick boundaries.
  for (int burst = 0; burst < 50; ++burst) {
    double t = 0.1 * static_cast<double>(burst % 7) + 0.25;
    for (int i = 0; i < 8; ++i) {
      int id = next_id++;
      (void)eng.ScheduleAt(t, [&log, &eng, id] {
        log.emplace_back(id, eng.Now());
        // Every fourth event spawns a zero-delay follow-up.
        if ((id & 3) == 0) {
          (void)eng.ScheduleAfter(0.0, [&log, &eng, id] {
            log.emplace_back(-id, eng.Now());
          });
        }
      });
    }
  }
  // Far-future events beyond the 64 s wheel horizon.
  for (int i = 0; i < 40; ++i) {
    int id = 100000 + i;
    double t = 70.0 + 3.3 * static_cast<double>(i % 13);
    (void)eng.ScheduleAt(t, [&log, &eng, id] {
      log.emplace_back(id, eng.Now());
    });
  }
  (void)eng.SchedulePeriodic(0.5, 0.5, [&log, &eng] {
    log.emplace_back(777, eng.Now());
    return eng.Now() < 90.0;
  });
  eng.RunUntil(10.0);
  eng.RunUntil(6.0);  // Past: no-op.
  while (eng.Step()) {
  }
  log.emplace_back(-999999, eng.Now());
  return log;
}

bool DeterminismVerdict() {
  auto wheel = DeterminismLog<sim::Simulation>();
  auto heap = DeterminismLog<sim::RefCalendar>();
  if (wheel.size() != heap.size()) return false;
  for (size_t i = 0; i < wheel.size(); ++i) {
    if (wheel[i].first != heap[i].first) return false;
    // Bitwise: the wheel stores exact doubles, so even the sign of
    // zero must survive.
    if (std::memcmp(&wheel[i].second, &heap[i].second, sizeof(double)) !=
        0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Part B: full flows. N independent analytics flows on one simulation,
// no metric store (the sim core is the subject, not the publishers).

struct FlowScaleResult {
  size_t flows = 0;
  double sim_seconds = 0.0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double tuples_per_sec = 0.0;
};

FlowScaleResult RunFlows(size_t n, double sim_seconds) {
  sim::Simulation sim;
  std::vector<std::unique_ptr<flow::DataAnalyticsFlow>> flows;
  for (size_t i = 0; i < n; ++i) {
    flow::FlowConfig cfg = bench::CanonicalFlow();
    cfg.name = "flow" + std::to_string(i);
    cfg.stream.name = "stream" + std::to_string(i);
    cfg.cluster.name = "cluster" + std::to_string(i);
    cfg.table.name = "table" + std::to_string(i);
    auto f = flow::DataAnalyticsFlow::Create(&sim, nullptr, cfg);
    FLOWER_CHECK(f.ok()) << f.status().ToString();
    workload::ClickStreamConfig wl = bench::CanonicalWorkload();
    Status st = (*f)->AttachWorkload(
        std::make_shared<workload::ConstantArrival>(300.0), wl,
        /*seed=*/1000 + i);
    FLOWER_CHECK(st.ok()) << st.ToString();
    flows.push_back(std::move(*f));
  }
  auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(sim_seconds);
  FlowScaleResult out;
  out.flows = n;
  out.sim_seconds = sim_seconds;
  out.wall_ms = MsSince(t0);
  double wall_sec = out.wall_ms / 1000.0;
  uint64_t tuples = 0;
  for (auto& f : flows) tuples += f->cluster().total_executed();
  if (wall_sec > 0.0) {
    out.events_per_sec =
        static_cast<double>(sim.events_executed()) / wall_sec;
    out.tuples_per_sec = static_cast<double>(tuples) / wall_sec;
  }
  return out;
}

// ---------------------------------------------------------------------
// Part C: allocations per steady-state tick. One flow, warmed past a
// full wheel rotation (64 s) and several slide boundaries so every
// ring, queue and bucket holds its high-water capacity; then a window
// of pure steady ticks (no slide boundary lands inside it) is
// measured. Boundary ticks run the window emission + DynamoDB persist
// path, which is deliberately outside the steady-state guarantee; the
// crossing window is reported separately, non-gating.

struct SteadyTickResult {
  uint64_t steady_ticks = 0;
  uint64_t steady_allocations = 0;
  uint64_t boundary_allocations = 0;  // 10 s window incl. one boundary.
};

SteadyTickResult MeasureSteadyTick() {
  sim::Simulation sim;
  flow::FlowConfig cfg = bench::CanonicalFlow();
  // Storage provisioned so a slide boundary's persist burst completes
  // inside the boundary tick; a throttled backlog would otherwise
  // drain DynamoDB writes (and their first-touch item nodes) into the
  // measured steady window.
  cfg.table.initial_wcu = 2000.0;
  auto f = flow::DataAnalyticsFlow::Create(&sim, nullptr, cfg);
  FLOWER_CHECK(f.ok()) << f.status().ToString();
  // 300 tuples/s is ~80% of the canonical 2-worker cluster's capacity
  // (5300 compute units per tuple across the pipeline, 2e6 units/s).
  // An overloaded cluster never reaches steady state: the window bolt
  // starves behind the backlog and keeps first-touching entities (and
  // their container capacities) far past any fixed warm-up horizon.
  Status st = (*f)->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(300.0),
      bench::CanonicalWorkload(), /*seed=*/7);
  FLOWER_CHECK(st.ok()) << st.ToString();
  // Warm-up: past a full wheel rotation (64 s) AND a full rotation of
  // the sliding window's bucket ring (8 slots x 10 s slide = 80 s), so
  // every wheel bucket, ring slot and tuple queue has its high-water
  // capacity; then measure a run of ticks with no slide boundary
  // inside (boundary-100's emission lands ~101-102 with tuple lag).
  sim.RunUntil(103.0);
  SteadyTickResult out;
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim.RunUntil(109.0);  // Ticks at 104..109; boundary-110 emits ~111.
  out.steady_allocations =
      g_allocations.load(std::memory_order_relaxed) - before;
  out.steady_ticks = 6;
  before = g_allocations.load(std::memory_order_relaxed);
  sim.RunUntil(119.0);  // Crosses the boundary-110 emission.
  out.boundary_allocations =
      g_allocations.load(std::memory_order_relaxed) - before;
  return out;
}

// ---------------------------------------------------------------------

void WriteJson(std::FILE* fp, bool smoke, double wheel_eps, double ref_eps,
               const std::vector<FlowScaleResult>& flows,
               const SteadyTickResult& tick, bool deterministic) {
  std::fprintf(fp, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(fp, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(fp,
               "  \"calendar\": {\"wheel_events_per_sec\": %.0f, "
               "\"ref_events_per_sec\": %.0f, \"speedup\": %.2f},\n",
               wheel_eps, ref_eps,
               ref_eps > 0.0 ? wheel_eps / ref_eps : 0.0);
  std::fprintf(fp, "  \"flows\": [\n");
  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowScaleResult& r = flows[i];
    std::fprintf(fp,
                 "    {\"flows\": %zu, \"sim_seconds\": %.0f, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"tuples_per_sec\": %.0f}%s\n",
                 r.flows, r.sim_seconds, r.wall_ms, r.events_per_sec,
                 r.tuples_per_sec, i + 1 < flows.size() ? "," : "");
  }
  std::fprintf(fp, "  ],\n");
  std::fprintf(fp,
               "  \"steady_tick\": {\"ticks\": %llu, \"allocations\": "
               "%llu, \"allocs_per_tick\": %.3f, "
               "\"boundary_window_allocations\": %llu},\n",
               static_cast<unsigned long long>(tick.steady_ticks),
               static_cast<unsigned long long>(tick.steady_allocations),
               tick.steady_ticks > 0
                   ? static_cast<double>(tick.steady_allocations) /
                         static_cast<double>(tick.steady_ticks)
                   : 0.0,
               static_cast<unsigned long long>(tick.boundary_allocations));
  std::fprintf(fp, "  \"determinism\": \"%s\"\n}\n",
               deterministic ? "identical" : "DIVERGED");
}

int Run(bool smoke, const std::string& out_path) {
  bench::Header(smoke ? "PERF  Simulation core (smoke): timer wheel vs "
                        "binary-heap calendar"
                      : "PERF  Simulation core: timer wheel vs binary-heap "
                        "calendar");

  const uint64_t calendar_events = smoke ? 400000 : 4000000;
  const double flow_sim_seconds = smoke ? 60.0 : 300.0;

  // Best-of-3, interleaved so transient machine load hits both engines
  // alike; max damps the run-to-run variance of a wall-clock measure.
  double wheel_eps = 0.0;
  double ref_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    wheel_eps =
        std::max(wheel_eps, ActorLoad<sim::Simulation>(calendar_events).Run());
    ref_eps =
        std::max(ref_eps, ActorLoad<sim::RefCalendar>(calendar_events).Run());
  }
  double speedup = ref_eps > 0.0 ? wheel_eps / ref_eps : 0.0;
  TablePrinter cal({"calendar", "events/s"});
  cal.AddRow({"timer wheel", TablePrinter::Num(wheel_eps, 0)});
  cal.AddRow({"binary heap (ref)", TablePrinter::Num(ref_eps, 0)});
  cal.Print(std::cout);
  std::cout << "speedup: " << TablePrinter::Num(speedup, 2) << "x\n\n";

  std::vector<FlowScaleResult> flows;
  TablePrinter ft({"flows", "sim s", "wall (ms)", "events/s", "tuples/s"});
  for (size_t n : {size_t{1}, size_t{4}, size_t{16}}) {
    flows.push_back(RunFlows(n, flow_sim_seconds));
    const FlowScaleResult& r = flows.back();
    ft.AddRow({std::to_string(r.flows), TablePrinter::Num(r.sim_seconds, 0),
               TablePrinter::Num(r.wall_ms, 1),
               TablePrinter::Num(r.events_per_sec, 0),
               TablePrinter::Num(r.tuples_per_sec, 0)});
  }
  ft.Print(std::cout);

  SteadyTickResult tick = MeasureSteadyTick();
  std::cout << "\nsteady-state sim ticks: "
            << tick.steady_allocations << " allocations over "
            << tick.steady_ticks << " ticks ("
            << tick.boundary_allocations
            << " in a 10 s window crossing a slide boundary)\n";

  bool deterministic = DeterminismVerdict();
  std::cout << "determinism vs heap calendar: "
            << (deterministic ? "identical" : "DIVERGED") << "\n\n";

  if (std::FILE* fp = std::fopen(out_path.c_str(), "w")) {
    WriteJson(fp, smoke, wheel_eps, ref_eps, flows, tick, deterministic);
    std::fclose(fp);
    std::cout << "wrote " << out_path << "\n";
  } else {
    std::cerr << "could not open " << out_path << " for writing\n";
    if (!smoke) return 1;
  }

  if (smoke) {
    std::cout << "[SKIP] smoke mode: gates not evaluated\n";
    return 0;
  }
  bool ok = true;
  ok &= bench::Verdict("timer wheel >= 5x heap calendar (got " +
                           TablePrinter::Num(speedup, 2) + "x)",
                       speedup >= 5.0);
  ok &= bench::Verdict("timer wheel >= 1M events/s (got " +
                           TablePrinter::Num(wheel_eps, 0) + ")",
                       wheel_eps >= 1.0e6);
  ok &= bench::Verdict(
      "zero allocations per steady-state tick (got " +
          std::to_string(tick.steady_allocations) + " over " +
          std::to_string(tick.steady_ticks) + " ticks)",
      tick.steady_allocations == 0);
  ok &= bench::Verdict("execution order identical to the heap calendar",
                       deterministic);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status()
              << "\nusage: sim_throughput [--smoke] "
                 "[--out=BENCH_simcore.json]\n";
    return 2;
  }
  bool smoke = flags->GetBool("smoke");
  std::string out = flags->GetString("out", "BENCH_simcore.json");
  return flower::Run(smoke, out);
}
