// Reproduces paper Eq. 2: the workload-dependency regression between
// the ingestion layer's write volume and the analytics layer's CPU,
// CPU ≈ 0.0002 * WriteCapacity + 4.8 (paper §3.1).
//
// Absolute coefficients depend on the testbed; the reproduced *shape*
// is: a simple linear model with positive slope and small positive
// intercept explains analytics CPU from ingestion write volume with
// high R². We additionally verify the paper's negative finding: no
// significant dependency between Kinesis write volume and DynamoDB
// write volume for the click-stream flow (the sliding-window
// aggregation decouples them).

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/dependency_analyzer.h"

namespace flower {
namespace {

int Run() {
  bench::Header("EQ2   Workload dependency regression (paper Eq. 2)");

  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  flow::FlowConfig cfg = bench::CanonicalFlow();
  cfg.stream.initial_shards = 8;
  cfg.initial_workers = 24;
  auto flow =
      flow::DataAnalyticsFlow::Create(&sim, &metrics, cfg).MoveValueOrDie();
  auto arrival = std::make_shared<workload::DiurnalArrival>(
      1400.0, 1100.0, 200.0 * kMinute);
  if (!flow->AttachWorkload(arrival, bench::CanonicalWorkload(), 99).ok()) {
    return 1;
  }
  const double kHorizon = 550.0 * kMinute;
  sim.RunUntil(kHorizon);

  core::DependencyAnalyzer analyzer;
  core::LayerMetric in{core::Layer::kIngestion,
                       {"Flower/Kinesis", "IncomingRecords", "clickstream"}};
  core::LayerMetric cpu{core::Layer::kAnalytics,
                        {"Flower/Storm", "CpuUtilization", "storm"}};
  core::LayerMetric ddb{
      core::Layer::kStorage,
      {"Flower/DynamoDB", "ConsumedWriteCapacityUnits", "aggregates"}};

  auto dep = analyzer.Analyze(metrics, in, cpu, 0.0, kHorizon);
  if (!dep.ok()) {
    std::cerr << dep.status() << "\n";
    return 1;
  }

  TablePrinter table({"dependency", "slope b1", "intercept b0", "r", "R2",
                      "significant"});
  auto add = [&](const core::Dependency& d) {
    table.AddRow({d.predictor.id.name + " -> " + d.response.id.name,
                  TablePrinter::Num(d.fit.slope, 6),
                  TablePrinter::Num(d.fit.intercept, 3),
                  TablePrinter::Num(d.fit.correlation, 3),
                  TablePrinter::Num(d.fit.r_squared, 3),
                  d.significant ? "yes" : "no"});
  };
  add(*dep);

  // The paper's negative finding: ingestion vs storage write volume.
  auto no_dep = analyzer.Analyze(metrics, in, ddb, 0.0, kHorizon);
  if (no_dep.ok()) add(*no_dep);
  table.Print(std::cout);

  std::cout << "\nFitted model (paper Eq. 2 shape: CPU = b1*Writes + b0):\n  "
            << dep->ToString() << "\n";
  std::cout << "Paper's example: CPU ~= 0.0002 * WriteCapacity + 4.8\n";

  bool ok = true;
  ok &= bench::Verdict("ingestion->analytics fit is significant (|r| >= 0.7)",
                       dep->significant);
  ok &= bench::Verdict("slope positive, small intercept (0..30% CPU)",
                       dep->fit.slope > 0.0 && dep->fit.intercept > -5.0 &&
                           dep->fit.intercept < 30.0);
  ok &= bench::Verdict("R2 >= 0.8 (linear model explains the coupling)",
                       dep->fit.r_squared >= 0.8);
  if (no_dep.ok()) {
    ok &= bench::Verdict(
        "no significant ingestion->storage write dependency (paper §3.1)",
        !no_dep->significant);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main() { return flower::Run(); }
