// Planner throughput bench: quantifies the incremental-planning
// machinery (PR "warm-started incremental planning") on the canonical
// 24-window day-ahead horizon. Four solver modes are timed at several
// thread counts:
//
//   cold        full NSGA-II run per window (the pre-PR behavior)
//   stall       cold + convergence early-exit
//   warm        window k seeds window k+1's initial population
//   warm_stall  both — the intended production configuration
//
// Thread counts apply to the *solver* (window-level threading stays at
// 1 everywhere) so warm chains — which are inherently sequential across
// windows — compare apples-to-apples against cold runs. Results land in
// a JSON file (default BENCH_planner.json) so future PRs have a perf
// trajectory. Full mode gates on the PR's acceptance criteria:
// warm+stall is >= 3x faster than cold at the same thread count, and
// every warm window's front hypervolume stays within 1% of cold's.
// --smoke shrinks the horizon, skips the gates, and always exits 0.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/time_series.h"
#include "common/units.h"
#include "core/windowed_share.h"
#include "opt/pareto.h"
#include "tools/flag_parser.h"

namespace flower {
namespace {

// Day-ahead diurnal rate forecast, one sample per 10 minutes.
TimeSeries DiurnalForecast(double horizon_sec) {
  TimeSeries out("rate-forecast");
  const double step = 10.0 * kMinute;
  for (double t = 0.0; t < horizon_sec; t += step) {
    double rate =
        1200.0 + 900.0 * std::sin(2.0 * M_PI * (t - 6.0 * kHour) / kDay);
    out.AppendUnchecked(t, std::max(50.0, rate));
  }
  return out;
}

core::ResourceShareRequest BaseRequest() {
  core::ResourceShareRequest base;
  base.hourly_budget_usd = 4.0;
  pricing::PriceBook book;
  base.SetPricesFrom(book);
  base.bounds[0] = {1.0, 64.0};
  base.bounds[1] = {1.0, 40.0};
  base.bounds[2] = {1.0, 4000.0};
  base.constraints.push_back(core::LinearConstraint::AtMost(
      core::Layer::kIngestion, 2.0, core::Layer::kStorage, -1.0, 0.0,
      "2*shards <= wcu"));
  return base;
}

struct ModeSpec {
  const char* name;
  bool warm;
  size_t stall;
};

struct RunResult {
  std::string mode;
  size_t threads = 0;
  double wall_ms = 0.0;
  size_t windows = 0;
  size_t evaluations = 0;
  size_t early_exits = 0;
  /// Per-window front hypervolume over the three share objectives
  /// (reference point at the origin); NaN for skipped windows.
  std::vector<double> hv;
  /// Per-window Pareto-front sizes (carry-over merging can push warm
  /// fronts well past the population size).
  std::vector<size_t> front_n;
};

double FrontHypervolume(const std::vector<core::ProvisioningPlan>& front) {
  if (front.empty()) return std::nan("");
  std::vector<std::vector<double>> points;
  points.reserve(front.size());
  for (const core::ProvisioningPlan& p : front) {
    points.push_back({p.shares[0], p.shares[1], p.shares[2]});
  }
  return opt::Hypervolume3D(points, 0.0, 0.0, 0.0);
}

Result<RunResult> RunMode(const ModeSpec& mode, size_t threads,
                          const TimeSeries& forecast, size_t generations) {
  opt::Nsga2Config solver;
  solver.population_size = 80;
  solver.generations = generations;
  solver.num_threads = threads;
  core::IncrementalPlanning inc;
  inc.warm_start = mode.warm;
  inc.stall_generations = mode.stall;
  core::WindowedShareAnalyzer analyzer(BaseRequest(), core::DemandModel{},
                                       solver, /*num_threads=*/1, inc);
  auto t0 = std::chrono::steady_clock::now();
  auto plans = analyzer.PlanHorizon(forecast, 1.0 * kHour);
  auto t1 = std::chrono::steady_clock::now();
  FLOWER_RETURN_NOT_OK(plans.status());
  RunResult out;
  out.mode = mode.name;
  out.threads = threads;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.windows = plans->size();
  for (const core::WindowPlan& wp : *plans) {
    out.evaluations += wp.evaluations;
    if (wp.early_exit) ++out.early_exits;
    out.hv.push_back(FrontHypervolume(wp.pareto_plans));
    out.front_n.push_back(wp.pareto_plans.size());
  }
  return out;
}

void WriteJson(std::FILE* f, const std::vector<RunResult>& runs, bool smoke,
               size_t windows) {
  std::fprintf(f, "{\n  \"bench\": \"planner_throughput\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n  \"windows\": %zu,\n",
               smoke ? "true" : "false", windows);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    double hv_min = std::nan(""), hv_mean = 0.0;
    size_t hv_n = 0;
    for (double h : r.hv) {
      if (std::isnan(h)) continue;
      hv_min = std::isnan(hv_min) ? h : std::min(hv_min, h);
      hv_mean += h;
      ++hv_n;
    }
    if (hv_n > 0) hv_mean /= static_cast<double>(hv_n);
    size_t front_points = 0;
    for (size_t n : r.front_n) front_points += n;
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %zu, \"wall_ms\": %.3f, "
                 "\"windows\": %zu, \"evaluations\": %zu, "
                 "\"early_exits\": %zu, \"front_points\": %zu, "
                 "\"hv_min\": %.6g, \"hv_mean\": %.6g}%s\n",
                 r.mode.c_str(), r.threads, r.wall_ms, r.windows,
                 r.evaluations, r.early_exits, front_points,
                 hv_n ? hv_min : 0.0, hv_n ? hv_mean : 0.0,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Run(size_t max_threads, bool smoke, const std::string& out_path) {
  bench::Header(smoke
                    ? "PERF  Planner throughput (smoke): warm starts + "
                      "early-exit"
                    : "PERF  Planner throughput: warm starts + early-exit vs "
                      "cold solves");

  const double horizon = smoke ? 6.0 * kHour : 24.0 * kHour;
  const size_t generations = smoke ? 30 : 120;
  const size_t stall = 6;
  TimeSeries forecast = DiurnalForecast(horizon);

  std::vector<size_t> thread_counts{1};
  if (!smoke) {
    if (max_threads >= 4) thread_counts.push_back(4);
    if (max_threads > 4) thread_counts.push_back(max_threads);
  } else if (max_threads > 1) {
    thread_counts.push_back(std::min<size_t>(max_threads, 4));
  }

  const ModeSpec modes[] = {
      {"cold", false, 0},
      {"stall", false, stall},
      {"warm", true, 0},
      {"warm_stall", true, stall},
  };

  std::vector<RunResult> runs;
  TablePrinter table({"mode", "threads", "wall (ms)", "evaluations",
                      "early exits", "min front HV"});
  for (size_t threads : thread_counts) {
    for (const ModeSpec& mode : modes) {
      auto res = RunMode(mode, threads, forecast, generations);
      if (!res.ok()) {
        std::cerr << res.status() << "\n";
        return smoke ? 0 : 1;
      }
      double hv_min = std::nan("");
      for (double h : res->hv) {
        if (!std::isnan(h)) hv_min = std::isnan(hv_min) ? h : std::min(hv_min, h);
      }
      table.AddRow({res->mode, std::to_string(res->threads),
                    TablePrinter::Num(res->wall_ms, 1),
                    std::to_string(res->evaluations),
                    std::to_string(res->early_exits),
                    TablePrinter::Num(std::isnan(hv_min) ? 0.0 : hv_min, 0)});
      runs.push_back(std::move(*res));
    }
  }
  table.Print(std::cout);

  size_t windows = runs.empty() ? 0 : runs.front().windows;
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    WriteJson(f, runs, smoke, windows);
    std::fclose(f);
    std::cout << "\nwrote " << out_path << "\n";
  } else {
    std::cerr << "could not open " << out_path << " for writing\n";
    if (!smoke) return 1;
  }

  if (smoke) {
    std::cout << "[SKIP] smoke mode: gates not evaluated\n";
    return 0;
  }

  // --- Gates. Look up cold and warm_stall per thread count.
  auto find = [&](const char* mode, size_t threads) -> const RunResult* {
    for (const RunResult& r : runs) {
      if (r.mode == mode && r.threads == threads) return &r;
    }
    return nullptr;
  };
  bool ok = true;
  for (size_t threads : thread_counts) {
    const RunResult* cold = find("cold", threads);
    const RunResult* ws = find("warm_stall", threads);
    if (cold == nullptr || ws == nullptr) continue;
    double speedup = ws->wall_ms > 0.0 ? cold->wall_ms / ws->wall_ms : 0.0;
    ok &= bench::Verdict(
        "warm+early-exit >= 3x faster than cold at " +
            std::to_string(threads) + " thread(s) (got " +
            TablePrinter::Num(speedup, 2) + "x)",
        speedup >= 3.0);
    // Front quality: every warm window's hypervolume within 1% of cold.
    bool hv_ok = ws->hv.size() == cold->hv.size();
    double worst = 1.0;
    for (size_t w = 0; hv_ok && w < ws->hv.size(); ++w) {
      if (std::isnan(cold->hv[w]) || std::isnan(ws->hv[w])) continue;
      if (cold->hv[w] <= 0.0) continue;
      double ratio = ws->hv[w] / cold->hv[w];
      if (ratio < 0.995) {
        std::printf("  window %zu: cold HV %.6g (%zu points), warm_stall HV "
                    "%.6g (%zu points), ratio %.4f\n",
                    w, cold->hv[w], cold->front_n[w], ws->hv[w],
                    ws->front_n[w], ratio);
      }
      worst = std::min(worst, ratio);
      if (ratio < 0.99) hv_ok = false;
    }
    ok &= bench::Verdict(
        "every warm window's front HV >= cold - 1% at " +
            std::to_string(threads) + " thread(s) (worst ratio " +
            TablePrinter::Num(worst, 4) + ")",
        hv_ok);
    const RunResult* warm = find("warm", threads);
    if (warm != nullptr) {
      ok &= bench::Verdict(
          "warm start alone does not increase evaluations at " +
              std::to_string(threads) + " thread(s)",
          warm->evaluations <= cold->evaluations);
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status()
              << "\nusage: planner_throughput [--threads=N] [--smoke] "
                 "[--out=BENCH_planner.json]\n";
    return 2;
  }
  auto threads = flags->GetInt("threads", 0);
  if (!threads.ok() || *threads < 0) {
    std::cerr << "--threads expects a non-negative integer\n";
    return 2;
  }
  size_t n = static_cast<size_t>(*threads);
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  bool smoke = flags->GetBool("smoke");
  std::string out = flags->GetString("out", "BENCH_planner.json");
  return flower::Run(n, smoke, out);
}
