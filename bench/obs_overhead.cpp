// Observability-plane overhead bench (PR "fleet-ready observability
// plane"): proves the causal-span / rollup machinery is free when off
// and cheap when on. Four parts:
//
//   baseline    in-process regeneration of the BENCH_simcore single-
//               flow measurement (unmanaged analytics flow, events/s).
//               Regenerated rather than read from the committed JSON so
//               the comparison is apples-to-apples on this machine.
//   disabled    the same flow with the full obs plane constructed and
//               in the event path — telemetry hub, scoped registry,
//               rollup store ticking at 1 Hz, span collector called
//               every tick — but spans DISABLED. Gates: events/s within
//               1% of baseline, zero heap allocations per steady tick.
//   enabled     a managed flow (three control loops) with spans off vs
//               on; gates the events/s overhead of recording at <= 5%.
//               Plus a tight-loop microbench of SpanCollector::Emit,
//               gated at >= 1M spans/s.
//   determinism the managed flow + NSGA-II re-planning at 1 / 4 / 16
//               solver threads with spans on; the decision CSV and the
//               exported span JSON must be byte-identical across thread
//               counts (span ids are sequential sim-thread state, so
//               any nondeterminism shows up as a byte diff).
//
// Results land in a JSON file (default BENCH_obs.json). --smoke
// shrinks the workloads, skips the gates, and always exits 0.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/flow_builder.h"
#include "flow/flow.h"
#include "obs/exporters.h"
#include "obs/rollup.h"
#include "obs/scoped_registry.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"
#include "tools/flag_parser.h"
#include "workload/arrival.h"

// Allocation-counting hook (same pattern as sim_throughput): global
// operator new bumps a relaxed counter so the steady-tick guard can
// count heap traffic inside RunUntil windows.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace flower {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------
// Part A/B: the unmanaged single flow from sim_throughput, bare and
// with the obs plane attached-but-disabled.

struct FlowRun {
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
};

FlowRun RunBareFlow(double sim_seconds) {
  sim::Simulation sim;
  auto f = flow::DataAnalyticsFlow::Create(&sim, nullptr,
                                           bench::CanonicalFlow());
  FLOWER_CHECK(f.ok()) << f.status().ToString();
  Status st = (*f)->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(300.0),
      bench::CanonicalWorkload(), /*seed=*/7);
  FLOWER_CHECK(st.ok()) << st.ToString();
  auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(sim_seconds);
  FlowRun out;
  out.wall_ms = MsSince(t0);
  double sec = out.wall_ms / 1000.0;
  if (sec > 0.0) {
    out.events_per_sec = static_cast<double>(sim.events_executed()) / sec;
  }
  return out;
}

/// The obs plane a fleet deployment would attach per flow: a scoped
/// registry with per-layer children, a rollup store downsampling a few
/// series at 1 Hz, and the span collector sitting disabled in the
/// per-tick path. The instruments are fed from the periodic callback so
/// the rollup has real deltas to fold — the point is that none of this
/// perturbs the simulation it rides on.
struct DisabledObsPlane {
  obs::Telemetry telemetry;
  obs::ScopedRegistry scoped;
  std::unique_ptr<obs::RollupStore> rollups;
  obs::Counter* ticks = nullptr;
  obs::Gauge* depth = nullptr;
  obs::Histogram* latency = nullptr;
  obs::Counter* scoped_ticks = nullptr;
  uint64_t n = 0;

  DisabledObsPlane() {
    ticks = telemetry.metrics().GetCounter("plane.ticks");
    depth = telemetry.metrics().GetGauge("plane.depth");
    latency = telemetry.metrics().GetHistogram("plane.latency");
    scoped_ticks =
        scoped.Child("analytics")->metrics().GetCounter("scope.ticks");
    rollups = std::make_unique<obs::RollupStore>(&telemetry.metrics());
    rollups->TrackCounter("plane.ticks");
    rollups->TrackGauge("plane.depth");
    rollups->TrackHistogram("plane.latency");
  }

  void Tick(SimTime now) {
    ++n;
    ticks->Increment();
    depth->Set(static_cast<double>(n % 100));
    latency->Record(0.001 * static_cast<double>(n % 250));
    scoped_ticks->Increment();
    // The disabled span path: one branch, returns 0.
    obs::SpanId id = telemetry.spans().Begin(
        obs::SpanKind::kSense, "bench", now, obs::kTracePid, 0);
    telemetry.spans().End(id, now);
    rollups->Tick(now);
  }
};

struct DisabledRun {
  FlowRun run;
  uint64_t steady_ticks = 0;
  uint64_t steady_allocations = 0;
};

DisabledRun RunDisabledFlow(double sim_seconds) {
  sim::Simulation sim;
  auto f = flow::DataAnalyticsFlow::Create(&sim, nullptr,
                                           bench::CanonicalFlow());
  FLOWER_CHECK(f.ok()) << f.status().ToString();
  Status st = (*f)->AttachWorkload(
      std::make_shared<workload::ConstantArrival>(300.0),
      bench::CanonicalWorkload(), /*seed=*/7);
  FLOWER_CHECK(st.ok()) << st.ToString();
  DisabledObsPlane plane;
  (void)sim.SchedulePeriodic(1.0, 1.0, [&plane, &sim] {
    plane.Tick(sim.Now());
    return true;
  });
  auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(sim_seconds);
  DisabledRun out;
  out.run.wall_ms = MsSince(t0);
  double sec = out.run.wall_ms / 1000.0;
  if (sec > 0.0) {
    out.run.events_per_sec =
        static_cast<double>(sim.events_executed()) / sec;
  }
  // Steady-tick allocation window, mirroring sim_throughput: warmed
  // past the wheel rotation and the window-ring rotation, measured
  // between slide boundaries. The rollup's sparse snapshot and tier
  // rings are warm after the first few ticks, so any per-tick heap
  // traffic from the obs plane lands in this window.
  sim.RunUntil(std::max(sim_seconds, 103.0));
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim.RunUntil(std::max(sim_seconds, 103.0) + 6.0);
  out.steady_allocations =
      g_allocations.load(std::memory_order_relaxed) - before;
  out.steady_ticks = 6;
  return out;
}

// ---------------------------------------------------------------------
// Part C: managed flow, spans off vs on; plus the Emit microbench.

struct ManagedRun {
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  uint64_t spans_recorded = 0;
  std::string decisions_csv;
  std::string spans_json;
};

ManagedRun RunManagedFlow(double sim_seconds, bool spans_enabled,
                          size_t planner_threads, bool with_replanning,
                          bool serialize) {
  obs::Telemetry telemetry;
  if (spans_enabled) telemetry.spans().set_enabled(true);
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  auto managed =
      core::FlowBuilder()
          .WithWorkload(std::make_shared<workload::DiurnalArrival>(
              800.0, 600.0, 2.0 * kHour))
          .WithSeed(7)
          .WithTelemetry(&telemetry)
          .Build(&sim, &metrics);
  FLOWER_CHECK(managed.ok()) << managed.status().ToString();
  if (with_replanning) {
    core::ReplanConfig rc;
    rc.solver.population_size = 32;
    rc.solver.generations = 16;
    rc.solver.seed = 11;
    rc.solver.num_threads = planner_threads;
    rc.solver.on_generation =
        obs::MakeNsga2Observer(&telemetry, "replanner", /*anchor=*/0.0);
    rc.period_sec = 600.0;
    rc.start_delay_sec = 60.0;
    Status st = managed->manager->EnableReplanning(rc);
    FLOWER_CHECK(st.ok()) << st.ToString();
  }
  auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(sim_seconds);
  ManagedRun out;
  out.wall_ms = MsSince(t0);
  double sec = out.wall_ms / 1000.0;
  if (sec > 0.0) {
    out.events_per_sec = static_cast<double>(sim.events_executed()) / sec;
  }
  out.spans_recorded = telemetry.spans().total_started();
  if (serialize) {
    std::ostringstream csv;
    obs::WriteDecisionCsv(csv, telemetry.decisions().Snapshot());
    out.decisions_csv = csv.str();
    std::ostringstream spans;
    obs::WriteSpansChromeTrace(spans, telemetry.spans(), &telemetry.trace());
    out.spans_json = spans.str();
  }
  return out;
}

struct SpanRate {
  double emit_per_sec = 0.0;      ///< Enabled Begin+End pairs.
  double disabled_per_sec = 0.0;  ///< Disabled calls (the off branch).
};

SpanRate MeasureSpanRate(uint64_t n) {
  SpanRate out;
  {
    obs::SpanCollector spans(1 << 16);
    spans.set_enabled(true);
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < n; ++i) {
      obs::SpanId id =
          spans.Begin(obs::SpanKind::kSense, "loop",
                      static_cast<SimTime>(i), obs::kTracePid, 1,
                      /*parent=*/i, /*follows=*/0);
      spans.End(id, static_cast<SimTime>(i) + 0.5,
                static_cast<double>(i & 255));
    }
    double sec = MsSince(t0) / 1000.0;
    FLOWER_CHECK(spans.total_started() == n) << "span count mismatch";
    if (sec > 0.0) out.emit_per_sec = static_cast<double>(n) / sec;
  }
  {
    obs::SpanCollector spans(1 << 16);  // Disabled: never enabled.
    auto t0 = std::chrono::steady_clock::now();
    uint64_t acc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += spans.Begin(obs::SpanKind::kSense, "loop",
                         static_cast<SimTime>(i), obs::kTracePid, 1);
    }
    double sec = MsSince(t0) / 1000.0;
    FLOWER_CHECK(acc == 0) << "disabled Begin must return 0";
    if (sec > 0.0) out.disabled_per_sec = static_cast<double>(n) / sec;
  }
  return out;
}

// ---------------------------------------------------------------------

void WriteJson(std::FILE* fp, bool smoke, double base_eps,
               const DisabledRun& disabled, double disabled_delta_pct,
               double off_eps, double on_eps, double overhead_pct,
               uint64_t spans_recorded, const SpanRate& rate,
               const std::vector<size_t>& threads, bool deterministic) {
  std::fprintf(fp, "{\n  \"bench\": \"obs_overhead\",\n");
  std::fprintf(fp, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(fp, "  \"simcore_baseline_events_per_sec\": %.0f,\n",
               base_eps);
  std::fprintf(fp,
               "  \"disabled\": {\"events_per_sec\": %.0f, "
               "\"delta_pct\": %.2f, \"steady_ticks\": %llu, "
               "\"steady_allocations\": %llu},\n",
               disabled.run.events_per_sec, disabled_delta_pct,
               static_cast<unsigned long long>(disabled.steady_ticks),
               static_cast<unsigned long long>(disabled.steady_allocations));
  std::fprintf(fp,
               "  \"enabled\": {\"off_events_per_sec\": %.0f, "
               "\"on_events_per_sec\": %.0f, \"overhead_pct\": %.2f, "
               "\"spans_recorded\": %llu},\n",
               off_eps, on_eps, overhead_pct,
               static_cast<unsigned long long>(spans_recorded));
  std::fprintf(fp,
               "  \"span_rate\": {\"emit_per_sec\": %.0f, "
               "\"disabled_calls_per_sec\": %.0f},\n",
               rate.emit_per_sec, rate.disabled_per_sec);
  std::fprintf(fp, "  \"determinism\": {\"threads\": [");
  for (size_t i = 0; i < threads.size(); ++i) {
    std::fprintf(fp, "%zu%s", threads[i],
                 i + 1 < threads.size() ? ", " : "");
  }
  std::fprintf(fp, "], \"verdict\": \"%s\"}\n}\n",
               deterministic ? "identical" : "DIVERGED");
}

int Run(bool smoke, const std::string& out_path) {
  bench::Header(smoke ? "PERF  Observability plane (smoke): spans + "
                        "rollups overhead"
                      : "PERF  Observability plane: spans + rollups "
                        "overhead");

  const double flow_sim_seconds = smoke ? 60.0 : 300.0;
  const double managed_sim_seconds = smoke ? 900.0 : 7200.0;
  const double determinism_sim_seconds = smoke ? 900.0 : 1800.0;
  const uint64_t span_loop = smoke ? 400000 : 4000000;

  // Best-of-3, interleaved so transient machine load hits both sides
  // alike; max damps wall-clock variance.
  double base_eps = 0.0;
  DisabledRun disabled;
  for (int rep = 0; rep < 3; ++rep) {
    base_eps = std::max(base_eps, RunBareFlow(flow_sim_seconds).events_per_sec);
    DisabledRun d = RunDisabledFlow(flow_sim_seconds);
    // Best events/s across reps; the allocation count is a property of
    // the code path, not the machine, so every rep must report the same
    // number — keep the worst so a flaky nonzero count cannot hide.
    if (rep == 0 || d.run.events_per_sec > disabled.run.events_per_sec) {
      uint64_t worst =
          rep == 0 ? d.steady_allocations
                   : std::max(disabled.steady_allocations,
                              d.steady_allocations);
      disabled = d;
      disabled.steady_allocations = worst;
    } else {
      disabled.steady_allocations =
          std::max(disabled.steady_allocations, d.steady_allocations);
    }
  }
  double disabled_delta_pct =
      base_eps > 0.0
          ? 100.0 * (base_eps - disabled.run.events_per_sec) / base_eps
          : 0.0;
  TablePrinter bare({"configuration", "events/s"});
  bare.AddRow({"bare flow (simcore baseline)",
               TablePrinter::Num(base_eps, 0)});
  bare.AddRow({"obs plane attached, spans disabled",
               TablePrinter::Num(disabled.run.events_per_sec, 0)});
  bare.Print(std::cout);
  std::cout << "disabled delta: " << TablePrinter::Num(disabled_delta_pct, 2)
            << "% | steady-tick allocations: "
            << disabled.steady_allocations << " over "
            << disabled.steady_ticks << " ticks\n\n";

  double off_eps = 0.0;
  double on_eps = 0.0;
  uint64_t spans_recorded = 0;
  for (int rep = 0; rep < 3; ++rep) {
    off_eps = std::max(
        off_eps, RunManagedFlow(managed_sim_seconds, /*spans=*/false,
                                /*threads=*/1, /*replan=*/false,
                                /*serialize=*/false)
                     .events_per_sec);
    ManagedRun on = RunManagedFlow(managed_sim_seconds, /*spans=*/true,
                                   /*threads=*/1, /*replan=*/false,
                                   /*serialize=*/false);
    on_eps = std::max(on_eps, on.events_per_sec);
    spans_recorded = on.spans_recorded;
  }
  double overhead_pct =
      off_eps > 0.0 ? 100.0 * (off_eps - on_eps) / off_eps : 0.0;
  TablePrinter managed({"managed flow", "events/s"});
  managed.AddRow({"spans off", TablePrinter::Num(off_eps, 0)});
  managed.AddRow({"spans on", TablePrinter::Num(on_eps, 0)});
  managed.Print(std::cout);
  std::cout << "span overhead: " << TablePrinter::Num(overhead_pct, 2)
            << "% (" << spans_recorded << " spans recorded)\n\n";

  SpanRate rate = MeasureSpanRate(span_loop);
  std::cout << "SpanCollector Begin+End: "
            << TablePrinter::Num(rate.emit_per_sec, 0)
            << " spans/s enabled, "
            << TablePrinter::Num(rate.disabled_per_sec, 0)
            << " calls/s disabled\n\n";

  const std::vector<size_t> threads = {1, 4, 16};
  bool deterministic = true;
  std::string ref_csv;
  std::string ref_spans;
  for (size_t i = 0; i < threads.size(); ++i) {
    ManagedRun r = RunManagedFlow(determinism_sim_seconds, /*spans=*/true,
                                  threads[i], /*replan=*/true,
                                  /*serialize=*/true);
    if (i == 0) {
      ref_csv = std::move(r.decisions_csv);
      ref_spans = std::move(r.spans_json);
      FLOWER_CHECK(!ref_csv.empty() && !ref_spans.empty())
          << "determinism run produced no output";
    } else {
      deterministic &= r.decisions_csv == ref_csv;
      deterministic &= r.spans_json == ref_spans;
    }
  }
  std::cout << "determinism at 1/4/16 planner threads: "
            << (deterministic ? "byte-identical" : "DIVERGED") << "\n\n";

  if (std::FILE* fp = std::fopen(out_path.c_str(), "w")) {
    WriteJson(fp, smoke, base_eps, disabled, disabled_delta_pct, off_eps,
              on_eps, overhead_pct, spans_recorded, rate, threads,
              deterministic);
    std::fclose(fp);
    std::cout << "wrote " << out_path << "\n";
  } else {
    std::cerr << "could not open " << out_path << " for writing\n";
    if (!smoke) return 1;
  }

  if (smoke) {
    std::cout << "[SKIP] smoke mode: gates not evaluated\n";
    return 0;
  }
  bool ok = true;
  ok &= bench::Verdict("disabled obs plane within 1% of simcore baseline "
                       "(got " + TablePrinter::Num(disabled_delta_pct, 2) +
                           "%)",
                       disabled_delta_pct <= 1.0);
  ok &= bench::Verdict(
      "zero allocations per steady tick with obs plane attached (got " +
          std::to_string(disabled.steady_allocations) + ")",
      disabled.steady_allocations == 0);
  ok &= bench::Verdict("span recording overhead <= 5% (got " +
                           TablePrinter::Num(overhead_pct, 2) + "%)",
                       overhead_pct <= 5.0);
  ok &= bench::Verdict("span Begin+End >= 1M spans/s (got " +
                           TablePrinter::Num(rate.emit_per_sec, 0) + ")",
                       rate.emit_per_sec >= 1.0e6);
  ok &= bench::Verdict("event order byte-identical at 1/4/16 threads",
                       deterministic);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status()
              << "\nusage: obs_overhead [--smoke] [--out=BENCH_obs.json]\n";
    return 2;
  }
  bool smoke = flags->GetBool("smoke");
  std::string out = flags->GetString("out", "BENCH_obs.json");
  return flower::Run(smoke, out);
}
