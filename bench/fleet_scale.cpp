// Fleet-scale bench: runs O(1000) independent tenant flows under the
// FleetManager's hierarchical budget arbitration and measures
//
//   scale    flows/sec of simulated control per thread count: the same
//            fleet advanced at 1 / 4 / 16 threads, reporting wall time,
//            flow-seconds of simulation per wall second, control steps,
//            and the work-stealing schedule counters (steals, mailbox
//            waits, busy/wall overlap).
//   barrier  the same homogeneous fleet under the legacy lock-step
//            sweep: its digest must match the work-stealing one byte
//            for byte, and its scaling curve is the PERF5 baseline.
//   hetero   the fleet again with ApplyPeriodJitter spreading tenant
//            arbitration horizons over 900/450/300/225 s: boundaries
//            only partially overlap, which is where work stealing beats
//            the barrier. The heterogeneous 4-thread speedup is the
//            bench's headline metric.
//   merge    a determinism verdict: the merged control digest (every
//            arbiter split plus every partition's decision log) must be
//            byte-identical across thread counts, homogeneous and
//            heterogeneous alike.
//   budget   conservation: at every instant the sum of simultaneously
//            active grants stays within the fleet budget.
//
// Full-mode gates (the PR's acceptance criteria): >= 1000 concurrent
// flows, identical digests at 1 vs 4 vs 16 threads, work-stealing ==
// lock-step digest, conservation in every window, and >= 2x parallel
// scaling at 4 threads on the heterogeneous fleet. Scaling gates are
// hardware-aware: on hosts with fewer than 4 hardware threads they are
// reported as an explicit SKIP verdict instead of a vacuous pass.
// --smoke shrinks the fleet, drops the gates, and always exits 0.
// Results land in BENCH_fleet.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "fleet/fleet_manager.h"
#include "tools/flag_parser.h"

namespace flower {
namespace {

/// Seed for ApplyPeriodJitter: fixed so every thread count builds the
/// identical heterogeneous fleet.
constexpr uint64_t kJitterSeed = 77;

struct ScaleResult {
  size_t threads = 0;
  double wall_ms = 0.0;
  double flow_sim_sec_per_wall_sec = 0.0;
  uint64_t control_steps = 0;
  uint64_t steals = 0;
  uint64_t mailbox_waits = 0;
  double overlap_ratio = 0.0;
  std::string digest;
  bool conservation_ok = true;
  size_t periods = 0;
};

fleet::FleetConfig BenchConfig(size_t num_threads, size_t flows,
                               bool capture,
                               fleet::FleetConfig::SweepMode mode) {
  fleet::FleetConfig config;
  config.sweep_mode = mode;
  // Roughly half the fleet's aggregate demand: keeps every period
  // contended so the arbiter genuinely splits, not rubber-stamps.
  config.fleet_budget_usd_per_hour = 0.35 * static_cast<double>(flows);
  config.arbitration_period_sec = 900.0;
  config.num_threads = num_threads;
  config.partition.workload_emit_period_sec = 10.0;
  config.partition.storm_tick_period_sec = 10.0;
  config.partition.horizon_sec = 4000.0;
  // Recorder only, no health monitor: the overhead gate isolates the
  // black box's per-decision cost.
  config.partition.capture.enabled = capture;
  return config;
}

Result<ScaleResult> RunFleet(
    size_t num_threads, size_t flows, double horizon_sec,
    bool capture = false,
    fleet::FleetConfig::SweepMode mode =
        fleet::FleetConfig::SweepMode::kWorkStealing,
    bool hetero = false) {
  fleet::FleetManager manager(BenchConfig(num_threads, flows, capture, mode));
  std::vector<fleet::TenantConfig> tenants =
      fleet::MakeTenantFleet(flows, /*seed=*/1234);
  if (hetero) fleet::ApplyPeriodJitter(&tenants, 900.0, kJitterSeed);
  for (fleet::TenantConfig& t : tenants) {
    FLOWER_RETURN_NOT_OK(manager.AddTenant(std::move(t)));
  }
  FLOWER_RETURN_NOT_OK(manager.Start());
  auto t0 = std::chrono::steady_clock::now();
  FLOWER_RETURN_NOT_OK(manager.RunFor(horizon_sec));
  auto t1 = std::chrono::steady_clock::now();

  ScaleResult r;
  r.threads = num_threads;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.flow_sim_sec_per_wall_sec =
      r.wall_ms > 0.0
          ? static_cast<double>(flows) * horizon_sec / (r.wall_ms / 1000.0)
          : 0.0;
  r.periods = manager.reports().size();
  for (const fleet::FleetPeriodReport& report : manager.reports()) {
    r.conservation_ok &= report.conservation_ok;
    for (const fleet::TenantPeriodOutcome& row : report.tenants) {
      r.control_steps += row.steps;
    }
  }
  fleet::FleetSweepStats stats = manager.sweep_stats();
  r.steals = stats.steals;
  r.mailbox_waits = stats.mailbox_waits;
  r.overlap_ratio = stats.overlap_ratio();
  r.conservation_ok &= stats.conservation_violations == 0;
  r.digest = manager.ControlDigest();
  return r;
}

/// One scaling curve: the same fleet at each thread count.
struct Curve {
  std::vector<ScaleResult> results;
  bool deterministic = true;
  bool conservation_ok = true;
  double speedup4 = 0.0;
};

Result<Curve> RunCurve(const std::vector<size_t>& thread_counts, size_t flows,
                       double horizon_sec,
                       fleet::FleetConfig::SweepMode mode, bool hetero,
                       const char* tag) {
  Curve curve;
  for (size_t threads : thread_counts) {
    FLOWER_ASSIGN_OR_RETURN(
        ScaleResult r,
        RunFleet(threads, flows, horizon_sec, /*capture=*/false, mode, hetero));
    std::cout << "  " << tag << " " << r.threads << " thread"
              << (r.threads > 1 ? "s" : " ") << ": "
              << TablePrinter::Num(r.wall_ms, 1) << " ms, "
              << TablePrinter::Num(r.flow_sim_sec_per_wall_sec, 0)
              << " flow-sim-sec/s, " << r.control_steps << " steps, "
              << r.steals << " steals, " << r.mailbox_waits
              << " mailbox waits, overlap "
              << TablePrinter::Num(r.overlap_ratio, 2) << "\n";
    curve.results.push_back(std::move(r));
  }
  for (const ScaleResult& r : curve.results) {
    curve.deterministic &= r.digest == curve.results[0].digest;
    curve.conservation_ok &= r.conservation_ok;
    if (r.threads == 4 && r.wall_ms > 0.0) {
      curve.speedup4 = curve.results[0].wall_ms / r.wall_ms;
    }
  }
  return curve;
}

struct RecorderOverhead {
  size_t flows = 0;
  double wall_ms_off = 0.0;
  double wall_ms_on = 0.0;
  double overhead_pct = 0.0;
  bool digest_identical = false;
};

void WriteCurveJson(std::FILE* fp, const char* key, const Curve& curve,
                    bool trailing_comma) {
  std::fprintf(fp, "  \"%s\": {\n    \"scaling\": [\n", key);
  for (size_t i = 0; i < curve.results.size(); ++i) {
    const ScaleResult& r = curve.results[i];
    std::fprintf(fp,
                 "      {\"threads\": %zu, \"wall_ms\": %.1f, "
                 "\"flow_sim_sec_per_wall_sec\": %.0f, "
                 "\"control_steps\": %llu, \"periods\": %zu, "
                 "\"steals\": %llu, \"mailbox_waits\": %llu, "
                 "\"overlap_ratio\": %.2f}%s\n",
                 r.threads, r.wall_ms, r.flow_sim_sec_per_wall_sec,
                 static_cast<unsigned long long>(r.control_steps), r.periods,
                 static_cast<unsigned long long>(r.steals),
                 static_cast<unsigned long long>(r.mailbox_waits),
                 r.overlap_ratio, i + 1 < curve.results.size() ? "," : "");
  }
  std::fprintf(fp, "    ],\n");
  std::fprintf(fp, "    \"speedup_at_4_threads\": %.2f,\n", curve.speedup4);
  std::fprintf(fp, "    \"budget_conservation\": \"%s\",\n",
               curve.conservation_ok ? "holds" : "VIOLATED");
  std::fprintf(fp, "    \"determinism\": \"%s\"\n  }%s\n",
               curve.deterministic ? "identical" : "DIVERGED",
               trailing_comma ? "," : "");
}

void WriteJson(std::FILE* fp, bool smoke, size_t flows, double horizon_sec,
               const Curve& worksteal, const Curve& lockstep,
               const Curve& hetero, bool worksteal_matches_lockstep,
               const RecorderOverhead& rec) {
  std::fprintf(fp, "{\n  \"bench\": \"fleet_scale\",\n");
  std::fprintf(fp, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(fp, "  \"flows\": %zu,\n", flows);
  std::fprintf(fp, "  \"horizon_sec\": %.0f,\n", horizon_sec);
  // Legacy top-level scaling block (the homogeneous work-stealing
  // curve), kept so older bench_diff baselines still parse.
  std::fprintf(fp, "  \"scaling\": [\n");
  for (size_t i = 0; i < worksteal.results.size(); ++i) {
    const ScaleResult& r = worksteal.results[i];
    std::fprintf(fp,
                 "    {\"threads\": %zu, \"wall_ms\": %.1f, "
                 "\"flow_sim_sec_per_wall_sec\": %.0f, "
                 "\"control_steps\": %llu, \"periods\": %zu, "
                 "\"steals\": %llu, \"mailbox_waits\": %llu, "
                 "\"overlap_ratio\": %.2f}%s\n",
                 r.threads, r.wall_ms, r.flow_sim_sec_per_wall_sec,
                 static_cast<unsigned long long>(r.control_steps), r.periods,
                 static_cast<unsigned long long>(r.steals),
                 static_cast<unsigned long long>(r.mailbox_waits),
                 r.overlap_ratio,
                 i + 1 < worksteal.results.size() ? "," : "");
  }
  std::fprintf(fp, "  ],\n");
  std::fprintf(fp, "  \"speedup_at_4_threads\": %.2f,\n", worksteal.speedup4);
  WriteCurveJson(fp, "lockstep", lockstep, /*trailing_comma=*/true);
  WriteCurveJson(fp, "hetero", hetero, /*trailing_comma=*/true);
  std::fprintf(fp, "  \"worksteal_matches_lockstep\": %s,\n",
               worksteal_matches_lockstep ? "true" : "false");
  std::fprintf(fp,
               "  \"recorder\": {\"flows\": %zu, \"wall_ms_off\": %.1f, "
               "\"wall_ms_on\": %.1f, \"overhead_pct\": %.2f, "
               "\"digest_identical\": %s},\n",
               rec.flows, rec.wall_ms_off, rec.wall_ms_on, rec.overhead_pct,
               rec.digest_identical ? "true" : "false");
  std::fprintf(fp, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(fp, "  \"budget_conservation\": \"%s\",\n",
               worksteal.conservation_ok && hetero.conservation_ok
                   ? "holds"
                   : "VIOLATED");
  std::fprintf(fp, "  \"determinism\": \"%s\"\n}\n",
               worksteal.deterministic && hetero.deterministic ? "identical"
                                                               : "DIVERGED");
}

int Run(bool smoke, size_t flows, const std::string& out_path) {
  bench::Header(smoke ? "PERF  Fleet scale (smoke): multi-tenant control "
                        "under budget arbitration"
                      : "PERF  Fleet scale: 1000-tenant control under "
                        "hierarchical budget arbitration");
  const double horizon_sec = smoke ? 900.0 : 1800.0;
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16};
  const unsigned hw = std::thread::hardware_concurrency();

  std::cout << "  fleet: " << flows << " flows, "
            << TablePrinter::Num(horizon_sec, 0) << " sim-seconds, "
            << "arbitration every 900 s, " << hw
            << " hardware threads\n\n";

  // Homogeneous fleet, work-stealing sweep (the default mode).
  auto worksteal = RunCurve(thread_counts, flows, horizon_sec,
                            fleet::FleetConfig::SweepMode::kWorkStealing,
                            /*hetero=*/false, "steal ");
  if (!worksteal.ok()) {
    std::cerr << "fleet run failed: " << worksteal.status() << "\n";
    return 1;
  }

  // The same fleet under the legacy barrier sweep: digest must match
  // byte for byte, and its curve is the PERF5 barrier baseline. Smoke
  // runs only the 1-thread point to bound runtime.
  std::cout << "\n";
  auto lockstep = RunCurve(
      smoke ? std::vector<size_t>{1} : thread_counts, flows, horizon_sec,
      fleet::FleetConfig::SweepMode::kLockStep, /*hetero=*/false, "barrier");
  if (!lockstep.ok()) {
    std::cerr << "lock-step fleet run failed: " << lockstep.status() << "\n";
    return 1;
  }
  bool worksteal_matches_lockstep =
      !worksteal->results.empty() && !lockstep->results.empty() &&
      worksteal->results[0].digest == lockstep->results[0].digest;

  // Heterogeneous horizons: ApplyPeriodJitter spreads tenants over
  // 900/450/300/225 s cadences, so boundaries only partially overlap —
  // the regime the work-stealing sweep exists for.
  std::cout << "\n";
  auto hetero = RunCurve(thread_counts, flows, horizon_sec,
                         fleet::FleetConfig::SweepMode::kWorkStealing,
                         /*hetero=*/true, "hetero ");
  if (!hetero.ok()) {
    std::cerr << "heterogeneous fleet run failed: " << hetero.status() << "\n";
    return 1;
  }

  std::cout << "\n  homogeneous speedup at 4 threads: "
            << TablePrinter::Num(worksteal->speedup4, 2)
            << "x, heterogeneous: " << TablePrinter::Num(hetero->speedup4, 2)
            << "x (" << hw << " hardware threads available)\n";

  // Flight-recorder overhead: the same fleet at 1 thread, capture armed
  // vs off, interleaved. The recorder's true per-decision cost is ~1 us
  // (one snprintf + FNV mix), well under 1% of a control step; best-of-N
  // walls damp the scheduler noise that would otherwise dominate the
  // gate on small shared runners. The control digest must be
  // byte-identical — recording must never perturb control.
  RecorderOverhead rec;
  rec.flows = smoke ? 32 : 256;
  {
    const double rec_horizon = smoke ? 900.0 : 1800.0;
    const int reps = smoke ? 2 : 4;
    std::string digest_off;
    std::string digest_on;
    rec.wall_ms_off = 1e300;
    rec.wall_ms_on = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      auto off = RunFleet(1, rec.flows, rec_horizon, /*capture=*/false);
      if (!off.ok()) {
        std::cerr << "recorder-off fleet run failed: " << off.status() << "\n";
        return 1;
      }
      rec.wall_ms_off = std::min(rec.wall_ms_off, off->wall_ms);
      digest_off = std::move(off->digest);
      auto on = RunFleet(1, rec.flows, rec_horizon, /*capture=*/true);
      if (!on.ok()) {
        std::cerr << "recorder-on fleet run failed: " << on.status() << "\n";
        return 1;
      }
      rec.wall_ms_on = std::min(rec.wall_ms_on, on->wall_ms);
      digest_on = std::move(on->digest);
    }
    rec.overhead_pct =
        rec.wall_ms_off > 0.0
            ? 100.0 * (rec.wall_ms_on - rec.wall_ms_off) / rec.wall_ms_off
            : 0.0;
    rec.digest_identical = digest_off == digest_on;
    std::cout << "\n  flight recorder: " << rec.flows << " flows, capture off "
              << TablePrinter::Num(rec.wall_ms_off, 1) << " ms vs on "
              << TablePrinter::Num(rec.wall_ms_on, 1) << " ms ("
              << TablePrinter::Num(rec.overhead_pct, 2) << "% overhead), "
              << "digest " << (rec.digest_identical ? "identical" : "DIVERGED")
              << "\n";
  }

  if (std::FILE* fp = std::fopen(out_path.c_str(), "w")) {
    WriteJson(fp, smoke, flows, horizon_sec, *worksteal, *lockstep, *hetero,
              worksteal_matches_lockstep, rec);
    std::fclose(fp);
    std::cout << "  wrote " << out_path << "\n";
  } else {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  if (smoke) {
    bench::Verdict("merged control digest identical across thread counts",
                   worksteal->deterministic);
    bench::Verdict("work-stealing digest matches lock-step barrier sweep",
                   worksteal_matches_lockstep);
    bench::Verdict("heterogeneous digest identical across thread counts",
                   hetero->deterministic);
    bench::Verdict("budget conserved in every arbitration window",
                   worksteal->conservation_ok && hetero->conservation_ok);
    bench::Verdict("flight recorder does not perturb the control digest",
                   rec.digest_identical);
    std::cout << "[SMOKE] gates skipped\n";
    return 0;
  }

  bool ok = true;
  ok &= bench::Verdict(">= 1000 concurrent flows simulated", flows >= 1000);
  ok &= bench::Verdict(
      "merged control decisions byte-identical at 1 vs 4 vs 16 threads",
      worksteal->deterministic);
  ok &= bench::Verdict("work-stealing digest matches lock-step barrier sweep",
                       worksteal_matches_lockstep);
  ok &= bench::Verdict(
      "heterogeneous digests byte-identical at 1 vs 4 vs 16 threads",
      hetero->deterministic);
  ok &= bench::Verdict("budget conserved in every arbitration window",
                       worksteal->conservation_ok && hetero->conservation_ok);
  ok &= bench::Verdict("flight recorder does not perturb the control digest",
                       rec.digest_identical);
  ok &= bench::Verdict("flight recorder overhead <= 2%",
                       rec.overhead_pct <= 2.0);
  if (hw >= 4) {
    ok &= bench::Verdict(
        "heterogeneous parallel scaling >= 2x at 4 threads",
        hetero->speedup4 >= 2.0);
  } else {
    std::cout << "[SKIP] heterogeneous scaling >= 2x check: SKIP (need >=4 "
                 "hw threads, have "
              << hw << ")\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  auto unknown = flags->UnknownKeys({"smoke", "flows", "out"});
  if (!unknown.empty()) {
    std::cerr << "usage: fleet_scale [--smoke] [--flows=N] "
                 "[--out=BENCH_fleet.json]\n";
    return 2;
  }
  bool smoke = flags->GetBool("smoke", false);
  auto flows_or = flags->GetInt("flows", smoke ? 64 : 1000);
  if (!flows_or.ok() || *flows_or <= 0) {
    std::cerr << "--flows must be a positive integer\n";
    return 2;
  }
  size_t flows = static_cast<size_t>(*flows_or);
  std::string out = flags->GetString("out", "BENCH_fleet.json");
  return flower::Run(smoke, flows, out);
}
