// Reproduces the paper's §1 motivation claim (citing Zhu et al.,
// HotCloud'12 [15]): scaling *all* tiers of an application saves ~65%
// of the peak operational cost, versus ~45% when only the
// compute/analytics tier is resized — the argument for Flower's
// holistic, flow-wide elasticity.
//
// Scenario: the click-stream flow under a diurnal load with a ~4x
// peak-to-trough ratio, for 24 simulated hours. Three policies:
//   static    — every layer provisioned for the peak, never resized;
//   analytics — only the Storm tier elastic (VM controller on);
//   holistic  — Flower's controllers on all three layers.
// Cost is integrated from the price book over the actual provisioned
// quantities.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "pricing/price_book.h"

namespace flower {
namespace {

constexpr double kHorizon = 24.0 * kHour;

// Peak provisioning: sized for the diurnal maximum.
constexpr int kPeakShards = 8;
constexpr int kPeakWorkers = 24;
// Write-heavy storage tier: at 2017 prices, 2000 WCU costs $1.3/h —
// comparable to the compute tier, which is what makes holistic scaling
// pay off (the same structure as web+cache in the cited study).
constexpr double kPeakWcu = 2000.0;

std::shared_ptr<workload::ArrivalProcess> DiurnalLoad() {
  // 250..2050 rec/s over a day: ~4x peak-to-mean dynamic range.
  return std::make_shared<workload::DiurnalArrival>(1150.0, 900.0, kDay,
                                                    -0.25 * kDay);
}

struct PolicyResult {
  std::string name;
  double cost_usd = 0.0;
  double drop_rate = 0.0;
  double mean_cpu = 0.0;
};

Result<PolicyResult> RunPolicy(const std::string& name, bool elastic_compute,
                               bool elastic_ingest_storage) {
  sim::Simulation sim;
  cloudwatch::MetricStore metrics;

  flow::FlowConfig cfg = bench::CanonicalFlow();
  cfg.stream.initial_shards = kPeakShards;
  cfg.initial_workers = kPeakWorkers;
  cfg.table.initial_wcu = kPeakWcu;

  core::LayerElasticityConfig ingestion;
  ingestion.enabled = elastic_ingest_storage;
  ingestion.max_resource = 2.0 * kPeakShards;
  core::LayerElasticityConfig analytics;
  analytics.enabled = elastic_compute;
  analytics.max_resource = 2.0 * kPeakWorkers;
  core::LayerElasticityConfig storage;
  storage.enabled = elastic_ingest_storage;
  storage.min_resource = 5.0;
  storage.max_resource = 2.0 * kPeakWcu;

  FLOWER_ASSIGN_OR_RETURN(
      core::ManagedFlow mf,
      core::FlowBuilder()
          .WithFlowConfig(cfg)
          .WithIngestion(ingestion)
          .WithAnalytics(analytics)
          .WithStorage(storage)
          .WithWorkload(DiurnalLoad(), bench::CanonicalWorkload())
          .WithSeed(20170828)
          .Build(&sim, &metrics));

  pricing::PriceBook book;
  pricing::CostAccumulator shard_cost(&book,
                                      pricing::ResourceKind::kKinesisShard);
  pricing::CostAccumulator vm_cost(&book,
                                   pricing::ResourceKind::kEc2Instance);
  pricing::CostAccumulator wcu_cost(&book, pricing::ResourceKind::kDynamoWcu);
  double cpu_sum = 0.0;
  size_t cpu_n = 0;
  Status st = sim.SchedulePeriodic(kMinute, kMinute, [&] {
    double t = sim.Now();
    (void)shard_cost.SetQuantity(
        t, static_cast<double>(mf.flow->stream().shard_count()));
    (void)vm_cost.SetQuantity(
        t, static_cast<double>(mf.flow->cluster().worker_count()));
    (void)wcu_cost.SetQuantity(t, mf.flow->table().provisioned_wcu());
    cpu_sum += mf.flow->cluster().LastTickCpuUtilizationPct();
    ++cpu_n;
    return sim.Now() < kHorizon;
  });
  FLOWER_RETURN_NOT_OK(st);
  sim.RunUntil(kHorizon);

  PolicyResult out;
  out.name = name;
  out.cost_usd = shard_cost.CostUpTo(kHorizon) + vm_cost.CostUpTo(kHorizon) +
                 wcu_cost.CostUpTo(kHorizon);
  out.drop_rate =
      static_cast<double>(mf.flow->generator()->total_dropped()) /
      std::max<double>(
          1.0, static_cast<double>(mf.flow->generator()->total_generated()));
  out.mean_cpu = cpu_n > 0 ? cpu_sum / static_cast<double>(cpu_n) : 0.0;
  return out;
}

int Run() {
  bench::Header(
      "COST  Holistic vs single-tier scaling savings (paper §1, ref [15])");
  auto stat = RunPolicy("static-peak", false, false);
  auto analytics_only = RunPolicy("analytics-only", true, false);
  auto holistic = RunPolicy("holistic (Flower)", true, true);
  if (!stat.ok() || !analytics_only.ok() || !holistic.ok()) {
    std::cerr << "policy run failed\n";
    return 1;
  }

  double base = stat->cost_usd;
  auto saving = [&](const PolicyResult& r) {
    return 100.0 * (base - r.cost_usd) / base;
  };
  TablePrinter table({"policy", "24h cost ($)", "saving vs static (%)",
                      "mean CPU %", "drop %"});
  for (const PolicyResult* r : {&*stat, &*analytics_only, &*holistic}) {
    table.AddRow({r->name, TablePrinter::Num(r->cost_usd, 3),
                  TablePrinter::Num(saving(*r), 1),
                  TablePrinter::Num(r->mean_cpu, 1),
                  TablePrinter::Num(100.0 * r->drop_rate, 2)});
  }
  table.Print(std::cout);
  std::cout << "Paper's cited claim: all-tier scaling ~65% saving vs ~45% "
               "for one tier.\n";

  double s_holistic = saving(*holistic);
  double s_analytics = saving(*analytics_only);
  bool ok = true;
  ok &= bench::Verdict(
      "holistic scaling saves clearly more than analytics-only scaling",
      s_holistic > s_analytics + 5.0);
  ok &= bench::Verdict(
      "holistic saving in the paper's ballpark (45..80%)",
      s_holistic >= 45.0 && s_holistic <= 80.0);
  ok &= bench::Verdict(
      "analytics-only saving in the paper's ballpark (25..60%)",
      s_analytics >= 25.0 && s_analytics <= 60.0);
  ok &= bench::Verdict("elasticity does not cause data loss (> 5% drops)",
                       holistic->drop_rate <= 0.05);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace flower

int main() { return flower::Run(); }
