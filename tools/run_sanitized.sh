#!/usr/bin/env bash
# Configure a sanitizer build (ASan + UBSan, fail on first report) and
# run the fault-injection / resilience, flow-health and simulation-core
# test labels under it. The fault/health tests exercise the
# retry/circuit-breaker callback paths and the health layer's threaded
# anomaly fan-out, where lifetime bugs (a retry firing into a freed
# loop) would hide from the plain build; the simcore tests drive the
# timer wheel's move-out/swap event paths, where a use-after-move or
# buffer rotation bug would likewise stay invisible. The obs label
# rides along for the observability plane: the span ring's lazy
# allocation/eviction and the scoped-registry/rollup merge paths are
# pointer-heavy and deserve lifetime checking. The fleet label rides
# along too: a thousand flow partitions being built, swept in parallel,
# and torn down is where a dangling partition pointer or a
# budget-callback into a freed manager would surface first. The replay
# label rides along because the flight recorder's bounded rings and the
# replay harness's bundle reconstruction shuffle ownership of spec,
# fault, and grant records across the capture/replay boundary — the
# natural habitat of a stale pointer into an evicted ring slot.
#
#   $ tools/run_sanitized.sh    # ctest -L 'fault|health|simcore|obs|fleet|replay'
#   $ tools/run_sanitized.sh -R Breaker # forward extra ctest args
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFLOWER_SANITIZE=ON \
  -DFLOWER_BUILD_BENCHMARKS=OFF \
  -DFLOWER_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)" \
  --target fault_tests health_tests sim_tests simcore_tests obs_tests \
  fleet_tests replay_tests

cd "${build_dir}"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest -L 'fault|health|simcore|obs|fleet|replay' --output-on-failure "$@"
