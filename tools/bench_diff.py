#!/usr/bin/env python3
"""Compare a fresh bench run against its committed baseline.

Each bench JSON carries one *headline* metric — the number the bench
exists to defend. This script extracts it from both files and fails
(exit 1) when the fresh run regresses by more than the threshold
(default 15%). Smoke-mode runs measure a different workload than the
committed full-mode baselines, so a mode mismatch is reported and
skipped (exit 0) rather than compared apples-to-oranges.

Usage:
  bench_diff.py BASELINE.json FRESH.json [--threshold=0.15]
  bench_diff.py --all BASELINE_DIR FRESH_DIR [--threshold=0.15]

Exit codes: 0 ok/skipped, 1 regression, 2 bad invocation/unreadable.
"""

import json
import os
import sys

# bench name -> (headline description, extractor, higher_is_better)
HEADLINES = {
    "planner_throughput": (
        "cold/warm-stall wall-time ratio (incremental planning speedup)",
        lambda b: _planner_ratio(b),
        True,
    ),
    "obs_overhead": (
        "full-telemetry steady-tick overhead % vs disabled plane",
        lambda b: b["enabled"]["overhead_pct"],
        False,
    ),
    "fleet_scale": (
        "heterogeneous-horizon fleet sweep speedup at 4 threads",
        lambda b: _fleet_speedup(b),
        True,
    ),
    "sim_throughput": (
        "timer-wheel vs reference calendar speedup",
        lambda b: b["calendar"]["speedup"],
        True,
    ),
}


def _fleet_speedup(b):
    """Heterogeneous-horizon 4-thread speedup — the number the
    work-stealing sweep exists to defend. Pre-work-stealing baselines
    only carry the homogeneous top-level speedup; fall back so old
    baselines stay comparable."""
    hetero = b.get("hetero")
    if hetero is not None:
        return hetero["speedup_at_4_threads"]
    return b["speedup_at_4_threads"]


def _planner_ratio(b):
    """Cold wall-time over warm+stall wall-time: how much the
    incremental engine saves on an unchanged re-plan. Compared at the
    lowest thread count the bench ran (single-threaded is the least
    noisy and always present)."""
    runs = {}
    for r in b["runs"]:
        prev = runs.get(r["mode"])
        if prev is None or r["threads"] < prev["threads"]:
            runs[r["mode"]] = r
    cold = runs["cold"]["wall_ms"]
    warm = runs["warm_stall"]["wall_ms"]
    if warm <= 0:
        raise ValueError("warm_stall wall_ms is zero")
    return cold / warm


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def compare(baseline_path, fresh_path, threshold):
    """Returns True when fresh holds the baseline's headline metric."""
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    name = baseline.get("bench")
    if name != fresh.get("bench"):
        print(f"bench_diff: bench mismatch: baseline {name!r} vs "
              f"fresh {fresh.get('bench')!r}", file=sys.stderr)
        sys.exit(2)
    if name not in HEADLINES:
        print(f"bench_diff: no headline registered for {name!r}",
              file=sys.stderr)
        sys.exit(2)
    if baseline.get("smoke") != fresh.get("smoke"):
        print(f"[SKIP] {name}: mode mismatch (baseline smoke="
              f"{baseline.get('smoke')}, fresh smoke={fresh.get('smoke')}) "
              f"— different workloads, not comparable")
        return True

    if name == "fleet_scale":
        # Wall-clock speedup is meaningless without real parallelism;
        # hosts below 4 hardware threads skip the comparison the same
        # way the bench itself skips its scaling gate.
        hw = min(baseline.get("hardware_threads", 0),
                 fresh.get("hardware_threads", 0))
        if hw < 4:
            print(f"[SKIP] {name}: speedup headline needs >= 4 hardware "
                  f"threads (have {hw}) — not comparable")
            return True

    desc, extract, higher_is_better = HEADLINES[name]
    base_v = extract(baseline)
    fresh_v = extract(fresh)
    if higher_is_better:
        # Regression = fresh dropped below (1 - threshold) x baseline.
        regressed = fresh_v < base_v * (1.0 - threshold)
        change = (fresh_v - base_v) / base_v if base_v else 0.0
    else:
        # Lower-is-better metrics regress upward. An overhead baseline
        # near zero makes a pure ratio hypersensitive, so allow the
        # larger of the relative threshold and one absolute point.
        allowance = max(abs(base_v) * threshold, 1.0)
        regressed = fresh_v > base_v + allowance
        change = (fresh_v - base_v) / base_v if base_v else 0.0

    verdict = "REGRESSED" if regressed else "ok"
    print(f"[{verdict}] {name}: {desc}")
    print(f"  baseline {base_v:.3f} -> fresh {fresh_v:.3f} "
          f"({change:+.1%}, threshold {threshold:.0%})")
    return not regressed


def main(argv):
    threshold = 0.15
    args = []
    all_mode = False
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
        elif a == "--all":
            all_mode = True
        else:
            args.append(a)
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    if not all_mode:
        return 0 if compare(args[0], args[1], threshold) else 1

    baseline_dir, fresh_dir = args
    ok = True
    seen = 0
    for fname in sorted(os.listdir(baseline_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        fresh_path = os.path.join(fresh_dir, fname)
        if not os.path.exists(fresh_path):
            print(f"[SKIP] {fname}: no fresh result")
            continue
        seen += 1
        ok &= compare(os.path.join(baseline_dir, fname), fresh_path,
                      threshold)
    if seen == 0:
        print("bench_diff: no comparable BENCH_*.json pairs found",
              file=sys.stderr)
        return 2
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
