#!/usr/bin/env python3
"""Minimal offline OpenMetrics text-format linter.

Validates the subset of the OpenMetrics 1.0 exposition format that
obs::WriteSnapshotOpenMetrics emits, with no network and no third-party
packages, so CI can gate the exporter without pulling a real parser:

  - metric/label names match the spec grammar
  - every sample belongs to a family announced by a ``# TYPE`` line,
    and families are contiguous (no interleaving)
  - counter samples use the ``_total`` suffix
  - histogram families expose ``_bucket`` series with non-decreasing
    cumulative counts, a closing ``le="+Inf"`` bucket matching
    ``_count``, plus ``_sum`` and ``_count``
  - sample values parse as floats (``NaN``/``+Inf``/``-Inf`` allowed)
  - ``# HELP`` lines name a valid family, appear at most once per
    family, and their text uses only the ``\\`` and ``\n`` escapes
  - label values use only the ``\\``, ``\"`` and ``\n`` escapes (a
    backslash followed by anything else is malformed)
  - the exposition ends with exactly one ``# EOF`` line

Usage: check_openmetrics.py FILE [FILE...]; exits non-zero on the first
malformed file, printing every violation with its line number.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "unknown", "info",
         "stateset", "gaugehistogram"}


def parse_value(text):
    if text in ("+Inf", "-Inf", "Inf"):
        return float(text.replace("Inf", "inf"))
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []
        # Family currently open by # TYPE, and every family ever seen
        # (to catch interleaving).
        self.family = None
        self.family_type = None
        self.seen_families = set()
        self.help_seen = set()
        # Histogram state for the open family.
        self.buckets = []  # (le, count) in exposition order
        self.hist_count = None
        self.hist_labels = None

    def err(self, lineno, msg):
        self.errors.append(f"{self.path}:{lineno}: {msg}")

    def close_family(self, lineno):
        if self.family_type == "histogram" and self.hist_labels is not None:
            self.flush_histogram(lineno)
        self.family = None
        self.family_type = None

    def flush_histogram(self, lineno):
        if not self.buckets:
            self.err(lineno, f"histogram '{self.family}' has no _bucket "
                             "samples")
        else:
            prev = -1.0
            prev_le = None
            for le, count in self.buckets:
                if prev_le is not None and le <= prev_le:
                    self.err(lineno, f"histogram '{self.family}' bucket "
                                     f"le={le} not increasing")
                if count < prev:
                    self.err(lineno, f"histogram '{self.family}' cumulative "
                                     f"count decreased at le={le}")
                prev, prev_le = count, le
            last_le, last_count = self.buckets[-1]
            if last_le != float("inf"):
                self.err(lineno, f"histogram '{self.family}' missing "
                                 'le="+Inf" bucket')
            elif self.hist_count is not None and last_count != self.hist_count:
                self.err(lineno, f"histogram '{self.family}' +Inf bucket "
                                 f"({last_count}) != _count "
                                 f"({self.hist_count})")
        self.buckets = []
        self.hist_count = None
        self.hist_labels = None

    def on_type(self, lineno, rest):
        parts = rest.split()
        if len(parts) != 2 or parts[1] not in TYPES:
            self.err(lineno, f"malformed # TYPE line: '{rest}'")
            return
        name, mtype = parts
        if not METRIC_NAME.match(name):
            self.err(lineno, f"invalid family name '{name}'")
        self.close_family(lineno)
        if name in self.seen_families:
            self.err(lineno, f"family '{name}' announced twice "
                             "(families must be contiguous)")
        self.seen_families.add(name)
        self.family = name
        self.family_type = mtype

    def check_escapes(self, lineno, text, what, allowed):
        """Every backslash must start one of the ``allowed`` escapes."""
        i = text.find("\\")
        while i != -1:
            if i + 1 >= len(text) or text[i + 1] not in allowed:
                bad = text[i:i + 2]
                self.err(lineno, f"invalid escape '{bad}' in {what}")
                return
            i = text.find("\\", i + 2)

    def on_help(self, lineno, rest):
        name, _, text = rest.partition(" ")
        if not METRIC_NAME.match(name):
            self.err(lineno, f"# HELP names invalid family '{name}'")
            return
        if name in self.help_seen:
            self.err(lineno, f"duplicate # HELP for family '{name}'")
        self.help_seen.add(name)
        if not text:
            self.err(lineno, f"# HELP for '{name}' has empty text")
        # HELP text is unquoted: only backslash and newline are escaped.
        self.check_escapes(lineno, text, f"HELP text of '{name}'", "\\n")

    def on_sample(self, lineno, line):
        m = SAMPLE.match(line)
        if not m:
            self.err(lineno, f"unparseable sample line: '{line}'")
            return
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            body = m.group("labels")
            consumed = 0
            for lm in LABEL.finditer(body):
                labels[lm.group(1)] = lm.group(2)
                consumed = lm.end()
                if consumed < len(body) and body[consumed] == ",":
                    consumed += 1
            if consumed != len(body):
                self.err(lineno, f"malformed label set: '{{{body}}}'")
            for k, v in labels.items():
                if not LABEL_NAME.match(k):
                    self.err(lineno, f"invalid label name '{k}'")
                self.check_escapes(lineno, v, f"value of label '{k}'",
                                   '\\"n')
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            self.err(lineno, f"bad sample value '{m.group('value')}'")
            return
        if self.family is None:
            self.err(lineno, f"sample '{name}' before any # TYPE line")
            return
        suffixes = {
            "counter": ["_total", "_created"],
            "histogram": ["_bucket", "_sum", "_count", "_created"],
            "summary": ["_sum", "_count", "_created", ""],
        }.get(self.family_type, [""])
        if not any(name == self.family + s for s in suffixes):
            self.err(lineno, f"sample '{name}' does not belong to open "
                             f"{self.family_type} family '{self.family}'")
            return
        if self.family_type == "counter" and value < 0:
            self.err(lineno, f"counter '{name}' has negative value {value}")
        if self.family_type == "histogram":
            # Bucket runs are per-label-set; flush when the non-le labels
            # change so cumulative checks don't span series.
            series = tuple(sorted((k, v) for k, v in labels.items()
                                  if k != "le"))
            if self.hist_labels is not None and series != self.hist_labels:
                self.flush_histogram(lineno)
            self.hist_labels = series
            if name.endswith("_bucket"):
                if "le" not in labels:
                    self.err(lineno, f"bucket sample missing le label")
                else:
                    try:
                        self.buckets.append((parse_value(labels["le"]),
                                             value))
                    except ValueError:
                        self.err(lineno, f"bad le value '{labels['le']}'")
            elif name.endswith("_count"):
                self.hist_count = value

    def check(self, text):
        lines = text.split("\n")
        if not text.endswith("\n"):
            self.err(len(lines), "exposition must end with a newline")
        else:
            lines = lines[:-1]
        if not lines or lines[-1] != "# EOF":
            self.err(len(lines), "exposition must end with '# EOF'")
        for lineno, line in enumerate(lines, start=1):
            if line == "# EOF":
                if lineno != len(lines):
                    self.err(lineno, "'# EOF' before end of exposition")
                self.close_family(lineno)
            elif line.startswith("# TYPE "):
                self.on_type(lineno, line[len("# TYPE "):])
            elif line.startswith("# HELP "):
                self.on_help(lineno, line[len("# HELP "):])
            elif line.startswith("# UNIT "):
                continue
            elif line.startswith("#"):
                self.err(lineno, f"unknown comment line: '{line}'")
            elif line.strip():
                self.on_sample(lineno, line)
            else:
                self.err(lineno, "blank line in exposition")
        return self.errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {argv[0]} FILE [FILE...]")
        return 2
    failed = False
    for path in argv[1:]:
        with open(path, encoding="utf-8") as f:
            errors = Checker(path).check(f.read())
        if errors:
            failed = True
            for e in errors:
                print(e)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
