#ifndef FLOWER_TOOLS_FLAG_PARSER_H_
#define FLOWER_TOOLS_FLAG_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace flower::tools {

/// Minimal `--key=value` / `--flag` command-line parser for the CLI
/// tools (no external dependencies).
class FlagParser {
 public:
  /// Parses argv. Errors: arguments not starting with `--`, or
  /// duplicate keys.
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// Typed getters with defaults; errors when present but unparsable.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Keys the program never consumed (typo detection).
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace flower::tools

#endif  // FLOWER_TOOLS_FLAG_PARSER_H_
