#include "tools/replay_runner.h"

#include <iostream>

#include "fleet/replay_harness.h"
#include "obs/exporters.h"
#include "obs/replay/bundle.h"
#include "obs/replay/divergence.h"

namespace flower::tools {

namespace {

Status WriteExports(const ReplayCliOptions& options,
                    fleet::FlowPartition& part, SimTime horizon) {
  obs::Telemetry& telemetry = part.telemetry();
  if (!options.trace_out.empty()) {
    FLOWER_RETURN_NOT_OK(telemetry.ExportTrace(options.trace_out));
    if (!options.quiet) {
      std::cout << "wrote Chrome trace ("
                << telemetry.trace().events().size() << " events) to "
                << options.trace_out << "\n";
    }
  }
  if (!options.spans_out.empty()) {
    FLOWER_RETURN_NOT_OK(telemetry.ExportSpans(options.spans_out));
    if (!options.quiet) {
      std::cout << "wrote " << telemetry.spans().size()
                << " causal spans to " << options.spans_out << "\n";
    }
  }
  if (!options.metrics_out.empty()) {
    FLOWER_RETURN_NOT_OK(telemetry.ExportJsonl(options.metrics_out, horizon));
    if (!options.quiet) {
      std::cout << "wrote " << telemetry.decisions().Snapshot().size()
                << " decision records + metrics snapshot to "
                << options.metrics_out << "\n";
    }
  }
  if (!options.health_out.empty()) {
    if (part.health() == nullptr) {
      return Status::FailedPrecondition(
          "replay: --health-out requires a bundle captured with "
          "capture.health_trigger");
    }
    FLOWER_RETURN_NOT_OK(part.health()->ExportJsonl(options.health_out));
    if (!options.quiet) {
      std::cout << "wrote health state (" << part.health()->Statuses().size()
                << " SLOs, " << part.health()->reports().size()
                << " reports) to " << options.health_out << "\n";
    }
  }
  if (!options.decisions_out.empty()) {
    FLOWER_RETURN_NOT_OK(
        obs::ExportToFile(options.decisions_out, [&part](std::ostream& os) {
          std::string digest;
          part.AppendDigest(&digest);
          os << digest;
        }));
    if (!options.quiet) {
      std::cout << "wrote control-decision digest to "
                << options.decisions_out << "\n";
    }
  }
  return Status::OK();
}

}  // namespace

int RunReplayCli(const ReplayCliOptions& options) {
  auto bundle = obs::replay::LoadBundleJson(options.bundle_path);
  if (!bundle.ok()) {
    std::cerr << bundle.status() << "\n";
    return 1;
  }
  fleet::ReplayOptions ropts;
  ropts.flow_solver_threads = options.threads == 0 ? 1 : options.threads;
  auto harness = fleet::ReplayHarness::Create(std::move(*bundle), ropts);
  if (!harness.ok()) {
    std::cerr << harness.status() << "\n";
    return 1;
  }
  const obs::replay::CaptureBundle& b = (*harness)->bundle();
  if (!options.quiet) {
    std::cout << "replaying tenant '" << b.tenant_id << "' (index "
              << b.tenant_index << ", seed " << b.seed << ") to trigger t="
              << b.trigger.time << " (" << b.trigger.reason << "), "
              << b.total_decisions << " recorded decisions, "
              << b.grants.size() << " grants, " << b.faults.size()
              << " scheduled faults\n";
  }
  Status st = (*harness)->Run();
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  obs::replay::DivergenceReport report = (*harness)->Check();
  st = WriteExports(options, (*harness)->partition(), b.trigger.time);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  if (!options.quiet || report.diverged) {
    std::cout << report.ToString();
  }
  return report.diverged ? 2 : 0;
}

}  // namespace flower::tools
