// flower_sim — command-line experiment driver for the Flower simulator.
//
// Runs the managed click-stream flow for a configurable duration,
// controller family, and workload, then prints a summary (and
// optionally the raw metric CSV for plotting). Examples:
//
//   flower_sim --hours=4
//   flower_sim --controller=rule-based --workload=flashcrowd --rate=900
//   flower_sim --workload=diurnal --rate=800 --amplitude=600 \
//              --period-hours=6 --reference=70 --csv-out=metrics.csv
//   flower_sim --trace=prod.csv --controller=feedforward
//
// Exit code 0 on success; 2 on bad flags.

#include <cmath>
#include <fstream>
#include <iostream>

#include "common/logging.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "control/metrics.h"
#include "core/dependency_analyzer.h"
#include "core/flow_builder.h"
#include "core/monitor.h"
#include "core/resource_share.h"
#include "fleet/fleet_manager.h"
#include "obs/health/health_monitor.h"
#include "obs/telemetry.h"
#include "tools/flag_parser.h"
#include "tools/replay_runner.h"
#include "workload/trace_io.h"

using namespace flower;

namespace {

constexpr const char* kUsage = R"(flower_sim — Flower simulator experiment driver

Flags (all optional):
  --controller=NAME     adaptive-gain | adaptive-gain-no-memory | fixed-gain |
                        quasi-adaptive | rule-based | target-tracking |
                        feedforward                     [adaptive-gain]
  --workload=KIND       constant | diurnal | flashcrowd | mmpp   [diurnal]
  --trace=FILE.csv      replay a rate trace instead of --workload
  --rate=N              base rate, records/s                     [800]
  --amplitude=N         diurnal amplitude / surge height         [600]
  --period-hours=H      diurnal period                           [4]
  --hours=H             simulated duration                       [4]
  --reference=PCT       target utilization, all layers           [60]
  --monitoring-period=S control period, seconds                  [120]
  --seed=N              RNG seed                                 [42]
  --threads=N           NSGA-II planner worker threads (0 = all cores);
                        the planned shares are bit-identical at any N  [1]
  --warm-start          seed the instrumented planner pass's second period
                        from the first period's final population (runs the
                        pass twice; needs an observation flag)
  --stall-generations=N stop a planner solve after N consecutive stalled
                        generations (0 = run the full budget)      [0]
  --seeds=N             replicate over N consecutive seeds and report
                        mean +/- sd of the headline metrics       [1]
  --csv-out=FILE        dump watched metrics as CSV
  --trace-out=FILE      write a Chrome trace_event JSON of the run (control
                        steps, retries, faults, NSGA-II planning); open in
                        Perfetto or chrome://tracing
  --spans-out=FILE      record causal control spans (sense -> decide ->
                        actuate -> effect, plan -> generation) and write
                        them as Chrome trace JSON with flow arrows
  --metrics-out=FILE    write control-decision records plus a final metrics
                        snapshot as JSON lines
  --health-out=FILE     run the flow-health layer (SLO engine, anomaly
                        detectors, root-cause attribution) alongside the
                        control loops and write its state as JSON lines
  --openmetrics-out=FILE  write the final metrics snapshot in OpenMetrics/
                        Prometheus text exposition format
  --quiet               summary only (no dashboard)
  --help                this text

Fleet mode (multi-tenant, replaces the single-flow run):
  --fleet               run a fleet of independent tenant flows under the
                        hierarchical budget arbiter
  --fleet-tenants=N     number of tenant flows                   [16]
  --fleet-budget=USD    fleet-wide hourly dollar budget          [100]
  --fleet-period=S      arbitration period, seconds              [900]
  --fleet-threads=N     simulation partitions advanced in parallel; the
                        merged control decisions are identical at any N  [1]
  --fleet-sweep=MODE    'worksteal' (default): partitions advance to their
                        own arbitration boundaries over a work-stealing
                        scheduler; 'lockstep': legacy barrier sweep
                        (homogeneous fleets only)
  --fleet-tenant-period-jitter  spread tenant arbitration horizons over
                        period/{1,2,3,4} deterministically (by --seed), so
                        boundaries only partially overlap — the regime the
                        work-stealing sweep exists for
  --fleet-report-out=FILE  write one JSON line per (period, tenant) with
                        demand/grant/spend/steps and the period's budget
                        conservation flag
  --fleet-capture-dir=DIR  arm every partition's flight recorder with
                        burn-rate SLO health triggers; an alert edge dumps
                        a self-contained capture bundle <tenant>.json
                        into DIR (created if missing)
  --fleet-fault         inject a deterministic sensor-spike fault (+200 on
                        sensed analytics utilization from t=300s) into
                        tenant 0, so a capture-armed fleet run reliably
                        trips an alert
  --hours / --seed also apply in fleet mode.

Postmortem replay (replaces the single-flow and fleet runs):
  --replay=FILE.json    reconstruct a capture bundle's tenant as a solo
                        partition, re-run it to the trigger time with full
                        telemetry forced on, and check the replayed
                        decision chain against the recording (exit 2 on
                        divergence). Honors --threads, --trace-out,
                        --spans-out, --metrics-out, --health-out,
                        --decisions-out, --quiet.
  --decisions-out=FILE  (replay mode) write the canonical control-decision
                        digest text
)";

/// Installs the simulation clock as the log-line time source for the
/// lifetime of the scope, so stderr logs carry "t=<sim seconds>s".
struct ScopedLogClock {
  explicit ScopedLogClock(sim::Simulation* sim) {
    SetLogClock(
        [](void* ctx) { return static_cast<sim::Simulation*>(ctx)->Now(); },
        sim);
  }
  ~ScopedLogClock() { SetLogClock(nullptr, nullptr); }
};

Result<std::shared_ptr<workload::ArrivalProcess>> MakeWorkload(
    const tools::FlagParser& flags, double hours) {
  FLOWER_ASSIGN_OR_RETURN(double rate, flags.GetDouble("rate", 800.0));
  FLOWER_ASSIGN_OR_RETURN(double amplitude,
                          flags.GetDouble("amplitude", 600.0));
  FLOWER_ASSIGN_OR_RETURN(double period_hours,
                          flags.GetDouble("period-hours", 4.0));
  FLOWER_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    FLOWER_ASSIGN_OR_RETURN(TimeSeries trace,
                            workload::LoadRateTraceCsv(trace_path));
    return std::shared_ptr<workload::ArrivalProcess>(
        std::make_shared<workload::TraceArrival>(std::move(trace)));
  }
  std::string kind = flags.GetString("workload", "diurnal");
  if (kind == "constant") {
    return std::shared_ptr<workload::ArrivalProcess>(
        std::make_shared<workload::ConstantArrival>(rate));
  }
  if (kind == "diurnal") {
    return std::shared_ptr<workload::ArrivalProcess>(
        std::make_shared<workload::DiurnalArrival>(rate, amplitude,
                                                   period_hours * kHour));
  }
  if (kind == "flashcrowd") {
    auto composite = std::make_shared<workload::CompositeArrival>();
    composite->Add(std::make_shared<workload::ConstantArrival>(rate));
    composite->Add(std::make_shared<workload::FlashCrowdArrival>(
        0.0, amplitude * 3.0, hours * kHour / 2.0, 30.0 * kMinute,
        5.0 * kMinute));
    return std::shared_ptr<workload::ArrivalProcess>(composite);
  }
  if (kind == "mmpp") {
    return std::shared_ptr<workload::ArrivalProcess>(
        std::make_shared<workload::MmppArrival>(
            rate, rate + 2.0 * amplitude, 20.0 * kMinute, 10.0 * kMinute,
            hours * kHour, static_cast<uint64_t>(seed)));
  }
  return Status::InvalidArgument("unknown --workload: " + kind);
}

struct ReplicaMetrics {
  double drop_pct = 0.0;
  double out_of_band_pct = 0.0;
  double overload_pct = 0.0;
  double mae = 0.0;
  double resizes = 0.0;
};

// Runs one replication of the configured scenario and fills `out`.
// Returns non-zero on error (mirrors RunOrDie's reporting).
Result<ReplicaMetrics> RunReplica(const tools::FlagParser& flags,
                                  uint64_t seed) {
  FLOWER_ASSIGN_OR_RETURN(double hours, flags.GetDouble("hours", 4.0));
  FLOWER_ASSIGN_OR_RETURN(double reference,
                          flags.GetDouble("reference", 60.0));
  FLOWER_ASSIGN_OR_RETURN(double period,
                          flags.GetDouble("monitoring-period", 120.0));
  FLOWER_ASSIGN_OR_RETURN(
      core::ControllerKind kind,
      core::ControllerKindFromString(
          flags.GetString("controller", "adaptive-gain")));
  FLOWER_ASSIGN_OR_RETURN(std::shared_ptr<workload::ArrivalProcess> arrival,
                          MakeWorkload(flags, hours));

  sim::Simulation sim;
  cloudwatch::MetricStore metrics;
  core::LayerElasticityConfig layer_defaults;
  layer_defaults.reference_utilization_pct = reference;
  layer_defaults.monitoring_period_sec = period;
  layer_defaults.monitoring_window_sec = period;
  core::LayerElasticityConfig analytics = layer_defaults;
  analytics.max_resource = 40.0;
  FLOWER_ASSIGN_OR_RETURN(core::ManagedFlow managed,
                          core::FlowBuilder()
                              .WithAnalytics(analytics)
                              .WithControllerKind(kind)
                              .WithWorkload(arrival)
                              .WithSeed(seed)
                              .Build(&sim, &metrics));
  double horizon = hours * kHour;
  sim.RunUntil(horizon);

  ReplicaMetrics out;
  auto& flow = *managed.flow;
  out.drop_pct =
      flow.generator()->total_generated() > 0
          ? 100.0 *
                static_cast<double>(flow.generator()->total_dropped()) /
                static_cast<double>(flow.generator()->total_generated())
          : 0.0;
  FLOWER_ASSIGN_OR_RETURN(const core::LayerControlState* state,
                          managed.manager->GetState(core::Layer::kAnalytics));
  FLOWER_ASSIGN_OR_RETURN(
      control::ControlQuality quality,
      control::EvaluateControl(
          state->sensed.Window(30.0 * kMinute, horizon),
          state->actuations, reference, 15.0, horizon));
  out.out_of_band_pct = 100.0 * quality.violation_fraction;
  out.overload_pct = 100.0 * quality.overload_fraction;
  out.mae = quality.mean_abs_error;
  out.resizes = static_cast<double>(quality.actuation_changes);
  return out;
}

// Replicated mode: run N seeds, print per-seed rows and mean +/- sd.
int RunReplicated(const tools::FlagParser& flags, int64_t seeds) {
  auto seed0 = flags.GetInt("seed", 42);
  if (!seed0.ok()) {
    std::cerr << seed0.status() << "\n";
    return 2;
  }
  TablePrinter table({"seed", "drop %", "out-of-band %", "overload %",
                      "MAE", "resizes"});
  std::vector<ReplicaMetrics> all;
  for (int64_t s = 0; s < seeds; ++s) {
    auto m = RunReplica(flags, static_cast<uint64_t>(*seed0 + s));
    if (!m.ok()) {
      std::cerr << "seed " << (*seed0 + s) << ": " << m.status() << "\n";
      return 1;
    }
    table.AddRow({std::to_string(*seed0 + s),
                  TablePrinter::Num(m->drop_pct, 3),
                  TablePrinter::Num(m->out_of_band_pct, 1),
                  TablePrinter::Num(m->overload_pct, 1),
                  TablePrinter::Num(m->mae, 1),
                  TablePrinter::Num(m->resizes, 0)});
    all.push_back(*m);
  }
  auto stats_row = [&](auto getter) {
    std::vector<double> v;
    for (const ReplicaMetrics& m : all) v.push_back(getter(m));
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    var = v.size() > 1 ? var / static_cast<double>(v.size() - 1) : 0.0;
    return TablePrinter::Num(mean, 2) + " +/- " +
           TablePrinter::Num(std::sqrt(var), 2);
  };
  table.AddRow({"mean",
                stats_row([](const ReplicaMetrics& m) { return m.drop_pct; }),
                stats_row([](const ReplicaMetrics& m) {
                  return m.out_of_band_pct;
                }),
                stats_row([](const ReplicaMetrics& m) {
                  return m.overload_pct;
                }),
                stats_row([](const ReplicaMetrics& m) { return m.mae; }),
                stats_row([](const ReplicaMetrics& m) {
                  return m.resizes;
                })});
  table.Print(std::cout);
  return 0;
}

// Fleet mode: many independent tenant flows sharing one hourly dollar
// budget, re-divided by the hierarchical arbiter every period.
int RunFleet(const tools::FlagParser& flags) {
  auto hours_or = flags.GetDouble("hours", 4.0);
  auto tenants_or = flags.GetInt("fleet-tenants", 16);
  auto budget_or = flags.GetDouble("fleet-budget", 100.0);
  auto period_or = flags.GetDouble("fleet-period", 900.0);
  auto threads_or = flags.GetInt("fleet-threads", 1);
  auto seed_or = flags.GetInt("seed", 42);
  if (!hours_or.ok() || !tenants_or.ok() || !budget_or.ok() ||
      !period_or.ok() || !threads_or.ok() || !seed_or.ok()) {
    std::cerr << "bad numeric flag\n";
    return 2;
  }
  if (*tenants_or < 1 || *threads_or < 1 || *budget_or <= 0.0 ||
      *period_or <= 0.0) {
    std::cerr << "--fleet-tenants/--fleet-threads expect positive integers; "
                 "--fleet-budget/--fleet-period expect positive numbers\n";
    return 2;
  }

  std::string report_out = flags.GetString("fleet-report-out", "");
  std::string capture_dir = flags.GetString("fleet-capture-dir", "");
  std::string sweep = flags.GetString("fleet-sweep", "worksteal");
  if (sweep != "worksteal" && sweep != "lockstep") {
    std::cerr << "--fleet-sweep must be 'worksteal' or 'lockstep'\n";
    return 2;
  }

  fleet::FleetConfig config;
  config.sweep_mode = sweep == "lockstep"
                          ? fleet::FleetConfig::SweepMode::kLockStep
                          : fleet::FleetConfig::SweepMode::kWorkStealing;
  config.fleet_budget_usd_per_hour = *budget_or;
  config.arbitration_period_sec = *period_or;
  config.num_threads = static_cast<size_t>(*threads_or);
  if (!capture_dir.empty()) {
    config.partition.capture.enabled = true;
    config.partition.capture.health_trigger = true;
    config.bundle_dir = capture_dir;
  }
  fleet::FleetManager manager(config);
  std::vector<fleet::TenantConfig> tenants = fleet::MakeTenantFleet(
      static_cast<size_t>(*tenants_or), static_cast<uint64_t>(*seed_or));
  if (flags.GetBool("fleet-tenant-period-jitter")) {
    fleet::ApplyPeriodJitter(&tenants, *period_or,
                             static_cast<uint64_t>(*seed_or));
  }
  if (flags.GetBool("fleet-fault") && !tenants.empty()) {
    // A sensed-utilization spike the controller cannot regulate away:
    // the analytics loop sees +200 points forever, so the burn-rate
    // SLOs breach and (with capture armed) the alert edge dumps a
    // bundle — the deterministic smoke path for the postmortem flow.
    fleet::TenantFault fault;
    fault.kind = "sensor-spike";
    fault.target = "analytics";
    fault.start = 300.0;
    fault.offset = 200.0;
    tenants.front().faults.push_back(fault);
  }
  for (fleet::TenantConfig& t : tenants) {
    Status st = manager.AddTenant(std::move(t));
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  Status st = manager.Start();
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  st = manager.RunFor(*hours_or * kHour);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  TablePrinter table({"period", "window", "demand $/h", "granted $/h",
                      "spend $/h", "steps", "conserved"});
  size_t idx = 0;
  for (const fleet::FleetPeriodReport& report : manager.reports()) {
    double demand = 0.0;
    double spend = 0.0;
    uint64_t steps = 0;
    for (const fleet::TenantPeriodOutcome& row : report.tenants) {
      demand += row.demand_usd;
      spend += row.spend_usd;
      steps += row.steps;
    }
    table.AddRow({std::to_string(idx++),
                  "[" + TablePrinter::Num(report.start / kHour, 2) + "h, " +
                      TablePrinter::Num(report.end / kHour, 2) + "h]",
                  TablePrinter::Num(demand, 2),
                  TablePrinter::Num(report.total_granted_usd, 2),
                  TablePrinter::Num(spend, 2), std::to_string(steps),
                  report.conservation_ok ? "yes" : "NO"});
  }
  std::cout << "fleet: " << manager.num_tenants() << " tenants, $"
            << TablePrinter::Num(*budget_or, 2) << "/h budget, arbitration "
            << "every " << TablePrinter::Num(*period_or, 0) << " s"
            << (flags.GetBool("fleet-tenant-period-jitter")
                    ? " (jittered per tenant)"
                    : "")
            << ", " << *threads_or << " thread(s), " << sweep << " sweep\n";
  table.Print(std::cout);
  // Sweep stats are schedule observables (steals and parks vary run to
  // run at >1 thread), so they go to stderr with the other noise —
  // stdout stays byte-identical across runs, which is the determinism
  // contract every surface honors.
  fleet::FleetSweepStats stats = manager.sweep_stats();
  std::cerr << "sweep: " << stats.arbitration_events << " arbitration events, "
            << stats.tasks_executed << " tasks, " << stats.steals
            << " steals, " << stats.mailbox_waits << " mailbox waits, "
            << "overlap " << TablePrinter::Num(stats.overlap_ratio(), 2)
            << "\n";

  if (!flags.GetBool("quiet")) {
    // Per-tenant view of the final period.
    const fleet::FleetPeriodReport& last = manager.reports().back();
    TablePrinter per_tenant(
        {"tenant", "pattern", "demand $/h", "grant $/h", "spend $/h"});
    for (size_t i = 0; i < last.tenants.size() && i < 20; ++i) {
      const fleet::TenantPeriodOutcome& row = last.tenants[i];
      per_tenant.AddRow(
          {row.tenant,
           fleet::ArrivalPatternToString(manager.partition(i)->tenant().pattern),
           TablePrinter::Num(row.demand_usd, 3),
           TablePrinter::Num(row.grant_usd, 3),
           TablePrinter::Num(row.spend_usd, 3)});
    }
    std::cout << "\nfinal period, first " << std::min<size_t>(20, last.tenants.size())
              << " tenants:\n";
    per_tenant.Print(std::cout);
  }
  if (!report_out.empty()) {
    st = manager.ExportReportsJsonl(report_out);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote fleet period reports to " << report_out << "\n";
  }
  for (const std::string& path : manager.CapturedBundles()) {
    std::cout << "captured bundle: " << path << "\n";
  }
  return 0;
}

int RunOrDie(const tools::FlagParser& flags) {
  auto hours_or = flags.GetDouble("hours", 4.0);
  auto reference_or = flags.GetDouble("reference", 60.0);
  auto period_or = flags.GetDouble("monitoring-period", 120.0);
  auto seed_or = flags.GetInt("seed", 42);
  if (!hours_or.ok() || !reference_or.ok() || !period_or.ok() ||
      !seed_or.ok()) {
    std::cerr << "bad numeric flag\n";
    return 2;
  }
  double hours = *hours_or;
  auto kind =
      core::ControllerKindFromString(flags.GetString("controller",
                                                     "adaptive-gain"));
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return 2;
  }
  auto arrival = MakeWorkload(flags, hours);
  if (!arrival.ok()) {
    std::cerr << arrival.status() << "\n";
    return 2;
  }

  auto threads_or = flags.GetInt("threads", 1);
  if (!threads_or.ok() || *threads_or < 0) {
    std::cerr << "--threads expects a non-negative integer\n";
    return 2;
  }
  auto stall_or = flags.GetInt("stall-generations", 0);
  if (!stall_or.ok() || *stall_or < 0) {
    std::cerr << "--stall-generations expects a non-negative integer\n";
    return 2;
  }
  const bool warm_start = flags.GetBool("warm-start");

  std::string trace_out = flags.GetString("trace-out", "");
  std::string spans_out = flags.GetString("spans-out", "");
  std::string metrics_out = flags.GetString("metrics-out", "");
  std::string health_out = flags.GetString("health-out", "");
  std::string openmetrics_out = flags.GetString("openmetrics-out", "");
  const bool observe = !trace_out.empty() || !spans_out.empty() ||
                       !metrics_out.empty() || !health_out.empty() ||
                       !openmetrics_out.empty();

  // The hub must outlive the managed flow, so it is declared first.
  obs::Telemetry telemetry;
  if (!spans_out.empty()) telemetry.spans().set_enabled(true);
  sim::Simulation sim;
  ScopedLogClock log_clock(&sim);
  cloudwatch::MetricStore metrics;
  core::LayerElasticityConfig layer_defaults;
  layer_defaults.reference_utilization_pct = *reference_or;
  layer_defaults.monitoring_period_sec = *period_or;
  layer_defaults.monitoring_window_sec = *period_or;
  core::LayerElasticityConfig ingestion = layer_defaults;
  ingestion.max_resource = 64.0;
  core::LayerElasticityConfig analytics = layer_defaults;
  analytics.max_resource = 40.0;
  core::LayerElasticityConfig storage = layer_defaults;
  storage.min_resource = 5.0;
  storage.max_resource = 2000.0;

  core::FlowBuilder builder;
  builder.WithIngestion(ingestion)
      .WithAnalytics(analytics)
      .WithStorage(storage)
      .WithControllerKind(*kind)
      .WithWorkload(*arrival)
      .WithSeed(static_cast<uint64_t>(*seed_or));
  if (observe) builder.WithTelemetry(&telemetry);
  auto managed = builder.Build(&sim, &metrics);
  if (!managed.ok()) {
    std::cerr << "failed to build flow: " << managed.status() << "\n";
    return 1;
  }

  if (observe) {
    // An instrumented NSGA-II share-planning pass. The planner runs
    // before the control loops start, so its generation spans anchor at
    // t=0 on the planner track. The plan is reported, not applied:
    // turning tracing on must not change the run it observes.
    core::ResourceShareRequest request;
    opt::Nsga2Config solver;
    solver.population_size = 48;
    solver.generations = 40;
    solver.seed = static_cast<uint64_t>(*seed_or);
    solver.num_threads = static_cast<size_t>(*threads_or);
    solver.on_generation =
        obs::MakeNsga2Observer(&telemetry, "share-planner", /*anchor=*/0.0);
    core::IncrementalPlanning inc;
    inc.warm_start = warm_start;
    inc.stall_generations = static_cast<size_t>(*stall_or);
    core::ResourceShareAnalyzer analyzer(solver, inc);
    analyzer.SetMetricsRegistry(&telemetry.metrics());
    auto shares = analyzer.AnalyzeIncremental(request);
    if (shares.ok() && warm_start) {
      // A second planning period over the same request, seeded from the
      // first period's final population — demonstrates the incremental
      // engine's convergence speedup in the exported telemetry.
      size_t cold_evals = shares->evaluations;
      shares = analyzer.AnalyzeIncremental(request);
      if (shares.ok()) {
        FLOWER_LOG(Info) << "warm-started re-plan: " << shares->evaluations
                         << " evaluations (cold period: " << cold_evals
                         << ")" << (shares->early_exit ? ", early exit" : "");
      }
    }
    if (shares.ok()) {
      auto plan =
          core::ResourceShareAnalyzer::PickBalancedPlan(*shares, request);
      if (plan.ok()) {
        FLOWER_LOG(Info) << "share plan (balanced): ingestion="
                         << plan->ingestion()
                         << " analytics=" << plan->analytics()
                         << " storage=" << plan->storage() << " cost=$"
                         << plan->hourly_cost_usd << "/h";
      }
    } else {
      FLOWER_LOG(Warning) << "share planning failed: " << shares.status();
    }
  }

  // The flow-health layer: stock SLO pack over the per-loop sensed
  // utilization, anomaly detectors on the loop gauges and failure
  // counters, periodic Eq. 1 dependency re-learning for attribution,
  // and the health annotator stamping decision records.
  std::unique_ptr<obs::health::HealthMonitor> health;
  core::DependencyAnalyzer dep_analyzer;
  if (!health_out.empty()) {
    obs::health::HealthMonitorConfig hcfg;
    hcfg.eval_period_sec = *period_or;
    health = std::make_unique<obs::health::HealthMonitor>(&telemetry, hcfg);
    for (const obs::health::SloSpec& spec :
         obs::health::MakeDefaultSloPack()) {
      Status st = health->AddSlo(spec);
      if (!st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
    }
    for (const char* layer : {"ingestion", "analytics", "storage"}) {
      obs::LabelSet labels{{"loop", layer}, {"layer", layer}};
      health->Watch(obs::health::AnomalyBank::Source::kGauge,
                    {"loop.sensed_y", labels}, layer);
      health->Watch(obs::health::AnomalyBank::Source::kCounterRate,
                    {"loop.actuation_failures", labels}, layer);
    }
    managed->manager->SetHealthAnnotator(
        [&health](const std::string& layer, SimTime) {
          return health->MaskFor(layer);
        });
    sim.SchedulePeriodic(hcfg.eval_period_sec, hcfg.eval_period_sec,
                         [&health, &sim] {
                           health->Evaluate(sim.Now());
                           return true;
                         });
    sim.SchedulePeriodic(
        30.0 * kMinute, 30.0 * kMinute, [&health, &dep_analyzer, &metrics,
                                         &sim] {
          std::vector<core::LayerMetric> lm = {
              {core::Layer::kIngestion,
               {"Flower/Kinesis", "IncomingRecords", "clickstream"}},
              {core::Layer::kAnalytics,
               {"Flower/Storm", "CpuUtilization", "storm"}},
              {core::Layer::kStorage,
               {"Flower/DynamoDB", "ConsumedWriteCapacityUnits",
                "aggregates"}}};
          health->SetDependencyEdges(core::ToHealthEdges(
              dep_analyzer.AnalyzeAll(metrics, lm, 0.0, sim.Now())));
          return true;
        });
  }

  double horizon = hours * kHour;
  sim.RunUntil(horizon);

  // Summary.
  auto& flow = *managed->flow;
  TablePrinter summary({"metric", "value"});
  summary.AddRow({"controller", core::ControllerKindToString(*kind)});
  summary.AddRow({"simulated hours", TablePrinter::Num(hours, 1)});
  summary.AddRow({"events generated",
                  std::to_string(flow.generator()->total_generated())});
  double drop_pct =
      flow.generator()->total_generated() > 0
          ? 100.0 * static_cast<double>(flow.generator()->total_dropped()) /
                static_cast<double>(flow.generator()->total_generated())
          : 0.0;
  summary.AddRow({"drop rate %", TablePrinter::Num(drop_pct, 3)});
  summary.AddRow({"tuples acked",
                  std::to_string(flow.cluster().total_acked())});
  summary.AddRow({"final shards",
                  std::to_string(flow.stream().shard_count())});
  summary.AddRow({"final workers",
                  std::to_string(flow.cluster().worker_count())});
  summary.AddRow({"final WCU",
                  TablePrinter::Num(flow.table().provisioned_wcu(), 0)});
  auto state = managed->manager->GetState(core::Layer::kAnalytics);
  if (state.ok() && !(*state)->sensed.empty()) {
    auto quality = control::EvaluateControl(
        (*state)->sensed.Window(30.0 * kMinute, horizon),
        (*state)->actuations, *reference_or, 15.0, horizon);
    if (quality.ok()) {
      summary.AddRow({"analytics out-of-band %",
                      TablePrinter::Num(
                          100.0 * quality->violation_fraction, 1)});
      summary.AddRow({"analytics overload %",
                      TablePrinter::Num(
                          100.0 * quality->overload_fraction, 1)});
      summary.AddRow(
          {"analytics MAE", TablePrinter::Num(quality->mean_abs_error, 1)});
      summary.AddRow({"resizes",
                      std::to_string(quality->actuation_changes)});
    }
  }
  summary.Print(std::cout);

  if (!flags.GetBool("quiet")) {
    core::CrossPlatformMonitor monitor(&metrics);
    monitor.Watch({"Flower/Kinesis", "WriteUtilization", "clickstream"});
    monitor.Watch({"Flower/Kinesis", "ShardCount", "clickstream"});
    monitor.Watch({"Flower/Storm", "CpuUtilization", "storm"});
    monitor.Watch({"Flower/Storm", "WorkerCount", "storm"});
    monitor.Watch({"Flower/DynamoDB", "WriteUtilization", "aggregates"});
    monitor.RenderDashboard(std::cout, std::max(0.0, horizon - kHour),
                            horizon, /*with_charts=*/true);
  }

  std::string csv_out = flags.GetString("csv-out", "");
  if (!csv_out.empty()) {
    std::ofstream out(csv_out);
    if (!out) {
      std::cerr << "cannot write " << csv_out << "\n";
      return 1;
    }
    core::CrossPlatformMonitor monitor(&metrics);
    monitor.WatchNamespace("");
    monitor.DumpCsv(out, 0.0, horizon);
    std::cout << "\nwrote metric CSV to " << csv_out << "\n";
  }

  if (!trace_out.empty()) {
    Status st = telemetry.ExportTrace(trace_out);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote Chrome trace (" << telemetry.trace().events().size()
              << " events) to " << trace_out << "\n";
  }
  if (!spans_out.empty()) {
    Status st = telemetry.ExportSpans(spans_out);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << telemetry.spans().size() << " causal spans ("
              << telemetry.spans().total_started() << " started, "
              << telemetry.spans().evicted() << " evicted) to " << spans_out
              << "\n";
  }
  if (!metrics_out.empty()) {
    Status st = telemetry.ExportJsonl(metrics_out, horizon);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote " << telemetry.decisions().Snapshot().size()
              << " decision records + metrics snapshot to " << metrics_out
              << "\n";
  }
  if (health != nullptr) {
    Status st = health->ExportJsonl(health_out);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote health state (" << health->Statuses().size()
              << " SLOs, " << health->ActiveAlerts().size()
              << " active alerts, " << health->reports().size()
              << " reports) to " << health_out << "\n";
  }
  if (!openmetrics_out.empty()) {
    Status st = obs::ExportToFile(openmetrics_out, [&](std::ostream& os) {
      obs::WriteSnapshotOpenMetrics(os, telemetry.metrics().Snapshot());
    });
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "wrote OpenMetrics snapshot to " << openmetrics_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n" << kUsage;
    return 2;
  }
  if (flags->GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  auto unknown = flags->UnknownKeys(
      {"controller", "workload", "trace", "rate", "amplitude",
       "period-hours", "hours", "reference", "monitoring-period", "seed",
       "seeds", "threads", "warm-start", "stall-generations", "csv-out",
       "trace-out", "spans-out", "metrics-out", "health-out",
       "openmetrics-out", "quiet", "help", "fleet", "fleet-tenants",
       "fleet-budget", "fleet-period", "fleet-threads", "fleet-sweep",
       "fleet-tenant-period-jitter", "fleet-report-out",
       "fleet-capture-dir", "fleet-fault", "replay", "decisions-out"});
  if (!unknown.empty()) {
    std::cerr << "unknown flag: --" << unknown.front() << "\n" << kUsage;
    return 2;
  }
  std::string replay_path = flags->GetString("replay", "");
  if (!replay_path.empty()) {
    auto threads = flags->GetInt("threads", 1);
    if (!threads.ok() || *threads < 1) {
      std::cerr << "--threads expects a positive integer\n";
      return 2;
    }
    tools::ReplayCliOptions options;
    options.bundle_path = replay_path;
    options.threads = static_cast<size_t>(*threads);
    options.trace_out = flags->GetString("trace-out", "");
    options.spans_out = flags->GetString("spans-out", "");
    options.metrics_out = flags->GetString("metrics-out", "");
    options.health_out = flags->GetString("health-out", "");
    options.decisions_out = flags->GetString("decisions-out", "");
    options.quiet = flags->GetBool("quiet");
    return tools::RunReplayCli(options);
  }
  if (flags->GetBool("fleet")) return RunFleet(*flags);
  auto seeds = flags->GetInt("seeds", 1);
  if (!seeds.ok() || *seeds < 1) {
    std::cerr << "--seeds expects a positive integer\n";
    return 2;
  }
  if (*seeds > 1) return RunReplicated(*flags, *seeds);
  return RunOrDie(*flags);
}
