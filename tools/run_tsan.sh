#!/usr/bin/env bash
# Configure a ThreadSanitizer build and run the planner test label under
# it. These tests drive the exec::ThreadPool fan-out inside NSGA-II and
# the windowed planner at multiple thread counts, where ordering bugs
# (a worker publishing results the coordinator reads without a
# happens-before edge) would hide from the plain build.
#
# The simcore label rides along: the simulation calendar is documented
# single-threaded, and running its property tests under TSan keeps any
# future threading of the event loop honest from day one.
#
# The obs label rides along for the scoped-registry concurrency tests:
# parallel writers hammer per-scope instruments while an aggregator
# merges snapshots, which is exactly the lock-free atomic path a missed
# memory-order edge would corrupt silently in the plain build.
#
# The fleet label rides along for the multi-tenant sweep: partitions
# advance concurrently over exec::ThreadPool and span ids allocate from
# an atomic counter, exactly where a plain-uint64 increment raced
# before; the determinism-across-thread-counts tests double as the
# regression certificate for that fix.
#
# The replay label rides along because replay re-runs a captured tenant
# at arbitrary flow-solver thread counts and asserts byte-identical
# digests — any missed happens-before edge in the solver fan-out shows
# up here as a divergence long before it corrupts a real postmortem.
#
#   $ tools/run_tsan.sh        # build + ctest -L 'planner|simcore|obs|fleet|replay'
#   $ tools/run_tsan.sh -R ThreadPool  # forward extra ctest args
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tsan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFLOWER_SANITIZE_THREAD=ON \
  -DFLOWER_BUILD_BENCHMARKS=OFF \
  -DFLOWER_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)" \
  --target exec_tests opt_tests core_tests sim_tests simcore_tests \
  obs_tests fleet_tests replay_tests flower-sim

cd "${build_dir}"
TSAN_OPTIONS=halt_on_error=1 \
  ctest -L 'planner|simcore|obs|fleet|replay' --output-on-failure "$@"

# End-to-end: a multi-threaded planning pass through the CLI, with the
# telemetry trace enabled, must be race-free too.
TSAN_OPTIONS=halt_on_error=1 \
  ./tools/flower-sim --hours=1 --threads=4 --quiet \
    --trace-out="${build_dir}/tsan-trace.json"

# And the multi-tenant fleet sweep: partitions advancing concurrently
# over the thread pool, budgets handed off at every period boundary.
TSAN_OPTIONS=halt_on_error=1 \
  ./tools/flower-sim --fleet --fleet-tenants=8 --fleet-threads=4 \
    --hours=1 --quiet

# The heterogeneous-horizon work-stealing sweep: tenants arbitrate on
# different cadences, so boundary events interleave, partitions park on
# budget mailboxes mid-sweep, and idle workers steal — every acquire/
# release edge of the mailbox handoff and the park/resume baton gets
# exercised where TSan can see it.
TSAN_OPTIONS=halt_on_error=1 \
  ./tools/flower-sim --fleet --fleet-tenants=8 --fleet-threads=4 \
    --fleet-tenant-period-jitter --hours=1 --quiet
