#include "tools/flag_parser.h"

#include <algorithm>

namespace flower::tools {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("unexpected argument: '" + arg +
                                     "' (flags are --key=value)");
    }
    std::string body = arg.substr(2);
    std::string key = body, value = "true";
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    if (parser.flags_.count(key) > 0) {
      return Status::InvalidArgument("duplicate flag: --" + key);
    }
    parser.flags_[key] = value;
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

Result<double> FlagParser::GetDouble(const std::string& key,
                                     double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    size_t pos = 0;
    double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (...) {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   it->second + "'");
  }
}

Result<int64_t> FlagParser::GetInt(const std::string& key,
                                   int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    size_t pos = 0;
    int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (...) {
    return Status::InvalidArgument("--" + key + " expects an integer, got '" +
                                   it->second + "'");
  }
}

bool FlagParser::GetBool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> FlagParser::UnknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : flags_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace flower::tools
