// flower_replay — deterministic postmortem replay of a capture bundle.
//
// A fleet run with flight-recorder capture on dumps a self-contained
// bundle (<tenant>.json) when a burn-rate alert fires. This tool
// reconstructs that tenant as a solo partition, re-runs it to the
// trigger time with full-fidelity telemetry forced on, and compares
// the replayed control-decision chain against the recording:
//
//   flower_replay --bundle=bundles/tenant-0003.json \
//       --spans-out=spans.json --trace-out=trace.json \
//       --health-out=health.jsonl --decisions-out=digest.txt
//
// Exit code 0 when the replay matches the capture byte-for-byte,
// 2 when the divergence checker finds a mismatch, 1 on errors.

#include <iostream>

#include "tools/flag_parser.h"
#include "tools/replay_runner.h"

namespace {

constexpr const char* kUsage = R"(flower_replay — postmortem replay driver

Flags:
  --bundle=FILE.json    capture bundle to replay (required)
  --threads=N           NSGA-II solver threads for the solo re-plan; the
                        replayed digest is identical at any N        [1]
  --trace-out=FILE      write a Chrome trace_event JSON of the replay
  --spans-out=FILE      write causal control spans as Chrome trace JSON
  --metrics-out=FILE    write decision records + metrics snapshot JSONL
  --health-out=FILE     write the replayed HealthMonitor state JSONL
  --decisions-out=FILE  write the canonical control-decision digest text
  --quiet               verdict only
  --help                this text

Exit codes: 0 = replay matches the capture, 2 = divergence detected,
1 = error (unreadable bundle, malformed spec, export failure).
)";

}  // namespace

int main(int argc, char** argv) {
  auto flags = flower::tools::FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n" << kUsage;
    return 1;
  }
  if (flags->GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  auto unknown = flags->UnknownKeys({"bundle", "threads", "trace-out",
                                     "spans-out", "metrics-out", "health-out",
                                     "decisions-out", "quiet", "help"});
  if (!unknown.empty()) {
    std::cerr << "unknown flag: --" << unknown.front() << "\n" << kUsage;
    return 1;
  }
  flower::tools::ReplayCliOptions options;
  options.bundle_path = flags->GetString("bundle", "");
  if (options.bundle_path.empty()) {
    std::cerr << "--bundle is required\n" << kUsage;
    return 1;
  }
  auto threads = flags->GetInt("threads", 1);
  if (!threads.ok() || *threads < 1) {
    std::cerr << "--threads expects a positive integer\n";
    return 1;
  }
  options.threads = static_cast<size_t>(*threads);
  options.trace_out = flags->GetString("trace-out", "");
  options.spans_out = flags->GetString("spans-out", "");
  options.metrics_out = flags->GetString("metrics-out", "");
  options.health_out = flags->GetString("health-out", "");
  options.decisions_out = flags->GetString("decisions-out", "");
  options.quiet = flags->GetBool("quiet");
  return flower::tools::RunReplayCli(options);
}
