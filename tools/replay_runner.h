#ifndef FLOWER_TOOLS_REPLAY_RUNNER_H_
#define FLOWER_TOOLS_REPLAY_RUNNER_H_

#include <cstddef>
#include <string>

namespace flower::tools {

/// Options for one postmortem replay: which bundle, how many solver
/// threads, and where to export the full-fidelity telemetry the
/// original (record-cheap) fleet run had disabled.
struct ReplayCliOptions {
  std::string bundle_path;
  size_t threads = 1;
  std::string trace_out;      ///< Chrome trace_event JSON.
  std::string spans_out;      ///< Causal spans as Chrome trace JSON.
  std::string metrics_out;    ///< Decision records + metrics snapshot JSONL.
  std::string health_out;     ///< HealthMonitor state JSONL.
  std::string decisions_out;  ///< Canonical control-decision digest text.
  bool quiet = false;
};

/// Loads the bundle, reconstructs the tenant solo, re-runs to the
/// trigger, runs the divergence checker, and writes any requested
/// exports. Returns a process exit code: 0 replay matched the capture,
/// 2 divergence detected, 1 operational error (unreadable bundle,
/// malformed spec, export failure).
int RunReplayCli(const ReplayCliOptions& options);

}  // namespace flower::tools

#endif  // FLOWER_TOOLS_REPLAY_RUNNER_H_
