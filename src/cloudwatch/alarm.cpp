#include "cloudwatch/alarm.h"

namespace flower::cloudwatch {

std::string AlarmStateToString(AlarmState s) {
  switch (s) {
    case AlarmState::kInsufficientData: return "INSUFFICIENT_DATA";
    case AlarmState::kOk: return "OK";
    case AlarmState::kAlarm: return "ALARM";
  }
  return "UNKNOWN";
}

AlarmState Alarm::Evaluate(const MetricStore& store, SimTime now) {
  AlarmState next = AlarmState::kOk;
  int breaches = 0;
  bool insufficient = false;
  for (int i = 0; i < config_.evaluation_periods; ++i) {
    SimTime t1 = now - static_cast<double>(i) * config_.period;
    SimTime t0 = t1 - config_.period;
    auto stat = store.GetStatistic(config_.metric, t0, t1, config_.statistic);
    if (!stat.ok()) {
      insufficient = true;
      break;
    }
    if (Breaches(*stat)) ++breaches;
  }
  if (insufficient) {
    next = AlarmState::kInsufficientData;
  } else if (breaches == config_.evaluation_periods) {
    next = AlarmState::kAlarm;
  }
  if (next != state_) {
    AlarmState old = state_;
    state_ = next;
    if (on_state_change_) on_state_change_(*this, old, next);
  }
  return state_;
}

}  // namespace flower::cloudwatch
