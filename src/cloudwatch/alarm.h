#ifndef FLOWER_CLOUDWATCH_ALARM_H_
#define FLOWER_CLOUDWATCH_ALARM_H_

#include <functional>
#include <string>

#include "cloudwatch/metric_store.h"

namespace flower::cloudwatch {

enum class AlarmState { kInsufficientData, kOk, kAlarm };
enum class Comparison { kGreaterThan, kLessThan };

std::string AlarmStateToString(AlarmState s);

/// Configuration of a threshold alarm over one metric, mirroring the
/// CloudWatch alarm model: the alarm fires after `evaluation_periods`
/// consecutive periods whose aggregated statistic breaches `threshold`.
struct AlarmConfig {
  std::string name;
  MetricId metric;
  Statistic statistic = Statistic::kAverage;
  double threshold = 0.0;
  Comparison comparison = Comparison::kGreaterThan;
  double period = 60.0;        ///< Aggregation period, seconds.
  int evaluation_periods = 1;  ///< Consecutive breaches required.
};

/// Threshold alarm. The rule-based baseline autoscaler and the
/// monitoring dashboard both consume alarms; Flower's own controllers
/// do not (they read statistics directly).
class Alarm {
 public:
  using StateChangeCallback =
      std::function<void(const Alarm&, AlarmState old_state, AlarmState new_state)>;

  explicit Alarm(AlarmConfig config) : config_(std::move(config)) {}

  /// Re-evaluates the alarm at time `now` against the store by
  /// aggregating the last `evaluation_periods` windows of length
  /// `period` ending at `now`. Returns the (possibly unchanged) state.
  AlarmState Evaluate(const MetricStore& store, SimTime now);

  AlarmState state() const { return state_; }
  const AlarmConfig& config() const { return config_; }
  void set_on_state_change(StateChangeCallback cb) {
    on_state_change_ = std::move(cb);
  }

 private:
  bool Breaches(double value) const {
    return config_.comparison == Comparison::kGreaterThan
               ? value > config_.threshold
               : value < config_.threshold;
  }

  AlarmConfig config_;
  AlarmState state_ = AlarmState::kInsufficientData;
  StateChangeCallback on_state_change_;
};

}  // namespace flower::cloudwatch

#endif  // FLOWER_CLOUDWATCH_ALARM_H_
