#include "cloudwatch/metric_store.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace flower::cloudwatch {

std::string StatisticToString(Statistic s) {
  switch (s) {
    case Statistic::kAverage: return "Average";
    case Statistic::kSum: return "Sum";
    case Statistic::kMinimum: return "Minimum";
    case Statistic::kMaximum: return "Maximum";
    case Statistic::kSampleCount: return "SampleCount";
    case Statistic::kP50: return "p50";
    case Statistic::kP90: return "p90";
    case Statistic::kP99: return "p99";
  }
  return "Unknown";
}

Status MetricStore::Put(const MetricId& id, SimTime time, double value) {
  auto it = series_.find(id);
  if (it == series_.end()) {
    it = series_.emplace(id, TimeSeries(id.ToString())).first;
  }
  FLOWER_RETURN_NOT_OK(it->second.Append(time, value));
  ++total_datapoints_;
  return Status::OK();
}

namespace {

Result<double> Aggregate(const std::vector<double>& v, Statistic stat) {
  switch (stat) {
    case Statistic::kAverage:
      return stats::Mean(v);
    case Statistic::kSum: {
      double s = 0.0;
      for (double x : v) s += x;
      return s;
    }
    case Statistic::kMinimum:
      return *std::min_element(v.begin(), v.end());
    case Statistic::kMaximum:
      return *std::max_element(v.begin(), v.end());
    case Statistic::kSampleCount:
      return static_cast<double>(v.size());
    // Percentile sorts its input, so only these branches pay a copy.
    case Statistic::kP50:
      return stats::Percentile(v, 50.0);
    case Statistic::kP90:
      return stats::Percentile(v, 90.0);
    case Statistic::kP99:
      return stats::Percentile(v, 99.0);
  }
  return Status::Internal("GetStatistic: unhandled statistic");
}

}  // namespace

Result<double> MetricStore::GetStatistic(const MetricId& id, SimTime t0,
                                         SimTime t1, Statistic stat) const {
  if (t1 <= t0) {
    return Status::InvalidArgument("GetStatistic: t1 must exceed t0");
  }
  auto it = series_.find(id);
  if (it == series_.end()) {
    return Status::NotFound("GetStatistic: unknown metric " + id.ToString());
  }
  // Trailing-window semantics (t0, t1]: see the class comment.
  TimeSeries window = it->second.WindowLeftOpen(t0, t1);
  if (window.empty()) {
    return Status::NotFound("GetStatistic: no datapoints in window for " +
                            id.ToString());
  }
  return Aggregate(window.Values(), stat);
}

Result<TimeSeries> MetricStore::GetStatisticSeries(const MetricId& id,
                                                   SimTime t0, SimTime t1,
                                                   double period,
                                                   Statistic stat) const {
  if (period <= 0.0) {
    return Status::InvalidArgument("GetStatisticSeries: period must be > 0");
  }
  if (t1 <= t0) {
    return Status::InvalidArgument("GetStatisticSeries: t1 must exceed t0");
  }
  auto it = series_.find(id);
  if (it == series_.end()) {
    return Status::NotFound("GetStatisticSeries: unknown metric " +
                            id.ToString());
  }
  TimeSeries out(id.ToString() + "/" + std::string(StatisticToString(stat)));
  // Buckets tile [t0, t1) left to right and the samples are time-
  // sorted, so one forward sweep visits every sample once — no
  // per-bucket lower_bound, no per-bucket TimeSeries copy. Bucket
  // semantics stay [start, end): a sample at a bucket start belongs to
  // that bucket, not the previous one.
  const std::vector<Sample>& samples = it->second.samples();
  auto cur = std::lower_bound(
      samples.begin(), samples.end(), t0,
      [](const Sample& s, SimTime t) { return s.time < t; });
  std::vector<double> bucket_values;
  for (SimTime start = t0; start < t1; start += period) {
    SimTime end = std::min(start + period, t1);
    bucket_values.clear();
    while (cur != samples.end() && cur->time < end) {
      bucket_values.push_back(cur->value);
      ++cur;
    }
    if (bucket_values.empty()) continue;  // Empty period.
    auto value = Aggregate(bucket_values, stat);
    if (!value.ok()) continue;
    out.AppendUnchecked(start, *value);
  }
  return out;
}

Result<const TimeSeries*> MetricStore::GetSeries(const MetricId& id) const {
  auto it = series_.find(id);
  if (it == series_.end()) {
    return Status::NotFound("GetSeries: unknown metric " + id.ToString());
  }
  return &it->second;
}

std::vector<MetricId> MetricStore::ListMetrics(const std::string& ns) const {
  std::vector<MetricId> out;
  for (const auto& [id, ts] : series_) {
    if (ns.empty() || id.metric_namespace == ns) out.push_back(id);
  }
  return out;
}

}  // namespace flower::cloudwatch
