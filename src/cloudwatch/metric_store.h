#ifndef FLOWER_CLOUDWATCH_METRIC_STORE_H_
#define FLOWER_CLOUDWATCH_METRIC_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"

namespace flower::cloudwatch {

/// Fully qualified metric identity: namespace (one per simulated
/// service, e.g. "AWS/Kinesis") + metric name + one dimension value
/// (e.g. the stream/table/cluster name).
struct MetricId {
  std::string metric_namespace;
  std::string name;
  std::string dimension;

  bool operator<(const MetricId& o) const {
    if (metric_namespace != o.metric_namespace)
      return metric_namespace < o.metric_namespace;
    if (name != o.name) return name < o.name;
    return dimension < o.dimension;
  }
  bool operator==(const MetricId& o) const = default;
  std::string ToString() const {
    return metric_namespace + "/" + name + "{" + dimension + "}";
  }
};

/// Aggregation functions offered by the statistics query API.
enum class Statistic { kAverage, kSum, kMinimum, kMaximum, kSampleCount,
                       kP50, kP90, kP99 };

std::string StatisticToString(Statistic s);

/// The cross-platform metric store (the simulated stand-in for Amazon
/// CloudWatch, §3.4). Every simulated service publishes its metrics
/// here; Flower's sensors and the all-in-one-place visualizer read them
/// back through the statistics query API.
///
/// Window-boundary contract (pinned by metric_store_test):
///  - `GetStatistic(t0, t1)` aggregates over the half-open interval
///    **(t0, t1]** — trailing-window semantics. A sensor querying
///    `(now - window, now]` sees a datapoint stamped exactly at `now`,
///    and two consecutive control steps with back-to-back windows each
///    count an edge datapoint exactly once.
///  - `GetStatisticSeries` buckets over **[start, start + period)** —
///    CloudWatch "period" semantics, a sample at a bucket start belongs
///    to that bucket.
class MetricStore {
 public:
  /// Records one datapoint. Datapoints per metric must arrive in
  /// non-decreasing time order (the simulation guarantees this).
  Status Put(const MetricId& id, SimTime time, double value);

  /// Aggregate of the datapoints of `id` in (t0, t1]. Errors: unknown
  /// metric, empty window, or t1 <= t0.
  Result<double> GetStatistic(const MetricId& id, SimTime t0, SimTime t1,
                              Statistic stat) const;

  /// One aggregated datapoint per `period` seconds over [t0, t1), i.e.
  /// the CloudWatch "period" form of GetMetricStatistics: the returned
  /// series has one sample per non-empty period, stamped at the period
  /// start. Errors: unknown metric, t1 <= t0, or period <= 0.
  Result<TimeSeries> GetStatisticSeries(const MetricId& id, SimTime t0,
                                        SimTime t1, double period,
                                        Statistic stat) const;

  /// Full series for a metric (NotFound when never written).
  Result<const TimeSeries*> GetSeries(const MetricId& id) const;

  /// All metric ids currently present, optionally filtered by
  /// namespace ("" = all). Sorted.
  std::vector<MetricId> ListMetrics(const std::string& ns = "") const;

  size_t metric_count() const { return series_.size(); }
  size_t total_datapoints() const { return total_datapoints_; }

 private:
  std::map<MetricId, TimeSeries> series_;
  size_t total_datapoints_ = 0;
};

}  // namespace flower::cloudwatch

#endif  // FLOWER_CLOUDWATCH_METRIC_STORE_H_
