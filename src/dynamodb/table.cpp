#include "dynamodb/table.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace flower::dynamodb {

namespace {
constexpr const char* kNamespace = "Flower/DynamoDB";

double WcuForSize(int32_t size_bytes) {
  return std::max(1.0, std::ceil(static_cast<double>(size_bytes) /
                                 static_cast<double>(kDynamoWcuBytes)));
}
double RcuForSize(int32_t size_bytes) {
  return std::max(1.0, std::ceil(static_cast<double>(size_bytes) /
                                 static_cast<double>(kDynamoRcuBytes)));
}
}  // namespace

Table::Table(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
             TableConfig config)
    : sim_(sim), metrics_(metrics), config_(std::move(config)) {
  wcu_ = std::clamp(config_.initial_wcu, config_.min_wcu, config_.max_wcu);
  rcu_ = std::clamp(config_.initial_rcu, config_.min_rcu, config_.max_rcu);
  pending_wcu_ = wcu_;
  pending_rcu_ = rcu_;
  write_tokens_ = wcu_;  // Start with one second of capacity banked.
  read_tokens_ = rcu_;
  last_refill_ = sim_->Now();
  period_start_ = sim_->Now();
  current_day_ = static_cast<int64_t>(sim_->Now() / kDay);
  if (metrics_ != nullptr) {
    Status st = sim_->SchedulePeriodic(
        sim_->Now() + config_.metrics_period_sec, config_.metrics_period_sec,
        [this] {
          PublishMetrics();
          return true;
        });
    FLOWER_CHECK(st.ok()) << st.ToString();
  }
}

void Table::RefillTokens(SimTime now) {
  double dt = now - last_refill_;
  if (dt <= 0.0) return;
  write_tokens_ =
      std::min(wcu_ * config_.burst_window_sec, write_tokens_ + dt * wcu_);
  read_tokens_ =
      std::min(rcu_ * config_.burst_window_sec, read_tokens_ + dt * rcu_);
  last_refill_ = now;
}

Status Table::PutItem(int64_t key, std::string value, int32_t size_bytes) {
  if (size_bytes <= 0) {
    return Status::InvalidArgument("PutItem: non-positive item size");
  }
  SimTime now = sim_->Now();
  RefillTokens(now);
  double cost = WcuForSize(size_bytes);
  if (write_tokens_ < cost) {
    ++total_throttled_writes_;
    ++period_throttled_;
    return Status::Throttled("DynamoDB '" + config_.name +
                             "': write throughput exceeded");
  }
  write_tokens_ -= cost;
  period_consumed_wcu_ += cost;
  ++total_writes_;
  items_[key] = std::move(value);
  return Status::OK();
}

Result<std::string> Table::GetItem(int64_t key, int32_t size_bytes) {
  if (size_bytes <= 0) {
    return Status::InvalidArgument("GetItem: non-positive item size");
  }
  SimTime now = sim_->Now();
  RefillTokens(now);
  double cost = RcuForSize(size_bytes);
  if (read_tokens_ < cost) {
    ++total_throttled_reads_;
    ++period_throttled_;
    return Status::Throttled("DynamoDB '" + config_.name +
                             "': read throughput exceeded");
  }
  read_tokens_ -= cost;
  period_consumed_rcu_ += cost;
  auto it = items_.find(key);
  if (it == items_.end()) {
    return Status::NotFound("DynamoDB '" + config_.name + "': no item " +
                            std::to_string(key));
  }
  return it->second;
}

Result<double> Table::UpdateItemAdd(int64_t key, double delta,
                                    int32_t size_bytes) {
  if (size_bytes <= 0) {
    return Status::InvalidArgument("UpdateItemAdd: non-positive item size");
  }
  SimTime now = sim_->Now();
  RefillTokens(now);
  double cost = WcuForSize(size_bytes);
  if (write_tokens_ < cost) {
    ++total_throttled_writes_;
    ++period_throttled_;
    return Status::Throttled("DynamoDB '" + config_.name +
                             "': write throughput exceeded");
  }
  double current = 0.0;
  auto it = items_.find(key);
  if (it != items_.end()) {
    try {
      size_t pos = 0;
      current = std::stod(it->second, &pos);
      if (pos != it->second.size()) {
        return Status::FailedPrecondition(
            "UpdateItemAdd: existing value is not numeric");
      }
    } catch (...) {
      return Status::FailedPrecondition(
          "UpdateItemAdd: existing value is not numeric");
    }
  }
  write_tokens_ -= cost;
  period_consumed_wcu_ += cost;
  ++total_writes_;
  double next = current + delta;
  items_[key] = std::to_string(next);
  return next;
}

Status Table::DeleteItem(int64_t key, int32_t size_bytes) {
  if (size_bytes <= 0) {
    return Status::InvalidArgument("DeleteItem: non-positive item size");
  }
  SimTime now = sim_->Now();
  RefillTokens(now);
  double cost = WcuForSize(size_bytes);
  if (write_tokens_ < cost) {
    ++total_throttled_writes_;
    ++period_throttled_;
    return Status::Throttled("DynamoDB '" + config_.name +
                             "': write throughput exceeded");
  }
  write_tokens_ -= cost;
  period_consumed_wcu_ += cost;
  ++total_writes_;
  items_.erase(key);
  return Status::OK();
}

Status Table::SetProvisionedThroughput(double wcu, double rcu) {
  if (wcu < config_.min_wcu || wcu > config_.max_wcu ||
      rcu < config_.min_rcu || rcu > config_.max_rcu) {
    return Status::InvalidArgument(
        "SetProvisionedThroughput: capacity outside configured bounds");
  }
  SimTime now = sim_->Now();
  int64_t day = static_cast<int64_t>(now / kDay);
  if (day != current_day_) {
    current_day_ = day;
    decreases_today_ = 0;
  }
  bool is_decrease = wcu < pending_wcu_ || rcu < pending_rcu_;
  if (is_decrease && config_.max_decreases_per_day > 0 &&
      decreases_today_ >= config_.max_decreases_per_day) {
    return Status::ResourceExhausted(
        "DynamoDB '" + config_.name +
        "': daily provisioned-throughput decrease limit reached");
  }
  if (is_decrease) ++decreases_today_;
  pending_wcu_ = wcu;
  pending_rcu_ = rcu;
  change_in_flight_ = true;
  uint64_t epoch = ++change_epoch_;
  return sim_->ScheduleAfter(config_.provisioning_delay_sec, [this, epoch] {
    if (epoch != change_epoch_) return;  // Superseded.
    RefillTokens(sim_->Now());
    wcu_ = pending_wcu_;
    rcu_ = pending_rcu_;
    // Cap banked burst tokens to the new capacity's window.
    write_tokens_ = std::min(write_tokens_, wcu_ * config_.burst_window_sec);
    read_tokens_ = std::min(read_tokens_, rcu_ * config_.burst_window_sec);
    change_in_flight_ = false;
  });
}

double Table::CurrentWriteUtilizationPct() const {
  SimTime now = sim_->Now();
  double elapsed = now - period_start_;
  if (elapsed <= 0.0 || wcu_ <= 0.0) return 0.0;
  return 100.0 * (period_consumed_wcu_ / elapsed) / wcu_;
}

void Table::PublishMetrics() {
  SimTime now = sim_->Now();
  double elapsed = now - period_start_;
  auto put = [&](const char* name, double v) {
    Status st = metrics_->Put({kNamespace, name, config_.name}, now, v);
    FLOWER_CHECK(st.ok()) << st.ToString();
  };
  double consumed_w =
      elapsed > 0.0 ? period_consumed_wcu_ / elapsed : 0.0;
  double consumed_r =
      elapsed > 0.0 ? period_consumed_rcu_ / elapsed : 0.0;
  put("ConsumedWriteCapacityUnits", consumed_w);
  put("ProvisionedWriteCapacityUnits", wcu_);
  put("WriteUtilization", wcu_ > 0.0 ? 100.0 * consumed_w / wcu_ : 0.0);
  put("ConsumedReadCapacityUnits", consumed_r);
  put("ProvisionedReadCapacityUnits", rcu_);
  put("ReadUtilization", rcu_ > 0.0 ? 100.0 * consumed_r / rcu_ : 0.0);
  put("ThrottledRequests", static_cast<double>(period_throttled_));
  put("ItemCount", static_cast<double>(items_.size()));
  period_consumed_wcu_ = 0.0;
  period_consumed_rcu_ = 0.0;
  period_throttled_ = 0;
  period_start_ = now;
}

}  // namespace flower::dynamodb
