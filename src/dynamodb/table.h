#ifndef FLOWER_DYNAMODB_TABLE_H_
#define FLOWER_DYNAMODB_TABLE_H_

#include <cstdint>
#include <map>
#include <string>

#include "cloudwatch/metric_store.h"
#include "common/result.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace flower::dynamodb {

/// Configuration of a simulated DynamoDB table.
struct TableConfig {
  std::string name = "aggregates";
  double initial_wcu = 5.0;
  double initial_rcu = 5.0;
  double min_wcu = 1.0;
  double max_wcu = 40000.0;
  double min_rcu = 1.0;
  double max_rcu = 40000.0;
  /// Provisioned-throughput changes apply after this delay (the real
  /// service takes seconds to minutes).
  double provisioning_delay_sec = 30.0;
  /// Unused capacity accumulates for bursts up to this many seconds
  /// (DynamoDB's documented 300 s burst window).
  double burst_window_sec = 300.0;
  /// Max capacity decreases per simulated day; <= 0 means unlimited.
  /// (The 2017-era service limited dial-downs per table per day.)
  int max_decreases_per_day = 0;
  double metrics_period_sec = 60.0;
};

/// Simulated Amazon DynamoDB table (the storage layer).
///
/// Provisioned-throughput contract: writes consume ceil(size / 1 KiB)
/// write capacity units, strongly consistent reads consume
/// ceil(size / 4 KiB) read capacity units. Tokens refill at the
/// provisioned per-second rate and accumulate up to the burst window;
/// requests beyond that throttle (`Status::Throttled`). Capacity
/// changes (Flower's storage actuator) apply after a provisioning
/// delay, and decreases can be limited per day as on the 2017 service.
///
/// The table actually stores items (key → value string) so integration
/// tests can verify end-to-end flow correctness, not just throughput
/// accounting.
///
/// Published metrics (namespace "Flower/DynamoDB", dimension = table):
///   ConsumedWriteCapacityUnits (avg units/s over the period),
///   ProvisionedWriteCapacityUnits, WriteUtilization (%),
///   ThrottledRequests, ItemCount. Read-side equivalents mirror these.
class Table {
 public:
  Table(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
        TableConfig config);

  /// Writes an item. Throttles when write tokens are exhausted.
  Status PutItem(int64_t key, std::string value, int32_t size_bytes);

  /// Strongly consistent read. Throttles when read tokens are
  /// exhausted; NotFound for missing keys.
  Result<std::string> GetItem(int64_t key, int32_t size_bytes);

  /// Atomic counter update (the UpdateItem ADD pattern): interprets the
  /// stored value as a number, adds `delta`, and stores it back for one
  /// write's worth of capacity. Missing items start from 0. Returns the
  /// new value. Errors: throttled, or the existing value is not
  /// numeric.
  Result<double> UpdateItemAdd(int64_t key, double delta,
                               int32_t size_bytes);

  /// Deletes an item (idempotent — deleting a missing key succeeds, as
  /// on the real service). Consumes one write's worth of capacity.
  Status DeleteItem(int64_t key, int32_t size_bytes);

  /// Requests new provisioned throughput; applied after the
  /// provisioning delay. Errors: outside [min, max], or the daily
  /// decrease limit is exhausted.
  Status SetProvisionedThroughput(double wcu, double rcu);

  double provisioned_wcu() const { return wcu_; }
  double provisioned_rcu() const { return rcu_; }
  double pending_wcu() const { return pending_wcu_; }
  bool provisioning_in_flight() const { return change_in_flight_; }

  size_t ItemCount() const { return items_.size(); }
  uint64_t total_throttled_writes() const { return total_throttled_writes_; }
  uint64_t total_throttled_reads() const { return total_throttled_reads_; }
  uint64_t total_writes() const { return total_writes_; }
  const TableConfig& config() const { return config_; }

  /// Average consumed WCU/s since the start of the current metrics
  /// period (the utilization signal Flower's storage controller reads).
  double CurrentWriteUtilizationPct() const;

 private:
  void RefillTokens(SimTime now);
  void PublishMetrics();

  sim::Simulation* sim_;
  cloudwatch::MetricStore* metrics_;
  TableConfig config_;
  std::map<int64_t, std::string> items_;

  double wcu_;
  double rcu_;
  double pending_wcu_;
  double pending_rcu_;
  bool change_in_flight_ = false;
  uint64_t change_epoch_ = 0;

  double write_tokens_;
  double read_tokens_;
  SimTime last_refill_ = 0.0;

  int decreases_today_ = 0;
  int64_t current_day_ = 0;

  uint64_t total_writes_ = 0;
  uint64_t total_throttled_writes_ = 0;
  uint64_t total_throttled_reads_ = 0;

  double period_consumed_wcu_ = 0.0;
  double period_consumed_rcu_ = 0.0;
  uint64_t period_throttled_ = 0;
  SimTime period_start_ = 0.0;
};

}  // namespace flower::dynamodb

#endif  // FLOWER_DYNAMODB_TABLE_H_
