#include "ec2/instance.h"

namespace flower::ec2 {

const std::vector<InstanceType>& DefaultCatalog() {
  static const std::vector<InstanceType> kCatalog = {
      {"t2.medium", 2, 1.0e6, 0.046},
      {"m4.large", 2, 2.0e6, 0.10},
      {"m4.xlarge", 4, 4.0e6, 0.20},
      {"c4.large", 2, 2.6e6, 0.10},
      {"c4.xlarge", 4, 5.2e6, 0.199},
      {"r4.large", 2, 2.0e6, 0.133},
  };
  return kCatalog;
}

Result<InstanceType> FindInstanceType(const std::string& name) {
  for (const InstanceType& t : DefaultCatalog()) {
    if (t.name == name) return t;
  }
  return Status::NotFound("unknown EC2 instance type: " + name);
}

}  // namespace flower::ec2
