#ifndef FLOWER_EC2_FLEET_H_
#define FLOWER_EC2_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "ec2/instance.h"
#include "sim/simulation.h"

namespace flower::ec2 {

/// A homogeneous fleet of simulated EC2 instances with realistic
/// provisioning latency: newly requested instances take `boot_delay`
/// simulated seconds to become running, while terminations are
/// immediate (matching the asymmetry real autoscalers face).
///
/// `running_count()` is what produces capacity; `requested_count()`
/// includes instances still booting. The analytics layer (Storm
/// cluster) draws its worker capacity from a Fleet.
class Fleet {
 public:
  /// `on_capacity_change` fires whenever running_count changes.
  Fleet(sim::Simulation* sim, InstanceType type, int initial_count,
        double boot_delay_sec = 90.0);

  /// Sets the desired instance count; boots or terminates the
  /// difference. Scale-up completes after boot_delay; scale-down is
  /// immediate. Errors: negative target.
  Status SetDesiredCount(int target);

  int running_count() const { return running_; }
  int requested_count() const { return requested_; }
  int booting_count() const { return requested_ - running_; }
  const InstanceType& type() const { return type_; }

  /// Total compute capacity of running instances (work units/sec).
  double TotalComputeCapacity() const {
    return static_cast<double>(running_) * type_.compute_units_per_sec;
  }

  void set_on_capacity_change(std::function<void()> cb) {
    on_capacity_change_ = std::move(cb);
  }

 private:
  sim::Simulation* sim_;
  InstanceType type_;
  int running_;
  int requested_;
  double boot_delay_;
  uint64_t boot_epoch_ = 0;  ///< Invalidates in-flight boots on scale-down.
  std::function<void()> on_capacity_change_;
};

}  // namespace flower::ec2

#endif  // FLOWER_EC2_FLEET_H_
