#include "ec2/fleet.h"

namespace flower::ec2 {

Fleet::Fleet(sim::Simulation* sim, InstanceType type, int initial_count,
             double boot_delay_sec)
    : sim_(sim),
      type_(std::move(type)),
      running_(initial_count),
      requested_(initial_count),
      boot_delay_(boot_delay_sec) {}

Status Fleet::SetDesiredCount(int target) {
  if (target < 0) {
    return Status::InvalidArgument("Fleet: negative desired count");
  }
  if (target == requested_) return Status::OK();
  if (target < requested_) {
    // Scale down: cancel boots first, then terminate running instances.
    requested_ = target;
    if (running_ > target) {
      running_ = target;
      ++boot_epoch_;  // Invalidate any in-flight boot completions.
      if (on_capacity_change_) on_capacity_change_();
    }
    return Status::OK();
  }
  // Scale up: instances become running after the boot delay.
  int to_boot = target - requested_;
  requested_ = target;
  uint64_t epoch = boot_epoch_;
  for (int i = 0; i < to_boot; ++i) {
    FLOWER_RETURN_NOT_OK(sim_->ScheduleAfter(boot_delay_, [this, epoch] {
      if (epoch != boot_epoch_) return;  // Cancelled by a scale-down.
      if (running_ < requested_) {
        ++running_;
        if (on_capacity_change_) on_capacity_change_();
      }
    }));
  }
  return Status::OK();
}

}  // namespace flower::ec2
