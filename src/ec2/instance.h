#ifndef FLOWER_EC2_INSTANCE_H_
#define FLOWER_EC2_INSTANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace flower::ec2 {

/// One entry of the simulated EC2 instance catalog.
struct InstanceType {
  std::string name;          ///< e.g. "m4.large".
  int vcpus = 2;
  /// Sustained compute capacity of the instance in abstract work units
  /// per second. Storm's CPU model divides offered work by this to get
  /// a utilization percentage.
  double compute_units_per_sec = 2.0e6;
  double hourly_price_usd = 0.10;
};

/// The built-in catalog used by the examples and benches (2017-era EC2
/// prices, us-east-1, rounded; the relative price structure is what the
/// resource-share analysis depends on).
const std::vector<InstanceType>& DefaultCatalog();

/// Looks up an instance type by name in the default catalog.
Result<InstanceType> FindInstanceType(const std::string& name);

}  // namespace flower::ec2

#endif  // FLOWER_EC2_INSTANCE_H_
