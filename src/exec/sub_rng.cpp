#include "exec/sub_rng.h"

namespace flower::exec {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t DeriveSeed(uint64_t master_seed, uint64_t stream, uint64_t index) {
  // Sequential splitmix steps keep (stream, index) cells distinct even
  // when stream == index or either is 0.
  uint64_t h = Mix64(master_seed);
  h = Mix64(h ^ (stream + 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ (index + 0xD1B54A32D192ED03ull));
  return h;
}

Rng SubRng(uint64_t master_seed, uint64_t stream, uint64_t index) {
  return Rng(DeriveSeed(master_seed, stream, index));
}

}  // namespace flower::exec
