#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace flower::exec {

/// One ParallelFor invocation. Lives on the calling thread's stack;
/// workers may only touch it between joining (under mu_) and checking
/// out (under mu_), which is what lets the caller wait for
/// `workers_running_ == 0` before the Sweep goes out of scope.
struct ThreadPool::Sweep {
  size_t end = 0;
  size_t grain = 1;
  const std::function<Status(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  Status first_error;  // Written only by the thread that wins `failed`.
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Sweep* sweep) {
  for (;;) {
    size_t lo = sweep->next.fetch_add(sweep->grain, std::memory_order_relaxed);
    if (lo >= sweep->end) return;
    size_t hi = std::min(lo + sweep->grain, sweep->end);
    // First error wins: once a failure is recorded the remaining chunks
    // are claimed (so the sweep terminates) but never executed.
    if (sweep->failed.load(std::memory_order_acquire)) continue;
    for (size_t i = lo; i < hi; ++i) {
      Status st = (*sweep->body)(i);
      if (!st.ok()) {
        bool expected = false;
        if (sweep->failed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          sweep->first_error = std::move(st);
        }
        break;
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    Sweep* sweep = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (sweep_ != nullptr && sweep_id_ != seen);
      });
      if (shutdown_) return;
      seen = sweep_id_;
      sweep = sweep_;
      ++workers_running_;
    }
    RunChunks(sweep);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const std::function<Status(size_t)>& body) {
  if (end <= begin) return Status::OK();
  if (grain == 0) grain = 1;
  // Nothing to fan out: run inline, stopping at the first error (the
  // remaining indices are the "drained" work).
  if (workers_.empty() || end - begin <= grain) {
    for (size_t i = begin; i < end; ++i) {
      FLOWER_RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }

  Sweep sweep;
  sweep.end = end;
  sweep.grain = grain;
  sweep.body = &body;
  sweep.next.store(begin, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    sweep_ = &sweep;
    ++sweep_id_;
  }
  work_cv_.notify_all();
  RunChunks(&sweep);  // The calling thread participates.
  {
    std::unique_lock<std::mutex> lock(mu_);
    // No worker may join once sweep_ is retracted; wait out the ones
    // already inside before the Sweep leaves scope.
    sweep_ = nullptr;
    done_cv_.wait(lock, [this] { return workers_running_ == 0; });
  }
  return sweep.first_error;
}

}  // namespace flower::exec
