#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/vec_deque.h"

namespace flower::exec {

/// One ParallelFor invocation. Lives on the calling thread's stack;
/// workers may only touch it between joining (under mu_) and checking
/// out (under mu_), which is what lets the caller wait for
/// `workers_running_ == 0` before the Sweep goes out of scope.
struct ThreadPool::Sweep {
  size_t end = 0;
  size_t grain = 1;
  const std::function<Status(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  Status first_error;  // Written only by the thread that wins `failed`.
};

/// One RunTasks invocation. Same stack-lifetime discipline as Sweep:
/// workers only touch it between joining and checking out under mu_.
struct ThreadPool::TaskSweep {
  /// One FIFO deque per thread (slot 0 = the RunTasks caller), each
  /// with its own lock. Tasks are coarse (a partition segment, not an
  /// index), so a mutex per deque costs nothing measurable and keeps
  /// the stealing path TSan-obvious.
  struct WorkerDeque {
    std::mutex mu;
    VecDeque<uint64_t> q;
  };

  std::unique_ptr<WorkerDeque[]> deques;
  size_t num_deques = 0;
  const TaskBody* body = nullptr;
  /// Queued + running tasks. Spawn increments *before* pushing so the
  /// count never transiently hits zero while work exists; the decrement
  /// that lands on zero is the sweep-over signal.
  std::atomic<uint64_t> live{0};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> spawned{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<bool> failed{false};
  Status first_error;  // Written only by the thread that wins `failed`.
  /// Idle coordination: a worker that finds every deque empty sleeps
  /// until the epoch moves (new work pushed, or live reached zero).
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  uint64_t work_epoch = 0;  // Guarded by idle_mu.

  void BumpEpoch() {
    {
      std::lock_guard<std::mutex> lock(idle_mu);
      ++work_epoch;
    }
    idle_cv.notify_all();
  }
};

void ThreadPool::TaskContext::Spawn(uint64_t id) {
  sweep_->live.fetch_add(1, std::memory_order_acq_rel);
  sweep_->spawned.fetch_add(1, std::memory_order_relaxed);
  {
    TaskSweep::WorkerDeque& d = sweep_->deques[worker_];
    std::lock_guard<std::mutex> lock(d.mu);
    d.q.push_back(id);
  }
  if (sweep_->num_deques > 1) sweep_->BumpEpoch();
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Sweep* sweep) {
  for (;;) {
    size_t lo = sweep->next.fetch_add(sweep->grain, std::memory_order_relaxed);
    if (lo >= sweep->end) return;
    size_t hi = std::min(lo + sweep->grain, sweep->end);
    // First error wins: once a failure is recorded the remaining chunks
    // are claimed (so the sweep terminates) but never executed.
    if (sweep->failed.load(std::memory_order_acquire)) continue;
    for (size_t i = lo; i < hi; ++i) {
      Status st = (*sweep->body)(i);
      if (!st.ok()) {
        bool expected = false;
        if (sweep->failed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          sweep->first_error = std::move(st);
        }
        break;
      }
    }
  }
}

void ThreadPool::RunTaskLoop(TaskSweep* sweep, size_t self) {
  TaskContext ctx(sweep, self);
  size_t n = sweep->num_deques;
  for (;;) {
    uint64_t id = 0;
    bool got = false;
    bool stolen = false;
    {
      TaskSweep::WorkerDeque& d = sweep->deques[self];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        id = d.q.front();
        d.q.pop_front();
        got = true;
      }
    }
    for (size_t k = 1; k < n && !got; ++k) {
      TaskSweep::WorkerDeque& d = sweep->deques[(self + k) % n];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        id = d.q.front();
        d.q.pop_front();
        got = true;
        stolen = true;
      }
    }
    if (got) {
      if (stolen) sweep->steals.fetch_add(1, std::memory_order_relaxed);
      // First error wins: claimed tasks are drained unexecuted once a
      // failure is recorded (mirrors ParallelFor's chunk drain).
      if (!sweep->failed.load(std::memory_order_acquire)) {
        auto t0 = std::chrono::steady_clock::now();
        Status st = (*sweep->body)(id, ctx);
        auto t1 = std::chrono::steady_clock::now();
        sweep->busy_ns.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count(),
            std::memory_order_relaxed);
        sweep->executed.fetch_add(1, std::memory_order_relaxed);
        if (!st.ok()) {
          bool expected = false;
          if (sweep->failed.compare_exchange_strong(
                  expected, true, std::memory_order_acq_rel)) {
            sweep->first_error = std::move(st);
          }
        }
      }
      if (sweep->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        sweep->BumpEpoch();  // Sweep over: wake sleepers so they exit.
      }
      continue;
    }
    // Nothing anywhere. Snapshot the epoch *before* deciding to sleep:
    // a push that lands after the (failed) scan above bumps the epoch,
    // so the wait below returns immediately instead of missing it.
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(sweep->idle_mu);
      epoch = sweep->work_epoch;
    }
    if (sweep->live.load(std::memory_order_acquire) == 0) return;
    {
      std::unique_lock<std::mutex> lock(sweep->idle_mu);
      sweep->idle_cv.wait(lock, [&] {
        return sweep->work_epoch != epoch ||
               sweep->live.load(std::memory_order_acquire) == 0;
      });
    }
    if (sweep->live.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen = 0;
  for (;;) {
    Sweep* sweep = nullptr;
    TaskSweep* task_sweep = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               ((sweep_ != nullptr || task_sweep_ != nullptr) &&
                sweep_id_ != seen);
      });
      if (shutdown_) return;
      seen = sweep_id_;
      sweep = sweep_;
      task_sweep = task_sweep_;
      ++workers_running_;
    }
    if (sweep != nullptr) {
      RunChunks(sweep);
    } else {
      RunTaskLoop(task_sweep, worker_index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const std::function<Status(size_t)>& body) {
  if (end <= begin) return Status::OK();
  if (grain == 0) grain = 1;
  // Nothing to fan out: run inline, stopping at the first error (the
  // remaining indices are the "drained" work).
  if (workers_.empty() || end - begin <= grain) {
    for (size_t i = begin; i < end; ++i) {
      FLOWER_RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }

  Sweep sweep;
  sweep.end = end;
  sweep.grain = grain;
  sweep.body = &body;
  sweep.next.store(begin, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    sweep_ = &sweep;
    ++sweep_id_;
  }
  work_cv_.notify_all();
  RunChunks(&sweep);  // The calling thread participates.
  {
    std::unique_lock<std::mutex> lock(mu_);
    // No worker may join once sweep_ is retracted; wait out the ones
    // already inside before the Sweep leaves scope.
    sweep_ = nullptr;
    done_cv_.wait(lock, [this] { return workers_running_ == 0; });
  }
  return sweep.first_error;
}

Status ThreadPool::RunTasks(const std::vector<uint64_t>& seeds,
                            const TaskBody& body, TaskStats* stats) {
  if (stats != nullptr) *stats = TaskStats{};
  if (seeds.empty()) return Status::OK();

  TaskSweep sweep;
  sweep.num_deques = workers_.size() + 1;
  sweep.deques =
      std::make_unique<TaskSweep::WorkerDeque[]>(sweep.num_deques);
  sweep.body = &body;
  // Seed round-robin so the initial work is spread before any stealing
  // has to happen; live covers every seed up front.
  sweep.live.store(seeds.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < seeds.size(); ++i) {
    sweep.deques[i % sweep.num_deques].q.push_back(seeds[i]);
  }

  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_sweep_ = &sweep;
      ++sweep_id_;
    }
    work_cv_.notify_all();
  }
  RunTaskLoop(&sweep, 0);  // The calling thread participates as slot 0.
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    task_sweep_ = nullptr;
    done_cv_.wait(lock, [this] { return workers_running_ == 0; });
  }

  if (stats != nullptr) {
    stats->executed = sweep.executed.load(std::memory_order_relaxed);
    stats->spawned = sweep.spawned.load(std::memory_order_relaxed);
    stats->steals = sweep.steals.load(std::memory_order_relaxed);
    stats->busy_sec =
        static_cast<double>(sweep.busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return sweep.first_error;
}

}  // namespace flower::exec
