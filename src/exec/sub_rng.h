#ifndef FLOWER_EXEC_SUB_RNG_H_
#define FLOWER_EXEC_SUB_RNG_H_

#include <cstdint>

#include "common/random.h"

namespace flower::exec {

/// Finalizer of the splitmix64 generator: a full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x);

/// Derives a statistically independent child seed for the
/// (stream, index) cell of a master seed. Two cells collide only if
/// the splitmix64 mix does, so per-task generators seeded this way are
/// effectively independent streams.
uint64_t DeriveSeed(uint64_t master_seed, uint64_t stream, uint64_t index);

/// Child generator for the (stream, index) cell of a master seed.
///
/// This is the determinism primitive of the parallel planners: a task
/// that draws from SubRng(seed, stream, index) produces the same
/// sequence no matter which thread runs it or how work is chunked, so
/// a parallel sweep whose tasks use only their own sub-generator is
/// bit-identical at any thread count. Convention: `stream` identifies
/// the sweep (e.g. an NSGA-II generation) and `index` the task within
/// it (e.g. an offspring pair).
Rng SubRng(uint64_t master_seed, uint64_t stream, uint64_t index);

}  // namespace flower::exec

#endif  // FLOWER_EXEC_SUB_RNG_H_
