#ifndef FLOWER_EXEC_THREAD_POOL_H_
#define FLOWER_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace flower::exec {

/// Fixed-size fork-join worker pool for the planning hot paths.
///
/// `num_threads` counts the calling thread: ThreadPool(1) owns no
/// worker threads and runs every ParallelFor inline, so single-threaded
/// callers pay no synchronization. ThreadPool(0) sizes the pool to the
/// hardware concurrency. Workers are started once in the constructor
/// and parked between sweeps; the destructor joins them.
///
/// Concurrency contract: one ParallelFor sweep runs at a time per pool
/// (the call is a barrier). Nested ParallelFor on the *same* pool is
/// not supported — give inner parallel sections their own pool, or run
/// them single-threaded.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism, including the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Applies `body` to every index in [begin, end). Indices are split
  /// into chunks of up to `grain` consecutive indices, claimed
  /// dynamically by the workers plus the calling thread. Empty ranges
  /// return OK without invoking `body`; a range that fits in one chunk
  /// (or a 1-thread pool) runs inline on the calling thread.
  ///
  /// Error propagation is StatusOr-style: the first non-OK status wins,
  /// every not-yet-started chunk is drained without running, and the
  /// winning status is returned once all in-flight work has finished.
  /// `body` must be safe to call concurrently from multiple threads.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t)>& body);

 private:
  struct Sweep;

  void WorkerLoop();
  static void RunChunks(Sweep* sweep);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // New sweep posted, or shutdown.
  std::condition_variable done_cv_;  // A worker left the current sweep.
  Sweep* sweep_ = nullptr;           // Guarded by mu_.
  uint64_t sweep_id_ = 0;            // Guarded by mu_.
  size_t workers_running_ = 0;       // Guarded by mu_.
  bool shutdown_ = false;            // Guarded by mu_.
};

}  // namespace flower::exec

#endif  // FLOWER_EXEC_THREAD_POOL_H_
