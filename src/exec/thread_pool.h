#ifndef FLOWER_EXEC_THREAD_POOL_H_
#define FLOWER_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace flower::exec {

/// Statistics of one RunTasks sweep. Counters describe the *schedule*
/// (which worker ran what), never the results — callers relying on the
/// determinism contract must keep them out of any digest.
struct TaskStats {
  uint64_t executed = 0;  ///< Task invocations that actually ran.
  uint64_t spawned = 0;   ///< Tasks enqueued by running tasks.
  uint64_t steals = 0;    ///< Tasks claimed from another worker's deque.
  double busy_sec = 0.0;  ///< Wall time inside task bodies, summed
                          ///< across workers (> wall clock when the
                          ///< sweep overlaps work).
};

/// Fixed-size fork-join worker pool for the planning hot paths.
///
/// `num_threads` counts the calling thread: ThreadPool(1) owns no
/// worker threads and runs every ParallelFor inline, so single-threaded
/// callers pay no synchronization. ThreadPool(0) sizes the pool to the
/// hardware concurrency. Workers are started once in the constructor
/// and parked between sweeps; the destructor joins them.
///
/// Concurrency contract: one ParallelFor sweep runs at a time per pool
/// (the call is a barrier). Nested ParallelFor on the *same* pool is
/// not supported — give inner parallel sections their own pool, or run
/// them single-threaded.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism, including the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Applies `body` to every index in [begin, end). Indices are split
  /// into chunks of up to `grain` consecutive indices, claimed
  /// dynamically by the workers plus the calling thread. Empty ranges
  /// return OK without invoking `body`; a range that fits in one chunk
  /// (or a 1-thread pool) runs inline on the calling thread.
  ///
  /// Error propagation is StatusOr-style: the first non-OK status wins,
  /// every not-yet-started chunk is drained without running, and the
  /// winning status is returned once all in-flight work has finished.
  /// `body` must be safe to call concurrently from multiple threads.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t)>& body);

  struct TaskSweep;

  /// Handle a running task uses to enqueue follow-up work. Spawned
  /// tasks land on the executing worker's own deque (LIFO locality is
  /// irrelevant here — deques are FIFO so seed order is preserved on a
  /// 1-thread pool); idle workers steal from the back of other deques.
  class TaskContext {
   public:
    /// Enqueues task `id` for execution within the current sweep.
    void Spawn(uint64_t id);
    /// Worker slot of the executing thread (0 = the RunTasks caller).
    size_t worker() const { return worker_; }

   private:
    friend class ThreadPool;
    TaskContext(TaskSweep* sweep, size_t worker)
        : sweep_(sweep), worker_(worker) {}
    TaskSweep* sweep_;
    size_t worker_;
  };

  using TaskBody = std::function<Status(uint64_t, TaskContext&)>;

  /// Work-stealing task mode: runs `seeds` (and every task they
  /// transitively Spawn) to completion over per-worker deques. Each
  /// worker drains its own deque FIFO and steals from the other deques
  /// when empty, so partitions of unequal length overlap instead of
  /// barriering — the fleet-sweep counterpart of ParallelFor.
  ///
  /// The same determinism contract as ParallelFor applies: which worker
  /// runs a task (and what gets stolen) is scheduling noise, so `body`
  /// must produce results that are a pure function of the task graph,
  /// never of the execution interleaving. Error propagation is
  /// first-error-wins with drain: once a task fails, claimed tasks are
  /// discarded unexecuted and RunTasks returns the winning status after
  /// in-flight tasks finish. A 1-thread pool runs everything inline on
  /// the calling thread in FIFO order. `stats`, when non-null, receives
  /// the sweep's schedule counters.
  Status RunTasks(const std::vector<uint64_t>& seeds, const TaskBody& body,
                  TaskStats* stats = nullptr);

 private:
  struct Sweep;

  void WorkerLoop(size_t worker_index);
  static void RunChunks(Sweep* sweep);
  static void RunTaskLoop(TaskSweep* sweep, size_t self);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // New sweep posted, or shutdown.
  std::condition_variable done_cv_;  // A worker left the current sweep.
  Sweep* sweep_ = nullptr;           // Guarded by mu_.
  TaskSweep* task_sweep_ = nullptr;  // Guarded by mu_.
  uint64_t sweep_id_ = 0;            // Guarded by mu_.
  size_t workers_running_ = 0;       // Guarded by mu_.
  bool shutdown_ = false;            // Guarded by mu_.
};

}  // namespace flower::exec

#endif  // FLOWER_EXEC_THREAD_POOL_H_
