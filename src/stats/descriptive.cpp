#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace flower::stats {

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  double m2 = 0.0;
  for (double x : xs) {
    if (s.count == 0) {
      s.min = s.max = x;
    } else {
      s.min = std::min(s.min, x);
      s.max = std::max(s.max, x);
    }
    ++s.count;
    s.sum += x;
    double delta = x - s.mean;
    s.mean += delta / static_cast<double>(s.count);
    m2 += delta * (x - s.mean);
  }
  if (s.count >= 2) {
    s.variance = m2 / static_cast<double>(s.count - 1);
    s.stddev = std::sqrt(s.variance);
  }
  return s;
}

double Mean(const std::vector<double>& xs) { return Summarize(xs).mean; }
double Variance(const std::vector<double>& xs) {
  return Summarize(xs).variance;
}
double StdDev(const std::vector<double>& xs) { return Summarize(xs).stddev; }

Result<double> Percentile(std::vector<double> xs, double p) {
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("Percentile: p must be in [0, 100]");
  }
  if (xs.empty()) {
    return Status::FailedPrecondition("Percentile of empty sample");
  }
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Result<double> Rmse(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Rmse: size mismatch");
  }
  if (a.empty()) return Status::FailedPrecondition("Rmse of empty vectors");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

Result<double> MeanAbsoluteError(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("MeanAbsoluteError: size mismatch");
  }
  if (a.empty()) {
    return Status::FailedPrecondition("MeanAbsoluteError of empty vectors");
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

}  // namespace flower::stats
