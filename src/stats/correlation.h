#ifndef FLOWER_STATS_CORRELATION_H_
#define FLOWER_STATS_CORRELATION_H_

#include <vector>

#include "common/result.h"

namespace flower::stats {

/// Pearson product-moment correlation coefficient in [-1, 1].
/// Errors: size mismatch, fewer than two samples, or zero variance in
/// either input.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Spearman rank correlation (Pearson over fractional ranks; ties get
/// the average rank).
Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Result of scanning correlation across time lags.
struct LagCorrelation {
  int best_lag = 0;        ///< Lag (in samples) maximizing |r|; y lags x by best_lag.
  double best_r = 0.0;     ///< Pearson r at best_lag.
  std::vector<double> r_by_lag;  ///< r for lag = -max_lag ... +max_lag.
};

/// Cross-correlation of two equally sampled series over lags in
/// [-max_lag, +max_lag]. Positive lag means y is shifted later than x
/// (x predicts y). Lags whose overlap is < 3 samples or degenerate are
/// recorded as 0.
Result<LagCorrelation> CrossCorrelation(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        int max_lag);

}  // namespace flower::stats

#endif  // FLOWER_STATS_CORRELATION_H_
