#ifndef FLOWER_STATS_FORECAST_H_
#define FLOWER_STATS_FORECAST_H_

#include <deque>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/time_series.h"

namespace flower::stats {

/// Online one-step-ahead forecaster of a regularly sampled signal
/// (e.g. the per-minute arrival rate). Feed observations in time order
/// with `Observe`; `Forecast(h)` extrapolates h seconds ahead.
///
/// Forecasters power Flower's proactive planning (windowed resource
/// shares) and can drive feedforward control when no upstream metric
/// exists.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual std::string name() const = 0;
  virtual void Observe(SimTime t, double value) = 0;
  /// Prediction for time (last observation + horizon). Errors when not
  /// enough history has been observed.
  virtual Result<double> Forecast(double horizon_sec) const = 0;
};

/// Forecast = last observed value (the baseline every other method
/// must beat).
class NaiveForecaster final : public Forecaster {
 public:
  std::string name() const override { return "naive"; }
  void Observe(SimTime t, double value) override;
  Result<double> Forecast(double horizon_sec) const override;

 private:
  bool has_value_ = false;
  double last_ = 0.0;
};

/// Exponentially smoothed level (no trend).
class EmaForecaster final : public Forecaster {
 public:
  explicit EmaForecaster(double alpha) : alpha_(alpha) {}
  std::string name() const override { return "ema"; }
  void Observe(SimTime t, double value) override;
  Result<double> Forecast(double horizon_sec) const override;

 private:
  double alpha_;
  bool initialized_ = false;
  double level_ = 0.0;
};

/// Holt's linear (double exponential) smoothing: level + trend, so the
/// forecast extrapolates ramps — useful for diurnal shoulders.
class HoltForecaster final : public Forecaster {
 public:
  HoltForecaster(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
  std::string name() const override { return "holt"; }
  void Observe(SimTime t, double value) override;
  Result<double> Forecast(double horizon_sec) const override;

 private:
  double alpha_, beta_;
  int observations_ = 0;
  double level_ = 0.0;
  double trend_ = 0.0;
  SimTime last_t_ = 0.0;
  double last_dt_ = 0.0;
};

/// Seasonal naive: forecast = the value observed one season ago
/// (the strongest simple baseline for diurnal workloads). Keeps one
/// season of history at the observation cadence.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  /// `season_sec` e.g. one simulated day; `sample_period_sec` the
  /// observation cadence.
  SeasonalNaiveForecaster(double season_sec, double sample_period_sec);
  std::string name() const override { return "seasonal-naive"; }
  void Observe(SimTime t, double value) override;
  Result<double> Forecast(double horizon_sec) const override;

 private:
  size_t slots_;
  double sample_period_;
  std::deque<double> history_;  // Most recent at the back.
};

/// Evaluates a forecaster against a recorded series: walks the series,
/// observing each sample and forecasting the next one; returns the
/// mean absolute error of one-step forecasts. Errors: fewer than three
/// samples.
Result<double> BacktestOneStepMae(Forecaster* forecaster,
                                  const TimeSeries& series);

/// Like BacktestOneStepMae but forecasting `steps_ahead` samples into
/// the future at each position — the relevant error for window
/// planning, where capacity is scheduled hours in advance. Errors:
/// series shorter than steps_ahead + 2, or steps_ahead == 0.
Result<double> BacktestHorizonMae(Forecaster* forecaster,
                                  const TimeSeries& series,
                                  size_t steps_ahead);

}  // namespace flower::stats

#endif  // FLOWER_STATS_FORECAST_H_
