#include "stats/forecast.h"

#include <cmath>

namespace flower::stats {

void NaiveForecaster::Observe(SimTime /*t*/, double value) {
  last_ = value;
  has_value_ = true;
}

Result<double> NaiveForecaster::Forecast(double /*horizon_sec*/) const {
  if (!has_value_) {
    return Status::FailedPrecondition("NaiveForecaster: no observations");
  }
  return last_;
}

void EmaForecaster::Observe(SimTime /*t*/, double value) {
  if (!initialized_) {
    level_ = value;
    initialized_ = true;
  } else {
    level_ = alpha_ * value + (1.0 - alpha_) * level_;
  }
}

Result<double> EmaForecaster::Forecast(double /*horizon_sec*/) const {
  if (!initialized_) {
    return Status::FailedPrecondition("EmaForecaster: no observations");
  }
  return level_;
}

void HoltForecaster::Observe(SimTime t, double value) {
  if (observations_ == 0) {
    level_ = value;
    trend_ = 0.0;
  } else {
    last_dt_ = t - last_t_;
    double prev_level = level_;
    level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  last_t_ = t;
  ++observations_;
}

Result<double> HoltForecaster::Forecast(double horizon_sec) const {
  if (observations_ < 2) {
    return Status::FailedPrecondition(
        "HoltForecaster: need at least two observations");
  }
  // Trend is per observation step; convert the horizon into steps.
  double steps = last_dt_ > 0.0 ? horizon_sec / last_dt_ : 1.0;
  return level_ + trend_ * steps;
}

SeasonalNaiveForecaster::SeasonalNaiveForecaster(double season_sec,
                                                 double sample_period_sec)
    : slots_(static_cast<size_t>(
          std::max(1.0, std::round(season_sec / sample_period_sec)))),
      sample_period_(sample_period_sec) {}

void SeasonalNaiveForecaster::Observe(SimTime /*t*/, double value) {
  history_.push_back(value);
  if (history_.size() > slots_) history_.pop_front();
}

Result<double> SeasonalNaiveForecaster::Forecast(double horizon_sec) const {
  if (history_.size() < slots_) {
    return Status::FailedPrecondition(
        "SeasonalNaiveForecaster: less than one full season observed");
  }
  // history_[slots_-1] is the newest sample (time t_last); the value at
  // t_last - m*period sits at index slots_-1-m. The target instant
  // t_last + k*period - season corresponds to m = slots_ - k, i.e.
  // index k - 1 (mod slots_).
  double offset_slots = horizon_sec / sample_period_;
  auto k = static_cast<int64_t>(std::llround(offset_slots));
  int64_t idx = (k - 1) % static_cast<int64_t>(slots_);
  if (idx < 0) idx += static_cast<int64_t>(slots_);
  return history_[static_cast<size_t>(idx)];
}

Result<double> BacktestOneStepMae(Forecaster* forecaster,
                                  const TimeSeries& series) {
  return BacktestHorizonMae(forecaster, series, 1);
}

Result<double> BacktestHorizonMae(Forecaster* forecaster,
                                  const TimeSeries& series,
                                  size_t steps_ahead) {
  if (steps_ahead == 0) {
    return Status::InvalidArgument("BacktestHorizonMae: steps_ahead == 0");
  }
  if (series.size() < steps_ahead + 2) {
    return Status::FailedPrecondition(
        "BacktestHorizonMae: series shorter than the horizon");
  }
  double abs_err = 0.0;
  size_t n = 0;
  for (size_t i = 0; i + steps_ahead < series.size(); ++i) {
    forecaster->Observe(series[i].time, series[i].value);
    double horizon = series[i + steps_ahead].time - series[i].time;
    auto f = forecaster->Forecast(horizon);
    if (f.ok()) {
      abs_err += std::fabs(*f - series[i + steps_ahead].value);
      ++n;
    }
  }
  if (n == 0) {
    return Status::FailedPrecondition(
        "BacktestHorizonMae: forecaster never produced a forecast");
  }
  return abs_err / static_cast<double>(n);
}

}  // namespace flower::stats
