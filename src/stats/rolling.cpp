#include "stats/rolling.h"

#include <algorithm>
#include <cmath>

namespace flower::stats {

void RollingWindow::Evict() {
  double y = buf_.front();
  buf_.pop_front();
  sum_ -= y;
  double m = static_cast<double>(buf_.size());  // Count after removal.
  if (buf_.empty()) {
    mean_ = 0.0;
    m2_ = 0.0;
    return;
  }
  // Reverse Welford update: removing y from a window of m+1 samples.
  double mean_after = (mean_ * (m + 1.0) - y) / m;
  m2_ -= (y - mean_) * (y - mean_after);
  mean_ = mean_after;
  // Guard the invariant m2_ >= 0 against rounding in the subtraction.
  if (m2_ < 0.0) m2_ = 0.0;
}

double RollingWindow::Variance() const {
  if (buf_.size() < 2) return 0.0;
  return std::max(0.0, m2_) / static_cast<double>(buf_.size() - 1);
}

double RollingWindow::StdDev() const { return std::sqrt(Variance()); }

double RollingWindow::Min() const {
  if (buf_.empty()) return 0.0;
  return *std::min_element(buf_.begin(), buf_.end());
}

double RollingWindow::Max() const {
  if (buf_.empty()) return 0.0;
  return *std::max_element(buf_.begin(), buf_.end());
}

}  // namespace flower::stats
