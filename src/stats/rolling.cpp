#include "stats/rolling.h"

#include <algorithm>

namespace flower::stats {

double RollingWindow::Min() const {
  if (buf_.empty()) return 0.0;
  return *std::min_element(buf_.begin(), buf_.end());
}

double RollingWindow::Max() const {
  if (buf_.empty()) return 0.0;
  return *std::max_element(buf_.begin(), buf_.end());
}

}  // namespace flower::stats
