#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flower::stats {

namespace {

// Pearson r over raw arrays; returns 0-variance failure via ok=false.
bool PearsonRaw(const double* x, const double* y, size_t n, double* r) {
  if (n < 2) return false;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return false;
  *r = sxy / std::sqrt(sxx * syy);
  return true;
}

std::vector<double> FractionalRanks(const std::vector<double>& v) {
  size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("PearsonCorrelation: size mismatch");
  }
  if (x.size() < 2) {
    return Status::FailedPrecondition(
        "PearsonCorrelation: need at least two samples");
  }
  double r = 0.0;
  if (!PearsonRaw(x.data(), y.data(), x.size(), &r)) {
    return Status::FailedPrecondition(
        "PearsonCorrelation: zero variance input");
  }
  return r;
}

Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("SpearmanCorrelation: size mismatch");
  }
  if (x.size() < 2) {
    return Status::FailedPrecondition(
        "SpearmanCorrelation: need at least two samples");
  }
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

Result<LagCorrelation> CrossCorrelation(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        int max_lag) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("CrossCorrelation: size mismatch");
  }
  if (max_lag < 0) {
    return Status::InvalidArgument("CrossCorrelation: negative max_lag");
  }
  int n = static_cast<int>(x.size());
  if (n < 3) {
    return Status::FailedPrecondition(
        "CrossCorrelation: need at least three samples");
  }
  LagCorrelation out;
  out.r_by_lag.reserve(static_cast<size_t>(2 * max_lag + 1));
  double best_abs = -1.0;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    // Positive lag: correlate x[t] with y[t + lag].
    int overlap = n - std::abs(lag);
    double r = 0.0;
    if (overlap >= 3) {
      const double* xp = lag >= 0 ? x.data() : x.data() - lag;
      const double* yp = lag >= 0 ? y.data() + lag : y.data();
      if (!PearsonRaw(xp, yp, static_cast<size_t>(overlap), &r)) r = 0.0;
    }
    out.r_by_lag.push_back(r);
    if (std::fabs(r) > best_abs) {
      best_abs = std::fabs(r);
      out.best_lag = lag;
      out.best_r = r;
    }
  }
  return out;
}

}  // namespace flower::stats
