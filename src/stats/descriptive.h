#ifndef FLOWER_STATS_DESCRIPTIVE_H_
#define FLOWER_STATS_DESCRIPTIVE_H_

#include <vector>

#include "common/result.h"

namespace flower::stats {

/// Summary statistics of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1 denominator); 0 when n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes count/mean/variance/stddev/min/max/sum in one pass
/// (Welford's algorithm for numerical stability). Empty input yields a
/// zeroed Summary with count == 0.
Summary Summarize(const std::vector<double>& xs);

double Mean(const std::vector<double>& xs);
/// Unbiased sample variance; 0 when fewer than two samples.
double Variance(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Returns
/// InvalidArgument for out-of-range p, FailedPrecondition for empty
/// input.
Result<double> Percentile(std::vector<double> xs, double p);

/// Root-mean-square error between two equally sized vectors.
Result<double> Rmse(const std::vector<double>& a,
                    const std::vector<double>& b);

/// Mean absolute error between two equally sized vectors.
Result<double> MeanAbsoluteError(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace flower::stats

#endif  // FLOWER_STATS_DESCRIPTIVE_H_
