#include "stats/robust.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace flower::stats {

namespace {

double Median(std::vector<double>* v) {
  std::sort(v->begin(), v->end());
  size_t n = v->size();
  if (n % 2 == 1) return (*v)[n / 2];
  return 0.5 * ((*v)[n / 2 - 1] + (*v)[n / 2]);
}

}  // namespace

Result<TheilSenFit> FitTheilSen(const std::vector<double>& x,
                                const std::vector<double>& y,
                                size_t max_pairs, uint64_t seed) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitTheilSen: size mismatch");
  }
  size_t n = x.size();
  if (n < 3) {
    return Status::FailedPrecondition(
        "FitTheilSen: need at least 3 samples");
  }
  std::vector<double> slopes;
  uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  if (total_pairs <= max_pairs) {
    slopes.reserve(total_pairs);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double dx = x[j] - x[i];
        if (std::fabs(dx) < 1e-300) continue;
        slopes.push_back((y[j] - y[i]) / dx);
      }
    }
  } else {
    Rng rng(seed);
    slopes.reserve(max_pairs);
    for (size_t k = 0; k < max_pairs; ++k) {
      size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      if (i == j) continue;
      double dx = x[j] - x[i];
      if (std::fabs(dx) < 1e-300) continue;
      slopes.push_back((y[j] - y[i]) / dx);
    }
  }
  if (slopes.empty()) {
    return Status::FailedPrecondition("FitTheilSen: zero variance in x");
  }
  TheilSenFit fit;
  fit.n = n;
  fit.pairs_used = slopes.size();
  fit.slope = Median(&slopes);
  std::vector<double> residual_intercepts;
  residual_intercepts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    residual_intercepts.push_back(y[i] - fit.slope * x[i]);
  }
  fit.intercept = Median(&residual_intercepts);
  return fit;
}

Result<double> Median(std::vector<double> xs) {
  if (xs.empty()) {
    return Status::FailedPrecondition("Median: empty input");
  }
  return Median(&xs);
}

Result<double> WinsorizedMean(std::vector<double> xs, double fraction) {
  if (xs.empty()) {
    return Status::FailedPrecondition("WinsorizedMean: empty input");
  }
  if (fraction < 0.0 || fraction >= 0.5) {
    return Status::InvalidArgument(
        "WinsorizedMean: fraction must be in [0, 0.5)");
  }
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  size_t k = static_cast<size_t>(fraction * static_cast<double>(n));
  for (size_t i = 0; i < k; ++i) {
    xs[i] = xs[k];
    xs[n - 1 - i] = xs[n - 1 - k];
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(n);
}

}  // namespace flower::stats
