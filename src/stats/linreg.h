#ifndef FLOWER_STATS_LINREG_H_
#define FLOWER_STATS_LINREG_H_

#include <vector>

#include "common/result.h"

namespace flower::stats {

/// Fitted simple linear regression y = intercept + slope * x + e
/// (the paper's Eq. 1), with standard OLS inference.
struct SimpleFit {
  double intercept = 0.0;      ///< beta_0
  double slope = 0.0;          ///< beta_1
  double r_squared = 0.0;      ///< Coefficient of determination.
  double correlation = 0.0;    ///< Pearson r between x and y.
  double residual_std = 0.0;   ///< sqrt(SSE / (n - 2)).
  double slope_stderr = 0.0;   ///< Standard error of the slope.
  double intercept_stderr = 0.0;
  double slope_t = 0.0;        ///< t statistic of slope (H0: slope = 0).
  size_t n = 0;

  /// Predicted response at x.
  double Predict(double x) const { return intercept + slope * x; }
};

/// Ordinary least squares fit of y on x. Errors: size mismatch, fewer
/// than three samples, or zero variance in x.
Result<SimpleFit> FitSimple(const std::vector<double>& x,
                            const std::vector<double>& y);

/// Fitted multiple linear regression y = b0 + b1*x1 + ... + bk*xk.
struct MultipleFit {
  std::vector<double> coefficients;  ///< [b0, b1, ..., bk].
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double residual_std = 0.0;
  size_t n = 0;

  double Predict(const std::vector<double>& x) const;
};

/// OLS with k regressors via the normal equations solved by Cholesky
/// decomposition (X'X is symmetric positive definite for full-rank X).
/// `rows[i]` holds the k regressor values of observation i.
/// Errors: inconsistent row widths, n <= k + 1, or rank-deficient X.
Result<MultipleFit> FitMultiple(const std::vector<std::vector<double>>& rows,
                                const std::vector<double>& y);

}  // namespace flower::stats

#endif  // FLOWER_STATS_LINREG_H_
