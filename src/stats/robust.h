#ifndef FLOWER_STATS_ROBUST_H_
#define FLOWER_STATS_ROBUST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace flower::stats {

/// Theil–Sen robust line fit: slope = median of pairwise slopes,
/// intercept = median of (y − slope·x). Breakdown point ~29%, so the
/// fit survives the monitoring glitches and load spikes that wreck OLS
/// on real operations logs.
struct TheilSenFit {
  double slope = 0.0;
  double intercept = 0.0;
  size_t n = 0;
  /// Pairwise slopes actually evaluated (all pairs, or the random
  /// subsample for large n).
  size_t pairs_used = 0;

  double Predict(double x) const { return intercept + slope * x; }
};

/// Fits y = intercept + slope*x robustly. For n(n-1)/2 > max_pairs the
/// estimator evaluates a seeded random subsample of pairs (still
/// consistent, deterministic per seed). Errors: size mismatch, fewer
/// than three samples, or all x equal.
Result<TheilSenFit> FitTheilSen(const std::vector<double>& x,
                                const std::vector<double>& y,
                                size_t max_pairs = 500000,
                                uint64_t seed = 42);

/// Sample median (midpoint of the two central order statistics for even
/// n). Breakdown point 50% — the robust location estimate Flower's
/// hardened sensors use against outlier spikes. Errors: empty input.
Result<double> Median(std::vector<double> xs);

/// Winsorized mean: the lowest and highest `fraction` of the sample are
/// clamped to the corresponding cut-off order statistics before
/// averaging. Keeps more efficiency than the median under clean data
/// while bounding the influence of monitoring glitches. `fraction`
/// must be in [0, 0.5). Errors: empty input, fraction out of range.
Result<double> WinsorizedMean(std::vector<double> xs, double fraction);

}  // namespace flower::stats

#endif  // FLOWER_STATS_ROBUST_H_
