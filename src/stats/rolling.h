#ifndef FLOWER_STATS_ROLLING_H_
#define FLOWER_STATS_ROLLING_H_

#include <cstddef>
#include <deque>

namespace flower::stats {

/// Exponential moving average: s_t = alpha * x_t + (1 - alpha) * s_{t-1}.
/// The first observation initializes the state.
class Ema {
 public:
  /// alpha in (0, 1]; larger alpha tracks faster.
  explicit Ema(double alpha) : alpha_(alpha) {}

  double Update(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0.0;
};

/// Fixed-capacity rolling window with O(1) mean/variance and O(n)
/// min/max. Used by sensors to smooth utilization over a monitoring
/// window.
///
/// Variance is maintained with Welford's algorithm (add and evict
/// updates on the running mean/M2 state) rather than a sum-of-squares
/// update: for large-mean/low-variance series — DynamoDB capacity
/// counters sit at ~1e9 with unit-scale jitter — the naive
/// E[x²] − E[x]² form cancels catastrophically and goes negative,
/// which turns the stddev into NaN downstream.
class RollingWindow {
 public:
  explicit RollingWindow(size_t capacity) : capacity_(capacity) {}

  void Add(double x) {
    buf_.push_back(x);
    sum_ += x;
    double n = static_cast<double>(buf_.size());
    double delta = x - mean_;
    mean_ += delta / n;
    m2_ += delta * (x - mean_);
    if (buf_.size() > capacity_) Evict();
  }

  size_t size() const { return buf_.size(); }
  bool full() const { return buf_.size() == capacity_; }
  double Mean() const {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }
  /// Unbiased sample variance of the window; 0 when size < 2.
  double Variance() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  double Last() const { return buf_.empty() ? 0.0 : buf_.back(); }
  void Clear() {
    buf_.clear();
    sum_ = 0.0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

 private:
  void Evict();

  size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  double mean_ = 0.0;  // Welford running mean of the window.
  double m2_ = 0.0;    // Welford sum of squared deviations.
};

}  // namespace flower::stats

#endif  // FLOWER_STATS_ROLLING_H_
