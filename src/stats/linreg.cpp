#include "stats/linreg.h"

#include <cmath>

#include "stats/descriptive.h"

namespace flower::stats {

Result<SimpleFit> FitSimple(const std::vector<double>& x,
                            const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitSimple: size mismatch");
  }
  size_t n = x.size();
  if (n < 3) {
    return Status::FailedPrecondition("FitSimple: need at least 3 samples");
  }
  double mx = Mean(x), my = Mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return Status::FailedPrecondition("FitSimple: zero variance in x");
  }
  SimpleFit fit;
  fit.n = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double e = y[i] - fit.Predict(x[i]);
    sse += e * e;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - sse / syy : 1.0;
  fit.correlation = syy > 0.0 ? sxy / std::sqrt(sxx * syy) : 0.0;
  double dof = static_cast<double>(n - 2);
  fit.residual_std = std::sqrt(sse / dof);
  fit.slope_stderr = fit.residual_std / std::sqrt(sxx);
  fit.intercept_stderr =
      fit.residual_std *
      std::sqrt(1.0 / static_cast<double>(n) + mx * mx / sxx);
  fit.slope_t = fit.slope_stderr > 0.0 ? fit.slope / fit.slope_stderr : 0.0;
  return fit;
}

double MultipleFit::Predict(const std::vector<double>& x) const {
  double y = coefficients.empty() ? 0.0 : coefficients[0];
  for (size_t j = 0; j + 1 < coefficients.size() && j < x.size(); ++j) {
    y += coefficients[j + 1] * x[j];
  }
  return y;
}

namespace {

// Solves A x = b for symmetric positive definite A (in-place Cholesky).
// Returns false when A is not positive definite (rank-deficient X).
bool SolveSpd(std::vector<std::vector<double>>& a, std::vector<double>& b) {
  size_t n = a.size();
  // Cholesky: A = L L^T, stored in lower triangle of a.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (size_t k = 0; k < j; ++k) sum -= a[i][k] * a[j][k];
      if (i == j) {
        if (sum <= 1e-12) return false;
        a[i][i] = std::sqrt(sum);
      } else {
        a[i][j] = sum / a[j][j];
      }
    }
  }
  // Forward solve L z = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i][k] * b[k];
    b[i] = sum / a[i][i];
  }
  // Backward solve L^T x = z.
  for (size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= a[k][ii] * b[k];
    b[ii] = sum / a[ii][ii];
  }
  return true;
}

}  // namespace

Result<MultipleFit> FitMultiple(const std::vector<std::vector<double>>& rows,
                                const std::vector<double>& y) {
  if (rows.size() != y.size()) {
    return Status::InvalidArgument("FitMultiple: row/response size mismatch");
  }
  size_t n = rows.size();
  if (n == 0) return Status::FailedPrecondition("FitMultiple: empty input");
  size_t k = rows[0].size();
  for (const auto& r : rows) {
    if (r.size() != k) {
      return Status::InvalidArgument("FitMultiple: ragged regressor rows");
    }
  }
  size_t p = k + 1;  // intercept + k slopes
  if (n <= p) {
    return Status::FailedPrecondition(
        "FitMultiple: need more observations than parameters");
  }
  // Normal equations: (X'X) beta = X'y with X = [1 | rows].
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> xi(p);
    xi[0] = 1.0;
    for (size_t j = 0; j < k; ++j) xi[j + 1] = rows[i][j];
    for (size_t a = 0; a < p; ++a) {
      xty[a] += xi[a] * y[i];
      for (size_t b = 0; b < p; ++b) xtx[a][b] += xi[a] * xi[b];
    }
  }
  if (!SolveSpd(xtx, xty)) {
    return Status::FailedPrecondition(
        "FitMultiple: X'X not positive definite (collinear regressors)");
  }
  MultipleFit fit;
  fit.coefficients = xty;
  fit.n = n;
  double my = Mean(y);
  double sse = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double e = y[i] - fit.Predict(rows[i]);
    sse += e * e;
    double dy = y[i] - my;
    syy += dy * dy;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - sse / syy : 1.0;
  double dof = static_cast<double>(n - p);
  fit.adjusted_r_squared =
      1.0 - (1.0 - fit.r_squared) * static_cast<double>(n - 1) / dof;
  fit.residual_std = std::sqrt(sse / dof);
  return fit;
}

}  // namespace flower::stats
