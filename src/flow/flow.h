#ifndef FLOWER_FLOW_FLOW_H_
#define FLOWER_FLOW_FLOW_H_

#include <memory>
#include <string>

#include "cloudwatch/metric_store.h"
#include "dynamodb/table.h"
#include "ec2/fleet.h"
#include "kinesis/stream.h"
#include "sim/simulation.h"
#include "storm/cluster.h"
#include "workload/clickstream.h"

namespace flower::flow {

/// End-to-end configuration of the click-stream data analytics flow
/// (the paper's Fig. 1: Kinesis → Storm → DynamoDB).
struct FlowConfig {
  std::string name = "clickstream-flow";
  kinesis::StreamConfig stream;
  storm::ClusterConfig cluster;
  dynamodb::TableConfig table;
  ec2::InstanceType instance_type{"m4.large", 2, 2.0e6, 0.10};
  int initial_workers = 2;
  double worker_boot_delay_sec = 90.0;
  /// Per-tuple CPU cost of each topology component, in work units.
  /// ~5,000 wu/record end to end: with m4.large-class workers
  /// (1e6 wu/s, 90% usable) one worker sustains ~180 records/s, so
  /// realistic click rates (hundreds to thousands of rec/s) map onto
  /// cluster sizes of roughly 4-45 VMs — coarse enough to actuate,
  /// fine enough that a 60% utilization target is reachable.
  double spout_cost = 300.0;
  double parse_cost = 3500.0;
  double window_cost = 1000.0;
  double persist_cost = 500.0;
  /// Sliding-window aggregation parameters.
  double window_sec = 60.0;
  double slide_sec = 10.0;
};

/// The deployed data analytics flow: one Kinesis stream, one Storm
/// cluster running the parse → window-count → persist topology, and
/// one DynamoDB table, all on one simulation and publishing metrics to
/// one metric store. This is the *managed system*; Flower (src/core)
/// attaches controllers on top of it.
class DataAnalyticsFlow {
 public:
  /// Builds and starts the flow. `metrics` may be nullptr only in unit
  /// tests that never read metrics.
  static Result<std::unique_ptr<DataAnalyticsFlow>> Create(
      sim::Simulation* sim, cloudwatch::MetricStore* metrics,
      FlowConfig config);

  /// Attaches a click-stream workload driving the ingestion layer.
  Status AttachWorkload(std::shared_ptr<workload::ArrivalProcess> arrival,
                        workload::ClickStreamConfig wl_config,
                        uint64_t seed);

  kinesis::Stream& stream() { return *stream_; }
  storm::Cluster& cluster() { return *cluster_; }
  dynamodb::Table& table() { return *table_; }
  ec2::Fleet& fleet() { return *fleet_; }
  workload::ClickStreamGenerator* generator() { return generator_.get(); }
  const FlowConfig& config() const { return config_; }

  /// Dimension names used in published metrics, for sensor wiring.
  const std::string& stream_name() const { return config_.stream.name; }
  const std::string& cluster_name() const { return config_.cluster.name; }
  const std::string& table_name() const { return config_.table.name; }

 private:
  DataAnalyticsFlow(sim::Simulation* sim, cloudwatch::MetricStore* metrics,
                    FlowConfig config);
  Status Init();

  sim::Simulation* sim_;
  cloudwatch::MetricStore* metrics_;
  FlowConfig config_;
  std::unique_ptr<kinesis::Stream> stream_;
  std::unique_ptr<ec2::Fleet> fleet_;
  std::unique_ptr<storm::Cluster> cluster_;
  std::unique_ptr<dynamodb::Table> table_;
  std::shared_ptr<storm::Topology> topology_;
  std::unique_ptr<workload::ClickStreamGenerator> generator_;
};

}  // namespace flower::flow

#endif  // FLOWER_FLOW_FLOW_H_
