#include "flow/bolts.h"

namespace flower::flow {

Status WindowCountBolt::Execute(const storm::Tuple& input, SimTime now,
                                const std::function<void(storm::Tuple)>& emit) {
  counter_.Add(input.entity_id, now, input.value);
  exec_input_ = &input;
  exec_emit_ = &emit;
  counter_.AdvanceTo(now, [this](int64_t entity, double count, SimTime end) {
    storm::Tuple out;
    out.origin_time = exec_input_->origin_time;
    out.entity_id = entity;
    out.value = count;
    out.size_bytes = 128;
    (void)end;
    (*exec_emit_)(out);
    ++emitted_;
  });
  exec_input_ = nullptr;
  exec_emit_ = nullptr;
  return Status::OK();
}

Status PersistBolt::Execute(const storm::Tuple& input, SimTime /*now*/,
                            const std::function<void(storm::Tuple)>& emit) {
  (void)emit;  // Terminal bolt: nothing downstream.
  Status st = table_->PutItem(input.entity_id, std::to_string(input.value),
                              item_bytes_);
  if (st.ok()) ++persisted_;
  return st;
}

}  // namespace flower::flow
