#include "flow/bolts.h"

namespace flower::flow {

Status WindowCountBolt::Execute(const storm::Tuple& input, SimTime now,
                                const std::function<void(storm::Tuple)>& emit) {
  counter_.Add(input.entity_id, now, input.value);
  counter_.AdvanceTo(now, [&](int64_t entity, double count, SimTime end) {
    storm::Tuple out;
    out.origin_time = input.origin_time;
    out.entity_id = entity;
    out.value = count;
    out.size_bytes = 128;
    (void)end;
    emit(out);
    ++emitted_;
  });
  return Status::OK();
}

Status PersistBolt::Execute(const storm::Tuple& input, SimTime /*now*/,
                            const std::function<void(storm::Tuple)>& emit) {
  (void)emit;  // Terminal bolt: nothing downstream.
  Status st = table_->PutItem(input.entity_id, std::to_string(input.value),
                              item_bytes_);
  if (st.ok()) ++persisted_;
  return st;
}

}  // namespace flower::flow
