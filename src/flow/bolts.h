#ifndef FLOWER_FLOW_BOLTS_H_
#define FLOWER_FLOW_BOLTS_H_

#include <memory>
#include <string>

#include "dynamodb/table.h"
#include "flow/sliding_window.h"
#include "storm/topology.h"

namespace flower::flow {

/// Aggregating bolt: feeds every input click into a
/// SlidingWindowCounter and emits one (url, count) tuple per tracked
/// URL at each slide boundary.
class WindowCountBolt final : public storm::BoltLogic {
 public:
  explicit WindowCountBolt(SlidingWindowCounter counter)
      : counter_(std::move(counter)) {}

  Status Execute(const storm::Tuple& input, SimTime now,
                 const std::function<void(storm::Tuple)>& emit) override;

  uint64_t emitted_aggregates() const { return emitted_; }

 private:
  SlidingWindowCounter counter_;
  uint64_t emitted_ = 0;
  // Per-call context for the AdvanceTo emit closure. Stashing these as
  // members lets the closure capture only [this] (8 bytes, trivially
  // copyable), which fits std::function's inline storage — the
  // per-tuple hot path constructs the EmitFn without a heap
  // allocation. Valid only for the duration of one Execute call.
  const storm::Tuple* exec_input_ = nullptr;
  const std::function<void(storm::Tuple)>* exec_emit_ = nullptr;
};

/// Terminal bolt: persists each aggregate tuple into DynamoDB. A
/// throttled write is surfaced as a retryable status so the cluster
/// re-queues the tuple (storage backpressure into the analytics layer).
class PersistBolt final : public storm::BoltLogic {
 public:
  /// `item_bytes` is the serialized aggregate item size (1 WCU each at
  /// the default 128 bytes).
  PersistBolt(dynamodb::Table* table, int32_t item_bytes = 128)
      : table_(table), item_bytes_(item_bytes) {}

  Status Execute(const storm::Tuple& input, SimTime now,
                 const std::function<void(storm::Tuple)>& emit) override;

  uint64_t persisted() const { return persisted_; }

 private:
  dynamodb::Table* table_;
  int32_t item_bytes_;
  uint64_t persisted_ = 0;
};

}  // namespace flower::flow

#endif  // FLOWER_FLOW_BOLTS_H_
