#include "flow/flow.h"

#include "flow/bolts.h"

namespace flower::flow {

DataAnalyticsFlow::DataAnalyticsFlow(sim::Simulation* sim,
                                     cloudwatch::MetricStore* metrics,
                                     FlowConfig config)
    : sim_(sim), metrics_(metrics), config_(std::move(config)) {}

Result<std::unique_ptr<DataAnalyticsFlow>> DataAnalyticsFlow::Create(
    sim::Simulation* sim, cloudwatch::MetricStore* metrics,
    FlowConfig config) {
  if (sim == nullptr) {
    return Status::InvalidArgument("DataAnalyticsFlow: null simulation");
  }
  std::unique_ptr<DataAnalyticsFlow> flow(
      new DataAnalyticsFlow(sim, metrics, std::move(config)));
  FLOWER_RETURN_NOT_OK(flow->Init());
  return flow;
}

Status DataAnalyticsFlow::Init() {
  stream_ = std::make_unique<kinesis::Stream>(sim_, metrics_,
                                              config_.stream);
  fleet_ = std::make_unique<ec2::Fleet>(sim_, config_.instance_type,
                                        config_.initial_workers,
                                        config_.worker_boot_delay_sec);
  cluster_ = std::make_unique<storm::Cluster>(sim_, metrics_, fleet_.get(),
                                              config_.cluster);
  table_ = std::make_unique<dynamodb::Table>(sim_, metrics_, config_.table);

  // Build the click-stream topology: spout → parse → window → persist.
  topology_ = std::make_shared<storm::Topology>(config_.name + "-topology");
  kinesis::Stream* stream = stream_.get();
  // The record scratch outlives each pull (shared by the copies of the
  // spout closure), so the per-tick path reuses warm capacity — the
  // spout allocates nothing in steady state.
  auto scratch = std::make_shared<std::vector<kinesis::Record>>();
  auto spout = [stream, scratch](size_t max,
                                 std::vector<storm::Tuple>* out) {
    int shards = stream->shard_count();
    if (shards <= 0 || max == 0) return;
    size_t per_shard = max / static_cast<size_t>(shards) + 1;
    for (int s = 0; s < shards && out->size() < max; ++s) {
      scratch->clear();
      if (!stream->GetRecordsInto(s, per_shard, scratch.get()).ok()) {
        continue;
      }
      for (const kinesis::Record& r : *scratch) {
        storm::Tuple t;
        t.origin_time = r.timestamp;
        t.entity_id = r.entity_id;
        t.size_bytes = r.size_bytes;
        t.value = 1.0;
        out->push_back(t);
        if (out->size() >= max) break;
      }
    }
  };
  FLOWER_RETURN_NOT_OK(
      topology_->SetSpout("kinesis-spout", spout, config_.spout_cost));

  storm::BoltSpec parse;
  parse.name = "parse";
  parse.cpu_cost_per_tuple = config_.parse_cost;
  parse.logic = std::make_shared<storm::StatelessBolt>(1.0);
  FLOWER_RETURN_NOT_OK(topology_->AddBolt(std::move(parse)));

  FLOWER_ASSIGN_OR_RETURN(
      SlidingWindowCounter counter,
      SlidingWindowCounter::Create(config_.window_sec, config_.slide_sec));
  storm::BoltSpec window;
  window.name = "window-count";
  window.cpu_cost_per_tuple = config_.window_cost;
  window.logic = std::make_shared<WindowCountBolt>(std::move(counter));
  FLOWER_RETURN_NOT_OK(topology_->AddBolt(std::move(window), "parse"));

  storm::BoltSpec persist;
  persist.name = "persist";
  persist.cpu_cost_per_tuple = config_.persist_cost;
  persist.logic = std::make_shared<PersistBolt>(table_.get());
  FLOWER_RETURN_NOT_OK(topology_->AddBolt(std::move(persist), "window-count"));

  return cluster_->Submit(topology_);
}

Status DataAnalyticsFlow::AttachWorkload(
    std::shared_ptr<workload::ArrivalProcess> arrival,
    workload::ClickStreamConfig wl_config, uint64_t seed) {
  if (generator_ != nullptr) {
    return Status::AlreadyExists(
        "DataAnalyticsFlow: workload already attached");
  }
  if (arrival == nullptr) {
    return Status::InvalidArgument("AttachWorkload: null arrival process");
  }
  generator_ = std::make_unique<workload::ClickStreamGenerator>(
      sim_, stream_.get(), std::move(arrival), wl_config, seed);
  return Status::OK();
}

}  // namespace flower::flow
