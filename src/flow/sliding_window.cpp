#include "flow/sliding_window.h"

#include <algorithm>
#include <cmath>

namespace flower::flow {

namespace {

/// splitmix64 finalizer — cheap, well-mixed hash for the slot table.
inline uint64_t MixEntity(int64_t entity) {
  uint64_t z = static_cast<uint64_t>(entity) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Result<SlidingWindowCounter> SlidingWindowCounter::Create(double window_sec,
                                                          double slide_sec) {
  if (slide_sec <= 0.0 || window_sec <= 0.0) {
    return Status::InvalidArgument(
        "SlidingWindowCounter: window and slide must be positive");
  }
  double ratio = window_sec / slide_sec;
  if (std::fabs(ratio - std::round(ratio)) > 1e-9 || ratio < 1.0) {
    return Status::InvalidArgument(
        "SlidingWindowCounter: window must be a positive multiple of slide");
  }
  return SlidingWindowCounter(window_sec, slide_sec);
}

SlidingWindowCounter::SlidingWindowCounter(double window_sec, double slide_sec)
    : window_sec_(window_sec), slide_sec_(slide_sec),
      buckets_per_window_(static_cast<int64_t>(window_sec / slide_sec)) {
  // The live span is at most the window plus the bucket being filled;
  // one spare slot keeps the common case conflict-free.
  ring_.resize(NextPow2(static_cast<size_t>(buckets_per_window_) + 2));
  ring_mask_ = ring_.size() - 1;
  table_.assign(64, -1);
  table_mask_ = table_.size() - 1;
}

uint32_t SlidingWindowCounter::FindOrCreateSlot(int64_t entity) {
  size_t h = static_cast<size_t>(MixEntity(entity)) & table_mask_;
  while (table_[h] >= 0) {
    uint32_t slot = static_cast<uint32_t>(table_[h]);
    if (slot_ids_[slot] == entity) return slot;
    h = (h + 1) & table_mask_;
  }
  if ((slot_ids_.size() + 1) * 4 > table_.size() * 3) {
    GrowTable();
    // Re-probe in the grown table for the insertion point.
    h = static_cast<size_t>(MixEntity(entity)) & table_mask_;
    while (table_[h] >= 0) h = (h + 1) & table_mask_;
  }
  uint32_t slot = static_cast<uint32_t>(slot_ids_.size());
  table_[h] = static_cast<int32_t>(slot);
  slot_ids_.push_back(entity);
  slot_last_bucket_.push_back(kNoBucket);
  slot_entry_pos_.push_back(0);
  slot_live_.push_back(0);
  scratch_total_.push_back(0.0);
  scratch_epoch_.push_back(0);
  return slot;
}

void SlidingWindowCounter::GrowTable() {
  std::vector<int32_t> fresh(table_.size() * 2, -1);
  size_t mask = fresh.size() - 1;
  for (uint32_t slot = 0; slot < slot_ids_.size(); ++slot) {
    size_t h = static_cast<size_t>(MixEntity(slot_ids_[slot])) & mask;
    while (fresh[h] >= 0) h = (h + 1) & mask;
    fresh[h] = static_cast<int32_t>(slot);
  }
  table_ = std::move(fresh);
  table_mask_ = mask;
}

SlidingWindowCounter::Bucket& SlidingWindowCounter::BucketFor(int64_t index) {
  Bucket& b = ring_[static_cast<size_t>(index & static_cast<int64_t>(
                        ring_mask_))];
  if (b.index == index) return b;
  if (b.index != kNoBucket) {
    int64_t min_live = next_slide_bucket_ - buckets_per_window_;
    if (b.index >= min_live) {
      // The resident bucket still feeds a future window: the live span
      // outgrew the ring (Adds jumped far ahead without an AdvanceTo).
      GrowRing(index);
      return BucketFor(index);
    }
    // Past bucket that was never dropped explicitly; release its
    // contributions before recycling the slot.
    DropBucket(b.index);
  }
  b.index = index;
  b.entries.clear();
  return b;
}

void SlidingWindowCounter::GrowRing(int64_t index) {
  int64_t lo = index;
  int64_t hi = index;
  for (const Bucket& b : ring_) {
    if (b.index == kNoBucket) continue;
    lo = std::min(lo, b.index);
    hi = std::max(hi, b.index);
  }
  size_t need = static_cast<size_t>(hi - lo + 1);
  size_t cap = ring_.size();
  while (cap < need) cap <<= 1;
  std::vector<Bucket> fresh(cap);
  size_t mask = cap - 1;
  for (Bucket& b : ring_) {
    if (b.index == kNoBucket) continue;
    fresh[static_cast<size_t>(b.index & static_cast<int64_t>(mask))] =
        std::move(b);
  }
  ring_ = std::move(fresh);
  ring_mask_ = mask;
}

void SlidingWindowCounter::DropBucket(int64_t index) {
  Bucket& b =
      ring_[static_cast<size_t>(index & static_cast<int64_t>(ring_mask_))];
  if (b.index != index) return;
  for (const Entry& e : b.entries) {
    if (--slot_live_[e.slot] == 0) --tracked_;
  }
  b.entries.clear();
  b.index = kNoBucket;
}

void SlidingWindowCounter::Add(int64_t entity, SimTime t, double weight) {
  int64_t bucket = static_cast<int64_t>(std::floor(t / slide_sec_));
  if (!started_) {
    next_slide_bucket_ = bucket + 1;
    started_ = true;
  }
  // Late arrival into an already-retired bucket: clamp into the oldest
  // bucket still inside a future window. The map-based implementation
  // silently resurrected the dead bucket — below `min_needed`, it was
  // never emitted and never dropped (lost count, unbounded growth).
  int64_t min_live = next_slide_bucket_ - buckets_per_window_;
  if (bucket < min_live) {
    bucket = min_live;
    ++late_clamped_;
  }
  uint32_t slot = FindOrCreateSlot(entity);
  Bucket& b = BucketFor(bucket);
  if (slot_last_bucket_[slot] == bucket) {
    b.entries[slot_entry_pos_[slot]].weight += weight;
    return;
  }
  slot_last_bucket_[slot] = bucket;
  slot_entry_pos_[slot] = static_cast<uint32_t>(b.entries.size());
  b.entries.push_back(Entry{slot, weight});
  if (slot_live_[slot]++ == 0) ++tracked_;
}

void SlidingWindowCounter::AdvanceTo(SimTime t, const EmitFn& emit) {
  if (!started_) return;
  int64_t current_bucket = static_cast<int64_t>(std::floor(t / slide_sec_));
  // Every completed bucket boundary <= current triggers one emission of
  // the trailing window.
  while (next_slide_bucket_ <= current_bucket) {
    int64_t end_bucket = next_slide_bucket_;  // Exclusive window end.
    int64_t begin_bucket = end_bucket - buckets_per_window_;
    ++epoch_;
    scratch_present_.clear();
    // Accumulate buckets in ascending index order and entries in
    // first-arrival order within each bucket — the same floating-point
    // summation order as the nested-map implementation.
    for (int64_t idx = begin_bucket; idx < end_bucket; ++idx) {
      const Bucket& b = ring_[static_cast<size_t>(
          idx & static_cast<int64_t>(ring_mask_))];
      if (b.index != idx) continue;
      for (const Entry& e : b.entries) {
        if (scratch_epoch_[e.slot] == epoch_) {
          scratch_total_[e.slot] += e.weight;
        } else {
          scratch_epoch_[e.slot] = epoch_;
          scratch_total_[e.slot] = e.weight;
          scratch_present_.emplace_back(slot_ids_[e.slot], e.slot);
        }
      }
    }
    // Ascending entity id, matching std::map iteration order.
    std::sort(scratch_present_.begin(), scratch_present_.end());
    SimTime window_end = static_cast<double>(end_bucket) * slide_sec_;
    for (const auto& [entity, slot] : scratch_present_) {
      emit(entity, scratch_total_[slot], window_end);
    }
    ++next_slide_bucket_;
    // Drop the one bucket that can no longer contribute to any future
    // window. (Boundaries advance one at a time, so by induction no
    // older bucket can still exist.)
    DropBucket(next_slide_bucket_ - buckets_per_window_ - 1);
  }
}

}  // namespace flower::flow
