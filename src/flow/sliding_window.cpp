#include "flow/sliding_window.h"

#include <cmath>

namespace flower::flow {

Result<SlidingWindowCounter> SlidingWindowCounter::Create(double window_sec,
                                                          double slide_sec) {
  if (slide_sec <= 0.0 || window_sec <= 0.0) {
    return Status::InvalidArgument(
        "SlidingWindowCounter: window and slide must be positive");
  }
  double ratio = window_sec / slide_sec;
  if (std::fabs(ratio - std::round(ratio)) > 1e-9 || ratio < 1.0) {
    return Status::InvalidArgument(
        "SlidingWindowCounter: window must be a positive multiple of slide");
  }
  return SlidingWindowCounter(window_sec, slide_sec);
}

void SlidingWindowCounter::Add(int64_t entity, SimTime t, double weight) {
  int64_t bucket = static_cast<int64_t>(std::floor(t / slide_sec_));
  if (!started_) {
    next_slide_bucket_ = bucket + 1;
    started_ = true;
  }
  buckets_[bucket][entity] += weight;
}

void SlidingWindowCounter::AdvanceTo(SimTime t, const EmitFn& emit) {
  if (!started_) return;
  int64_t current_bucket = static_cast<int64_t>(std::floor(t / slide_sec_));
  // Every completed bucket boundary <= current triggers one emission of
  // the trailing window.
  while (next_slide_bucket_ <= current_bucket) {
    int64_t end_bucket = next_slide_bucket_;  // Exclusive window end.
    int64_t begin_bucket = end_bucket - buckets_per_window_;
    std::map<int64_t, double> totals;
    for (auto it = buckets_.lower_bound(begin_bucket);
         it != buckets_.end() && it->first < end_bucket; ++it) {
      for (const auto& [entity, count] : it->second) {
        totals[entity] += count;
      }
    }
    SimTime window_end = static_cast<double>(end_bucket) * slide_sec_;
    for (const auto& [entity, count] : totals) {
      emit(entity, count, window_end);
    }
    ++next_slide_bucket_;
    // Drop buckets that can no longer contribute to any future window.
    int64_t min_needed = next_slide_bucket_ - buckets_per_window_;
    while (!buckets_.empty() && buckets_.begin()->first < min_needed) {
      buckets_.erase(buckets_.begin());
    }
  }
}

size_t SlidingWindowCounter::tracked_entities() const {
  std::map<int64_t, double> all;
  for (const auto& [b, entities] : buckets_) {
    for (const auto& [e, c] : entities) all[e] += c;
  }
  return all.size();
}

}  // namespace flower::flow
