#ifndef FLOWER_FLOW_SLIDING_WINDOW_H_
#define FLOWER_FLOW_SLIDING_WINDOW_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/result.h"
#include "common/time_series.h"

namespace flower::flow {

/// Sliding-window per-entity counter — the aggregation at the heart of
/// the demo's click-stream topology (Amazon's "real-time sliding-window
/// dashboard over streaming data" reference architecture).
///
/// The window of length `window_sec` slides every `slide_sec`; both are
/// multiples of the internal bucket granularity (= slide_sec). On each
/// slide boundary, `AdvanceTo` invokes the emit callback once per
/// entity with that entity's total count over the trailing window.
class SlidingWindowCounter {
 public:
  /// Emit callback: (entity_id, count, window_end_time).
  using EmitFn = std::function<void(int64_t, double, SimTime)>;

  /// window_sec must be a positive multiple of slide_sec.
  static Result<SlidingWindowCounter> Create(double window_sec,
                                             double slide_sec);

  /// Accounts `weight` clicks for `entity` at time t (t must be
  /// non-decreasing across calls, as guaranteed by the simulation).
  void Add(int64_t entity, SimTime t, double weight = 1.0);

  /// Processes all slide boundaries up to `t`, emitting aggregates.
  void AdvanceTo(SimTime t, const EmitFn& emit);

  double window_sec() const { return window_sec_; }
  double slide_sec() const { return slide_sec_; }
  /// Entities currently tracked in the open buckets.
  size_t tracked_entities() const;

 private:
  SlidingWindowCounter(double window_sec, double slide_sec)
      : window_sec_(window_sec), slide_sec_(slide_sec),
        buckets_per_window_(static_cast<int64_t>(window_sec / slide_sec)) {}

  double window_sec_;
  double slide_sec_;
  int64_t buckets_per_window_;
  /// bucket index (= floor(t / slide)) -> entity -> count.
  std::map<int64_t, std::map<int64_t, double>> buckets_;
  int64_t next_slide_bucket_ = 0;  ///< First un-emitted slide boundary.
  bool started_ = false;
};

}  // namespace flower::flow

#endif  // FLOWER_FLOW_SLIDING_WINDOW_H_
