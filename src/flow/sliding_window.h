#ifndef FLOWER_FLOW_SLIDING_WINDOW_H_
#define FLOWER_FLOW_SLIDING_WINDOW_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"

namespace flower::flow {

/// Sliding-window per-entity counter — the aggregation at the heart of
/// the demo's click-stream topology (Amazon's "real-time sliding-window
/// dashboard over streaming data" reference architecture).
///
/// The window of length `window_sec` slides every `slide_sec`; both are
/// multiples of the internal bucket granularity (= slide_sec). On each
/// slide boundary, `AdvanceTo` invokes the emit callback once per
/// entity with that entity's total count over the trailing window.
///
/// Storage is flat and allocation-free in steady state: a power-of-two
/// ring of dense per-bucket entry vectors indexed by slide bucket, plus
/// an open-addressing table mapping entity ids to dense slots. The
/// nested `std::map<bucket, std::map<entity, count>>` this replaced
/// allocated a node per (bucket, entity) pair on the per-tuple path.
/// Emission order (ascending entity id) and floating-point accumulation
/// order are identical to the map-based implementation.
class SlidingWindowCounter {
 public:
  /// Emit callback: (entity_id, count, window_end_time). Must not
  /// re-enter Add/AdvanceTo on this counter (emission iterates internal
  /// scratch state).
  using EmitFn = std::function<void(int64_t, double, SimTime)>;

  /// window_sec must be a positive multiple of slide_sec.
  static Result<SlidingWindowCounter> Create(double window_sec,
                                             double slide_sec);

  /// Accounts `weight` clicks for `entity` at time t (t must be
  /// non-decreasing across calls, as guaranteed by the simulation).
  /// A timestamp that lands in an already-retired slide bucket (a late
  /// arrival) is clamped into the oldest bucket still inside a future
  /// window, so the count is never silently lost; `late_clamped()`
  /// reports how often that happened.
  void Add(int64_t entity, SimTime t, double weight = 1.0);

  /// Processes all slide boundaries up to `t`, emitting aggregates.
  void AdvanceTo(SimTime t, const EmitFn& emit);

  double window_sec() const { return window_sec_; }
  double slide_sec() const { return slide_sec_; }
  /// Entities currently tracked in the open buckets. O(1): maintained
  /// incrementally (a per-entity live-bucket refcount), not recomputed —
  /// the metrics path samples this every period.
  size_t tracked_entities() const { return tracked_; }
  /// Late arrivals clamped into the oldest live bucket (see Add).
  uint64_t late_clamped() const { return late_clamped_; }

 private:
  /// One (entity, weight) contribution inside a bucket. `slot` is the
  /// entity's dense index in the slot table.
  struct Entry {
    uint32_t slot;
    double weight;
  };
  /// One slide bucket: its absolute index and dense contributions in
  /// first-arrival order (which fixes the FP accumulation order).
  struct Bucket {
    int64_t index = kNoBucket;
    std::vector<Entry> entries;
  };
  static constexpr int64_t kNoBucket =
      std::numeric_limits<int64_t>::min();

  SlidingWindowCounter(double window_sec, double slide_sec);

  uint32_t FindOrCreateSlot(int64_t entity);
  void GrowTable();
  Bucket& BucketFor(int64_t index);
  void GrowRing(int64_t index);
  void DropBucket(int64_t index);

  double window_sec_;
  double slide_sec_;
  int64_t buckets_per_window_;
  int64_t next_slide_bucket_ = 0;  ///< First un-emitted slide boundary.
  bool started_ = false;

  /// Ring of buckets, indexed by (bucket index & ring_mask_).
  std::vector<Bucket> ring_;
  size_t ring_mask_ = 0;

  // Entity -> dense slot, open addressing with linear probing.
  std::vector<int32_t> table_;  // -1 = empty, else slot.
  size_t table_mask_ = 0;
  std::vector<int64_t> slot_ids_;          // slot -> entity id.
  std::vector<int64_t> slot_last_bucket_;  // Bucket of the slot's newest entry.
  std::vector<uint32_t> slot_entry_pos_;   // Position of that entry.
  std::vector<uint32_t> slot_live_;        // Buckets holding this slot.
  size_t tracked_ = 0;                     // Slots with slot_live_ > 0.
  uint64_t late_clamped_ = 0;

  // Emission scratch, reused across boundaries (epoch-marked so it
  // needs no clearing).
  std::vector<double> scratch_total_;
  std::vector<uint64_t> scratch_epoch_;
  uint64_t epoch_ = 0;
  std::vector<std::pair<int64_t, uint32_t>> scratch_present_;
};

}  // namespace flower::flow

#endif  // FLOWER_FLOW_SLIDING_WINDOW_H_
