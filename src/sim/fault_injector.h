#ifndef FLOWER_SIM_FAULT_INJECTOR_H_
#define FLOWER_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/time_series.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"

namespace flower::sim {

/// Kinds of faults the injector can impose on a control loop's sensor
/// and actuator paths (the failure modes real managed services exhibit:
/// resizes fail, APIs throttle, CloudWatch drops / delays datapoints,
/// and monitoring agents emit outlier spikes).
enum class FaultKind {
  kActuatorFailure,   ///< Actuation returns Internal (resize failed).
  kActuatorThrottle,  ///< Actuation returns Throttled (API rate limit).
  kMetricGap,         ///< Sensor read returns NotFound (datapoint gap).
  kMetricDelay,       ///< Sensor reads lag `delay_sec` behind wall time.
  kSensorSpike,       ///< Sensor value becomes value*factor + offset.
};

std::string FaultKindToString(FaultKind kind);

/// One scheduled fault. Active while the simulated clock is inside
/// [start, end); `end` defaults to forever (a persistent fault that
/// lasts until Clear/ClearAll). `probability` < 1 makes the fault
/// transient: each call inside the window draws an independent,
/// seeded Bernoulli.
struct FaultSpec {
  FaultKind kind = FaultKind::kActuatorFailure;
  /// Loop/resource name the fault applies to; empty matches every
  /// wrapped target.
  std::string target;
  SimTime start = 0.0;
  SimTime end = std::numeric_limits<double>::infinity();
  double probability = 1.0;
  double delay_sec = 0.0;  ///< kMetricDelay: sensing lag.
  double factor = 1.0;     ///< kSensorSpike: multiplicative distortion.
  double offset = 0.0;     ///< kSensorSpike: additive distortion.
};

/// Counters of what the injector actually did (for reports and tests).
struct FaultInjectorStats {
  uint64_t actuator_failures = 0;
  uint64_t actuator_throttles = 0;
  uint64_t metric_gaps = 0;
  uint64_t delayed_reads = 0;
  uint64_t sensor_spikes = 0;
};

/// Deterministic, seeded fault-injection subsystem for the simulated
/// services. The injector never reaches into a service; instead it
/// *wraps* the two functional seams every control loop already has —
/// the actuator `Status(double)` and the sensor
/// `Result<double>(SimTime)` — and corrupts calls whose simulated time
/// falls inside an active fault window. Because the simulation is
/// deterministic and all randomness comes from one seeded Rng, a given
/// (seed, schedule, workload) triple reproduces bit-identical runs.
///
/// Usage:
///   FaultInjector chaos(&sim, /*seed=*/7);
///   chaos.FailActuator("analytics", 2 * kHour, 2.5 * kHour, 0.75);
///   chaos.DropMetrics("analytics", 2 * kHour, 2.2 * kHour);
///   cfg.actuator = chaos.WrapActuator("analytics", std::move(cfg.actuator));
///   cfg.sensor   = chaos.WrapSensor("analytics", std::move(sensor));
class FaultInjector {
 public:
  FaultInjector(Simulation* sim, uint64_t seed)
      : sim_(sim), seed_(seed), rng_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a fault; returns its id (for Clear). Errors: end <=
  /// start, probability outside [0, 1], negative delay.
  Result<int> Add(FaultSpec spec);

  // Convenience registrars for the common fault shapes. `probability`
  // < 1 makes the fault transient (per-call Bernoulli); `end` may be
  // infinity for a persistent fault cleared only by Clear/ClearAll.
  int FailActuator(const std::string& target, SimTime start, SimTime end,
                   double probability = 1.0);
  int ThrottleActuator(const std::string& target, SimTime start, SimTime end,
                       double probability = 1.0);
  int DropMetrics(const std::string& target, SimTime start, SimTime end,
                  double probability = 1.0);
  int DelayMetrics(const std::string& target, SimTime start, SimTime end,
                   double delay_sec);
  int SpikeSensor(const std::string& target, SimTime start, SimTime end,
                  double factor, double offset = 0.0,
                  double probability = 1.0);

  /// Deactivates one fault / all faults. Unknown ids are ignored.
  void Clear(int id);
  void ClearAll();

  /// Wraps an actuator: calls inside an active kActuatorFailure /
  /// kActuatorThrottle window fail with Internal / Throttled without
  /// reaching the inner actuator.
  std::function<Status(double)> WrapActuator(
      std::string target, std::function<Status(double)> inner);

  /// Wraps a sensor: kMetricDelay shifts the query time back,
  /// kMetricGap turns the read into NotFound, kSensorSpike distorts the
  /// returned value (applied in that order).
  std::function<Result<double>(SimTime)> WrapSensor(
      std::string target, std::function<Result<double>(SimTime)> inner);

  /// True when any fault of `kind` is active for `target` at time `t`.
  bool Active(FaultKind kind, const std::string& target, SimTime t) const;

  /// Reports every injected fault to `telemetry`: a per-kind counter, an
  /// instant trace event on the fault-injector track, and a fault note
  /// (so the ElasticityManager stamps decision records taken at the
  /// same sim time with the interference). Pass nullptr to detach. Not
  /// owned; must outlive the injector or be detached first.
  void SetTelemetry(obs::Telemetry* telemetry);

  const FaultInjectorStats& stats() const { return stats_; }
  size_t fault_count() const;

  /// Seed the injector's Bernoulli stream was constructed with (flight
  /// recorders capture it so a replay rebuilds the identical stream).
  uint64_t seed() const { return seed_; }
  /// Snapshot of the non-cleared fault schedule, registration order.
  std::vector<FaultSpec> Schedule() const;

 private:
  struct Registered {
    int id;
    bool cleared = false;
    FaultSpec spec;
  };

  /// First active, probability-passing fault of `kind` for `target` at
  /// the current simulated time; nullptr when none fires. Draws from
  /// the seeded Rng for transient faults (so results are deterministic
  /// given the call sequence).
  const FaultSpec* Draw(FaultKind kind, const std::string& target);

  /// Publishes one injected fault to the telemetry hub, if attached.
  void Note(FaultKind kind, const std::string& target);

  Simulation* sim_;
  uint64_t seed_;
  Rng rng_;
  int next_id_ = 0;
  std::vector<Registered> faults_;
  FaultInjectorStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace flower::sim

#endif  // FLOWER_SIM_FAULT_INJECTOR_H_
