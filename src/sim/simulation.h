#ifndef FLOWER_SIM_SIMULATION_H_
#define FLOWER_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "obs/telemetry.h"

namespace flower::sim {

/// Discrete-event simulation driver.
///
/// All simulated cloud services (Kinesis, Storm, DynamoDB, CloudWatch)
/// and the Flower control loops run as events on one `Simulation`.
/// Events scheduled for the same instant fire in scheduling order
/// (FIFO), which makes runs deterministic.
///
/// Usage:
///   Simulation sim;
///   sim.ScheduleAfter(5.0, [&]{ ... });
///   sim.RunUntil(3600.0);
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute simulated time `at`. Scheduling in the
  /// past is an error.
  Status ScheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (delay >= 0).
  Status ScheduleAfter(SimTime delay, Callback cb) {
    if (delay < 0) return Status::InvalidArgument("negative delay");
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` every `period` seconds, first firing at
  /// `start` (absolute). The callback returns true to continue, false
  /// to stop the recurrence.
  Status SchedulePeriodic(SimTime start, SimTime period,
                          std::function<bool()> cb);

  /// Runs every event with time <= `end` (inclusive boundary), in time
  /// order, then advances the clock so Now() == end even when the queue
  /// drained early. Boundary contract, pinned by simulation_test:
  ///  - An event scheduled exactly at `end` — including one scheduled
  ///    at `end` by a callback running inside this call — fires in this
  ///    call, and exactly once; a subsequent RunUntil can never re-run
  ///    or drop it.
  ///  - A periodic event whose firing lands exactly on `end` fires
  ///    there once and resumes from `end + period` on the next call.
  ///  - `end < Now()` runs nothing and leaves the clock unchanged.
  void RunUntil(SimTime end);

  /// Runs a single event; returns false if the queue is empty.
  bool Step();

  /// Instruments the driver: per-event wall-clock execution time lands
  /// in the `sim.event_exec_us` histogram and executed events in the
  /// `sim.events_executed` counter of `telemetry`'s registry. Pass
  /// nullptr to detach. Not owned; must outlive the simulation or be
  /// detached first.
  void SetTelemetry(obs::Telemetry* telemetry);

  size_t pending_events() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  obs::Histogram* exec_time_us_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace flower::sim

#endif  // FLOWER_SIM_SIMULATION_H_
