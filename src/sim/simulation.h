#ifndef FLOWER_SIM_SIMULATION_H_
#define FLOWER_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "obs/telemetry.h"

namespace flower::sim {

/// Discrete-event simulation driver.
///
/// All simulated cloud services (Kinesis, Storm, DynamoDB, CloudWatch)
/// and the Flower control loops run as events on one `Simulation`.
/// Events scheduled for the same instant fire in scheduling order
/// (FIFO), which makes runs deterministic.
///
/// The calendar is a bucketed timer wheel (4096 buckets of 1/64 s):
/// events within the 64 s horizon land in their bucket in O(1); a
/// bucket is sorted by (time, seq) once, when the cursor reaches it.
/// Far-future events wait in an overflow heap and migrate into the
/// wheel as the cursor advances. Execution order is byte-identical to
/// the binary-heap calendar this replaced (preserved as RefCalendar
/// and pinned by the `simcore` calendar property test): strict
/// (time, seq) order, FIFO within an instant.
///
/// Usage:
///   Simulation sim;
///   sim.ScheduleAfter(5.0, [&]{ ... });
///   sim.RunUntil(3600.0);
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute simulated time `at`. Scheduling in the
  /// past is an error.
  Status ScheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (delay >= 0).
  Status ScheduleAfter(SimTime delay, Callback cb) {
    if (delay < 0) return Status::InvalidArgument("negative delay");
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` every `period` seconds, first firing at
  /// `start` (absolute). The callback returns true to continue, false
  /// to stop the recurrence.
  ///
  /// The task's state lives in a slot table inside the simulation, so
  /// each recurrence schedules only a {this, slot} thunk — small enough
  /// for std::function's inline storage. A periodic task therefore
  /// costs no allocation per firing, and its callback is destroyed
  /// (captures released) as soon as it declines to recur.
  Status SchedulePeriodic(SimTime start, SimTime period,
                          std::function<bool()> cb);

  /// Runs every event with time <= `end` (inclusive boundary), in time
  /// order, then advances the clock so Now() == end even when the queue
  /// drained early. Boundary contract, pinned by simulation_test:
  ///  - An event scheduled exactly at `end` — including one scheduled
  ///    at `end` by a callback running inside this call — fires in this
  ///    call, and exactly once; a subsequent RunUntil can never re-run
  ///    or drop it.
  ///  - A periodic event whose firing lands exactly on `end` fires
  ///    there once and resumes from `end + period` on the next call.
  ///  - `end < Now()` runs nothing and leaves the clock unchanged.
  void RunUntil(SimTime end);

  /// Runs a single event; returns false if the queue is empty.
  bool Step();

  /// Instruments the driver: per-event wall-clock execution time lands
  /// in the `sim.event_exec_us` histogram and executed events in the
  /// `sim.events_executed` counter of `telemetry`'s registry. Pass
  /// nullptr to detach. Not owned; must outlive the simulation or be
  /// detached first.
  void SetTelemetry(obs::Telemetry* telemetry);

  size_t pending_events() const {
    return (active_.size() - active_pos_) + wheel_count_ + overflow_.size();
  }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct PeriodicTask {
    SimTime period = 0.0;
    std::function<bool()> cb;
  };

  // Wheel geometry: 64 ticks per simulated second across 4096 buckets
  // gives a 64 s in-wheel horizon; everything beyond waits in the
  // overflow heap. The wheel only buckets events — times are stored and
  // compared as exact doubles, so tick quantization never alters order.
  static constexpr double kTicksPerSec = 64.0;
  static constexpr size_t kWheelSize = 4096;  // Power of two.
  static constexpr size_t kWheelMask = kWheelSize - 1;
  static constexpr int64_t kMaxTick =
      std::numeric_limits<int64_t>::max() / 2;

  static int64_t TickOf(SimTime t) {
    double x = t * kTicksPerSec;
    if (x <= 0.0) return 0;
    if (x >= static_cast<double>(kMaxTick)) return kMaxTick;
    return static_cast<int64_t>(x);  // trunc == floor for x >= 0.
  }
  static bool EventBefore(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Returns the next runnable event without executing it, advancing
  /// the cursor through empty buckets but never past `limit_tick`.
  /// Returns nullptr when no event exists at tick <= limit_tick (the
  /// cursor is then parked at limit_tick). The returned pointer is
  /// valid only until the next schedule or execute call.
  Event* PeekNextUpTo(int64_t limit_tick);
  /// Executes active_[active_pos_] (which PeekNextUpTo just returned).
  void ExecuteActiveFront();
  /// Migrates overflow events that entered the wheel horizon.
  void PullOverflow();
  /// Fires periodic task `id` and reschedules it if it continues.
  void RunPeriodic(size_t id);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  obs::Histogram* exec_time_us_ = nullptr;
  obs::Counter* events_counter_ = nullptr;

  /// All ticks < cursor_tick_ are fully executed. The bucket for
  /// cursor_tick_ itself is either still in the wheel (not yet
  /// activated) or sorted into active_.
  int64_t cursor_tick_ = 0;
  std::vector<std::vector<Event>> wheel_;  // kWheelSize buckets.
  size_t wheel_count_ = 0;                 // Events in wheel buckets.
  /// The activated (sorted) bucket for cursor_tick_; events before
  /// active_pos_ have executed. In-callback schedules landing on the
  /// active tick insert sorted at a position >= active_pos_.
  std::vector<Event> active_;
  size_t active_pos_ = 0;
  bool active_valid_ = false;
  /// Events beyond the wheel horizon, ordered by (time, seq).
  std::priority_queue<Event, std::vector<Event>, Later> overflow_;

  std::vector<PeriodicTask> periodic_tasks_;
  std::vector<size_t> periodic_free_;
};

}  // namespace flower::sim

#endif  // FLOWER_SIM_SIMULATION_H_
