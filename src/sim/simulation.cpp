#include "sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace flower::sim {

Simulation::Simulation() : wheel_(kWheelSize) {}

void Simulation::SetTelemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    exec_time_us_ = nullptr;
    events_counter_ = nullptr;
    return;
  }
  // Event handlers run in micro- to milliseconds; buckets up to 10 s
  // catch pathological ones.
  obs::HistogramOptions opts;
  opts.min = 0.1;    // 100 ns.
  opts.max = 1e7;    // 10 s.
  exec_time_us_ = telemetry->metrics().GetHistogram("sim.event_exec_us", {},
                                                    opts);
  events_counter_ = telemetry->metrics().GetCounter("sim.events_executed");
  telemetry->trace().SetTrackName(obs::kSimulatorTid, "simulator");
}

Status Simulation::ScheduleAt(SimTime at, Callback cb) {
  if (at < now_) {
    return Status::InvalidArgument("ScheduleAt: time is in the past");
  }
  const int64_t tick = TickOf(at);
  Event ev{at, next_seq_++, std::move(cb)};
  if (active_valid_ && tick == cursor_tick_) {
    // Scheduling onto the tick currently being executed: keep the
    // active bucket sorted. `at >= now_` and the fresh seq guarantee
    // the slot is at or after active_pos_, so already-executed entries
    // are never disturbed.
    auto it = std::lower_bound(active_.begin() +
                                   static_cast<std::ptrdiff_t>(active_pos_),
                               active_.end(), ev, EventBefore);
    active_.insert(it, std::move(ev));
  } else if (tick < cursor_tick_ + static_cast<int64_t>(kWheelSize)) {
    wheel_[static_cast<size_t>(tick) & kWheelMask].push_back(std::move(ev));
    ++wheel_count_;
  } else {
    overflow_.push(std::move(ev));
  }
  return Status::OK();
}

Status Simulation::SchedulePeriodic(SimTime start, SimTime period,
                                    std::function<bool()> cb) {
  if (period <= 0) {
    return Status::InvalidArgument("SchedulePeriodic: period must be > 0");
  }
  if (start < now_) {
    return Status::InvalidArgument("SchedulePeriodic: start is in the past");
  }
  size_t id;
  if (!periodic_free_.empty()) {
    id = periodic_free_.back();
    periodic_free_.pop_back();
    periodic_tasks_[id] = PeriodicTask{period, std::move(cb)};
  } else {
    id = periodic_tasks_.size();
    periodic_tasks_.push_back(PeriodicTask{period, std::move(cb)});
  }
  // {this, id} fits std::function's inline storage: no per-recurrence
  // allocation.
  return ScheduleAt(start, [this, id] { RunPeriodic(id); });
}

void Simulation::RunPeriodic(size_t id) {
  // Run the callback from a local: it may itself schedule periodic
  // tasks, growing (reallocating) periodic_tasks_ mid-call.
  std::function<bool()> cb = std::move(periodic_tasks_[id].cb);
  const SimTime period = periodic_tasks_[id].period;
  if (cb()) {
    periodic_tasks_[id].cb = std::move(cb);
    // Ignore failure: re-scheduling "now + period" cannot be in the
    // past.
    (void)ScheduleAfter(period, [this, id] { RunPeriodic(id); });
  } else {
    // Stopped recurring: destroy the callback now so its captures are
    // released (pinned by PeriodicCallbackIsFreedWhenItStopsRecurring),
    // then recycle the slot.
    periodic_free_.push_back(id);
  }
}

void Simulation::PullOverflow() {
  const int64_t horizon = cursor_tick_ + static_cast<int64_t>(kWheelSize);
  while (!overflow_.empty() && TickOf(overflow_.top().time) < horizon) {
    // priority_queue exposes only const top(); moving out before pop is
    // safe because the comparator reads time/seq, never the callback.
    Event& top = const_cast<Event&>(overflow_.top());
    const int64_t tick = TickOf(top.time);
    wheel_[static_cast<size_t>(tick) & kWheelMask].push_back(std::move(top));
    overflow_.pop();
    ++wheel_count_;
  }
}

Simulation::Event* Simulation::PeekNextUpTo(int64_t limit_tick) {
  for (;;) {
    if (active_valid_) {
      if (active_pos_ < active_.size()) return &active_[active_pos_];
      // Bucket exhausted. Retire it; the cursor may then advance. New
      // events for this tick will land in the (now empty) wheel bucket
      // and re-activate it.
      active_.clear();
      active_pos_ = 0;
      active_valid_ = false;
      // Hand the storage back to the tick's home bucket (empty while
      // active: same-tick schedules went into active_, and overflow
      // never pulls into the active tick). Without this, capacities
      // would permute around the wheel — each activation swap leaves
      // the bucket with the *previous* bucket's buffer — and ticks
      // with above-average load would keep reallocating for many
      // rotations. Returning the buffer home makes a warmed-up wheel
      // allocation-free per bucket.
      {
        std::vector<Event>& home =
            wheel_[static_cast<size_t>(cursor_tick_) & kWheelMask];
        if (home.empty()) home.swap(active_);
      }
      if (cursor_tick_ >= limit_tick) return nullptr;
      ++cursor_tick_;
      PullOverflow();
      continue;
    }
    if (wheel_count_ == 0) {
      // Nothing inside the horizon: jump straight to the next overflow
      // event (or the limit, whichever is earlier).
      if (overflow_.empty()) {
        cursor_tick_ = std::max(cursor_tick_, limit_tick);
        return nullptr;
      }
      const int64_t next_tick = TickOf(overflow_.top().time);
      if (next_tick > limit_tick) {
        cursor_tick_ = std::max(cursor_tick_, limit_tick);
        return nullptr;
      }
      cursor_tick_ = std::max(cursor_tick_, next_tick);
      PullOverflow();
      continue;
    }
    std::vector<Event>& bucket =
        wheel_[static_cast<size_t>(cursor_tick_) & kWheelMask];
    if (!bucket.empty()) {
      // Activate: sort once per bucket. Swapping recycles capacity
      // between the bucket and the active slot, so a warmed-up wheel
      // schedules and activates without allocating.
      std::swap(active_, bucket);
      wheel_count_ -= active_.size();
      if (!std::is_sorted(active_.begin(), active_.end(), EventBefore)) {
        std::sort(active_.begin(), active_.end(), EventBefore);
      }
      active_pos_ = 0;
      active_valid_ = true;
      continue;
    }
    if (cursor_tick_ >= limit_tick) return nullptr;
    ++cursor_tick_;
    PullOverflow();
  }
}

void Simulation::ExecuteActiveFront() {
  Event& ev = active_[active_pos_];
  now_ = ev.time;
  // Move the callback out: it may schedule into this same tick, which
  // inserts into (and can reallocate) active_ under our feet.
  Callback cb = std::move(ev.cb);
  ++active_pos_;
  ++events_executed_;
  if (events_counter_ != nullptr) events_counter_->Increment();
  if (exec_time_us_ != nullptr) {
    auto t0 = std::chrono::steady_clock::now();
    cb();
    auto t1 = std::chrono::steady_clock::now();
    exec_time_us_->Record(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  } else {
    cb();
  }
}

bool Simulation::Step() {
  if (pending_events() == 0) return false;
  Event* ev = PeekNextUpTo(kMaxTick);
  // pending_events() > 0 guarantees an event exists below kMaxTick.
  (void)ev;
  ExecuteActiveFront();
  return true;
}

void Simulation::RunUntil(SimTime end) {
  if (end < now_) return;  // Past horizon: nothing to run, clock keeps.
  const int64_t end_tick = TickOf(end);
  for (;;) {
    Event* ev = PeekNextUpTo(end_tick);
    if (ev == nullptr || ev->time > end) break;
    ExecuteActiveFront();
  }
  if (now_ < end) now_ = end;
}

}  // namespace flower::sim
