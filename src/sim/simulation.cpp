#include "sim/simulation.h"

#include <chrono>
#include <memory>
#include <utility>

namespace flower::sim {

void Simulation::SetTelemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    exec_time_us_ = nullptr;
    events_counter_ = nullptr;
    return;
  }
  // Event handlers run in micro- to milliseconds; buckets up to 10 s
  // catch pathological ones.
  obs::HistogramOptions opts;
  opts.min = 0.1;    // 100 ns.
  opts.max = 1e7;    // 10 s.
  exec_time_us_ = telemetry->metrics().GetHistogram("sim.event_exec_us", {},
                                                    opts);
  events_counter_ = telemetry->metrics().GetCounter("sim.events_executed");
  telemetry->trace().SetTrackName(obs::kSimulatorTid, "simulator");
}

Status Simulation::ScheduleAt(SimTime at, Callback cb) {
  if (at < now_) {
    return Status::InvalidArgument("ScheduleAt: time is in the past");
  }
  queue_.push(Event{at, next_seq_++, std::move(cb)});
  return Status::OK();
}

Status Simulation::SchedulePeriodic(SimTime start, SimTime period,
                                    std::function<bool()> cb) {
  if (period <= 0) {
    return Status::InvalidArgument("SchedulePeriodic: period must be > 0");
  }
  if (start < now_) {
    return Status::InvalidArgument("SchedulePeriodic: start is in the past");
  }
  // The recurring event reschedules itself while cb() returns true. The
  // pending event holds the only strong reference to the recursive
  // function; it captures itself weakly, so once cb() declines to recur
  // (or the queue is destroyed) the whole chain is freed. Capturing the
  // shared_ptr directly would be a reference cycle that leaks every
  // periodic task ever scheduled.
  auto recur = std::make_shared<std::function<void()>>();
  auto self = this;
  *recur = [self, period, cb = std::move(cb),
            weak = std::weak_ptr<std::function<void()>>(recur)]() {
    if (cb()) {
      if (auto strong = weak.lock()) {
        // Ignore failure: re-scheduling "now + period" cannot be in the
        // past.
        (void)self->ScheduleAfter(period, [strong] { (*strong)(); });
      }
    }
  };
  return ScheduleAt(start, [recur] { (*recur)(); });
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_executed_;
  if (events_counter_ != nullptr) events_counter_->Increment();
  if (exec_time_us_ != nullptr) {
    auto t0 = std::chrono::steady_clock::now();
    ev.cb();
    auto t1 = std::chrono::steady_clock::now();
    exec_time_us_->Record(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  } else {
    ev.cb();
  }
  return true;
}

void Simulation::RunUntil(SimTime end) {
  if (end < now_) return;  // Past horizon: nothing to run, clock keeps.
  while (!queue_.empty() && queue_.top().time <= end) {
    Step();
  }
  if (now_ < end) now_ = end;
}

}  // namespace flower::sim
