#include "sim/ref_calendar.h"

#include <memory>
#include <utility>

namespace flower::sim {

Status RefCalendar::ScheduleAt(SimTime at, Callback cb) {
  if (at < now_) {
    return Status::InvalidArgument("ScheduleAt: time is in the past");
  }
  queue_.push(Event{at, next_seq_++, std::move(cb)});
  return Status::OK();
}

Status RefCalendar::SchedulePeriodic(SimTime start, SimTime period,
                                     std::function<bool()> cb) {
  if (period <= 0) {
    return Status::InvalidArgument("SchedulePeriodic: period must be > 0");
  }
  if (start < now_) {
    return Status::InvalidArgument("SchedulePeriodic: start is in the past");
  }
  // Self-rescheduling closure chain, weakly self-captured so that a
  // callback declining to recur frees the whole chain (see the
  // original Simulation::SchedulePeriodic this class preserves).
  auto recur = std::make_shared<std::function<void()>>();
  auto self = this;
  *recur = [self, period, cb = std::move(cb),
            weak = std::weak_ptr<std::function<void()>>(recur)]() {
    if (cb()) {
      if (auto strong = weak.lock()) {
        (void)self->ScheduleAfter(period, [strong] { (*strong)(); });
      }
    }
  };
  return ScheduleAt(start, [recur] { (*recur)(); });
}

bool RefCalendar::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_executed_;
  ev.cb();
  return true;
}

void RefCalendar::RunUntil(SimTime end) {
  if (end < now_) return;
  while (!queue_.empty() && queue_.top().time <= end) {
    Step();
  }
  if (now_ < end) now_ = end;
}

}  // namespace flower::sim
