#include "sim/fault_injector.h"

#include <memory>
#include <utility>

namespace flower::sim {

std::string FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kActuatorFailure: return "actuator-failure";
    case FaultKind::kActuatorThrottle: return "actuator-throttle";
    case FaultKind::kMetricGap: return "metric-gap";
    case FaultKind::kMetricDelay: return "metric-delay";
    case FaultKind::kSensorSpike: return "sensor-spike";
  }
  return "unknown";
}

Result<int> FaultInjector::Add(FaultSpec spec) {
  if (spec.end <= spec.start) {
    return Status::InvalidArgument("FaultInjector: end must exceed start");
  }
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    return Status::InvalidArgument(
        "FaultInjector: probability must be in [0, 1]");
  }
  if (spec.delay_sec < 0.0) {
    return Status::InvalidArgument("FaultInjector: negative delay");
  }
  int id = next_id_++;
  faults_.push_back(Registered{id, false, std::move(spec)});
  return id;
}

namespace {
FaultSpec MakeSpec(FaultKind kind, const std::string& target, SimTime start,
                   SimTime end, double probability) {
  FaultSpec spec;
  spec.kind = kind;
  spec.target = target;
  spec.start = start;
  spec.end = end;
  spec.probability = probability;
  return spec;
}
}  // namespace

int FaultInjector::FailActuator(const std::string& target, SimTime start,
                                SimTime end, double probability) {
  return *Add(MakeSpec(FaultKind::kActuatorFailure, target, start, end,
                       probability));
}

int FaultInjector::ThrottleActuator(const std::string& target, SimTime start,
                                    SimTime end, double probability) {
  return *Add(MakeSpec(FaultKind::kActuatorThrottle, target, start, end,
                       probability));
}

int FaultInjector::DropMetrics(const std::string& target, SimTime start,
                               SimTime end, double probability) {
  return *Add(
      MakeSpec(FaultKind::kMetricGap, target, start, end, probability));
}

int FaultInjector::DelayMetrics(const std::string& target, SimTime start,
                                SimTime end, double delay_sec) {
  FaultSpec spec = MakeSpec(FaultKind::kMetricDelay, target, start, end, 1.0);
  spec.delay_sec = delay_sec;
  return *Add(std::move(spec));
}

int FaultInjector::SpikeSensor(const std::string& target, SimTime start,
                               SimTime end, double factor, double offset,
                               double probability) {
  FaultSpec spec =
      MakeSpec(FaultKind::kSensorSpike, target, start, end, probability);
  spec.factor = factor;
  spec.offset = offset;
  return *Add(std::move(spec));
}

void FaultInjector::Clear(int id) {
  for (Registered& r : faults_) {
    if (r.id == id) r.cleared = true;
  }
}

void FaultInjector::ClearAll() {
  for (Registered& r : faults_) r.cleared = true;
}

size_t FaultInjector::fault_count() const {
  size_t n = 0;
  for (const Registered& r : faults_) {
    if (!r.cleared) ++n;
  }
  return n;
}

std::vector<FaultSpec> FaultInjector::Schedule() const {
  std::vector<FaultSpec> out;
  out.reserve(faults_.size());
  for (const Registered& r : faults_) {
    if (!r.cleared) out.push_back(r.spec);
  }
  return out;
}

bool FaultInjector::Active(FaultKind kind, const std::string& target,
                           SimTime t) const {
  for (const Registered& r : faults_) {
    if (r.cleared || r.spec.kind != kind) continue;
    if (!r.spec.target.empty() && r.spec.target != target) continue;
    if (t >= r.spec.start && t < r.spec.end) return true;
  }
  return false;
}

void FaultInjector::SetTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ != nullptr) {
    telemetry_->trace().SetTrackName(obs::kFaultInjectorTid,
                                     "fault-injector");
  }
}

void FaultInjector::Note(FaultKind kind, const std::string& target) {
  if (telemetry_ == nullptr) return;
  SimTime now = sim_->Now();
  telemetry_->metrics()
      .GetCounter("fault.injected", {{"kind", FaultKindToString(kind)},
                                     {"target", target}})
      ->Increment();
  obs::TraceEvent args;
  args.str_args = {{"kind", FaultKindToString(kind)}, {"target", target}};
  telemetry_->trace().AddInstant("fault:" + FaultKindToString(kind),
                                 "fault", now, obs::kFaultInjectorTid,
                                 std::move(args));
  telemetry_->NoteFault(
      target, static_cast<obs::FaultMask>(1u << static_cast<int>(kind)),
      now);
}

const FaultSpec* FaultInjector::Draw(FaultKind kind,
                                     const std::string& target) {
  SimTime now = sim_->Now();
  for (Registered& r : faults_) {
    if (r.cleared || r.spec.kind != kind) continue;
    if (!r.spec.target.empty() && r.spec.target != target) continue;
    if (now < r.spec.start || now >= r.spec.end) continue;
    if (r.spec.probability >= 1.0 || rng_.Bernoulli(r.spec.probability)) {
      return &r.spec;
    }
  }
  return nullptr;
}

std::function<Status(double)> FaultInjector::WrapActuator(
    std::string target, std::function<Status(double)> inner) {
  return [this, target = std::move(target),
          inner = std::move(inner)](double amount) -> Status {
    if (Draw(FaultKind::kActuatorFailure, target) != nullptr) {
      ++stats_.actuator_failures;
      Note(FaultKind::kActuatorFailure, target);
      return Status::Internal("fault injection: actuation failed for '" +
                              target + "'");
    }
    if (Draw(FaultKind::kActuatorThrottle, target) != nullptr) {
      ++stats_.actuator_throttles;
      Note(FaultKind::kActuatorThrottle, target);
      return Status::Throttled("fault injection: actuation throttled for '" +
                               target + "'");
    }
    return inner(amount);
  };
}

std::function<Result<double>(SimTime)> FaultInjector::WrapSensor(
    std::string target, std::function<Result<double>(SimTime)> inner) {
  return [this, target = std::move(target),
          inner = std::move(inner)](SimTime now) -> Result<double> {
    // Delay first: the read observes the store as of `now - delay`.
    SimTime query_time = now;
    if (const FaultSpec* delay = Draw(FaultKind::kMetricDelay, target)) {
      query_time = now - delay->delay_sec;
      ++stats_.delayed_reads;
      Note(FaultKind::kMetricDelay, target);
    }
    if (Draw(FaultKind::kMetricGap, target) != nullptr) {
      ++stats_.metric_gaps;
      Note(FaultKind::kMetricGap, target);
      return Status::NotFound("fault injection: metric gap for '" + target +
                              "'");
    }
    Result<double> value = inner(query_time);
    if (!value.ok()) return value;
    if (const FaultSpec* spike = Draw(FaultKind::kSensorSpike, target)) {
      ++stats_.sensor_spikes;
      Note(FaultKind::kSensorSpike, target);
      return *value * spike->factor + spike->offset;
    }
    return value;
  };
}

}  // namespace flower::sim
