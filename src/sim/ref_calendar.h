#ifndef FLOWER_SIM_REF_CALENDAR_H_
#define FLOWER_SIM_REF_CALENDAR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"

namespace flower::sim {

/// The pre-timer-wheel event calendar: a binary heap ordered by
/// (time, seq), exactly as `Simulation` was implemented before the
/// bucketed wheel replaced it.
///
/// Kept as the semantics oracle: the calendar property test drives
/// randomized schedules through both engines and asserts byte-identical
/// execution order, and bench/sim_throughput reports the wheel's
/// speedup against this baseline. Not used by any simulated service.
///
/// The API is the schedule/run subset of `Simulation` (no telemetry).
class RefCalendar {
 public:
  using Callback = std::function<void()>;

  RefCalendar() = default;
  RefCalendar(const RefCalendar&) = delete;
  RefCalendar& operator=(const RefCalendar&) = delete;

  SimTime Now() const { return now_; }

  Status ScheduleAt(SimTime at, Callback cb);

  Status ScheduleAfter(SimTime delay, Callback cb) {
    if (delay < 0) return Status::InvalidArgument("negative delay");
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  Status SchedulePeriodic(SimTime start, SimTime period,
                          std::function<bool()> cb);

  /// Same inclusive-boundary contract as Simulation::RunUntil.
  void RunUntil(SimTime end);

  /// Runs a single event; returns false if the queue is empty.
  bool Step();

  size_t pending_events() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace flower::sim

#endif  // FLOWER_SIM_REF_CALENDAR_H_
