#ifndef FLOWER_CONTROL_RULE_BASED_H_
#define FLOWER_CONTROL_RULE_BASED_H_

#include "control/controller.h"

namespace flower::control {

/// Configuration of the rule-based baseline, modelled on cloud-provider
/// auto-scaling (the paper's reference [1]): static thresholds, fixed
/// step sizes, breach counts, and cooldowns.
struct RuleBasedConfig {
  double high_threshold = 75.0;  ///< Scale up when y stays above this.
  double low_threshold = 35.0;   ///< Scale down when y stays below this.
  /// Consecutive breaching observations required before acting (the
  /// CloudWatch-alarm "evaluation periods").
  int breach_periods = 2;
  /// Additive step applied on scale-up / scale-down.
  double up_step = 2.0;
  double down_step = 1.0;
  /// Minimum time between consecutive scaling actions, seconds.
  double up_cooldown = 120.0;
  double down_cooldown = 300.0;
  ActuatorLimits limits;
};

/// Threshold-rule autoscaler: "almost all the auto-scaling systems
/// offered by cloud providers ... use simple rule-based techniques"
/// (paper §1). Reacts only after `breach_periods` consecutive
/// violations and then by a fixed step, so it adapts poorly to
/// unforeseen demand changes — the behaviour Flower's controllers are
/// designed to beat.
///
/// The `reference()` reported is the midpoint of the two thresholds
/// (used by evaluation metrics; the rules themselves only use the
/// thresholds).
class RuleBasedController final : public Controller {
 public:
  explicit RuleBasedController(RuleBasedConfig config);

  std::string name() const override { return "rule-based"; }
  void Reset(double initial_u) override;
  Result<double> Update(SimTime now, double y) override;
  double current_u() const override { return u_; }
  double reference() const override {
    return 0.5 * (config_.high_threshold + config_.low_threshold);
  }
  void set_reference(double y_r) override;

  const RuleBasedConfig& config() const { return config_; }

 private:
  RuleBasedConfig config_;
  double u_;
  int high_breaches_ = 0;
  int low_breaches_ = 0;
  SimTime last_action_time_ = -1e18;
  bool last_action_was_up_ = false;
  SimTime last_time_ = -1.0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_RULE_BASED_H_
