#include "control/feedforward.h"

#include <algorithm>
#include <cmath>

namespace flower::control {

FeedforwardController::FeedforwardController(FeedforwardConfig config,
                                             DriverFn driver)
    : config_(config), driver_(std::move(driver)),
      u_(config.limits.Clamp(config.limits.min)) {}

void FeedforwardController::Reset(double initial_u) {
  u_ = config_.limits.Clamp(initial_u);
  trim_ = 0.0;
  a_ = 0.0;
  b_ = 0.0;
  p_[0][0] = 1e6;
  p_[0][1] = 0.0;
  p_[1][0] = 0.0;
  p_[1][1] = 1e6;
  observations_ = 0;
  driver_misses_ = 0;
  last_time_ = -1.0;
}

void FeedforwardController::RlsUpdate(double x, double w) {
  // Regressor phi = [1, x]; model w = a + b*x.
  double phi0 = 1.0, phi1 = x;
  double lambda = config_.forgetting;
  // P * phi
  double pp0 = p_[0][0] * phi0 + p_[0][1] * phi1;
  double pp1 = p_[1][0] * phi0 + p_[1][1] * phi1;
  double denom = lambda + phi0 * pp0 + phi1 * pp1;
  if (denom <= 1e-12) return;
  double k0 = pp0 / denom, k1 = pp1 / denom;
  double err = w - (a_ * phi0 + b_ * phi1);
  a_ += k0 * err;
  b_ += k1 * err;
  // P = (P - k * phi' * P) / lambda.
  double p00 = (p_[0][0] - k0 * pp0) / lambda;
  double p01 = (p_[0][1] - k0 * pp1) / lambda;
  double p10 = (p_[1][0] - k1 * pp0) / lambda;
  double p11 = (p_[1][1] - k1 * pp1) / lambda;
  p_[0][0] = std::min(p00, 1e9);
  p_[0][1] = std::min(p01, 1e9);
  p_[1][0] = std::min(p10, 1e9);
  p_[1][1] = std::min(p11, 1e9);
  ++observations_;
}

Result<double> FeedforwardController::Update(SimTime now, double y) {
  if (now < last_time_) {
    return Status::InvalidArgument(
        "FeedforwardController: time moved backwards");
  }
  if (now == last_time_) {
    // Duplicate control tick: idempotent no-op (no double model/trim
    // update).
    return config_.limits.Quantize(u_);
  }
  last_time_ = now;

  Result<double> x = driver_ ? driver_(now)
                             : Result<double>(Status::FailedPrecondition(
                                   "no driver configured"));
  if (!x.ok()) {
    // Degraded mode: pure integral feedback on the measurement.
    ++driver_misses_;
    double raw_u = u_ + config_.trim_gain * (y - config_.reference);
    u_ = config_.limits.Clamp(raw_u);
    double out = config_.limits.Quantize(u_);
    Notify(now, y, config_.reference, config_.trim_gain, raw_u, out);
    return out;
  }

  // Learn the workload model from the *applied* capacity and measured
  // utilization. A saturated sample (y pinned at 100) only lower-bounds
  // the demand, so it would bias the model down — but if the model
  // predicts even less than that bound it is certainly wrong, and
  // refusing to learn would deadlock the loop: stale-low model, trim
  // clamped to a fraction of it, y stuck at 100 forever. Learn from the
  // bound in that case so saturation always resolves.
  double applied = config_.limits.Quantize(u_);
  if (y < 99.0 || a_ + b_ * (*x) < y * applied) {
    RlsUpdate(*x, y * applied);
  }

  if (observations_ < 3) {
    // Model still cold: feedback only.
    double raw_u = u_ + config_.trim_gain * (y - config_.reference);
    u_ = config_.limits.Clamp(raw_u);
    double out = config_.limits.Quantize(u_);
    Notify(now, y, config_.reference, config_.trim_gain, raw_u, out);
    return out;
  }

  // Feedforward term: capacity that puts the predicted demand at the
  // reference utilization.
  double predicted_w = std::max(0.0, a_ + b_ * (*x));
  double u_ff = predicted_w / config_.reference;

  // Feedback trim absorbs residual model bias.
  trim_ += config_.trim_gain * (y - config_.reference);
  double max_trim = config_.max_trim_fraction * std::max(u_ff, 1.0);
  trim_ = std::clamp(trim_, -max_trim, max_trim);

  double raw_u = u_ff + trim_;
  u_ = config_.limits.Clamp(raw_u);
  double out = config_.limits.Quantize(u_);
  Notify(now, y, config_.reference, config_.trim_gain, raw_u, out);
  return out;
}

}  // namespace flower::control
