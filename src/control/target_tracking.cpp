#include "control/target_tracking.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flower::control {

TargetTrackingController::TargetTrackingController(
    TargetTrackingConfig config)
    : config_(config), u_(config.limits.Clamp(config.limits.min)) {}

void TargetTrackingController::Reset(double initial_u) {
  u_ = config_.limits.Clamp(initial_u);
  last_scale_time_ = -1e18;
  last_time_ = -1.0;
}

Result<double> TargetTrackingController::Update(SimTime now, double y) {
  if (now < last_time_) {
    return Status::InvalidArgument(
        "TargetTrackingController: time moved backwards");
  }
  if (now == last_time_) {
    // Duplicate control tick: idempotent no-op (a repeat at one instant
    // must not re-enter the cooldown bookkeeping).
    return config_.limits.Quantize(u_);
  }
  last_time_ = now;
  if (config_.reference <= 0.0) {
    return Status::FailedPrecondition(
        "TargetTrackingController: non-positive reference");
  }
  double desired = u_ * (y / config_.reference);
  double since = now - last_scale_time_;
  bool never_scaled = last_scale_time_ < -1e17;
  if (desired > u_) {
    if (never_scaled || since >= config_.scale_out_cooldown) {
      u_ = config_.limits.Clamp(desired);
      last_scale_time_ = now;
    }
  } else if (config_.scale_in_enabled &&
             desired < config_.scale_in_margin * u_) {
    if (never_scaled || since >= config_.scale_in_cooldown) {
      u_ = config_.limits.Clamp(desired);
      last_scale_time_ = now;
    }
  }
  double out = config_.limits.Quantize(u_);
  // Ratio law has no explicit gain; raw_u is the pre-cooldown desire.
  Notify(now, y, config_.reference,
         std::numeric_limits<double>::quiet_NaN(), desired, out);
  return out;
}

}  // namespace flower::control
