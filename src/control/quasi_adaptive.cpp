#include "control/quasi_adaptive.h"

#include <algorithm>
#include <cmath>

namespace flower::control {

QuasiAdaptiveController::QuasiAdaptiveController(QuasiAdaptiveConfig config)
    : config_(config),
      u_(config.limits.Clamp(config.limits.min)),
      b_hat_(config.initial_sensitivity) {}

void QuasiAdaptiveController::Reset(double initial_u) {
  u_ = config_.limits.Clamp(initial_u);
  b_hat_ = config_.initial_sensitivity;
  p_ = 1.0;
  have_prev_ = false;
  prev_u_ = config_.limits.Quantize(u_);
  prev_prev_u_ = prev_u_;
  last_time_ = -1.0;
}

Result<double> QuasiAdaptiveController::Update(SimTime now, double y) {
  if (now < last_time_) {
    return Status::InvalidArgument(
        "QuasiAdaptiveController: time moved backwards");
  }
  if (now == last_time_) {
    // Duplicate control tick: idempotent no-op (no double RLS/integral
    // update).
    return prev_u_;
  }
  last_time_ = now;

  // Online model estimation: RLS over (Δu, Δy) with forgetting. The
  // measurement y_k responds to the actuation applied after the
  // previous step, so the regressor pairs Δy_k = y_k − y_{k-1} with
  // Δu = u_{k-1} − u_{k-2} (both quantized: what the plant saw).
  if (have_prev_) {
    double du = prev_u_ - prev_prev_u_;
    double dy = y - prev_y_;
    if (std::fabs(du) > 1e-9) {
      double denom = config_.forgetting + du * p_ * du;
      double k_gain = p_ * du / denom;
      b_hat_ += k_gain * (dy - b_hat_ * du);
      p_ = (p_ - k_gain * du * p_) / config_.forgetting;
      p_ = std::min(p_, 1e6);
    }
  }
  // Keep the magnitude bounded and the sign physically meaningful
  // (capacity up => utilization down).
  double mag = std::clamp(std::fabs(b_hat_), config_.sensitivity_min,
                          config_.sensitivity_max);
  b_hat_ = b_hat_ <= 0.0 ? -mag : -mag;  // Enforce negative sensitivity.

  prev_y_ = y;
  have_prev_ = true;

  double gain = config_.lambda / mag;
  double error = y - config_.reference;
  // Continuous integrator; only the returned actuation is quantized.
  prev_prev_u_ = prev_u_;
  double raw_u = u_ + gain * error;
  u_ = config_.limits.Clamp(raw_u);
  prev_u_ = config_.limits.Quantize(u_);
  Notify(now, y, config_.reference, gain, raw_u, prev_u_);
  return prev_u_;
}

}  // namespace flower::control
