#ifndef FLOWER_CONTROL_QUASI_ADAPTIVE_H_
#define FLOWER_CONTROL_QUASI_ADAPTIVE_H_

#include "control/controller.h"

namespace flower::control {

/// Configuration of the quasi-adaptive baseline (Padala et al.,
/// "Adaptive control of virtualized resources", EuroSys 2007 — the
/// paper's reference [14]).
struct QuasiAdaptiveConfig {
  double reference = 60.0;
  /// Closed-loop aggressiveness λ: the effective integral gain is
  /// λ / |b̂| where b̂ is the estimated plant sensitivity ∂y/∂u.
  double lambda = 0.3;
  /// Initial sensitivity estimate (per actuator unit). For a
  /// utilization plant b is negative: adding capacity lowers
  /// utilization.
  double initial_sensitivity = -5.0;
  /// |b̂| is kept in [sensitivity_min, sensitivity_max] to bound the
  /// effective gain.
  double sensitivity_min = 0.2;
  double sensitivity_max = 100.0;
  /// RLS forgetting factor in (0, 1]; smaller forgets faster.
  double forgetting = 0.95;
  ActuatorLimits limits;
};

/// Self-tuning integral controller with online model estimation:
///
///   model:      Δy_k = b · Δu_{k-1} + e_k   (b estimated by RLS with
///                                            exponential forgetting)
///   control:    u_{k+1} = u_k + (λ / |b̂_k|) (y_k − y_r)
///
/// The gain is recomputed from scratch off the *current* model estimate
/// each step — it adapts to the plant but, unlike Flower's controller,
/// carries no memory of its own past control decisions, which is why
/// the Flower paper labels this family "quasi-adaptive".
class QuasiAdaptiveController final : public Controller {
 public:
  explicit QuasiAdaptiveController(QuasiAdaptiveConfig config);

  std::string name() const override { return "quasi-adaptive"; }
  void Reset(double initial_u) override;
  Result<double> Update(SimTime now, double y) override;
  double current_u() const override { return config_.limits.Quantize(u_); }
  double reference() const override { return config_.reference; }
  void set_reference(double y_r) override { config_.reference = y_r; }

  /// Current sensitivity estimate b̂ (for monitoring/tests).
  double estimated_sensitivity() const { return b_hat_; }
  const QuasiAdaptiveConfig& config() const { return config_; }

 private:
  QuasiAdaptiveConfig config_;
  double u_;
  double b_hat_;
  double p_ = 1.0;  // RLS covariance.
  bool have_prev_ = false;
  double prev_y_ = 0.0;
  double prev_u_ = 0.0;       ///< Quantized actuation returned last step.
  double prev_prev_u_ = 0.0;  ///< Quantized actuation two steps back.
  SimTime last_time_ = -1.0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_QUASI_ADAPTIVE_H_
