#include "control/stability.h"

namespace flower::control {

Result<double> MaxStableIntegralGain(double sensitivity_magnitude,
                                     int delay_periods) {
  if (sensitivity_magnitude <= 0.0) {
    return Status::InvalidArgument(
        "MaxStableIntegralGain: sensitivity magnitude must be positive");
  }
  if (delay_periods < 0) {
    return Status::InvalidArgument(
        "MaxStableIntegralGain: negative delay");
  }
  return 1.0 /
         (sensitivity_magnitude * (1.0 + static_cast<double>(delay_periods)));
}

Result<double> UtilizationPlantSensitivity(double utilization_pct,
                                           double resource_units) {
  if (utilization_pct <= 0.0 || resource_units <= 0.0) {
    return Status::InvalidArgument(
        "UtilizationPlantSensitivity: inputs must be positive");
  }
  return utilization_pct / resource_units;
}

bool IsGainStable(double gain, double sensitivity_magnitude,
                  int delay_periods) {
  auto bound = MaxStableIntegralGain(sensitivity_magnitude, delay_periods);
  return bound.ok() && gain > 0.0 && gain <= *bound;
}

}  // namespace flower::control
