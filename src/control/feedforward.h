#ifndef FLOWER_CONTROL_FEEDFORWARD_H_
#define FLOWER_CONTROL_FEEDFORWARD_H_

#include <functional>

#include "control/controller.h"

namespace flower::control {

/// Configuration of the model-based feedforward controller.
struct FeedforwardConfig {
  double reference = 60.0;
  /// RLS forgetting factor for the online workload model.
  double forgetting = 0.98;
  /// Gain of the feedback trim integrator correcting model error.
  double trim_gain = 0.05;
  /// Trim is clamped to +/- this fraction of the feedforward term.
  double max_trim_fraction = 0.5;
  ActuatorLimits limits;
};

/// Flower extension: feedforward provisioning driven by the learned
/// cross-layer dependency (combining §3.1's regression models with
/// §3.3's controllers).
///
/// The controller observes an *exogenous driver* x_k — e.g. the
/// ingestion layer's arrival rate, which §3.1 showed predicts analytics
/// CPU with r ≈ 0.95 — and learns online (2-parameter RLS) the
/// workload model
///
///   W_k = a + b·x_k        where W_k = y_k · u_k  (demand in
///                          capacity-units × percent)
///
/// It then provisions proactively for the *current* driver value:
///
///   u_{k+1} = (a + b·x_k) / y_r  +  trim_k
///
/// where trim is a small feedback integrator absorbing model bias.
/// Because the driver leads the utilization signal (upstream arrivals
/// reach the analytics layer after queueing), feedforward reacts to a
/// surge before utilization saturates — the measurement y clips at
/// 100%, the driver does not.
///
/// When the driver is unavailable (provider errors), the controller
/// degrades to pure integral feedback on y.
class FeedforwardController final : public Controller {
 public:
  /// `driver` returns the exogenous signal at (or just before) `now`,
  /// e.g. a metric-store query for the upstream arrival rate.
  using DriverFn = std::function<Result<double>(SimTime)>;

  FeedforwardController(FeedforwardConfig config, DriverFn driver);

  std::string name() const override { return "feedforward"; }
  void Reset(double initial_u) override;
  Result<double> Update(SimTime now, double y) override;
  double current_u() const override { return config_.limits.Quantize(u_); }
  double reference() const override { return config_.reference; }
  void set_reference(double y_r) override { config_.reference = y_r; }

  /// Current workload-model coefficients (a, b) — for tests/monitoring.
  double model_intercept() const { return a_; }
  double model_slope() const { return b_; }
  /// Steps where the driver was unavailable and feedback-only was used.
  uint64_t driver_misses() const { return driver_misses_; }
  /// Current feedback trim (bounded by max_trim_fraction of the
  /// feedforward term).
  double trim() const { return trim_; }
  const FeedforwardConfig& config() const { return config_; }

 private:
  void RlsUpdate(double x, double w);

  FeedforwardConfig config_;
  DriverFn driver_;
  double u_;
  double trim_ = 0.0;
  // RLS state for W = a + b*x.
  double a_ = 0.0;
  double b_ = 0.0;
  double p_[2][2] = {{1e6, 0.0}, {0.0, 1e6}};  // Large prior covariance.
  uint64_t observations_ = 0;
  uint64_t driver_misses_ = 0;
  SimTime last_time_ = -1.0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_FEEDFORWARD_H_
