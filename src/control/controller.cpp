#include "control/controller.h"

#include <algorithm>
#include <cmath>

namespace flower::control {

double ActuatorLimits::Clamp(double u) const {
  return std::clamp(u, min, max);
}

double ActuatorLimits::Quantize(double u) const {
  u = Clamp(u);
  if (integer) u = std::clamp(std::round(u), std::ceil(min), std::floor(max));
  return u;
}

}  // namespace flower::control
