#include "control/controller.h"

#include <algorithm>
#include <cmath>

namespace flower::control {

double ActuatorLimits::Clamp(double u) const {
  return std::clamp(u, min, max);
}

double ActuatorLimits::Quantize(double u) const {
  u = Clamp(u);
  if (integer) u = std::clamp(std::round(u), std::ceil(min), std::floor(max));
  return u;
}

void Controller::Notify(SimTime now, double y, double y_r, double gain,
                        double raw_u, double u) {
  if (observer_ == nullptr) return;
  ControlStepView view;
  view.time = now;
  view.y = y;
  view.reference = y_r;
  view.error = y - y_r;
  view.gain = gain;
  view.raw_u = raw_u;
  view.u = u;
  view.law = name();
  view.span_id = step_span_;
  observer_->OnControlStep(view);
}

}  // namespace flower::control
