#ifndef FLOWER_CONTROL_FIXED_GAIN_H_
#define FLOWER_CONTROL_FIXED_GAIN_H_

#include "control/controller.h"

namespace flower::control {

/// Configuration of the fixed-gain baseline (Lim, Babu & Chase,
/// ICAC 2010 — the paper's reference [12]).
struct FixedGainConfig {
  double reference = 60.0;  ///< High target y_h (top of the target range).
  double gain = 0.05;       ///< Fixed integral gain K_i.
  /// Proportional-thresholding range width parameter: the low target is
  /// y_l = y_h − range_width / u_k, so the dead zone widens when few
  /// resource units are allocated (avoiding oscillation at small
  /// cluster sizes) and narrows as the cluster grows.
  double range_width = 40.0;
  /// Lower bound on the dead-zone width (y_h − y_l).
  double min_range = 2.0;
  ActuatorLimits limits;
};

/// Integral controller with a *fixed* gain and proportional
/// thresholding:
///
///   if y_k > y_h:            u_{k+1} = u_k + K_i (y_k − y_h)
///   if y_k < y_l(u_k):       u_{k+1} = u_k + K_i (y_k − y_l)
///   otherwise:               u_{k+1} = u_k      (inside target range)
///
/// Unlike Flower's adaptive controller the gain never changes, so the
/// controller reacts slowly to large sustained load changes (or
/// oscillates if the gain is tuned aggressively) — this is the
/// behaviour the paper's §3.3 comparison claim targets.
class FixedGainController final : public Controller {
 public:
  explicit FixedGainController(FixedGainConfig config);

  std::string name() const override { return "fixed-gain"; }
  void Reset(double initial_u) override;
  Result<double> Update(SimTime now, double y) override;
  double current_u() const override { return config_.limits.Quantize(u_); }
  double reference() const override { return config_.reference; }
  void set_reference(double y_r) override { config_.reference = y_r; }

  /// Current low threshold y_l(u_k) of the target range.
  double low_target() const;
  const FixedGainConfig& config() const { return config_; }

 private:
  FixedGainConfig config_;
  double u_;
  SimTime last_time_ = -1.0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_FIXED_GAIN_H_
