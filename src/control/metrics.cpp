#include "control/metrics.h"

#include <cmath>

namespace flower::control {

Result<ControlQuality> EvaluateControl(const TimeSeries& measurements,
                                       const TimeSeries& actuations,
                                       double reference, double tolerance,
                                       SimTime horizon_end) {
  if (tolerance < 0.0) {
    return Status::InvalidArgument("EvaluateControl: negative tolerance");
  }
  if (measurements.empty()) {
    return Status::FailedPrecondition(
        "EvaluateControl: empty measurement series");
  }
  ControlQuality q;
  size_t violations = 0, overloads = 0;
  double abs_sum = 0.0, sq_sum = 0.0;
  for (const Sample& s : measurements.samples()) {
    if (s.time > horizon_end) break;
    double e = s.value - reference;
    if (std::fabs(e) > tolerance) ++violations;
    if (e > tolerance) ++overloads;
    abs_sum += std::fabs(e);
    sq_sum += e * e;
    ++q.samples;
  }
  if (q.samples == 0) {
    return Status::FailedPrecondition(
        "EvaluateControl: no samples within horizon");
  }
  q.violation_fraction =
      static_cast<double>(violations) / static_cast<double>(q.samples);
  q.overload_fraction =
      static_cast<double>(overloads) / static_cast<double>(q.samples);
  q.mean_abs_error = abs_sum / static_cast<double>(q.samples);
  q.rmse = std::sqrt(sq_sum / static_cast<double>(q.samples));

  // Integrate the actuation step function.
  const auto& acts = actuations.samples();
  double prev_u = 0.0;
  SimTime prev_t = 0.0;
  bool have_prev = false;
  double last_u = std::nan("");
  for (const Sample& s : acts) {
    if (s.time > horizon_end) break;
    if (have_prev) {
      q.resource_seconds += prev_u * (s.time - prev_t);
    }
    if (!std::isnan(last_u) && s.value != last_u) ++q.actuation_changes;
    last_u = s.value;
    prev_u = s.value;
    prev_t = s.time;
    have_prev = true;
  }
  if (have_prev && horizon_end > prev_t) {
    q.resource_seconds += prev_u * (horizon_end - prev_t);
  }
  double horizon = have_prev ? horizon_end - acts.front().time : 0.0;
  q.mean_resource = horizon > 0.0 ? q.resource_seconds / horizon : 0.0;
  return q;
}

Result<double> SettlingTime(const TimeSeries& measurements, SimTime step_time,
                            double reference, double tolerance, double hold) {
  if (tolerance < 0.0) {
    return Status::InvalidArgument("SettlingTime: negative tolerance");
  }
  if (hold < 0.0) {
    return Status::InvalidArgument("SettlingTime: negative hold");
  }
  const auto& s = measurements.samples();
  if (s.empty()) {
    return Status::FailedPrecondition("SettlingTime: empty series");
  }
  // Candidate settle point: first in-band sample after step_time such
  // that every sample within [t, t + hold] is in band.
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i].time < step_time) continue;
    if (std::fabs(s[i].value - reference) > tolerance) continue;
    bool stays = true;
    for (size_t j = i; j < s.size() && s[j].time <= s[i].time + hold; ++j) {
      if (std::fabs(s[j].value - reference) > tolerance) {
        stays = false;
        break;
      }
    }
    if (stays) return s[i].time - step_time;
  }
  return Status::NotFound("SettlingTime: trace never settles");
}

}  // namespace flower::control
