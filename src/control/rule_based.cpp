#include "control/rule_based.h"

#include <limits>

namespace flower::control {

RuleBasedController::RuleBasedController(RuleBasedConfig config)
    : config_(config), u_(config.limits.Quantize(config.limits.min)) {}

void RuleBasedController::Reset(double initial_u) {
  u_ = config_.limits.Quantize(initial_u);
  high_breaches_ = 0;
  low_breaches_ = 0;
  last_action_time_ = -1e18;
  last_time_ = -1.0;
}

void RuleBasedController::set_reference(double y_r) {
  // Preserve the current band width around the new midpoint.
  double half = 0.5 * (config_.high_threshold - config_.low_threshold);
  config_.high_threshold = y_r + half;
  config_.low_threshold = y_r - half;
}

Result<double> RuleBasedController::Update(SimTime now, double y) {
  if (now < last_time_) {
    return Status::InvalidArgument(
        "RuleBasedController: time moved backwards");
  }
  if (now == last_time_) {
    // Duplicate control tick: idempotent no-op (no double breach count).
    return u_;
  }
  last_time_ = now;

  if (y > config_.high_threshold) {
    ++high_breaches_;
    low_breaches_ = 0;
  } else if (y < config_.low_threshold) {
    ++low_breaches_;
    high_breaches_ = 0;
  } else {
    high_breaches_ = 0;
    low_breaches_ = 0;
  }

  double since_action = now - last_action_time_;
  if (high_breaches_ >= config_.breach_periods &&
      (since_action >= config_.up_cooldown ||
       // First-ever action is never blocked by cooldown.
       last_action_time_ < -1e17)) {
    u_ = config_.limits.Quantize(u_ + config_.up_step);
    last_action_time_ = now;
    last_action_was_up_ = true;
    high_breaches_ = 0;
  } else if (low_breaches_ >= config_.breach_periods &&
             (since_action >= config_.down_cooldown ||
              last_action_time_ < -1e17)) {
    u_ = config_.limits.Quantize(u_ - config_.down_step);
    last_action_time_ = now;
    last_action_was_up_ = false;
    low_breaches_ = 0;
  }
  // No explicit gain in a threshold rule — published as NaN.
  Notify(now, y, reference(), std::numeric_limits<double>::quiet_NaN(), u_,
         u_);
  return u_;
}

}  // namespace flower::control
