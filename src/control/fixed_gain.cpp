#include "control/fixed_gain.h"

#include <algorithm>

namespace flower::control {

FixedGainController::FixedGainController(FixedGainConfig config)
    : config_(config), u_(config.limits.Clamp(config.limits.min)) {}

void FixedGainController::Reset(double initial_u) {
  u_ = config_.limits.Clamp(initial_u);
  last_time_ = -1.0;
}

double FixedGainController::low_target() const {
  double width = config_.range_width / std::max(u_, 1.0);
  width = std::max(width, config_.min_range);
  return config_.reference - width;
}

Result<double> FixedGainController::Update(SimTime now, double y) {
  if (now < last_time_) {
    return Status::InvalidArgument(
        "FixedGainController: time moved backwards");
  }
  if (now == last_time_) {
    // Duplicate control tick: idempotent no-op (no double integration).
    return config_.limits.Quantize(u_);
  }
  last_time_ = now;
  double y_h = config_.reference;
  double y_l = low_target();
  double error = 0.0;
  if (y > y_h) {
    error = y - y_h;
  } else if (y < y_l) {
    error = y - y_l;
  } else {
    // Inside the target range: proportional thresholding holds steady.
    double out = config_.limits.Quantize(u_);
    Notify(now, y, config_.reference, config_.gain, u_, out);
    return out;
  }
  // Continuous integrator; only the returned actuation is quantized.
  double raw_u = u_ + config_.gain * error;
  u_ = config_.limits.Clamp(raw_u);
  double out = config_.limits.Quantize(u_);
  Notify(now, y, config_.reference, config_.gain, raw_u, out);
  return out;
}

}  // namespace flower::control
