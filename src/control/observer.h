#ifndef FLOWER_CONTROL_OBSERVER_H_
#define FLOWER_CONTROL_OBSERVER_H_

#include <cstdint>
#include <string>

#include "common/time_series.h"

namespace flower::control {

/// Everything a control law decided in one Update step, surfaced for
/// telemetry. Controllers publish this through a ControlObserver so the
/// control library itself stays free of any obs/ dependency — the
/// ElasticityManager adapts these views into decision records.
struct ControlStepView {
  SimTime time = 0.0;
  double y = 0.0;          ///< Sensed measurement y_k.
  double reference = 0.0;  ///< Reference y_r.
  double error = 0.0;      ///< y_k − y_r.
  /// Adapted gain l_{k+1} after Eq. 7 (adaptive-gain), the effective
  /// gain for other integral laws, NaN for laws with no explicit gain.
  double gain = 0.0;
  double raw_u = 0.0;  ///< Control-law output before quantization.
  double u = 0.0;      ///< Quantized actuation returned to the manager.
  std::string law;     ///< Controller family name.
  /// Flow-health bits (obs::HealthMask layout) active when the step
  /// ran. Controllers always leave this 0 — the control library knows
  /// nothing about health — it is filled by supervisors (the
  /// ElasticityManager's health annotator) when they re-publish
  /// annotated views, so breach-aware laws/observers can react without
  /// a dependency on obs/health.
  uint8_t health_mask = 0;
  /// Causal decide-span id (obs::SpanId layout) for this step. The
  /// supervisor stamps it on the controller before Update via
  /// Controller::set_step_span; 0 when span recording is off. Plain
  /// uint64_t so control stays free of any obs dependency.
  uint64_t span_id = 0;
};

/// Sink for per-step control-law telemetry. Implementations must not
/// call back into the controller.
class ControlObserver {
 public:
  virtual ~ControlObserver() = default;
  virtual void OnControlStep(const ControlStepView& step) = 0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_OBSERVER_H_
