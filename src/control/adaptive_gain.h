#ifndef FLOWER_CONTROL_ADAPTIVE_GAIN_H_
#define FLOWER_CONTROL_ADAPTIVE_GAIN_H_

#include "control/controller.h"

namespace flower::control {

/// Configuration of Flower's adaptive-gain controller (paper Eq. 6–7).
struct AdaptiveGainConfig {
  double reference = 60.0;   ///< Desired sensor value y_r.
  double initial_gain = 0.05;///< l_0.
  double gain_min = 0.005;   ///< l_min > 0 (Eq. 7).
  double gain_max = 1.0;     ///< l_max (Eq. 7).
  double gamma = 0.002;      ///< Adaptation rate γ > 0 (Eq. 7).
  /// When true (ablation), the gain is reset to initial_gain before
  /// every step, removing the controller's memory of past decisions.
  bool reset_gain_each_step = false;
  ActuatorLimits limits;
};

/// Flower's adaptive integral controller (§3.3):
///
///   u_{k+1} = u_k + l_{k+1} (y_k − y_r)                       (Eq. 6)
///   l_{k+1} = clamp(l_k + γ (y_k − y_r), l_min, l_max)        (Eq. 7)
///
/// The gain `l` keeps the *history of previously computed control
/// gains*: a persistent error drives the gain up in multiple stages,
/// which is what the paper credits for rapid elasticity, while the
/// clamp guarantees stability (analysis in the companion journal
/// paper [9]).
class AdaptiveGainController final : public Controller {
 public:
  explicit AdaptiveGainController(AdaptiveGainConfig config);

  std::string name() const override {
    return config_.reset_gain_each_step ? "adaptive-gain(no-memory)"
                                        : "adaptive-gain";
  }
  void Reset(double initial_u) override;
  Result<double> Update(SimTime now, double y) override;
  double current_u() const override { return config_.limits.Quantize(u_); }
  double reference() const override { return config_.reference; }
  void set_reference(double y_r) override { config_.reference = y_r; }

  /// Current adapted gain l_k (for monitoring/tests).
  double gain() const { return gain_; }
  const AdaptiveGainConfig& config() const { return config_; }

 private:
  AdaptiveGainConfig config_;
  /// Continuous integrator state. The returned actuation is the
  /// quantized value, but integration stays continuous so small
  /// persistent errors accumulate instead of being rounded away
  /// (otherwise an integer actuator can deadlock when
  /// |l·e| < 0.5 forever).
  double u_;
  double gain_;
  SimTime last_time_ = -1.0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_ADAPTIVE_GAIN_H_
