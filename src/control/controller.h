#ifndef FLOWER_CONTROL_CONTROLLER_H_
#define FLOWER_CONTROL_CONTROLLER_H_

#include <string>

#include "common/result.h"
#include "common/time_series.h"
#include "control/observer.h"

namespace flower::control {

/// Bounds on the actuated resource amount (shards, VMs, capacity units).
struct ActuatorLimits {
  double min = 1.0;
  double max = 1e9;
  /// Resource counts are integral; the controller's continuous output is
  /// rounded to the nearest integer in [min, max] by `Quantize`.
  bool integer = true;

  double Clamp(double u) const;
  /// Clamp then (optionally) round to integer.
  double Quantize(double u) const;
};

/// A feedback controller regulating one resource of one layer.
///
/// Protocol: the elasticity manager calls `Update(now, y_k)` once per
/// monitoring period with the sensed measurement (e.g. CPU utilization
/// in percent); the controller returns the next actuator value
/// `u_{k+1}` (e.g. number of VMs), already quantized to the actuator
/// limits. Implementations keep whatever internal state their control
/// law needs; `Reset` reinitializes the state with a starting actuator
/// value.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Human-readable family name ("adaptive-gain", "fixed-gain", ...).
  virtual std::string name() const = 0;

  /// Reinitializes internal state; `initial_u` is the currently
  /// provisioned resource amount.
  virtual void Reset(double initial_u) = 0;

  /// Computes the next actuator value from measurement `y` at time
  /// `now`. `now` must be non-decreasing (simulated time is
  /// nonnegative); time moving backwards is an InvalidArgument error. A
  /// repeated timestamp (`now` equal to the previous call's) is an
  /// idempotent no-op that returns the current actuation without
  /// re-applying the control law — a duplicate tick must not
  /// double-apply gain/integral action.
  virtual Result<double> Update(SimTime now, double y) = 0;

  /// Current actuator value (last returned by Update, or initial).
  virtual double current_u() const = 0;

  /// Desired reference measurement y_r (e.g. 60% utilization).
  virtual double reference() const = 0;
  virtual void set_reference(double y_r) = 0;

  /// Installs a telemetry observer notified once per effective Update
  /// step (duplicate-timestamp no-ops and error returns do not notify).
  /// Pass nullptr to detach. Not owned; must outlive the controller or
  /// be detached first.
  void set_observer(ControlObserver* observer) { observer_ = observer; }
  ControlObserver* observer() const { return observer_; }

  /// Causal span id stamped onto the next published ControlStepView
  /// (set by the supervisor before each Update; see
  /// ControlStepView::span_id). Sticky until restamped.
  void set_step_span(uint64_t span_id) { step_span_ = span_id; }
  uint64_t step_span() const { return step_span_; }

 protected:
  /// Publishes one step to the observer, if any. `gain` may be NaN for
  /// laws with no explicit gain.
  void Notify(SimTime now, double y, double y_r, double gain, double raw_u,
              double u);

 private:
  ControlObserver* observer_ = nullptr;
  uint64_t step_span_ = 0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_CONTROLLER_H_
