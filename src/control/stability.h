#ifndef FLOWER_CONTROL_STABILITY_H_
#define FLOWER_CONTROL_STABILITY_H_

#include "common/result.h"

namespace flower::control {

/// Stability utilities for the integral control laws used by Flower.
///
/// For the utilization plant linearized around an operating point,
/// y_{k+1} ≈ y_k + b·Δu_k with sensitivity b = ∂y/∂u < 0 (adding
/// capacity lowers utilization), the undelayed integral loop
/// u_{k+1} = u_k + l(y_k − y_r) is stable iff l·|b| < 2, and each
/// control period of actuation/measurement delay shrinks the margin.
/// These helpers give conservative bounds an operator (or the
/// configuration wizard) can check gains against — the practical face
/// of the "rigorous stability analysis" the paper defers to [9].

/// Largest integral gain with a guaranteed-stable, non-oscillatory
/// margin for plant sensitivity magnitude |b| and `delay_periods` whole
/// control periods of dead time (conservative bound
/// l ≤ 1 / (|b| · (1 + delay_periods))). Errors: non-positive |b| or
/// negative delay.
Result<double> MaxStableIntegralGain(double sensitivity_magnitude,
                                     int delay_periods = 0);

/// Sensitivity magnitude of the utilization plant
/// y = 100·demand/(u·capacity_per_unit) at operating point (u, y):
/// |∂y/∂u| = y/u. Errors: non-positive inputs.
Result<double> UtilizationPlantSensitivity(double utilization_pct,
                                           double resource_units);

/// True when (gain, |b|, delay) satisfies the conservative bound.
bool IsGainStable(double gain, double sensitivity_magnitude,
                  int delay_periods = 0);

}  // namespace flower::control

#endif  // FLOWER_CONTROL_STABILITY_H_
