#ifndef FLOWER_CONTROL_METRICS_H_
#define FLOWER_CONTROL_METRICS_H_

#include "common/result.h"
#include "common/time_series.h"

namespace flower::control {

/// Aggregate quality metrics of one controller run, computed from the
/// sensed-measurement trace and the actuation trace. These are the
/// columns of the controller-comparison bench (paper §3.3 claim).
struct ControlQuality {
  /// Fraction of samples with |y − y_r| > tolerance (SLO violation %
  /// when multiplied by 100).
  double violation_fraction = 0.0;
  /// Fraction of samples with y > y_r + tolerance (the harmful side:
  /// overload / SLO breach).
  double overload_fraction = 0.0;
  /// Mean |y − y_r|.
  double mean_abs_error = 0.0;
  /// RMS of (y − y_r).
  double rmse = 0.0;
  /// Time-weighted mean actuator value (resource units held on
  /// average) — proxy for cost.
  double mean_resource = 0.0;
  /// Resource-seconds: integral of u over the horizon.
  double resource_seconds = 0.0;
  /// Number of actuation changes (each resize has operational cost).
  size_t actuation_changes = 0;
  size_t samples = 0;
};

/// Computes ControlQuality over a horizon. `measurements` is the sensed
/// series y(t); `actuations` is the step series u(t) (value held until
/// the next sample). Errors: empty measurement series, or tolerance < 0.
Result<ControlQuality> EvaluateControl(const TimeSeries& measurements,
                                       const TimeSeries& actuations,
                                       double reference, double tolerance,
                                       SimTime horizon_end);

/// Settling time after a reference/workload step at `step_time`: the
/// first time t >= step_time such that y stays within
/// [reference − tolerance, reference + tolerance] for all subsequent
/// samples up to `hold` seconds; NotFound when the trace never settles.
/// Errors: empty series, tolerance < 0, or hold < 0.
Result<double> SettlingTime(const TimeSeries& measurements, SimTime step_time,
                            double reference, double tolerance, double hold);

}  // namespace flower::control

#endif  // FLOWER_CONTROL_METRICS_H_
