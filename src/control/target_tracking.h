#ifndef FLOWER_CONTROL_TARGET_TRACKING_H_
#define FLOWER_CONTROL_TARGET_TRACKING_H_

#include "control/controller.h"

namespace flower::control {

/// Configuration of the target-tracking baseline, modelled on the
/// native autoscaling law cloud providers attach to Kinesis/DynamoDB:
/// keep the metric at a target by scaling *proportionally to the
/// ratio* between measured and target value.
struct TargetTrackingConfig {
  double reference = 60.0;  ///< Target metric value (e.g. 60%).
  /// Scale-out is blocked for this long after any scaling action.
  double scale_out_cooldown = 60.0;
  /// Scale-in is more conservative: longer cooldown plus a margin.
  double scale_in_cooldown = 600.0;
  /// Scale in only when the desired capacity is below the current one
  /// by at least this factor (hysteresis against flapping).
  double scale_in_margin = 0.9;
  bool scale_in_enabled = true;
  ActuatorLimits limits;
};

/// Ratio-based target tracking:
///
///   desired = u_k * (y_k / y_r)
///   scale out immediately (post-cooldown) when desired > u_k,
///   scale in conservatively when desired < margin * u_k.
///
/// Unlike the integral controllers this jumps straight to the
/// steady-state capacity implied by the current measurement — fast on
/// clean signals, but it trusts a single (possibly noisy or saturated)
/// measurement: when the sensor clips at 100% the implied capacity is
/// an underestimate, so repeated rounds are needed for large surges.
class TargetTrackingController final : public Controller {
 public:
  explicit TargetTrackingController(TargetTrackingConfig config);

  std::string name() const override { return "target-tracking"; }
  void Reset(double initial_u) override;
  Result<double> Update(SimTime now, double y) override;
  double current_u() const override { return config_.limits.Quantize(u_); }
  double reference() const override { return config_.reference; }
  void set_reference(double y_r) override { config_.reference = y_r; }

  const TargetTrackingConfig& config() const { return config_; }

 private:
  TargetTrackingConfig config_;
  double u_;
  SimTime last_scale_time_ = -1e18;
  SimTime last_time_ = -1.0;
};

}  // namespace flower::control

#endif  // FLOWER_CONTROL_TARGET_TRACKING_H_
