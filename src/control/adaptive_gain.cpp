#include "control/adaptive_gain.h"

#include <algorithm>

namespace flower::control {

AdaptiveGainController::AdaptiveGainController(AdaptiveGainConfig config)
    : config_(config),
      u_(config.limits.Clamp(config.limits.min)),
      gain_(config.initial_gain) {}

void AdaptiveGainController::Reset(double initial_u) {
  u_ = config_.limits.Clamp(initial_u);
  gain_ = config_.initial_gain;
  last_time_ = -1.0;
}

Result<double> AdaptiveGainController::Update(SimTime now, double y) {
  if (now < last_time_) {
    return Status::InvalidArgument(
        "AdaptiveGainController: time moved backwards");
  }
  if (now == last_time_) {
    // Duplicate control tick: re-applying Eq. 6–7 at one timestamp would
    // double-count the gain and integral action, so repeat the output.
    return config_.limits.Quantize(u_);
  }
  last_time_ = now;
  double error = y - config_.reference;
  if (config_.reset_gain_each_step) {
    gain_ = config_.initial_gain;
  }
  // Eq. 7: multi-stage gain update with memory, clamped for stability.
  gain_ = std::clamp(gain_ + config_.gamma * error, config_.gain_min,
                     config_.gain_max);
  // Eq. 6: integral action with the adapted gain. The integrator state
  // stays continuous; only the returned actuation is quantized.
  double raw_u = u_ + gain_ * error;
  u_ = config_.limits.Clamp(raw_u);
  double out = config_.limits.Quantize(u_);
  Notify(now, y, config_.reference, gain_, raw_u, out);
  return out;
}

}  // namespace flower::control
