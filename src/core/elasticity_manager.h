#ifndef FLOWER_CORE_ELASTICITY_MANAGER_H_
#define FLOWER_CORE_ELASTICITY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "common/random.h"
#include "control/controller.h"
#include "control/observer.h"
#include "core/layer.h"
#include "core/resource_share.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"

namespace flower::obs::replay {
class FlightRecorder;
}  // namespace flower::obs::replay

namespace flower::core {

/// Bounded retry with exponential backoff and jitter for failed
/// actuations (real resize/provisioning calls throttle and fail
/// transiently). Disabled by default (max_retries == 0): a failed
/// actuation is counted and the loop waits for its next period, which
/// is the original fair-weather behavior.
struct RetryPolicy {
  int max_retries = 0;  ///< Retry attempts after the initial failure.
  double initial_backoff_sec = 2.0;
  double backoff_multiplier = 2.0;
  double max_backoff_sec = 30.0;
  /// Uniform jitter of +/- this fraction applied to each backoff so
  /// retries from many loops do not synchronize into a thundering herd.
  double jitter_fraction = 0.2;
  /// Seeds the per-loop jitter stream (deterministic runs).
  uint64_t jitter_seed = 42;
};

/// Per-loop circuit breaker. After `failure_threshold` consecutive
/// failed actuation attempts the loop stops calling the actuator for
/// `cooldown_sec` (open state), then lets a single probe attempt
/// through (half-open): success closes the breaker, failure re-opens
/// it for another cooldown. Disabled by default (threshold == 0).
struct CircuitBreakerPolicy {
  int failure_threshold = 0;
  double cooldown_sec = 300.0;
};

/// What a loop does when the sensor read fails (no datapoints in the
/// window, a metric-store gap, or an injected fault).
enum class SensorMissPolicy {
  kSkipStep,       ///< Count a miss and skip the step (the default).
  kHoldLastValue,  ///< Re-use the last good measurement (stale read).
};

/// Statistic hardening applied to the default metric-store sensor.
enum class RobustSensing {
  kOff,             ///< Use `sensor_statistic` as configured.
  kMedian,          ///< p50 over the window (breakdown point 50%).
  kWinsorizedMean,  ///< Winsorized mean of the raw window samples.
};

struct SensorPolicy {
  SensorMissPolicy on_miss = SensorMissPolicy::kSkipStep;
  /// kHoldLastValue only: maximum age of the held measurement. A miss
  /// with an older (or no) last good value still skips the step.
  /// 0 = no age limit.
  double max_hold_sec = 0.0;
  RobustSensing robust = RobustSensing::kOff;
  double winsorize_fraction = 0.1;  ///< kWinsorizedMean trim fraction.
};

/// Bundle of the per-loop hardening knobs. Everything is off by
/// default, which reproduces the original loop behavior exactly; see
/// DESIGN.md ("Fault injection and control-loop resilience") for how
/// the pieces compose.
struct ResiliencePolicy {
  RetryPolicy retry;
  CircuitBreakerPolicy breaker;
  SensorPolicy sensor;
};

/// Periodic resource-share re-planning on the simulation clock
/// (paper §3.2 run as part of the control plane). Every `period_sec`
/// the manager re-runs the share analysis through an incremental
/// ResourceShareAnalyzer — plan cache, warm starts, and convergence
/// early-exit per `incremental` — and applies the front's per-layer
/// MaxShares as the attached loops' share upper bounds. Consecutive
/// periods with an unchanged request are served from the plan cache
/// (no solver run at all) when `incremental.cache` is on.
struct ReplanConfig {
  ResourceShareRequest request;
  opt::Nsga2Config solver;
  IncrementalPlanning incremental;
  double period_sec = 3600.0;
  double start_delay_sec = 0.0;
  /// Optional hook refreshing the request before each re-plan (budget
  /// drift, newly learned dependency constraints). An unchanged
  /// request keeps the plan cache hot.
  std::function<void(SimTime, ResourceShareRequest*)> update_request;
  /// Invoked after every successful re-plan with the (possibly
  /// cached) result.
  std::function<void(SimTime, const ResourceShareResult&)> on_plan;
};

/// Everything needed to run one layer's control loop (paper §2: each
/// layer gets a sensor, an adaptive controller, and an actuator).
struct LayerControlConfig {
  Layer layer = Layer::kAnalytics;
  /// Loop name; defaults to the layer name. Flows with several
  /// resources in one layer (e.g. two ingestion streams feeding a join)
  /// attach one named loop per resource.
  std::string name;
  /// The sensed metric (e.g. Flower/Storm CpuUtilization{storm}).
  cloudwatch::MetricId sensor_metric;
  cloudwatch::Statistic sensor_statistic = cloudwatch::Statistic::kAverage;
  /// Control period: how often the loop senses and actuates (§2's
  /// "monitoring window" knob in the demo's configuration wizard).
  double monitoring_period_sec = 60.0;
  /// The sensor aggregates over the trailing window of this length
  /// (query interval `(now - window, now]`).
  double monitoring_window_sec = 120.0;
  /// First firing of the loop, relative to attach time.
  double start_delay_sec = 60.0;
  /// The control law (owned by the manager after Attach).
  std::unique_ptr<control::Controller> controller;
  /// Applies the new resource amount to the managed service (resize
  /// shards / VMs / WCU). Failed actuations are counted and, per the
  /// resilience policy, retried with backoff and/or circuit-broken.
  std::function<Status(double)> actuator;
  /// Optional sensor override. When unset the loop queries the metric
  /// store for `sensor_metric` over the trailing monitoring window
  /// (see MakeDefaultSensor). A FaultInjector wraps either form.
  std::function<Result<double>(SimTime)> sensor;
  /// Initial actuator value (current provisioned amount).
  double initial_u = 1.0;
  /// Retry / circuit-breaker / sensor-hardening knobs.
  ResiliencePolicy resilience;
};

/// Plain-value copy of a loop's counters, safe to keep after the
/// manager (and its metrics registry) is gone.
struct LoopCounterSnapshot {
  uint64_t sensor_misses = 0;
  uint64_t actuation_failures = 0;
  uint64_t actuation_retries = 0;
  uint64_t retry_successes = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_skipped_steps = 0;
  uint64_t stale_sensor_reads = 0;
};

/// Per-layer runtime traces and counters, for evaluation and the
/// monitoring dashboard. The counters live in the manager's telemetry
/// metrics registry (labeled by loop and layer) so every consumer —
/// dashboard, exporters, tests — reads the same instruments; the
/// accessors below are convenience views over them. NOTE: copying this
/// struct copies *pointers* into the registry — take CountersSnapshot()
/// if the copy may outlive the manager.
struct LayerControlState {
  TimeSeries sensed;       ///< y_k at each control step.
  TimeSeries actuations;   ///< u_{k+1} returned at each control step.
  bool breaker_open = false;        ///< Live circuit-breaker state.
  double share_upper_bound = 0.0;  ///< 0 = unbounded.

  /// Registry-backed loop counters, installed by the manager at Attach.
  struct Counters {
    obs::Counter* sensor_misses = nullptr;
    obs::Counter* actuation_failures = nullptr;
    obs::Counter* actuation_retries = nullptr;
    obs::Counter* retry_successes = nullptr;
    obs::Counter* breaker_trips = nullptr;
    obs::Counter* breaker_skipped_steps = nullptr;
    obs::Counter* stale_sensor_reads = nullptr;
  };
  Counters counters;

  /// Steps skipped: no usable measurement.
  uint64_t sensor_misses() const { return Val(counters.sensor_misses); }
  /// Failed attempts (initial + retry).
  uint64_t actuation_failures() const {
    return Val(counters.actuation_failures);
  }
  /// Backoff retry attempts made.
  uint64_t actuation_retries() const {
    return Val(counters.actuation_retries);
  }
  /// Actuations that landed on a retry.
  uint64_t retry_successes() const { return Val(counters.retry_successes); }
  /// Transitions into the open state.
  uint64_t breaker_trips() const { return Val(counters.breaker_trips); }
  /// Actuations skipped while open.
  uint64_t breaker_skipped_steps() const {
    return Val(counters.breaker_skipped_steps);
  }
  /// Steps run on a held last value.
  uint64_t stale_sensor_reads() const {
    return Val(counters.stale_sensor_reads);
  }

  LoopCounterSnapshot CountersSnapshot() const {
    return {sensor_misses(),       actuation_failures(),
            actuation_retries(),   retry_successes(),
            breaker_trips(),       breaker_skipped_steps(),
            stale_sensor_reads()};
  }

 private:
  static uint64_t Val(const obs::Counter* c) { return c ? c->Value() : 0; }
};

/// Flower's elasticity manager: runs one adaptive control loop per
/// layer on the simulation clock. Each loop (1) senses the layer's
/// utilization statistic over the trailing monitoring window, (2) asks
/// the layer's controller for the next resource amount, (3) caps it by
/// the layer's resource-share upper bound from the
/// ResourceShareAnalyzer, and (4) invokes the actuator.
///
/// The manager is hardened against control-path faults (see
/// ResiliencePolicy): failed actuations can be retried with bounded
/// exponential backoff + jitter, a per-loop circuit breaker stops
/// hammering a persistently failing actuator, sensor misses can fall
/// back to the last good measurement, and sensing can use robust
/// statistics that shrug off outlier spikes. All hardening is opt-in;
/// with the default policy the manager behaves exactly like the
/// original fair-weather implementation.
class ElasticityManager {
 public:
  ElasticityManager(sim::Simulation* sim,
                    const cloudwatch::MetricStore* metrics);

  /// Routes all telemetry (metrics, decision log, trace) to an external
  /// hub, e.g. one shared with the fault injector and simulator. Must
  /// be called before the first Attach; `telemetry` must outlive the
  /// manager. Without this the manager uses a private hub, so decision
  /// records and counters are always collected.
  Status SetTelemetry(obs::Telemetry* telemetry);
  obs::Telemetry* telemetry() const { return telemetry_; }

  /// Renders this manager's trace events and causal spans in their own
  /// Perfetto process lane (pid) named `scope` — one lane per flow in
  /// fleet runs instead of every flow interleaving on shared tracks.
  /// Must be called after SetTelemetry and before the first Attach.
  Status SetTraceScope(const std::string& scope);
  int trace_pid() const { return trace_pid_; }

  /// Namespaces every instrument this manager registers — the per-loop
  /// gauges/counters and the planner.* series — with a {"tenant", id}
  /// label. Without it two tenants that use the same layer names and
  /// share (or roll up into) one registry collide on identical series
  /// and their counts merge silently. Must precede the first Attach and
  /// EnableReplanning.
  Status SetTenantLabel(const std::string& tenant);
  const std::string& tenant_label() const { return tenant_; }

  /// Queried at every control step for the layer's current flow-health
  /// bits (obs::HealthMask layout, typically
  /// obs::health::HealthMonitor::MaskFor). The mask is stamped on the
  /// step's decision record, counted in the loop.breach_steps counter
  /// when any breach bit is set, and forwarded to the annotated-step
  /// observer. Pass nullptr to detach (records stamp 0 again).
  void SetHealthAnnotator(
      std::function<obs::HealthMask(const std::string& layer, SimTime now)>
          annotator);

  /// Attaches a flight recorder: every control decision is mirrored
  /// into it (same record the decision log gets) and every applied
  /// re-plan lands as a replan entry, so the black box carries the
  /// exact digest the fleet's divergence checker replays against.
  /// `recorder` must outlive the manager; nullptr detaches. The record
  /// path is allocation-free, safe for capped fleet partitions.
  void SetFlightRecorder(obs::replay::FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  /// Observer invoked after every control step with the step view
  /// *including* the health annotation (control::ControlStepView::
  /// health_mask) — the seam for breach-aware supervisors and tests.
  /// Unlike the controller's own observer this fires for every step,
  /// including sensor misses and breaker skips (y/raw_u NaN there).
  /// `observer` must outlive the manager; nullptr detaches.
  void SetAnnotatedStepObserver(control::ControlObserver* observer);

  /// Attaches and starts a control loop. The loop is keyed by
  /// `config.name` (default: the layer name). Errors: duplicate name,
  /// missing controller/actuator, non-positive periods, or an invalid
  /// resilience policy.
  Status Attach(LayerControlConfig config);

  /// The default sensor for `config`: queries this manager's metric
  /// store for the configured statistic over the trailing monitoring
  /// window `(now - window, now]`, applying the policy's robust
  /// statistic when enabled. Exposed so callers (e.g. a FlowBuilder
  /// wiring a FaultInjector) can wrap it before Attach.
  std::function<Result<double>(SimTime)> MakeDefaultSensor(
      const LayerControlConfig& config) const;

  /// Starts the periodic incremental re-planning loop. The analyzer's
  /// planner.* counters land in this manager's metrics registry.
  /// Errors: already enabled, or non-positive period. Failed re-plan
  /// runs are counted (planner.replan_failures) and skipped; the loops
  /// keep their previous bounds.
  Status EnableReplanning(ReplanConfig config);
  bool replanning_enabled() const { return replan_ != nullptr; }
  /// Counters of the re-planning analyzer (NotFound when re-planning
  /// was never enabled).
  Result<PlannerCounters> ReplanCounters() const;

  /// Sets a loop's maximum resource share (from §3.2's analysis);
  /// 0 disables the cap. Takes effect from the next control step.
  /// The Layer overloads address the loop with the default name.
  Status SetShareUpperBound(const std::string& name, double bound);
  Status SetShareUpperBound(Layer layer, double bound) {
    return SetShareUpperBound(LayerToString(layer), bound);
  }

  /// Pauses/resumes a loop (the loop keeps firing but neither senses
  /// nor actuates while paused; outstanding retries are dropped).
  Status SetPaused(const std::string& name, bool paused);
  Status SetPaused(Layer layer, bool paused) {
    return SetPaused(LayerToString(layer), paused);
  }

  bool IsAttached(const std::string& name) const {
    return loops_.count(name) > 0;
  }
  bool IsAttached(Layer layer) const {
    return IsAttached(LayerToString(layer));
  }
  /// Runtime traces of an attached loop.
  Result<const LayerControlState*> GetState(const std::string& name) const;
  Result<const LayerControlState*> GetState(Layer layer) const {
    return GetState(LayerToString(layer));
  }
  /// The controller of an attached loop (for inspection).
  Result<const control::Controller*> GetController(
      const std::string& name) const;
  Result<const control::Controller*> GetController(Layer layer) const {
    return GetController(LayerToString(layer));
  }

  /// Names of all attached loops, sorted.
  std::vector<std::string> LoopNames() const;

 private:
  /// Captures the controller's view of its latest Update step so the
  /// manager can stamp decision records with the adapted gain and the
  /// pre-clamp actuation without reaching into controller internals.
  struct StepObserver final : control::ControlObserver {
    control::ControlStepView last;
    bool fresh = false;
    void OnControlStep(const control::ControlStepView& view) override {
      last = view;
      fresh = true;
    }
  };

  struct Attached {
    LayerControlConfig config;
    LayerControlState state;
    bool paused = false;
    /// Resolved sensor (config.sensor or the default metric query).
    std::function<Result<double>(SimTime)> sense;
    /// Jitter stream for retry backoff.
    Rng rng{42};
    /// Bumped at every control step; outstanding retries carry the
    /// epoch they were scheduled under and no-op once superseded.
    uint64_t epoch = 0;
    int consecutive_failures = 0;
    SimTime breaker_reopen_time = 0.0;
    bool has_last_good = false;
    double last_good_value = 0.0;
    SimTime last_good_time = 0.0;
    /// Telemetry plumbing.
    StepObserver observer;
    int trace_tid = 0;
    /// Causal-span state (all 0 while span recording is disabled):
    /// the step's sense/decide spans, the latest actuation attempt
    /// (follows-from link for retries), and the last *successful*
    /// actuation still awaiting its observed effect.
    obs::SpanId current_sense_span = 0;
    obs::SpanId current_decide_span = 0;
    obs::SpanId last_attempt_span = 0;
    obs::SpanId pending_effect_parent = 0;
    SimTime pending_effect_start = 0.0;
    obs::Gauge* gauge_y = nullptr;
    obs::Gauge* gauge_u = nullptr;
    obs::Gauge* gauge_gain = nullptr;
    /// Steps that ran while the health annotator reported any breach
    /// bit for this loop's layer.
    obs::Counter* breach_steps = nullptr;
  };

  struct ReplanState {
    ReplanConfig config;
    ResourceShareAnalyzer analyzer;
    obs::Counter* failures = nullptr;
    obs::Gauge* front_size = nullptr;
  };

  void Step(Attached* a);
  void ReplanStep(ReplanState* s);
  /// `labels` plus the {"tenant", ...} pair when a tenant label is set.
  obs::LabelSet WithTenant(obs::LabelSet labels) const;
  /// One actuation attempt (attempt 0 = the step's own attempt);
  /// schedules the next retry / trips the breaker on failure. Returns
  /// whether THIS attempt succeeded (retries land asynchronously).
  bool Actuate(Attached* a, double amount, int attempt);

  /// Appends one decision record (gain/raw_u filled from the step
  /// observer when the controller ran) and emits the step's trace span.
  void RecordDecision(Attached* a, SimTime now, double sensed_y, bool stale,
                      double clamped_u, obs::StepOutcome outcome);

  sim::Simulation* sim_;
  const cloudwatch::MetricStore* metrics_;
  /// Private fallback hub; `telemetry_` points here unless SetTelemetry
  /// installed an external one.
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* telemetry_ = nullptr;
  std::function<obs::HealthMask(const std::string&, SimTime)>
      health_annotator_;
  control::ControlObserver* annotated_observer_ = nullptr;
  obs::replay::FlightRecorder* flight_recorder_ = nullptr;
  /// Tenant id stamped on every registered instrument (fleet runs);
  /// empty = no tenant label (single-flow behavior unchanged).
  std::string tenant_;
  int next_trace_tid_ = 0;
  /// Trace process lane for this manager's loops (kTracePid unless
  /// SetTraceScope registered a dedicated scope).
  int trace_pid_ = obs::kTracePid;
  /// Last successful re-plan's kPlan span: decisions taken under its
  /// share bounds link to it with a follows-from edge.
  obs::SpanId last_plan_span_ = 0;
  std::map<std::string, std::unique_ptr<Attached>> loops_;
  std::unique_ptr<ReplanState> replan_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_ELASTICITY_MANAGER_H_
