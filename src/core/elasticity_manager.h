#ifndef FLOWER_CORE_ELASTICITY_MANAGER_H_
#define FLOWER_CORE_ELASTICITY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "control/controller.h"
#include "core/layer.h"
#include "sim/simulation.h"

namespace flower::core {

/// Everything needed to run one layer's control loop (paper §2: each
/// layer gets a sensor, an adaptive controller, and an actuator).
struct LayerControlConfig {
  Layer layer = Layer::kAnalytics;
  /// Loop name; defaults to the layer name. Flows with several
  /// resources in one layer (e.g. two ingestion streams feeding a join)
  /// attach one named loop per resource.
  std::string name;
  /// The sensed metric (e.g. Flower/Storm CpuUtilization{storm}).
  cloudwatch::MetricId sensor_metric;
  cloudwatch::Statistic sensor_statistic = cloudwatch::Statistic::kAverage;
  /// Control period: how often the loop senses and actuates (§2's
  /// "monitoring window" knob in the demo's configuration wizard).
  double monitoring_period_sec = 60.0;
  /// The sensor aggregates over the trailing window of this length.
  double monitoring_window_sec = 120.0;
  /// First firing of the loop, relative to attach time.
  double start_delay_sec = 60.0;
  /// The control law (owned by the manager after Attach).
  std::unique_ptr<control::Controller> controller;
  /// Applies the new resource amount to the managed service (resize
  /// shards / VMs / WCU). A failed actuation is counted and the
  /// previous amount retained.
  std::function<Status(double)> actuator;
  /// Initial actuator value (current provisioned amount).
  double initial_u = 1.0;
};

/// Per-layer runtime traces and counters, for evaluation and the
/// monitoring dashboard.
struct LayerControlState {
  TimeSeries sensed;       ///< y_k at each control step.
  TimeSeries actuations;   ///< u_{k+1} returned at each control step.
  uint64_t sensor_misses = 0;     ///< Steps skipped: no data in window.
  uint64_t actuation_failures = 0;
  double share_upper_bound = 0.0;  ///< 0 = unbounded.
};

/// Flower's elasticity manager: runs one adaptive control loop per
/// layer on the simulation clock. Each loop (1) queries the metric
/// store for the layer's utilization statistic over the monitoring
/// window, (2) asks the layer's controller for the next resource
/// amount, (3) caps it by the layer's resource-share upper bound from
/// the ResourceShareAnalyzer, and (4) invokes the actuator.
class ElasticityManager {
 public:
  ElasticityManager(sim::Simulation* sim,
                    const cloudwatch::MetricStore* metrics)
      : sim_(sim), metrics_(metrics) {}

  /// Attaches and starts a control loop. The loop is keyed by
  /// `config.name` (default: the layer name). Errors: duplicate name,
  /// missing controller/actuator, or non-positive periods.
  Status Attach(LayerControlConfig config);

  /// Sets a loop's maximum resource share (from §3.2's analysis);
  /// 0 disables the cap. Takes effect from the next control step.
  /// The Layer overloads address the loop with the default name.
  Status SetShareUpperBound(const std::string& name, double bound);
  Status SetShareUpperBound(Layer layer, double bound) {
    return SetShareUpperBound(LayerToString(layer), bound);
  }

  /// Pauses/resumes a loop (the loop keeps firing but neither senses
  /// nor actuates while paused).
  Status SetPaused(const std::string& name, bool paused);
  Status SetPaused(Layer layer, bool paused) {
    return SetPaused(LayerToString(layer), paused);
  }

  bool IsAttached(const std::string& name) const {
    return loops_.count(name) > 0;
  }
  bool IsAttached(Layer layer) const {
    return IsAttached(LayerToString(layer));
  }
  /// Runtime traces of an attached loop.
  Result<const LayerControlState*> GetState(const std::string& name) const;
  Result<const LayerControlState*> GetState(Layer layer) const {
    return GetState(LayerToString(layer));
  }
  /// The controller of an attached loop (for inspection).
  Result<const control::Controller*> GetController(
      const std::string& name) const;
  Result<const control::Controller*> GetController(Layer layer) const {
    return GetController(LayerToString(layer));
  }

  /// Names of all attached loops, sorted.
  std::vector<std::string> LoopNames() const;

 private:
  struct Attached {
    LayerControlConfig config;
    LayerControlState state;
    bool paused = false;
  };

  void Step(Attached* a);

  sim::Simulation* sim_;
  const cloudwatch::MetricStore* metrics_;
  std::map<std::string, std::unique_ptr<Attached>> loops_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_ELASTICITY_MANAGER_H_
