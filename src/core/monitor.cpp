#include "core/monitor.h"

#include <sstream>

#include "common/csv.h"
#include "common/table_printer.h"

namespace flower::core {

void CrossPlatformMonitor::WatchNamespace(const std::string& ns) {
  for (cloudwatch::MetricId& id : store_->ListMetrics(ns)) {
    watched_.push_back(std::move(id));
  }
}

std::vector<MetricSnapshot> CrossPlatformMonitor::Snapshot(
    SimTime t0, SimTime t1) const {
  std::vector<MetricSnapshot> out;
  out.reserve(watched_.size());
  for (const cloudwatch::MetricId& id : watched_) {
    MetricSnapshot snap;
    snap.id = id;
    auto series = store_->GetSeries(id);
    if (series.ok()) {
      TimeSeries window = (*series)->Window(t0, t1);
      snap.samples = window.size();
      if (!window.empty()) {
        snap.last = window[window.size() - 1].value;
        double sum = 0.0;
        snap.minimum = snap.maximum = window[0].value;
        for (const Sample& s : window.samples()) {
          sum += s.value;
          snap.minimum = std::min(snap.minimum, s.value);
          snap.maximum = std::max(snap.maximum, s.value);
        }
        snap.average = sum / static_cast<double>(window.size());
      }
    }
    out.push_back(snap);
  }
  return out;
}

void CrossPlatformMonitor::RenderDashboard(std::ostream& os, SimTime t0,
                                           SimTime t1,
                                           bool with_charts) const {
  os << "=== Flower cross-platform dashboard  [t=" << t0 << " .. " << t1
     << "s] ===\n";
  TablePrinter table({"metric", "last", "avg", "min", "max", "samples"});
  auto snaps = Snapshot(t0, t1);
  for (const MetricSnapshot& s : snaps) {
    table.AddRow({s.id.ToString(), TablePrinter::Num(s.last),
                  TablePrinter::Num(s.average), TablePrinter::Num(s.minimum),
                  TablePrinter::Num(s.maximum),
                  std::to_string(s.samples)});
  }
  table.Print(os);
  if (!with_charts) return;
  for (const cloudwatch::MetricId& id : watched_) {
    auto series = store_->GetSeries(id);
    if (!series.ok()) continue;
    TimeSeries window = (*series)->Window(t0, t1);
    if (window.empty()) continue;
    os << '\n' << AsciiChart(window.Values(), 8, 72, id.ToString());
  }
}

void CrossPlatformMonitor::DumpCsv(std::ostream& os, SimTime t0,
                                   SimTime t1) const {
  CsvWriter csv(&os);
  csv.WriteRow({"metric", "time_sec", "value"});
  for (const cloudwatch::MetricId& id : watched_) {
    auto series = store_->GetSeries(id);
    if (!series.ok()) continue;
    TimeSeries window = (*series)->Window(t0, t1);
    for (const Sample& s : window.samples()) {
      std::ostringstream t_str, v_str;
      t_str.precision(10);
      v_str.precision(10);
      t_str << s.time;
      v_str << s.value;
      csv.WriteRow({id.ToString(), t_str.str(), v_str.str()});
    }
  }
}

}  // namespace flower::core
