#ifndef FLOWER_CORE_DEPENDENCY_ANALYZER_H_
#define FLOWER_CORE_DEPENDENCY_ANALYZER_H_

#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "core/layer.h"
#include "obs/health/attribution.h"
#include "stats/correlation.h"
#include "stats/linreg.h"
#include "stats/robust.h"

namespace flower::core {

/// A metric participating in dependency analysis, tagged with its layer.
struct LayerMetric {
  Layer layer;
  cloudwatch::MetricId id;
};

/// A multi-predictor dependency: response = b0 + b1·x1 + ... + bk·xk,
/// the natural generalization of Eq. 1 when one layer's load is driven
/// by several upstream signals.
struct MultiDependency {
  std::vector<LayerMetric> predictors;
  LayerMetric response;
  stats::MultipleFit fit;
  bool significant = false;  ///< R² at or above the analyzer threshold.
};

/// One detected cross-layer dependency: the paper's Eq. 1,
/// response = beta0 + beta1 * predictor + error.
struct Dependency {
  LayerMetric predictor;
  LayerMetric response;
  stats::SimpleFit fit;
  /// True when |Pearson r| >= the analyzer's threshold (the analyzer
  /// also returns non-significant pairs so users can see what was
  /// ruled out — the paper notes e.g. no Kinesis↔DynamoDB write
  /// dependency for the click-stream flow).
  bool significant = false;

  /// Eq.-2-style rendering: "<response> = <b1> * <predictor> + <b0>".
  std::string ToString() const;
};

/// Configuration of the analyzer.
struct DependencyAnalyzerConfig {
  /// Series are aligned by averaging into buckets of this width before
  /// regression (the paper's Fig. 2 uses one-minute samples).
  double bucket_sec = 60.0;
  /// |r| at or above this marks the dependency significant.
  double min_abs_correlation = 0.7;
  /// R² threshold for multi-predictor fits.
  double min_r_squared = 0.5;
  /// Minimum aligned samples required to attempt a fit.
  size_t min_samples = 10;
  /// Use the Theil–Sen robust estimator (with Spearman rank
  /// correlation for significance) instead of OLS/Pearson — survives
  /// monitoring glitches and load spikes in the logs.
  bool robust = false;
};

/// Workload dependency analysis (paper §3.1): applies linear regression
/// to pairs of resource metrics from *different* layers, quantifying
/// relationships such as Eq. 2 (Storm CPU vs Kinesis write volume).
class DependencyAnalyzer {
 public:
  explicit DependencyAnalyzer(DependencyAnalyzerConfig config = {})
      : config_(config) {}

  /// Regresses `response` on `predictor` over window [t0, t1).
  /// Errors: unknown metric, too few aligned samples, degenerate data.
  Result<Dependency> Analyze(const cloudwatch::MetricStore& store,
                             const LayerMetric& predictor,
                             const LayerMetric& response, SimTime t0,
                             SimTime t1) const;

  /// Regresses `response` on several predictors jointly (all from
  /// layers other than the response's). Errors: empty predictors, a
  /// predictor sharing the response's layer, unknown metrics, too few
  /// aligned samples, or collinear predictors.
  Result<MultiDependency> AnalyzeMultiple(
      const cloudwatch::MetricStore& store,
      const std::vector<LayerMetric>& predictors, const LayerMetric& response,
      SimTime t0, SimTime t1) const;

  /// Analyzes every ordered cross-layer pair among `metrics` (same-layer
  /// pairs are skipped, per Eq. 1's L1 != L2). Pairs that fail to fit
  /// (too few samples / degenerate) are silently omitted; the returned
  /// list contains both significant and non-significant fits.
  std::vector<Dependency> AnalyzeAll(const cloudwatch::MetricStore& store,
                                     const std::vector<LayerMetric>& metrics,
                                     SimTime t0, SimTime t1) const;

  const DependencyAnalyzerConfig& config() const { return config_; }

 private:
  DependencyAnalyzerConfig config_;
};

/// Converts analyzer results into the neutral edge form the
/// obs::health::RootCauseAttributor consumes (obs cannot include core,
/// so the conversion lives on the core side of the seam). Keeps every
/// edge, significant or not — the attributor ignores non-significant
/// ones but exporters may still want to show what was ruled out.
std::vector<obs::health::DependencyEdge> ToHealthEdges(
    const std::vector<Dependency>& dependencies);

}  // namespace flower::core

#endif  // FLOWER_CORE_DEPENDENCY_ANALYZER_H_
