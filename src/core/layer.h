#ifndef FLOWER_CORE_LAYER_H_
#define FLOWER_CORE_LAYER_H_

#include <string>

namespace flower::core {

/// The three layers of a data analytics flow (paper §1): ingestion
/// (Kinesis), analytics (Storm on EC2), storage (DynamoDB).
enum class Layer { kIngestion = 0, kAnalytics = 1, kStorage = 2 };

inline std::string LayerToString(Layer l) {
  switch (l) {
    case Layer::kIngestion: return "ingestion";
    case Layer::kAnalytics: return "analytics";
    case Layer::kStorage: return "storage";
  }
  return "unknown";
}

constexpr int kNumLayers = 3;

}  // namespace flower::core

#endif  // FLOWER_CORE_LAYER_H_
