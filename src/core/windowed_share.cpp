#include "core/windowed_share.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"

namespace flower::core {

namespace {

// Levels one plan onto the maximal integer lattice surface: greedily
// bump each layer's share by one unit while the bounds, the budget, and
// the dependency constraints still hold. An early-exited solve leaves
// points with a unit or two of unspent slack; the polish recovers that
// closed-form instead of spending solver generations on it.
void PolishPlan(const ResourceShareRequest& req, ProvisioningPlan* p) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (int j = 0; j < kNumLayers; ++j) {
      double next = p->shares[j] + 1.0;
      if (next > req.bounds[j].max + 1e-9) continue;
      double cost = 0.0;
      for (int i = 0; i < kNumLayers; ++i) {
        cost += (i == j ? next : p->shares[i]) * req.unit_price[i];
      }
      if (cost > req.hourly_budget_usd + 1e-9) continue;
      bool feasible = true;
      for (const LinearConstraint& c : req.constraints) {
        double lhs = 0.0;
        for (int i = 0; i < kNumLayers; ++i) {
          lhs += c.coeff[i] * (i == j ? next : p->shares[i]);
        }
        if (lhs > c.rhs + 1e-9) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      p->shares[static_cast<size_t>(j)] = next;
      p->hourly_cost_usd = cost;
      changed = true;
    }
  }
}

// Polished plans can collide or dominate one another; keep the
// deduplicated non-dominated subset, sorted lexicographically by shares
// for a deterministic order.
void PolishFront(const ResourceShareRequest& req,
                 std::vector<ProvisioningPlan>* front) {
  for (ProvisioningPlan& p : *front) PolishPlan(req, &p);
  std::sort(front->begin(), front->end(),
            [](const ProvisioningPlan& a, const ProvisioningPlan& b) {
              for (int i = 0; i < kNumLayers; ++i) {
                if (a.shares[i] != b.shares[i]) return a.shares[i] < b.shares[i];
              }
              return false;
            });
  auto dominates = [](const ProvisioningPlan& a, const ProvisioningPlan& b) {
    bool better = false;
    for (int i = 0; i < kNumLayers; ++i) {
      if (a.shares[i] < b.shares[i]) return false;
      if (a.shares[i] > b.shares[i]) better = true;
    }
    return better;
  };
  std::vector<ProvisioningPlan> kept;
  kept.reserve(front->size());
  for (size_t i = 0; i < front->size(); ++i) {
    bool dead = false;
    for (size_t j = 0; j < front->size() && !dead; ++j) {
      if (j == i) continue;
      if (dominates((*front)[j], (*front)[i])) dead = true;
      // Exact duplicate: keep only the first occurrence.
      if (j < i && !dominates((*front)[j], (*front)[i]) &&
          !dominates((*front)[i], (*front)[j])) {
        bool equal = true;
        for (int k = 0; k < kNumLayers; ++k) {
          if ((*front)[i].shares[k] != (*front)[j].shares[k]) equal = false;
        }
        if (equal) dead = true;
      }
    }
    if (!dead) kept.push_back((*front)[i]);
  }
  *front = std::move(kept);
}

}  // namespace

ProvisioningPlan DemandModel::MinimumFor(double records_per_sec) const {
  ProvisioningPlan min;
  double target = std::max(0.05, target_utilization);
  min.shares[static_cast<int>(Layer::kIngestion)] =
      std::ceil(records_per_sec / (records_per_shard * target));
  min.shares[static_cast<int>(Layer::kAnalytics)] = std::ceil(
      records_per_sec * work_units_per_record / (work_units_per_vm * target));
  min.shares[static_cast<int>(Layer::kStorage)] =
      std::ceil((wcu_base + wcu_per_record * records_per_sec) / target);
  for (double& s : min.shares) s = std::max(1.0, s);
  return min;
}

Result<WindowPlan> WindowedShareAnalyzer::PlanWindowImpl(
    SimTime start, SimTime end, double records_per_sec,
    const std::vector<std::vector<double>>* seed,
    const std::vector<ProvisioningPlan>* carry_front,
    std::vector<std::vector<double>>* final_population,
    bool use_stall) const {
  if (end <= start) {
    return Status::InvalidArgument("PlanWindow: end must exceed start");
  }
  WindowPlan out;
  out.start = start;
  out.end = end;
  out.forecast_rate = records_per_sec;
  ProvisioningPlan demand = model_.MinimumFor(records_per_sec);
  out.demand = demand;

  // Demand-feasibility check against the budget: the cheapest
  // allocation satisfying the demand is the demand itself.
  double demand_cost = 0.0;
  for (int i = 0; i < kNumLayers; ++i) {
    demand_cost += demand.shares[i] * base_.unit_price[i];
  }
  if (demand_cost > base_.hourly_budget_usd) {
    out.within_budget = false;
    out.plan = demand;
    out.plan.hourly_cost_usd = demand_cost;
    return out;
  }

  // Optimize shares with the demand as per-layer lower bounds.
  ResourceShareRequest req = base_;
  for (int i = 0; i < kNumLayers; ++i) {
    req.bounds[i].min = std::max(req.bounds[i].min, demand.shares[i]);
    req.bounds[i].max = std::max(req.bounds[i].max, req.bounds[i].min);
  }
  opt::Nsga2Config config = solver_;
  if (use_stall) {
    config.stall_generations = incremental_.stall_generations;
    config.stall_tolerance = incremental_.stall_tolerance;
  }
  if (seed != nullptr && !seed->empty()) {
    // Deterministic per-objective budget-extreme anchors: hold every
    // other layer at its floor and spend the residual budget on layer
    // j. A carried population explores the front's corners worst (its
    // seeds cluster where the previous window's front was dense), so
    // three of the population's slots pin the extremes every window
    // instead of rediscovering them by mutation luck. Unseeded warm-up
    // windows stay anchor-free: they run exactly the cold solve.
    double floor_cost = 0.0;
    for (int i = 0; i < kNumLayers; ++i) {
      floor_cost += req.bounds[i].min * req.unit_price[i];
    }
    for (int j = 0; j < kNumLayers; ++j) {
      std::vector<double> anchor(kNumLayers);
      for (int i = 0; i < kNumLayers; ++i) anchor[i] = req.bounds[i].min;
      double residual = req.hourly_budget_usd - floor_cost +
                        req.bounds[j].min * req.unit_price[j];
      anchor[static_cast<size_t>(j)] =
          req.unit_price[j] > 0.0
              ? std::clamp(residual / req.unit_price[j], req.bounds[j].min,
                           req.bounds[j].max)
              : req.bounds[j].max;
      config.seed_population.push_back(std::move(anchor));
    }
    // Partial injection: only the best-ranked seed_fraction of the
    // population carries over; the solver tops up the rest with fresh
    // random individuals (the final population is ordered by rank, so
    // a prefix is the elite slice).
    double frac = std::clamp(incremental_.seed_fraction, 0.0, 1.0);
    size_t max_seeds = static_cast<size_t>(
        std::ceil(frac * static_cast<double>(config.population_size)));
    max_seeds = std::min(max_seeds, seed->size());
    config.seed_population.insert(
        config.seed_population.end(), seed->begin(),
        seed->begin() + static_cast<long>(max_seeds));
  }
  ResourceShareAnalyzer analyzer(config);
  FLOWER_ASSIGN_OR_RETURN(ResourceShareResult res, analyzer.Analyze(req));
  out.evaluations = res.evaluations;
  out.early_exit = res.early_exit;
  if (final_population != nullptr) {
    *final_population = std::move(res.final_population);
  }
  if (res.pareto_plans.empty()) {
    // Dependency constraints + demand floor may be jointly
    // unsatisfiable within budget.
    out.within_budget = false;
    out.plan = demand;
    out.plan.hourly_cost_usd = demand_cost;
    return out;
  }
  if (seed != nullptr && !seed->empty()) {
    // Re-validate the previous window's front under this window's
    // bounds and merge the survivors: floors move slowly between
    // adjacent windows, so the carried front is a near-optimal spread
    // this window's (early-exited) solve would otherwise have to
    // rediscover. The chain accumulates front coverage this way.
    if (carry_front != nullptr) {
      for (const ProvisioningPlan& prev : *carry_front) {
        ProvisioningPlan cand = prev;
        double cost = 0.0;
        for (int i = 0; i < kNumLayers; ++i) {
          cand.shares[i] =
              std::clamp(cand.shares[i], req.bounds[i].min, req.bounds[i].max);
          cost += cand.shares[i] * req.unit_price[i];
        }
        if (cost > req.hourly_budget_usd + 1e-9) continue;
        bool feasible = true;
        for (const LinearConstraint& c : req.constraints) {
          double lhs = 0.0;
          for (int i = 0; i < kNumLayers; ++i) {
            lhs += c.coeff[i] * cand.shares[i];
          }
          if (lhs > c.rhs + 1e-9) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        cand.hourly_cost_usd = cost;
        res.pareto_plans.push_back(std::move(cand));
      }
    }
    // Warm solves exit early, so their front points carry leftover
    // integer slack; the lattice polish levels them (and the merged
    // carry-overs) onto the maximal surface before the balanced plan
    // is picked, then keeps the deduplicated non-dominated subset.
    PolishFront(req, &res.pareto_plans);
  }
  FLOWER_ASSIGN_OR_RETURN(out.plan,
                          ResourceShareAnalyzer::PickBalancedPlan(res, req));
  out.within_budget = true;
  out.pareto_plans = std::move(res.pareto_plans);
  return out;
}

Result<WindowPlan> WindowedShareAnalyzer::PlanWindow(
    SimTime start, SimTime end, double records_per_sec) const {
  return PlanWindowImpl(start, end, records_per_sec, nullptr, nullptr,
                        nullptr, /*use_stall=*/true);
}

Result<std::vector<WindowPlan>> WindowedShareAnalyzer::PlanHorizon(
    const TimeSeries& rate_forecast, double window_sec) const {
  if (rate_forecast.empty()) {
    return Status::FailedPrecondition("PlanHorizon: empty forecast");
  }
  if (window_sec <= 0.0) {
    return Status::InvalidArgument("PlanHorizon: window must be positive");
  }
  // Pass 1 (serial): slice the horizon and pick each window's peak
  // forecast sample, so intra-window bursts are covered.
  struct PendingWindow {
    SimTime start = 0.0;
    SimTime end = 0.0;
    double peak = 0.0;
  };
  std::vector<PendingWindow> pending;
  SimTime t0 = rate_forecast.start_time();
  SimTime horizon_end = rate_forecast.end_time();
  for (SimTime start = t0; start <= horizon_end; start += window_sec) {
    SimTime end = start + window_sec;
    TimeSeries window = rate_forecast.Window(start, end);
    if (window.empty()) continue;
    double peak = 0.0;
    for (const Sample& s : window.samples()) peak = std::max(peak, s.value);
    pending.push_back({start, end, peak});
  }
  if (pending.empty()) {
    return Status::FailedPrecondition("PlanHorizon: no plannable windows");
  }

  // Warm-started horizons chain window k's final population into
  // window k+1, so the windows must run in order; the per-window
  // speedup comes from the warm seeds + early-exit instead of
  // window-level parallelism (the solver itself may still fan out).
  if (incremental_.warm_start) {
    std::vector<WindowPlan> plans;
    plans.reserve(pending.size());
    std::vector<std::vector<double>> carry;
    std::vector<std::vector<double>> next;
    std::vector<ProvisioningPlan> carry_front;
    for (const PendingWindow& w : pending) {
      // The chain's warm-up windows (no carry yet) run the full
      // generation budget: the early exit measures stagnation, and an
      // unseeded population that anchors every later window deserves
      // full exploration. Seeded windows start near-converged, so the
      // early exit is what converts the warm start into wall-clock.
      FLOWER_ASSIGN_OR_RETURN(
          WindowPlan plan,
          PlanWindowImpl(w.start, w.end, w.peak,
                         carry.empty() ? nullptr : &carry,
                         carry_front.empty() ? nullptr : &carry_front, &next,
                         /*use_stall=*/!carry.empty()));
      // Budget-infeasible windows skip the solver and return an empty
      // population; keep the previous carry so the chain survives them.
      if (!next.empty()) carry = std::move(next);
      next.clear();
      if (!plan.pareto_plans.empty()) carry_front = plan.pareto_plans;
      plans.push_back(std::move(plan));
    }
    return plans;
  }

  // Pass 2 (parallel): windows are independent NSGA-II runs, each
  // writing only its own slot, so the horizon is bit-identical at any
  // thread count. Window-level parallelism is the coarse grain that
  // gives near-linear speedup (each window is one full solver run).
  std::vector<WindowPlan> plans(pending.size());
  exec::ThreadPool pool(num_threads_);
  FLOWER_RETURN_NOT_OK(pool.ParallelFor(
      0, pending.size(), 1, [&](size_t i) -> Status {
        Result<WindowPlan> plan =
            PlanWindow(pending[i].start, pending[i].end, pending[i].peak);
        if (!plan.ok()) return plan.status();
        plans[i] = std::move(*plan);
        return Status::OK();
      }));
  return plans;
}

}  // namespace flower::core
