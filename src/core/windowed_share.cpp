#include "core/windowed_share.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"

namespace flower::core {

ProvisioningPlan DemandModel::MinimumFor(double records_per_sec) const {
  ProvisioningPlan min;
  double target = std::max(0.05, target_utilization);
  min.shares[static_cast<int>(Layer::kIngestion)] =
      std::ceil(records_per_sec / (records_per_shard * target));
  min.shares[static_cast<int>(Layer::kAnalytics)] = std::ceil(
      records_per_sec * work_units_per_record / (work_units_per_vm * target));
  min.shares[static_cast<int>(Layer::kStorage)] =
      std::ceil((wcu_base + wcu_per_record * records_per_sec) / target);
  for (double& s : min.shares) s = std::max(1.0, s);
  return min;
}

Result<WindowPlan> WindowedShareAnalyzer::PlanWindow(
    SimTime start, SimTime end, double records_per_sec) const {
  if (end <= start) {
    return Status::InvalidArgument("PlanWindow: end must exceed start");
  }
  WindowPlan out;
  out.start = start;
  out.end = end;
  out.forecast_rate = records_per_sec;
  ProvisioningPlan demand = model_.MinimumFor(records_per_sec);
  out.demand = demand;

  // Demand-feasibility check against the budget: the cheapest
  // allocation satisfying the demand is the demand itself.
  double demand_cost = 0.0;
  for (int i = 0; i < kNumLayers; ++i) {
    demand_cost += demand.shares[i] * base_.unit_price[i];
  }
  if (demand_cost > base_.hourly_budget_usd) {
    out.within_budget = false;
    out.plan = demand;
    out.plan.hourly_cost_usd = demand_cost;
    return out;
  }

  // Optimize shares with the demand as per-layer lower bounds.
  ResourceShareRequest req = base_;
  for (int i = 0; i < kNumLayers; ++i) {
    req.bounds[i].min = std::max(req.bounds[i].min, demand.shares[i]);
    req.bounds[i].max = std::max(req.bounds[i].max, req.bounds[i].min);
  }
  ResourceShareAnalyzer analyzer(solver_);
  FLOWER_ASSIGN_OR_RETURN(ResourceShareResult res, analyzer.Analyze(req));
  if (res.pareto_plans.empty()) {
    // Dependency constraints + demand floor may be jointly
    // unsatisfiable within budget.
    out.within_budget = false;
    out.plan = demand;
    out.plan.hourly_cost_usd = demand_cost;
    return out;
  }
  FLOWER_ASSIGN_OR_RETURN(out.plan,
                          ResourceShareAnalyzer::PickBalancedPlan(res, req));
  out.within_budget = true;
  return out;
}

Result<std::vector<WindowPlan>> WindowedShareAnalyzer::PlanHorizon(
    const TimeSeries& rate_forecast, double window_sec) const {
  if (rate_forecast.empty()) {
    return Status::FailedPrecondition("PlanHorizon: empty forecast");
  }
  if (window_sec <= 0.0) {
    return Status::InvalidArgument("PlanHorizon: window must be positive");
  }
  // Pass 1 (serial): slice the horizon and pick each window's peak
  // forecast sample, so intra-window bursts are covered.
  struct PendingWindow {
    SimTime start = 0.0;
    SimTime end = 0.0;
    double peak = 0.0;
  };
  std::vector<PendingWindow> pending;
  SimTime t0 = rate_forecast.start_time();
  SimTime horizon_end = rate_forecast.end_time();
  for (SimTime start = t0; start <= horizon_end; start += window_sec) {
    SimTime end = start + window_sec;
    TimeSeries window = rate_forecast.Window(start, end);
    if (window.empty()) continue;
    double peak = 0.0;
    for (const Sample& s : window.samples()) peak = std::max(peak, s.value);
    pending.push_back({start, end, peak});
  }
  if (pending.empty()) {
    return Status::FailedPrecondition("PlanHorizon: no plannable windows");
  }

  // Pass 2 (parallel): windows are independent NSGA-II runs, each
  // writing only its own slot, so the horizon is bit-identical at any
  // thread count. Window-level parallelism is the coarse grain that
  // gives near-linear speedup (each window is one full solver run).
  std::vector<WindowPlan> plans(pending.size());
  exec::ThreadPool pool(num_threads_);
  FLOWER_RETURN_NOT_OK(pool.ParallelFor(
      0, pending.size(), 1, [&](size_t i) -> Status {
        Result<WindowPlan> plan =
            PlanWindow(pending[i].start, pending[i].end, pending[i].peak);
        if (!plan.ok()) return plan.status();
        plans[i] = std::move(*plan);
        return Status::OK();
      }));
  return plans;
}

}  // namespace flower::core
