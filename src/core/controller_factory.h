#ifndef FLOWER_CORE_CONTROLLER_FACTORY_H_
#define FLOWER_CORE_CONTROLLER_FACTORY_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "control/controller.h"

namespace flower::core {

/// Controller families selectable in the flow configuration wizard
/// (demo step 2). The first is Flower's own; the rest are the
/// baselines the paper positions against.
enum class ControllerKind {
  kAdaptiveGain,          ///< Flower (Eq. 6–7), gain with memory.
  kAdaptiveGainNoMemory,  ///< Ablation: gain reset every step.
  kFixedGain,             ///< Lim et al. 2010 [12].
  kQuasiAdaptive,         ///< Padala et al. 2007 [14].
  kRuleBased,             ///< Cloud-provider threshold rules [1].
  kTargetTracking,        ///< Cloud-provider ratio-based target tracking.
  /// Flower extension: model-based feedforward from the learned
  /// cross-layer dependency (§3.1 + §3.3). Needs a driver signal; built
  /// via MakeFeedforwardController (MakeController falls back to
  /// feedback-only behaviour when no driver is supplied).
  kFeedforward,
};

std::string ControllerKindToString(ControllerKind k);
Result<ControllerKind> ControllerKindFromString(const std::string& s);

/// Builds a controller of the given family with defaults tuned for a
/// utilization-percentage sensor (y in [0, 100]).
///
/// `gain_scale` linearly scales the control gains to the magnitude of
/// the actuated resource: use ~1 when the resource counts in units
/// (VMs, shards), ~(max_units / 100) when it counts in hundreds or
/// thousands (DynamoDB capacity units). Errors: reference outside
/// (0, 100), non-positive gain_scale, or inverted limits.
Result<std::unique_ptr<control::Controller>> MakeController(
    ControllerKind kind, double reference, control::ActuatorLimits limits,
    double gain_scale = 1.0);

/// Builds the feedforward controller with an explicit exogenous driver
/// (e.g. a metric-store query for the upstream arrival rate). Same
/// validation rules as MakeController.
Result<std::unique_ptr<control::Controller>> MakeFeedforwardController(
    double reference, control::ActuatorLimits limits,
    std::function<Result<double>(SimTime)> driver, double gain_scale = 1.0);

}  // namespace flower::core

#endif  // FLOWER_CORE_CONTROLLER_FACTORY_H_
