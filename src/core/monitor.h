#ifndef FLOWER_CORE_MONITOR_H_
#define FLOWER_CORE_MONITOR_H_

#include <ostream>
#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "common/result.h"

namespace flower::core {

/// One consolidated row of the cross-platform dashboard.
struct MetricSnapshot {
  cloudwatch::MetricId id;
  double last = 0.0;
  double average = 0.0;
  double minimum = 0.0;
  double maximum = 0.0;
  size_t samples = 0;
};

/// Cross-platform monitoring (paper §3.4): the "all-in-one-place
/// visualizer" that consolidates performance measures of every system
/// in the flow into one view, instead of one UI per service.
///
/// `Watch` registers metrics (typically everything under the
/// Flower/Kinesis, Flower/Storm and Flower/DynamoDB namespaces);
/// `Snapshot` aggregates them over a trailing window; `RenderDashboard`
/// renders the text dashboard (the repo's equivalent of Fig. 6's UI)
/// with one summary table and an ASCII trace per watched metric.
class CrossPlatformMonitor {
 public:
  explicit CrossPlatformMonitor(const cloudwatch::MetricStore* store)
      : store_(store) {}

  /// Adds one metric to the dashboard.
  void Watch(cloudwatch::MetricId id) { watched_.push_back(std::move(id)); }
  /// Adds every metric currently present in a namespace.
  void WatchNamespace(const std::string& ns);

  size_t watched_count() const { return watched_.size(); }

  /// Aggregates all watched metrics over [t0, t1). Metrics with no
  /// datapoints in the window are reported with samples == 0.
  std::vector<MetricSnapshot> Snapshot(SimTime t0, SimTime t1) const;

  /// Renders the consolidated dashboard: summary table plus (when
  /// `with_charts`) an ASCII sparkline per metric with data.
  void RenderDashboard(std::ostream& os, SimTime t0, SimTime t1,
                       bool with_charts = false) const;

  /// Dumps every watched metric's raw datapoints in [t0, t1) as CSV
  /// rows `metric,time_sec,value` (with header) for external plotting.
  void DumpCsv(std::ostream& os, SimTime t0, SimTime t1) const;

 private:
  const cloudwatch::MetricStore* store_;
  std::vector<cloudwatch::MetricId> watched_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_MONITOR_H_
