#ifndef FLOWER_CORE_WINDOWED_SHARE_H_
#define FLOWER_CORE_WINDOWED_SHARE_H_

#include <vector>

#include "common/time_series.h"
#include "core/resource_share.h"

namespace flower::core {

/// Translates a workload rate (records/s) into minimum per-layer
/// resource demands at the target utilization. The defaults match the
/// canonical click-stream flow.
struct DemandModel {
  /// Target utilization fraction each layer should run at.
  double target_utilization = 0.6;
  /// Ingestion: one shard accepts this many records/s at 100%.
  double records_per_shard = 1000.0;
  /// Analytics: work units per record and per-VM work units/s.
  double work_units_per_record = 4800.0;
  double work_units_per_vm = 0.9e6;
  /// Storage: write units/s as an affine function of the arrival rate,
  /// wcu(rate) = wcu_base + wcu_per_record * rate. For the sliding-
  /// window flow the base term (aggregates per slide) dominates.
  double wcu_base = 50.0;
  double wcu_per_record = 0.0;

  /// Minimum resources for a given arrival rate (ingestion, analytics,
  /// storage).
  ProvisioningPlan MinimumFor(double records_per_sec) const;
};

/// One planning window: the forecast demand, the plan chosen for it,
/// and whether the budget could satisfy the demand at all.
struct WindowPlan {
  SimTime start = 0.0;
  SimTime end = 0.0;
  double forecast_rate = 0.0;
  /// Minimum per-layer allocation that serves the forecast at the
  /// demand model's target utilization — what an operator would
  /// provision at the window start.
  ProvisioningPlan demand;
  /// Budget-constrained balanced plan (>= demand in every layer when
  /// within_budget); its shares are the controllers' caps for the
  /// window.
  ProvisioningPlan plan;
  /// False when even the cheapest demand-satisfying allocation exceeds
  /// the window's budget; `plan` then holds the bare demand minimum
  /// (over budget) so operators can see the shortfall.
  bool within_budget = true;
  /// The window's full Pareto front (empty when the solver was skipped
  /// because the demand already exceeds the budget) — lets benches
  /// compare warm vs cold front quality per window.
  std::vector<ProvisioningPlan> pareto_plans;
  /// Objective evaluations the window's solve spent (0 when skipped).
  size_t evaluations = 0;
  /// True when the convergence early-exit stopped the window's solve.
  bool early_exit = false;
};

/// Windowed resource-share analysis — the paper's §2 note that "the
/// resource shares can be determined with respect to arbitrary time
/// windows", made concrete: given a forecast arrival-rate profile, a
/// base request (budget + dependency constraints) and a demand model,
/// produce one provisioning plan per window whose lower bounds follow
/// the forecast demand. Controllers then use each window's plan as
/// their share upper bounds for that window.
class WindowedShareAnalyzer {
 public:
  /// `num_threads` parallelizes PlanHorizon across windows (0 =
  /// hardware concurrency). Each window's NSGA-II run is independent
  /// and seeded from the solver config, so the planned horizon is
  /// bit-identical at any thread count; errors propagate first-wins.
  /// Window-level threading composes multiplicatively with
  /// `solver.num_threads` (each window spawns its own solver pool), so
  /// enable one level or the other, not both.
  ///
  /// `incremental.warm_start` chains window k's final population into
  /// window k+1's initial population; the chain is inherently
  /// sequential, so PlanHorizon then runs its windows in order on the
  /// calling thread (the solver may still be multi-threaded).
  /// `incremental.stall_generations` applies the convergence early-exit
  /// to every window's solve — except a warm chain's unseeded warm-up
  /// windows, which run the full generation budget since their fronts
  /// anchor the rest of the chain. The cache knob is unused here
  /// (consecutive windows have different demand floors).
  WindowedShareAnalyzer(ResourceShareRequest base_request, DemandModel model,
                        opt::Nsga2Config solver = {}, size_t num_threads = 1,
                        IncrementalPlanning incremental = {})
      : base_(std::move(base_request)),
        model_(model),
        solver_(solver),
        num_threads_(num_threads),
        incremental_(incremental) {}

  /// Plans consecutive windows of `window_sec` covering the forecast
  /// series (rate sampled as the mean over each window; the plan must
  /// also cover the window's *peak* sample). Errors: empty forecast or
  /// non-positive window.
  Result<std::vector<WindowPlan>> PlanHorizon(const TimeSeries& rate_forecast,
                                              double window_sec) const;

  /// Plans one window for the given demand rate. Thread-safe: const
  /// state only, with solver state local to the call.
  Result<WindowPlan> PlanWindow(SimTime start, SimTime end,
                                double records_per_sec) const;

 private:
  /// Shared window solve: applies the stall knobs when `use_stall`,
  /// optionally seeds the solver with `seed` plus per-objective
  /// budget-extreme anchors, merges the previous window's re-validated
  /// front (`carry_front`) into this window's polished front, and
  /// (when `final_population` is non-null) hands back the final
  /// population for warm-chaining.
  Result<WindowPlan> PlanWindowImpl(
      SimTime start, SimTime end, double records_per_sec,
      const std::vector<std::vector<double>>* seed,
      const std::vector<ProvisioningPlan>* carry_front,
      std::vector<std::vector<double>>* final_population,
      bool use_stall) const;

  ResourceShareRequest base_;
  DemandModel model_;
  opt::Nsga2Config solver_;
  size_t num_threads_;
  IncrementalPlanning incremental_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_WINDOWED_SHARE_H_
