#include "core/controller_factory.h"

#include "control/adaptive_gain.h"
#include "control/feedforward.h"
#include "control/fixed_gain.h"
#include "control/quasi_adaptive.h"
#include "control/rule_based.h"
#include "control/target_tracking.h"

namespace flower::core {

std::string ControllerKindToString(ControllerKind k) {
  switch (k) {
    case ControllerKind::kAdaptiveGain: return "adaptive-gain";
    case ControllerKind::kAdaptiveGainNoMemory:
      return "adaptive-gain-no-memory";
    case ControllerKind::kFixedGain: return "fixed-gain";
    case ControllerKind::kQuasiAdaptive: return "quasi-adaptive";
    case ControllerKind::kRuleBased: return "rule-based";
    case ControllerKind::kTargetTracking: return "target-tracking";
    case ControllerKind::kFeedforward: return "feedforward";
  }
  return "unknown";
}

Result<ControllerKind> ControllerKindFromString(const std::string& s) {
  if (s == "adaptive-gain") return ControllerKind::kAdaptiveGain;
  if (s == "adaptive-gain-no-memory")
    return ControllerKind::kAdaptiveGainNoMemory;
  if (s == "fixed-gain") return ControllerKind::kFixedGain;
  if (s == "quasi-adaptive") return ControllerKind::kQuasiAdaptive;
  if (s == "rule-based") return ControllerKind::kRuleBased;
  if (s == "target-tracking") return ControllerKind::kTargetTracking;
  if (s == "feedforward") return ControllerKind::kFeedforward;
  return Status::InvalidArgument("unknown controller kind: " + s);
}

Result<std::unique_ptr<control::Controller>> MakeController(
    ControllerKind kind, double reference, control::ActuatorLimits limits,
    double gain_scale) {
  if (reference <= 0.0 || reference >= 100.0) {
    return Status::InvalidArgument(
        "MakeController: reference must be in (0, 100) percent");
  }
  if (gain_scale <= 0.0) {
    return Status::InvalidArgument("MakeController: gain_scale must be > 0");
  }
  if (limits.min > limits.max) {
    return Status::InvalidArgument("MakeController: inverted limits");
  }
  switch (kind) {
    case ControllerKind::kAdaptiveGain:
    case ControllerKind::kAdaptiveGainNoMemory: {
      control::AdaptiveGainConfig cfg;
      cfg.reference = reference;
      // For the utilization plant y ~ 100*D/(u*C) the loop is stable
      // for l < u/(2*reference'); gain_max 0.3 keeps the loop stable
      // from ~10 resource units up while still allowing ~10x faster
      // reactions than the initial gain.
      cfg.initial_gain = 0.04 * gain_scale;
      cfg.gain_min = 0.02 * gain_scale;
      cfg.gain_max = 0.15 * gain_scale;
      cfg.gamma = 0.004 * gain_scale;
      cfg.reset_gain_each_step =
          kind == ControllerKind::kAdaptiveGainNoMemory;
      cfg.limits = limits;
      return std::unique_ptr<control::Controller>(
          new control::AdaptiveGainController(cfg));
    }
    case ControllerKind::kFixedGain: {
      control::FixedGainConfig cfg;
      cfg.reference = reference;
      cfg.gain = 0.05 * gain_scale;
      cfg.range_width = 40.0;
      cfg.limits = limits;
      return std::unique_ptr<control::Controller>(
          new control::FixedGainController(cfg));
    }
    case ControllerKind::kQuasiAdaptive: {
      control::QuasiAdaptiveConfig cfg;
      cfg.reference = reference;
      cfg.lambda = 0.3;
      cfg.initial_sensitivity = -5.0 / gain_scale;
      // The sensitivity floor bounds the effective gain at
      // lambda/sensitivity_min; 1.0 keeps the loop sane when CPU
      // saturation fools the RLS estimator (Δy = 0 despite Δu).
      cfg.sensitivity_min = 1.0 / gain_scale;
      cfg.sensitivity_max = 100.0 / gain_scale;
      cfg.limits = limits;
      return std::unique_ptr<control::Controller>(
          new control::QuasiAdaptiveController(cfg));
    }
    case ControllerKind::kRuleBased: {
      control::RuleBasedConfig cfg;
      cfg.high_threshold = reference + 15.0;
      cfg.low_threshold = reference - 25.0;
      cfg.up_step = 2.0 * gain_scale;
      cfg.down_step = 1.0 * gain_scale;
      cfg.limits = limits;
      return std::unique_ptr<control::Controller>(
          new control::RuleBasedController(cfg));
    }
    case ControllerKind::kTargetTracking: {
      control::TargetTrackingConfig cfg;
      cfg.reference = reference;
      cfg.limits = limits;
      return std::unique_ptr<control::Controller>(
          new control::TargetTrackingController(cfg));
    }
    case ControllerKind::kFeedforward:
      // Without a driver the controller runs feedback-only; prefer
      // MakeFeedforwardController.
      return MakeFeedforwardController(reference, limits, nullptr,
                                       gain_scale);
  }
  return Status::InvalidArgument("MakeController: unknown kind");
}

Result<std::unique_ptr<control::Controller>> MakeFeedforwardController(
    double reference, control::ActuatorLimits limits,
    std::function<Result<double>(SimTime)> driver, double gain_scale) {
  if (reference <= 0.0 || reference >= 100.0) {
    return Status::InvalidArgument(
        "MakeFeedforwardController: reference must be in (0, 100) percent");
  }
  if (gain_scale <= 0.0) {
    return Status::InvalidArgument(
        "MakeFeedforwardController: gain_scale must be > 0");
  }
  if (limits.min > limits.max) {
    return Status::InvalidArgument(
        "MakeFeedforwardController: inverted limits");
  }
  control::FeedforwardConfig cfg;
  cfg.reference = reference;
  cfg.trim_gain = 0.04 * gain_scale;
  cfg.limits = limits;
  return std::unique_ptr<control::Controller>(
      new control::FeedforwardController(cfg, std::move(driver)));
}

}  // namespace flower::core
