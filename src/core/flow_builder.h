#ifndef FLOWER_CORE_FLOW_BUILDER_H_
#define FLOWER_CORE_FLOW_BUILDER_H_

#include <memory>
#include <optional>
#include <string>

#include "core/controller_factory.h"
#include "core/elasticity_manager.h"
#include "flow/flow.h"
#include "sim/fault_injector.h"
#include "workload/arrival.h"
#include "workload/clickstream.h"

namespace flower::core {

/// Per-layer elasticity settings chosen in the configuration wizard
/// (demo step 2): which controller family, the desired utilization
/// reference, resource bounds, and the monitoring cadence.
struct LayerElasticityConfig {
  bool enabled = true;
  ControllerKind controller = ControllerKind::kAdaptiveGain;
  double reference_utilization_pct = 60.0;
  double min_resource = 1.0;
  double max_resource = 100.0;
  /// The control period must cover the slowest actuation (VM boot is
  /// ~90 s) or the controller reacts to measurements taken while its
  /// previous action was still in flight and limit-cycles.
  double monitoring_period_sec = 120.0;
  double monitoring_window_sec = 120.0;
  /// Retry / circuit-breaker / sensor-hardening knobs for this layer's
  /// loop. Everything off by default (fair-weather behavior).
  ResiliencePolicy resilience;
};

/// A fully assembled managed flow: the data analytics flow plus
/// Flower's elasticity manager attached to its three layers.
struct ManagedFlow {
  std::unique_ptr<flow::DataAnalyticsFlow> flow;
  std::unique_ptr<ElasticityManager> manager;
};

/// Programmatic equivalent of the demo's drag-and-drop Flow Builder
/// (Fig. 5) plus the Flow Configuration Wizard: assembles the
/// click-stream flow, validates the configuration, attaches one
/// controller per enabled layer with the right sensor metric and
/// actuator, and returns the running ManagedFlow.
///
///   ManagedFlow mf = FlowBuilder()
///       .WithIngestion({...})
///       .WithAnalytics({...})
///       .WithStorage({...})
///       .WithWorkload(arrival)
///       .Build(&sim, &metrics).MoveValueOrDie();
class FlowBuilder {
 public:
  FlowBuilder();

  FlowBuilder& WithFlowConfig(flow::FlowConfig config);
  FlowBuilder& WithIngestion(LayerElasticityConfig config);
  FlowBuilder& WithAnalytics(LayerElasticityConfig config);
  FlowBuilder& WithStorage(LayerElasticityConfig config);
  /// Uses this controller family for all enabled layers.
  FlowBuilder& WithControllerKind(ControllerKind kind);
  FlowBuilder& WithWorkload(std::shared_ptr<workload::ArrivalProcess> arrival,
                            workload::ClickStreamConfig config = {});
  FlowBuilder& WithSeed(uint64_t seed);
  /// Uses this resilience policy for all enabled layers.
  FlowBuilder& WithResilience(ResiliencePolicy policy);
  /// Routes every layer's actuator and sensor through `injector`
  /// (which must outlive the built ManagedFlow). Loop names —
  /// "ingestion", "analytics", "storage" — are the fault targets.
  FlowBuilder& WithFaultInjector(sim::FaultInjector* injector);
  /// Routes the manager's telemetry (metrics, decision log, trace) to
  /// an external hub, shared with e.g. the fault injector and the
  /// simulator. Must outlive the built ManagedFlow.
  FlowBuilder& WithTelemetry(obs::Telemetry* telemetry);
  /// Tenant id for fleet runs: stamps every instrument the manager
  /// registers with a {"tenant", id} label (see
  /// ElasticityManager::SetTenantLabel) and renders the flow's trace in
  /// its own scope. Applied before any loop attaches.
  FlowBuilder& WithTenantLabel(std::string tenant);

  /// Validates and assembles everything. Errors propagate from any
  /// component (invalid bounds, references, etc.).
  Result<ManagedFlow> Build(sim::Simulation* sim,
                            cloudwatch::MetricStore* metrics) const;

 private:
  flow::FlowConfig flow_config_;
  LayerElasticityConfig ingestion_;
  LayerElasticityConfig analytics_;
  LayerElasticityConfig storage_;
  std::shared_ptr<workload::ArrivalProcess> arrival_;
  workload::ClickStreamConfig workload_config_;
  uint64_t seed_ = 42;
  sim::FaultInjector* fault_injector_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  std::string tenant_label_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_FLOW_BUILDER_H_
