#include "core/flow_builder.h"

#include <cmath>

namespace flower::core {

FlowBuilder::FlowBuilder() {
  // Wizard defaults: modest bounds per layer, 60 s monitoring.
  ingestion_.max_resource = 64.0;
  analytics_.max_resource = 40.0;
  storage_.max_resource = 2000.0;
  storage_.min_resource = 5.0;
}

FlowBuilder& FlowBuilder::WithFlowConfig(flow::FlowConfig config) {
  flow_config_ = std::move(config);
  return *this;
}
FlowBuilder& FlowBuilder::WithIngestion(LayerElasticityConfig config) {
  ingestion_ = config;
  return *this;
}
FlowBuilder& FlowBuilder::WithAnalytics(LayerElasticityConfig config) {
  analytics_ = config;
  return *this;
}
FlowBuilder& FlowBuilder::WithStorage(LayerElasticityConfig config) {
  storage_ = config;
  return *this;
}
FlowBuilder& FlowBuilder::WithControllerKind(ControllerKind kind) {
  ingestion_.controller = kind;
  analytics_.controller = kind;
  storage_.controller = kind;
  return *this;
}
FlowBuilder& FlowBuilder::WithWorkload(
    std::shared_ptr<workload::ArrivalProcess> arrival,
    workload::ClickStreamConfig config) {
  arrival_ = std::move(arrival);
  workload_config_ = config;
  return *this;
}
FlowBuilder& FlowBuilder::WithSeed(uint64_t seed) {
  seed_ = seed;
  return *this;
}
FlowBuilder& FlowBuilder::WithResilience(ResiliencePolicy policy) {
  ingestion_.resilience = policy;
  analytics_.resilience = policy;
  storage_.resilience = policy;
  return *this;
}
FlowBuilder& FlowBuilder::WithFaultInjector(sim::FaultInjector* injector) {
  fault_injector_ = injector;
  return *this;
}
FlowBuilder& FlowBuilder::WithTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  return *this;
}
FlowBuilder& FlowBuilder::WithTenantLabel(std::string tenant) {
  tenant_label_ = std::move(tenant);
  return *this;
}

Result<ManagedFlow> FlowBuilder::Build(
    sim::Simulation* sim, cloudwatch::MetricStore* metrics) const {
  if (metrics == nullptr) {
    return Status::InvalidArgument(
        "FlowBuilder: a metric store is required (controllers sense "
        "through it)");
  }
  ManagedFlow mf;
  FLOWER_ASSIGN_OR_RETURN(
      mf.flow, flow::DataAnalyticsFlow::Create(sim, metrics, flow_config_));
  if (arrival_ != nullptr) {
    FLOWER_RETURN_NOT_OK(
        mf.flow->AttachWorkload(arrival_, workload_config_, seed_));
  }
  mf.manager = std::make_unique<ElasticityManager>(sim, metrics);
  if (telemetry_ != nullptr) {
    FLOWER_RETURN_NOT_OK(mf.manager->SetTelemetry(telemetry_));
    if (fault_injector_ != nullptr) {
      fault_injector_->SetTelemetry(telemetry_);
    }
    sim->SetTelemetry(telemetry_);
  }
  if (!tenant_label_.empty()) {
    FLOWER_RETURN_NOT_OK(mf.manager->SetTenantLabel(tenant_label_));
    FLOWER_RETURN_NOT_OK(mf.manager->SetTraceScope(tenant_label_));
  }

  flow::DataAnalyticsFlow* flow = mf.flow.get();

  // Feedforward controllers sense an upstream "driver" signal. The
  // natural driver for every layer is the ingestion arrival rate
  // (records/s, including throttled attempts), which §3.1 showed
  // predicts downstream load.
  cloudwatch::MetricStore* store = metrics;
  std::string stream_name = flow->stream_name();
  auto arrival_rate_driver = [store, stream_name](
                                 SimTime now) -> Result<double> {
    cloudwatch::MetricId in{"Flower/Kinesis", "IncomingRecords",
                            stream_name};
    cloudwatch::MetricId throttled{"Flower/Kinesis", "ThrottledRecords",
                                   stream_name};
    // GetStatistic windows are (t0, t1], so a datapoint published at
    // exactly `now` is seen by this read and by no other.
    const double window = 120.0;
    FLOWER_ASSIGN_OR_RETURN(
        double accepted,
        store->GetStatistic(in, now - window, now,
                            cloudwatch::Statistic::kSum));
    double rejected = store->GetStatistic(throttled, now - window, now,
                                          cloudwatch::Statistic::kSum)
                          .ValueOr(0.0);
    return (accepted + rejected) / window;
  };

  auto attach = [&](Layer layer, const LayerElasticityConfig& lc,
                    cloudwatch::MetricId metric, double initial_u,
                    double gain_scale,
                    std::function<Status(double)> actuator) -> Status {
    if (!lc.enabled) return Status::OK();
    control::ActuatorLimits limits;
    limits.min = lc.min_resource;
    limits.max = lc.max_resource;
    limits.integer = true;
    std::unique_ptr<control::Controller> controller;
    ControllerKind kind = lc.controller;
    if (kind == ControllerKind::kFeedforward &&
        layer == Layer::kStorage) {
      // The arrival rate does not predict storage writes for this flow
      // (the paper's §3.1 negative finding: no Kinesis↔DynamoDB write
      // dependency — the sliding-window aggregation decouples them), so
      // feedforward from that driver would mis-provision the table.
      // Storage falls back to Flower's feedback controller.
      kind = ControllerKind::kAdaptiveGain;
    }
    if (kind == ControllerKind::kFeedforward) {
      FLOWER_ASSIGN_OR_RETURN(
          controller,
          MakeFeedforwardController(lc.reference_utilization_pct, limits,
                                    arrival_rate_driver, gain_scale));
    } else {
      FLOWER_ASSIGN_OR_RETURN(
          controller,
          MakeController(kind, lc.reference_utilization_pct, limits,
                         gain_scale));
    }
    LayerControlConfig cfg;
    cfg.layer = layer;
    cfg.sensor_metric = std::move(metric);
    cfg.monitoring_period_sec = lc.monitoring_period_sec;
    cfg.monitoring_window_sec = lc.monitoring_window_sec;
    cfg.start_delay_sec = lc.monitoring_period_sec;
    cfg.controller = std::move(controller);
    cfg.actuator = std::move(actuator);
    cfg.initial_u = initial_u;
    cfg.resilience = lc.resilience;
    if (fault_injector_ != nullptr) {
      std::string target = LayerToString(layer);
      cfg.actuator =
          fault_injector_->WrapActuator(target, std::move(cfg.actuator));
      cfg.sensor = fault_injector_->WrapSensor(
          target, mf.manager->MakeDefaultSensor(cfg));
    }
    return mf.manager->Attach(std::move(cfg));
  };

  FLOWER_RETURN_NOT_OK(attach(
      Layer::kIngestion, ingestion_,
      {"Flower/Kinesis", "WriteUtilization", flow->stream_name()},
      static_cast<double>(flow->stream().shard_count()), 1.0,
      [flow](double u) {
        return flow->stream().UpdateShardCount(
            static_cast<int>(std::lround(u)));
      }));

  FLOWER_RETURN_NOT_OK(attach(
      Layer::kAnalytics, analytics_,
      {"Flower/Storm", "CpuUtilization", flow->cluster_name()},
      static_cast<double>(flow->cluster().worker_count()), 1.0,
      [flow](double u) {
        return flow->cluster().SetWorkerCount(
            static_cast<int>(std::lround(u)));
      }));

  // Storage gains scale with the WCU range (capacity units count in
  // hundreds, not single digits).
  double storage_scale = std::max(1.0, storage_.max_resource / 100.0);
  FLOWER_RETURN_NOT_OK(attach(
      Layer::kStorage, storage_,
      {"Flower/DynamoDB", "WriteUtilization", flow->table_name()},
      flow->table().provisioned_wcu(), storage_scale, [flow](double u) {
        return flow->table().SetProvisionedThroughput(
            u, flow->table().provisioned_rcu());
      }));

  return mf;
}

}  // namespace flower::core
