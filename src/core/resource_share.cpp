#include "core/resource_share.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/grid_search.h"
#include "opt/pareto.h"

namespace flower::core {

LinearConstraint LinearConstraint::AtMost(Layer a, double ca, Layer b,
                                          double cb, double rhs,
                                          std::string label) {
  LinearConstraint c;
  c.coeff[static_cast<int>(a)] = ca;
  c.coeff[static_cast<int>(b)] = cb;
  c.rhs = rhs;
  c.label = std::move(label);
  return c;
}

LinearConstraint LinearConstraint::AtLeast(Layer a, double ca, Layer b,
                                           double cb, std::string label) {
  // ca·r_a >= cb·r_b  <=>  cb·r_b − ca·r_a <= 0.
  LinearConstraint c;
  c.coeff[static_cast<int>(b)] = cb;
  c.coeff[static_cast<int>(a)] = -ca;
  c.rhs = 0.0;
  c.label = std::move(label);
  return c;
}

void ResourceShareRequest::SetPricesFrom(const pricing::PriceBook& book) {
  unit_price[static_cast<int>(Layer::kIngestion)] =
      book.HourlyPrice(pricing::ResourceKind::kKinesisShard);
  unit_price[static_cast<int>(Layer::kAnalytics)] =
      book.HourlyPrice(pricing::ResourceKind::kEc2Instance);
  unit_price[static_cast<int>(Layer::kStorage)] =
      book.HourlyPrice(pricing::ResourceKind::kDynamoWcu);
}

ShareProblem::ShareProblem(ResourceShareRequest request)
    : request_(std::move(request)) {
  static const char* kNames[kNumLayers] = {"shards", "vms", "wcu"};
  for (int i = 0; i < kNumLayers; ++i) {
    opt::VariableSpec v;
    v.name = kNames[i];
    v.lower = request_.bounds[i].min;
    v.upper = request_.bounds[i].max;
    v.integer = true;
    variables_.push_back(std::move(v));
  }
}

size_t ShareProblem::num_constraints() const {
  if (request_.handling == ConstraintHandling::kPenalty) return 0;
  return 1 + request_.constraints.size();  // Budget + dependencies.
}

double ShareProblem::HourlyCost(const std::vector<double>& x) const {
  double cost = 0.0;
  for (int i = 0; i < kNumLayers; ++i) {
    cost += x[static_cast<size_t>(i)] * request_.unit_price[i];
  }
  return cost;
}

void ShareProblem::Evaluate(const std::vector<double>& x,
                            std::vector<double>* objectives,
                            std::vector<double>* violations) const {
  objectives->assign(x.begin(), x.begin() + kNumLayers);

  // Budget violation (Eq. 4), normalized by the budget so it is
  // commensurate with the dependency violations.
  double cost = HourlyCost(x);
  double budget_violation =
      request_.hourly_budget_usd > 0.0
          ? std::max(0.0, (cost - request_.hourly_budget_usd) /
                              request_.hourly_budget_usd)
          : std::max(0.0, cost);

  std::vector<double> dep_violations;
  dep_violations.reserve(request_.constraints.size());
  for (const LinearConstraint& c : request_.constraints) {
    double lhs = 0.0;
    for (int i = 0; i < kNumLayers; ++i) {
      lhs += c.coeff[i] * x[static_cast<size_t>(i)];
    }
    dep_violations.push_back(std::max(0.0, lhs - c.rhs));
  }

  if (request_.handling == ConstraintHandling::kPenalty) {
    violations->clear();
    double total = budget_violation;
    for (double v : dep_violations) total += v;
    for (double& obj : *objectives) {
      obj -= request_.penalty_weight * total;
    }
    return;
  }
  violations->clear();
  violations->push_back(budget_violation);
  for (double v : dep_violations) violations->push_back(v);
}

namespace {

ResourceShareResult ToResult(const std::vector<opt::Solution>& front,
                             const ShareProblem& problem,
                             size_t evaluations) {
  ResourceShareResult out;
  out.evaluations = evaluations;
  for (const opt::Solution& s : front) {
    ProvisioningPlan plan;
    for (int i = 0; i < kNumLayers; ++i) {
      plan.shares[i] = s.x[static_cast<size_t>(i)];
    }
    plan.hourly_cost_usd = problem.HourlyCost(s.x);
    out.pareto_plans.push_back(plan);
  }
  return out;
}

}  // namespace

Result<ResourceShareResult> ResourceShareAnalyzer::Analyze(
    const ResourceShareRequest& request) const {
  ShareProblem problem(request);
  opt::Nsga2 solver(solver_config_);
  FLOWER_ASSIGN_OR_RETURN(opt::Nsga2Result res, solver.Solve(problem));
  if (request.handling == ConstraintHandling::kPenalty) {
    // Under penalty handling every solution is formally "feasible";
    // filter to truly feasible plans by re-checking the constraints.
    ResourceShareRequest strict = request;
    strict.handling = ConstraintHandling::kConstrainedDomination;
    ShareProblem checker(strict);
    std::vector<opt::Solution> feasible;
    for (const opt::Solution& s : res.final_population) {
      std::vector<double> obj, viol;
      checker.Evaluate(s.x, &obj, &viol);
      double tv = 0.0;
      for (double v : viol) tv += v;
      if (tv <= 0.0) {
        opt::Solution f;
        f.x = s.x;
        f.objectives = obj;
        feasible.push_back(std::move(f));
      }
    }
    return ToResult(opt::ParetoFront(feasible), checker, res.evaluations);
  }
  return ToResult(res.pareto_front, problem, res.evaluations);
}

Result<ResourceShareResult> ResourceShareAnalyzer::AnalyzeExhaustive(
    const ResourceShareRequest& request) const {
  ResourceShareRequest strict = request;
  strict.handling = ConstraintHandling::kConstrainedDomination;
  ShareProblem problem(strict);
  FLOWER_ASSIGN_OR_RETURN(std::vector<opt::Solution> front,
                          opt::ExhaustiveParetoFront(problem));
  return ToResult(front, problem, 0);
}

Result<ProvisioningPlan> ResourceShareAnalyzer::PickBalancedPlan(
    const ResourceShareResult& result, const ResourceShareRequest& request) {
  if (result.pareto_plans.empty()) {
    return Status::NotFound("PickBalancedPlan: empty Pareto front");
  }
  double best_score = -std::numeric_limits<double>::infinity();
  const ProvisioningPlan* best = nullptr;
  for (const ProvisioningPlan& p : result.pareto_plans) {
    double min_norm = std::numeric_limits<double>::infinity();
    for (int i = 0; i < kNumLayers; ++i) {
      double span = request.bounds[i].max - request.bounds[i].min;
      double norm = span > 0.0
                        ? (p.shares[i] - request.bounds[i].min) / span
                        : 1.0;
      min_norm = std::min(min_norm, norm);
    }
    if (min_norm > best_score) {
      best_score = min_norm;
      best = &p;
    }
  }
  return *best;
}

Result<ProvisioningPlan> ResourceShareAnalyzer::MaxShares(
    const ResourceShareResult& result) {
  if (result.pareto_plans.empty()) {
    return Status::NotFound("MaxShares: empty Pareto front");
  }
  ProvisioningPlan max_plan;
  for (const ProvisioningPlan& p : result.pareto_plans) {
    for (int i = 0; i < kNumLayers; ++i) {
      max_plan.shares[i] = std::max(max_plan.shares[i], p.shares[i]);
    }
    max_plan.hourly_cost_usd =
        std::max(max_plan.hourly_cost_usd, p.hourly_cost_usd);
  }
  return max_plan;
}

}  // namespace flower::core
