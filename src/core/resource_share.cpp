#include "core/resource_share.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "opt/grid_search.h"
#include "opt/pareto.h"

namespace flower::core {

LinearConstraint LinearConstraint::AtMost(Layer a, double ca, Layer b,
                                          double cb, double rhs,
                                          std::string label) {
  LinearConstraint c;
  c.coeff[static_cast<int>(a)] = ca;
  c.coeff[static_cast<int>(b)] = cb;
  c.rhs = rhs;
  c.label = std::move(label);
  return c;
}

LinearConstraint LinearConstraint::AtLeast(Layer a, double ca, Layer b,
                                           double cb, std::string label) {
  // ca·r_a >= cb·r_b  <=>  cb·r_b − ca·r_a <= 0.
  LinearConstraint c;
  c.coeff[static_cast<int>(b)] = cb;
  c.coeff[static_cast<int>(a)] = -ca;
  c.rhs = 0.0;
  c.label = std::move(label);
  return c;
}

void ResourceShareRequest::SetPricesFrom(const pricing::PriceBook& book) {
  unit_price[static_cast<int>(Layer::kIngestion)] =
      book.HourlyPrice(pricing::ResourceKind::kKinesisShard);
  unit_price[static_cast<int>(Layer::kAnalytics)] =
      book.HourlyPrice(pricing::ResourceKind::kEc2Instance);
  unit_price[static_cast<int>(Layer::kStorage)] =
      book.HourlyPrice(pricing::ResourceKind::kDynamoWcu);
}

ShareProblem::ShareProblem(ResourceShareRequest request)
    : request_(std::move(request)) {
  static const char* kNames[kNumLayers] = {"shards", "vms", "wcu"};
  for (int i = 0; i < kNumLayers; ++i) {
    opt::VariableSpec v;
    v.name = kNames[i];
    v.lower = request_.bounds[i].min;
    v.upper = request_.bounds[i].max;
    v.integer = true;
    variables_.push_back(std::move(v));
  }
}

size_t ShareProblem::num_constraints() const {
  if (request_.handling == ConstraintHandling::kPenalty) return 0;
  return 1 + request_.constraints.size();  // Budget + dependencies.
}

double ShareProblem::HourlyCost(const std::vector<double>& x) const {
  double cost = 0.0;
  for (int i = 0; i < kNumLayers; ++i) {
    cost += x[static_cast<size_t>(i)] * request_.unit_price[i];
  }
  return cost;
}

void ShareProblem::Evaluate(const std::vector<double>& x,
                            std::vector<double>* objectives,
                            std::vector<double>* violations) const {
  objectives->assign(x.begin(), x.begin() + kNumLayers);

  // Budget violation (Eq. 4), normalized by the budget so it is
  // commensurate with the dependency violations.
  double cost = HourlyCost(x);
  double budget_violation =
      request_.hourly_budget_usd > 0.0
          ? std::max(0.0, (cost - request_.hourly_budget_usd) /
                              request_.hourly_budget_usd)
          : std::max(0.0, cost);

  // Dependency violations go straight into the output (or the penalty
  // sum) — no intermediate vector, so the solver's steady-state loop
  // stays allocation-free once the caller's buffers are warm.
  violations->clear();
  if (request_.handling == ConstraintHandling::kPenalty) {
    double total = budget_violation;
    for (const LinearConstraint& c : request_.constraints) {
      double lhs = 0.0;
      for (int i = 0; i < kNumLayers; ++i) {
        lhs += c.coeff[i] * x[static_cast<size_t>(i)];
      }
      total += std::max(0.0, lhs - c.rhs);
    }
    for (double& obj : *objectives) {
      obj -= request_.penalty_weight * total;
    }
    return;
  }
  violations->push_back(budget_violation);
  for (const LinearConstraint& c : request_.constraints) {
    double lhs = 0.0;
    for (int i = 0; i < kNumLayers; ++i) {
      lhs += c.coeff[i] * x[static_cast<size_t>(i)];
    }
    violations->push_back(std::max(0.0, lhs - c.rhs));
  }
}

namespace {

ResourceShareResult ToResult(const std::vector<opt::Solution>& front,
                             const ShareProblem& problem,
                             size_t evaluations) {
  ResourceShareResult out;
  out.evaluations = evaluations;
  for (const opt::Solution& s : front) {
    ProvisioningPlan plan;
    for (int i = 0; i < kNumLayers; ++i) {
      plan.shares[i] = s.x[static_cast<size_t>(i)];
    }
    plan.hourly_cost_usd = problem.HourlyCost(s.x);
    out.pareto_plans.push_back(plan);
  }
  return out;
}

}  // namespace

Result<ResourceShareResult> ResourceShareAnalyzer::Run(
    const ResourceShareRequest& request, const opt::Nsga2Config& config) {
  ShareProblem problem(request);
  opt::Nsga2 solver(config);
  FLOWER_ASSIGN_OR_RETURN(opt::Nsga2Result res, solver.Solve(problem));
  ResourceShareResult out;
  if (request.handling == ConstraintHandling::kPenalty) {
    // Under penalty handling every solution is formally "feasible";
    // filter to truly feasible plans by re-checking the constraints.
    ResourceShareRequest strict = request;
    strict.handling = ConstraintHandling::kConstrainedDomination;
    ShareProblem checker(strict);
    std::vector<opt::Solution> feasible;
    for (const opt::Solution& s : res.final_population) {
      std::vector<double> obj, viol;
      checker.Evaluate(s.x, &obj, &viol);
      double tv = 0.0;
      for (double v : viol) tv += v;
      if (tv <= 0.0) {
        opt::Solution f;
        f.x = s.x;
        f.objectives = obj;
        feasible.push_back(std::move(f));
      }
    }
    out = ToResult(opt::ParetoFront(feasible), checker, res.evaluations);
  } else {
    out = ToResult(res.pareto_front, problem, res.evaluations);
  }
  out.early_exit = res.early_exit;
  out.final_population.reserve(res.final_population.size());
  for (opt::Solution& s : res.final_population) {
    out.final_population.push_back(std::move(s.x));
  }
  return out;
}

Result<ResourceShareResult> ResourceShareAnalyzer::Analyze(
    const ResourceShareRequest& request) const {
  return Run(request, solver_config_);
}

Result<ResourceShareResult> ResourceShareAnalyzer::AnalyzeIncremental(
    const ResourceShareRequest& request, const std::string& scope) {
  opt::Nsga2Config config = solver_config_;
  config.stall_generations = incremental_.stall_generations;
  config.stall_tolerance = incremental_.stall_tolerance;
  ScopeState& state = scopes_[scope];

  auto bump = [this](uint64_t PlannerCounters::*field, const char* name,
                     uint64_t delta) {
    if (delta == 0) return;
    counters_.*field += delta;
    if (registry_ != nullptr) {
      registry_->GetCounter(name, planner_labels_)->Increment(delta);
    }
  };

  std::string fingerprint;
  if (incremental_.cache) {
    fingerprint = Fingerprint(request, config);
    if (fingerprint == state.cached_fingerprint &&
        !state.cached_fingerprint.empty()) {
      bump(&PlannerCounters::cache_hits, "planner.cache_hits", 1);
      ResourceShareResult out = state.cached_result;
      out.cache_hit = true;
      out.evaluations = 0;  // Nothing was solved for this call.
      return out;
    }
    bump(&PlannerCounters::cache_misses, "planner.cache_misses", 1);
    // Invalidate now; the cache is (re)filled only by a successful
    // solve below, so a failed solve can never be served as a hit.
    state.cached_fingerprint.clear();
  }

  if (incremental_.warm_start && !state.last_population.empty()) {
    // Partial injection (see IncrementalPlanning::seed_fraction): the
    // prefix of the rank-ordered final population seeds the next solve;
    // the solver tops the rest up with fresh random individuals.
    double frac = std::clamp(incremental_.seed_fraction, 0.0, 1.0);
    size_t max_seeds = static_cast<size_t>(
        std::ceil(frac * static_cast<double>(config.population_size)));
    max_seeds = std::min(max_seeds, state.last_population.size());
    config.seed_population.assign(
        state.last_population.begin(),
        state.last_population.begin() + static_cast<long>(max_seeds));
    bump(&PlannerCounters::warm_starts, "planner.warm_starts", 1);
  }

  FLOWER_ASSIGN_OR_RETURN(ResourceShareResult out, Run(request, config));
  bump(&PlannerCounters::evaluations, "planner.evaluations",
       out.evaluations);
  if (out.early_exit) {
    bump(&PlannerCounters::early_exits, "planner.early_exits", 1);
  }
  if (incremental_.warm_start) state.last_population = out.final_population;
  if (incremental_.cache) {
    state.cached_result = out;
    state.cached_fingerprint = std::move(fingerprint);
  }
  return out;
}

void ResourceShareAnalyzer::SetMetricsRegistry(obs::MetricsRegistry* registry,
                                               obs::LabelSet labels) {
  registry_ = registry;
  planner_labels_ = std::move(labels);
}

std::string ResourceShareAnalyzer::Fingerprint(
    const ResourceShareRequest& request, const opt::Nsga2Config& solver) {
  // Canonical text form: %.17g round-trips doubles exactly, and every
  // field lands in a fixed position, so string equality is problem
  // equality (no hash collisions to reason about).
  std::string fp;
  fp.reserve(256);
  char buf[64];
  auto add = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g,", v);
    fp += buf;
  };
  auto add_u = [&](unsigned long long v) {
    std::snprintf(buf, sizeof(buf), "%llu,", v);
    fp += buf;
  };
  fp += "budget:";
  add(request.hourly_budget_usd);
  fp += "prices:";
  for (int i = 0; i < kNumLayers; ++i) add(request.unit_price[i]);
  fp += "bounds:";
  for (int i = 0; i < kNumLayers; ++i) {
    add(request.bounds[i].min);
    add(request.bounds[i].max);
  }
  fp += "handling:";
  add_u(static_cast<unsigned long long>(request.handling));
  fp += "penalty:";
  add(request.penalty_weight);
  fp += "constraints:";
  for (const LinearConstraint& c : request.constraints) {
    fp += '[';
    for (int i = 0; i < kNumLayers; ++i) add(c.coeff[i]);
    add(c.rhs);
    fp += ']';
  }
  fp += "solver:";
  add_u(solver.population_size);
  add_u(solver.generations);
  add(solver.crossover_prob);
  add(solver.mutation_prob);
  add(solver.eta_crossover);
  add(solver.eta_mutation);
  add_u(solver.seed);
  add_u(solver.stall_generations);
  add(solver.stall_tolerance);
  return fp;
}

Result<ResourceShareResult> ResourceShareAnalyzer::AnalyzeExhaustive(
    const ResourceShareRequest& request) const {
  ResourceShareRequest strict = request;
  strict.handling = ConstraintHandling::kConstrainedDomination;
  ShareProblem problem(strict);
  FLOWER_ASSIGN_OR_RETURN(std::vector<opt::Solution> front,
                          opt::ExhaustiveParetoFront(problem));
  return ToResult(front, problem, 0);
}

Result<ProvisioningPlan> ResourceShareAnalyzer::PickBalancedPlan(
    const ResourceShareResult& result, const ResourceShareRequest& request) {
  if (result.pareto_plans.empty()) {
    return Status::NotFound("PickBalancedPlan: empty Pareto front");
  }
  double best_score = -std::numeric_limits<double>::infinity();
  const ProvisioningPlan* best = nullptr;
  for (const ProvisioningPlan& p : result.pareto_plans) {
    double min_norm = std::numeric_limits<double>::infinity();
    for (int i = 0; i < kNumLayers; ++i) {
      double span = request.bounds[i].max - request.bounds[i].min;
      double norm = span > 0.0
                        ? (p.shares[i] - request.bounds[i].min) / span
                        : 1.0;
      min_norm = std::min(min_norm, norm);
    }
    if (min_norm > best_score) {
      best_score = min_norm;
      best = &p;
    }
  }
  return *best;
}

Result<ProvisioningPlan> ResourceShareAnalyzer::MaxShares(
    const ResourceShareResult& result) {
  if (result.pareto_plans.empty()) {
    return Status::NotFound("MaxShares: empty Pareto front");
  }
  ProvisioningPlan max_plan;
  for (const ProvisioningPlan& p : result.pareto_plans) {
    for (int i = 0; i < kNumLayers; ++i) {
      max_plan.shares[i] = std::max(max_plan.shares[i], p.shares[i]);
    }
    max_plan.hourly_cost_usd =
        std::max(max_plan.hourly_cost_usd, p.hourly_cost_usd);
  }
  return max_plan;
}

}  // namespace flower::core
