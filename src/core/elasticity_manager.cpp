#include "core/elasticity_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace flower::core {

Status ElasticityManager::Attach(LayerControlConfig config) {
  if (config.name.empty()) config.name = LayerToString(config.layer);
  if (loops_.count(config.name) > 0) {
    return Status::AlreadyExists("ElasticityManager: loop '" + config.name +
                                 "' already attached");
  }
  if (config.controller == nullptr) {
    return Status::InvalidArgument("ElasticityManager: missing controller");
  }
  if (!config.actuator) {
    return Status::InvalidArgument("ElasticityManager: missing actuator");
  }
  if (config.monitoring_period_sec <= 0.0 ||
      config.monitoring_window_sec <= 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: monitoring period/window must be positive");
  }
  auto attached = std::make_unique<Attached>();
  attached->config = std::move(config);
  attached->config.controller->Reset(attached->config.initial_u);
  Attached* raw = attached.get();
  Status st = sim_->SchedulePeriodic(
      sim_->Now() + attached->config.start_delay_sec,
      attached->config.monitoring_period_sec, [this, raw] {
        Step(raw);
        return true;
      });
  FLOWER_RETURN_NOT_OK(st);
  loops_[attached->config.name] = std::move(attached);
  return Status::OK();
}

void ElasticityManager::Step(Attached* a) {
  if (a->paused) return;
  SimTime now = sim_->Now();
  const LayerControlConfig& cfg = a->config;
  auto y = metrics_->GetStatistic(cfg.sensor_metric,
                                  now - cfg.monitoring_window_sec, now + 1e-9,
                                  cfg.sensor_statistic);
  if (!y.ok()) {
    ++a->state.sensor_misses;
    return;
  }
  a->state.sensed.AppendUnchecked(now, *y);
  auto u = cfg.controller->Update(now, *y);
  if (!u.ok()) {
    ++a->state.actuation_failures;
    return;
  }
  double amount = *u;
  if (a->state.share_upper_bound > 0.0) {
    amount = std::min(amount, a->state.share_upper_bound);
  }
  Status st = cfg.actuator(amount);
  if (!st.ok()) {
    ++a->state.actuation_failures;
    FLOWER_LOG(Warning) << "actuation failed for loop '" << cfg.name
                        << "': " << st;
  }
  a->state.actuations.AppendUnchecked(now, amount);
}

Status ElasticityManager::SetShareUpperBound(const std::string& name,
                                             double bound) {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  if (bound < 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: negative share upper bound");
  }
  it->second->state.share_upper_bound = bound;
  return Status::OK();
}

Status ElasticityManager::SetPaused(const std::string& name, bool paused) {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  it->second->paused = paused;
  return Status::OK();
}

Result<const LayerControlState*> ElasticityManager::GetState(
    const std::string& name) const {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  return &it->second->state;
}

Result<const control::Controller*> ElasticityManager::GetController(
    const std::string& name) const {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  return it->second->config.controller.get();
}

std::vector<std::string> ElasticityManager::LoopNames() const {
  std::vector<std::string> names;
  names.reserve(loops_.size());
  for (const auto& [name, attached] : loops_) names.push_back(name);
  return names;
}

}  // namespace flower::core
