#include "core/elasticity_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/replay/flight_recorder.h"
#include "stats/robust.h"

namespace flower::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Status ValidateResilience(const ResiliencePolicy& p) {
  if (p.retry.max_retries < 0) {
    return Status::InvalidArgument("ElasticityManager: negative max_retries");
  }
  if (p.retry.initial_backoff_sec < 0.0 || p.retry.max_backoff_sec < 0.0) {
    return Status::InvalidArgument("ElasticityManager: negative backoff");
  }
  if (p.retry.backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "ElasticityManager: backoff multiplier must be >= 1");
  }
  if (p.retry.jitter_fraction < 0.0 || p.retry.jitter_fraction > 1.0) {
    return Status::InvalidArgument(
        "ElasticityManager: jitter fraction must be in [0, 1]");
  }
  if (p.breaker.failure_threshold < 0) {
    return Status::InvalidArgument(
        "ElasticityManager: negative breaker threshold");
  }
  if (p.breaker.failure_threshold > 0 && p.breaker.cooldown_sec <= 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: breaker cooldown must be positive");
  }
  if (p.sensor.max_hold_sec < 0.0) {
    return Status::InvalidArgument("ElasticityManager: negative max_hold");
  }
  if (p.sensor.winsorize_fraction < 0.0 ||
      p.sensor.winsorize_fraction >= 0.5) {
    return Status::InvalidArgument(
        "ElasticityManager: winsorize fraction must be in [0, 0.5)");
  }
  return Status::OK();
}

}  // namespace

ElasticityManager::ElasticityManager(sim::Simulation* sim,
                                     const cloudwatch::MetricStore* metrics)
    : sim_(sim),
      metrics_(metrics),
      owned_telemetry_(std::make_unique<obs::Telemetry>()),
      telemetry_(owned_telemetry_.get()),
      next_trace_tid_(obs::kFirstLoopTid) {}

Status ElasticityManager::SetTelemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    return Status::InvalidArgument("ElasticityManager: null telemetry");
  }
  if (!loops_.empty()) {
    return Status::FailedPrecondition(
        "ElasticityManager: SetTelemetry must precede Attach");
  }
  telemetry_ = telemetry;
  return Status::OK();
}

Status ElasticityManager::SetTraceScope(const std::string& scope) {
  if (scope.empty()) {
    return Status::InvalidArgument("ElasticityManager: empty trace scope");
  }
  if (!loops_.empty()) {
    return Status::FailedPrecondition(
        "ElasticityManager: SetTraceScope must precede Attach");
  }
  trace_pid_ = telemetry_->trace().RegisterScope(scope);
  return Status::OK();
}

Status ElasticityManager::SetTenantLabel(const std::string& tenant) {
  if (tenant.empty()) {
    return Status::InvalidArgument("ElasticityManager: empty tenant label");
  }
  if (!loops_.empty() || replan_ != nullptr) {
    return Status::FailedPrecondition(
        "ElasticityManager: SetTenantLabel must precede Attach and "
        "EnableReplanning");
  }
  tenant_ = tenant;
  return Status::OK();
}

obs::LabelSet ElasticityManager::WithTenant(obs::LabelSet labels) const {
  if (!tenant_.empty()) labels.emplace_back("tenant", tenant_);
  return labels;
}

void ElasticityManager::SetHealthAnnotator(
    std::function<obs::HealthMask(const std::string& layer, SimTime now)>
        annotator) {
  health_annotator_ = std::move(annotator);
}

void ElasticityManager::SetAnnotatedStepObserver(
    control::ControlObserver* observer) {
  annotated_observer_ = observer;
}

Status ElasticityManager::Attach(LayerControlConfig config) {
  if (config.name.empty()) config.name = LayerToString(config.layer);
  if (loops_.count(config.name) > 0) {
    return Status::AlreadyExists("ElasticityManager: loop '" + config.name +
                                 "' already attached");
  }
  if (config.controller == nullptr) {
    return Status::InvalidArgument("ElasticityManager: missing controller");
  }
  if (!config.actuator) {
    return Status::InvalidArgument("ElasticityManager: missing actuator");
  }
  if (config.monitoring_period_sec <= 0.0 ||
      config.monitoring_window_sec <= 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: monitoring period/window must be positive");
  }
  FLOWER_RETURN_NOT_OK(ValidateResilience(config.resilience));
  auto attached = std::make_unique<Attached>();
  attached->config = std::move(config);
  attached->config.controller->Reset(attached->config.initial_u);
  attached->sense = attached->config.sensor
                        ? attached->config.sensor
                        : MakeDefaultSensor(attached->config);
  attached->rng = Rng(attached->config.resilience.retry.jitter_seed);

  // Register the loop's instruments and trace track.
  const std::string layer_name = LayerToString(attached->config.layer);
  obs::LabelSet labels =
      WithTenant({{"loop", attached->config.name}, {"layer", layer_name}});
  obs::MetricsRegistry& m = telemetry_->metrics();
  LayerControlState::Counters& c = attached->state.counters;
  c.sensor_misses = m.GetCounter("loop.sensor_misses", labels);
  c.actuation_failures = m.GetCounter("loop.actuation_failures", labels);
  c.actuation_retries = m.GetCounter("loop.actuation_retries", labels);
  c.retry_successes = m.GetCounter("loop.retry_successes", labels);
  c.breaker_trips = m.GetCounter("loop.breaker_trips", labels);
  c.breaker_skipped_steps = m.GetCounter("loop.breaker_skipped_steps", labels);
  c.stale_sensor_reads = m.GetCounter("loop.stale_sensor_reads", labels);
  attached->gauge_y = m.GetGauge("loop.sensed_y", labels);
  attached->gauge_u = m.GetGauge("loop.actuation", labels);
  attached->gauge_gain = m.GetGauge("loop.gain", labels);
  attached->breach_steps = m.GetCounter("loop.breach_steps", labels);
  attached->trace_tid = next_trace_tid_++;
  telemetry_->trace().SetTrackName(trace_pid_, attached->trace_tid,
                                   "loop:" + attached->config.name);
  attached->config.controller->set_observer(&attached->observer);

  Attached* raw = attached.get();
  Status st = sim_->SchedulePeriodic(
      sim_->Now() + attached->config.start_delay_sec,
      attached->config.monitoring_period_sec, [this, raw] {
        Step(raw);
        return true;
      });
  FLOWER_RETURN_NOT_OK(st);
  loops_[attached->config.name] = std::move(attached);
  return Status::OK();
}

std::function<Result<double>(SimTime)> ElasticityManager::MakeDefaultSensor(
    const LayerControlConfig& config) const {
  const cloudwatch::MetricStore* metrics = metrics_;
  cloudwatch::MetricId metric = config.sensor_metric;
  cloudwatch::Statistic stat = config.sensor_statistic;
  double window = config.monitoring_window_sec;
  SensorPolicy policy = config.resilience.sensor;
  return [metrics, metric, stat, window,
          policy](SimTime now) -> Result<double> {
    SimTime t0 = now - window;
    switch (policy.robust) {
      case RobustSensing::kOff:
        return metrics->GetStatistic(metric, t0, now, stat);
      case RobustSensing::kMedian:
        return metrics->GetStatistic(metric, t0, now,
                                     cloudwatch::Statistic::kP50);
      case RobustSensing::kWinsorizedMean: {
        FLOWER_ASSIGN_OR_RETURN(const TimeSeries* series,
                                metrics->GetSeries(metric));
        TimeSeries w = series->WindowLeftOpen(t0, now);
        if (w.empty()) {
          return Status::NotFound("no datapoints in window for " +
                                  metric.ToString());
        }
        return stats::WinsorizedMean(w.Values(), policy.winsorize_fraction);
      }
    }
    return Status::Internal("unhandled robust sensing mode");
  };
}

void ElasticityManager::Step(Attached* a) {
  if (a->paused) return;
  SimTime now = sim_->Now();
  const LayerControlConfig& cfg = a->config;
  // A new control step supersedes any retry chain still in flight.
  ++a->epoch;
  a->observer.fresh = false;
  obs::SpanCollector& spans = telemetry_->spans();
  a->current_sense_span = 0;
  a->current_decide_span = 0;

  Result<double> raw = a->sense(now);
  double y;
  bool stale = false;
  if (raw.ok()) {
    y = *raw;
    a->has_last_good = true;
    a->last_good_value = y;
    a->last_good_time = now;
  } else {
    const SensorPolicy& sp = cfg.resilience.sensor;
    bool can_hold = sp.on_miss == SensorMissPolicy::kHoldLastValue &&
                    a->has_last_good &&
                    (sp.max_hold_sec <= 0.0 ||
                     now - a->last_good_time <= sp.max_hold_sec);
    if (!can_hold) {
      a->state.counters.sensor_misses->Increment();
      obs::TraceEvent miss_args;
      miss_args.pid = trace_pid_;
      telemetry_->trace().AddInstant("sensor-miss", "control", now,
                                     a->trace_tid, std::move(miss_args));
      // No measurement, so the decide span has no sense parent; it
      // still links to the plan whose bounds were in force.
      a->current_decide_span = spans.Emit(
          obs::SpanKind::kDecide, cfg.name, now, 0.0, trace_pid_,
          a->trace_tid, /*parent=*/0, last_plan_span_, /*value=*/0.0,
          static_cast<uint8_t>(obs::StepOutcome::kSensorMiss));
      RecordDecision(a, now, kNaN, /*stale=*/false, kNaN,
                     obs::StepOutcome::kSensorMiss);
      return;
    }
    y = a->last_good_value;
    stale = true;
    a->state.counters.stale_sensor_reads->Increment();
  }
  a->state.sensed.AppendUnchecked(now, y);

  // Close the settling interval of the last successful actuation with
  // what the sensor now observes (Eq. 7: effects are judged at the next
  // monitoring instant), then open this step's causal chain.
  if (a->pending_effect_parent != 0 && raw.ok()) {
    spans.Emit(obs::SpanKind::kEffect, cfg.name, a->pending_effect_start,
               now - a->pending_effect_start, trace_pid_, a->trace_tid,
               a->pending_effect_parent, /*follows=*/0, y);
    a->pending_effect_parent = 0;
  }
  a->current_sense_span =
      spans.Emit(obs::SpanKind::kSense, cfg.name, now, 0.0, trace_pid_,
                 a->trace_tid, /*parent=*/0, /*follows=*/0, y,
                 static_cast<uint8_t>(stale ? 1 : 0));
  a->current_decide_span =
      spans.Begin(obs::SpanKind::kDecide, cfg.name, now, trace_pid_,
                  a->trace_tid, a->current_sense_span, last_plan_span_);
  cfg.controller->set_step_span(a->current_decide_span);

  auto u = cfg.controller->Update(now, y);
  if (!u.ok()) {
    a->state.counters.actuation_failures->Increment();
    RecordDecision(a, now, y, stale, kNaN,
                   obs::StepOutcome::kControllerError);
    return;
  }
  double amount = *u;
  if (a->state.share_upper_bound > 0.0) {
    amount = std::min(amount, a->state.share_upper_bound);
  }
  if (a->state.breaker_open && now < a->breaker_reopen_time) {
    // Open breaker: record what the loop wanted, touch nothing.
    a->state.counters.breaker_skipped_steps->Increment();
    a->state.actuations.AppendUnchecked(now, amount);
    RecordDecision(a, now, y, stale, amount, obs::StepOutcome::kBreakerOpen);
    return;
  }
  bool applied = Actuate(a, amount, /*attempt=*/0);
  a->state.actuations.AppendUnchecked(now, amount);
  RecordDecision(a, now, y, stale, amount,
                 applied ? obs::StepOutcome::kActuated
                         : obs::StepOutcome::kActuationFailed);
}

void ElasticityManager::RecordDecision(Attached* a, SimTime now,
                                       double sensed_y, bool stale,
                                       double clamped_u,
                                       obs::StepOutcome outcome) {
  const LayerControlConfig& cfg = a->config;
  obs::ControlDecisionRecord rec;
  rec.time = now;
  rec.loop = cfg.name;
  rec.layer = LayerToString(cfg.layer);
  rec.sensed_y = sensed_y;
  rec.stale_sensor = stale;
  rec.clamped_u = clamped_u;
  rec.outcome = outcome;
  rec.span_id = a->current_decide_span;
  rec.fault_mask = telemetry_->FaultMaskAt(rec.layer, now);
  if (health_annotator_) {
    rec.health_mask = health_annotator_(rec.layer, now);
    if (rec.health_mask != 0) a->breach_steps->Increment();
  }
  if (a->observer.fresh && a->observer.last.time == now) {
    const control::ControlStepView& v = a->observer.last;
    rec.law = v.law;
    rec.reference = v.reference;
    rec.error = v.error;
    rec.gain = v.gain;
    rec.raw_u = v.raw_u;
  } else {
    // The controller did not run this step (miss / breaker / error).
    rec.law = cfg.controller->name();
    rec.reference = cfg.controller->reference();
    rec.error = std::isnan(sensed_y) ? kNaN : sensed_y - rec.reference;
    rec.gain = kNaN;
    rec.raw_u = kNaN;
  }
  telemetry_->decisions().Append(rec);
  if (flight_recorder_ != nullptr) flight_recorder_->RecordDecision(rec);
  // Close the decide span with what was ultimately applied (no-op for
  // sensor-miss steps, whose span was emitted closed).
  telemetry_->spans().End(a->current_decide_span, now, rec.clamped_u,
                          static_cast<uint8_t>(outcome));

  if (annotated_observer_ != nullptr) {
    control::ControlStepView annotated;
    annotated.time = rec.time;
    annotated.y = rec.sensed_y;
    annotated.reference = rec.reference;
    annotated.error = rec.error;
    annotated.gain = rec.gain;
    annotated.raw_u = rec.raw_u;
    annotated.u = rec.clamped_u;
    annotated.law = rec.law;
    annotated.health_mask = rec.health_mask;
    annotated.span_id = rec.span_id;
    annotated_observer_->OnControlStep(annotated);
  }

  // Schematic span: control steps are instantaneous in sim time, drawn
  // at 2% of the period so they are visible at any zoom in Perfetto.
  double dur = std::max(cfg.monitoring_period_sec * 0.02, 1e-3);
  obs::TraceEvent args;
  args.pid = trace_pid_;
  args.num_args = {{"y", rec.sensed_y},
                   {"y_r", rec.reference},
                   {"error", rec.error},
                   {"gain", rec.gain},
                   {"u", rec.clamped_u},
                   {"span_id", static_cast<double>(rec.span_id)}};
  args.str_args = {{"outcome", obs::StepOutcomeToString(outcome)},
                   {"law", rec.law}};
  telemetry_->trace().AddSpan("step", "control", now, dur, a->trace_tid,
                              std::move(args));
  if (!std::isnan(sensed_y)) {
    telemetry_->trace().AddCounter(cfg.name + ".y", now, a->trace_tid,
                                   sensed_y, trace_pid_);
    a->gauge_y->Set(sensed_y);
  }
  if (!std::isnan(clamped_u)) {
    telemetry_->trace().AddCounter(cfg.name + ".u", now, a->trace_tid,
                                   clamped_u, trace_pid_);
    a->gauge_u->Set(clamped_u);
  }
  if (!std::isnan(rec.gain)) {
    telemetry_->trace().AddCounter(cfg.name + ".gain", now, a->trace_tid,
                                   rec.gain, trace_pid_);
    a->gauge_gain->Set(rec.gain);
  }
}

bool ElasticityManager::Actuate(Attached* a, double amount, int attempt) {
  const LayerControlConfig& cfg = a->config;
  Status st = cfg.actuator(amount);
  // Causal span: one kActuate per attempt, child of the decide span,
  // with retries chained to the previous attempt via follows-from.
  obs::SpanId attempt_span = telemetry_->spans().Emit(
      obs::SpanKind::kActuate, cfg.name, sim_->Now(), 0.0, trace_pid_,
      a->trace_tid, a->current_decide_span,
      attempt > 0 ? a->last_attempt_span : 0, amount,
      static_cast<uint8_t>(st.ok() ? obs::StepOutcome::kActuated
                                   : obs::StepOutcome::kActuationFailed));
  a->last_attempt_span = attempt_span;
  if (st.ok()) {
    a->consecutive_failures = 0;
    // A successful half-open probe closes the breaker.
    a->state.breaker_open = false;
    if (attempt > 0) a->state.counters.retry_successes->Increment();
    // The effect closes at the next fresh sense of this loop's metric.
    a->pending_effect_parent = attempt_span;
    a->pending_effect_start = sim_->Now();
    return true;
  }
  a->state.counters.actuation_failures->Increment();
  ++a->consecutive_failures;
  FLOWER_LOG(Warning) << "actuation failed for loop '" << cfg.name
                      << "' (attempt " << attempt + 1 << "): " << st;
  obs::TraceEvent fail_args;
  fail_args.pid = trace_pid_;
  telemetry_->trace().AddInstant("actuation-failed", "control", sim_->Now(),
                                 a->trace_tid, std::move(fail_args));

  const CircuitBreakerPolicy& cb = cfg.resilience.breaker;
  if (cb.failure_threshold > 0 &&
      a->consecutive_failures >= cb.failure_threshold) {
    // Trip (or re-trip after a failed half-open probe): stop calling
    // the actuator until the cooldown elapses.
    a->state.breaker_open = true;
    a->breaker_reopen_time = sim_->Now() + cb.cooldown_sec;
    a->state.counters.breaker_trips->Increment();
    obs::TraceEvent breaker_args;
    breaker_args.pid = trace_pid_;
    telemetry_->trace().AddSpan("breaker-open", "control", sim_->Now(),
                                cb.cooldown_sec, a->trace_tid,
                                std::move(breaker_args));
    return false;
  }

  const RetryPolicy& rp = cfg.resilience.retry;
  if (attempt >= rp.max_retries) return false;
  double backoff = rp.initial_backoff_sec;
  for (int i = 0; i < attempt; ++i) backoff *= rp.backoff_multiplier;
  backoff = std::min(backoff, rp.max_backoff_sec);
  if (rp.jitter_fraction > 0.0) {
    backoff += backoff * rp.jitter_fraction * a->rng.Uniform(-1.0, 1.0);
  }
  backoff = std::max(backoff, 0.0);
  uint64_t epoch = a->epoch;
  (void)sim_->ScheduleAfter(backoff, [this, a, amount, attempt, epoch] {
    // Superseded by a newer step / pause / breaker trip: drop quietly.
    if (a->paused || epoch != a->epoch || a->state.breaker_open) return;
    a->state.counters.actuation_retries->Increment();
    obs::TraceEvent args;
    args.pid = trace_pid_;
    args.num_args = {{"attempt", static_cast<double>(attempt + 1)},
                     {"u", amount}};
    telemetry_->trace().AddSpan("retry", "control", sim_->Now(), 0.5,
                                a->trace_tid, std::move(args));
    Actuate(a, amount, attempt + 1);
  });
  return false;
}

Status ElasticityManager::EnableReplanning(ReplanConfig config) {
  if (replan_ != nullptr) {
    return Status::FailedPrecondition(
        "ElasticityManager: re-planning already enabled");
  }
  if (config.period_sec <= 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: re-plan period must be positive");
  }
  if (config.start_delay_sec < 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: negative re-plan start delay");
  }
  auto state = std::make_unique<ReplanState>();
  state->analyzer =
      ResourceShareAnalyzer(config.solver, config.incremental);
  obs::LabelSet planner_labels = WithTenant({});
  state->analyzer.SetMetricsRegistry(&telemetry_->metrics(), planner_labels);
  state->failures = telemetry_->metrics().GetCounter("planner.replan_failures",
                                                     planner_labels);
  state->front_size =
      telemetry_->metrics().GetGauge("planner.front_size", planner_labels);
  state->config = std::move(config);
  ReplanState* raw = state.get();
  FLOWER_RETURN_NOT_OK(sim_->SchedulePeriodic(
      sim_->Now() + state->config.start_delay_sec, state->config.period_sec,
      [this, raw] {
        ReplanStep(raw);
        return true;
      }));
  replan_ = std::move(state);
  return Status::OK();
}

void ElasticityManager::ReplanStep(ReplanState* s) {
  SimTime now = sim_->Now();
  if (s->config.update_request) {
    s->config.update_request(now, &s->config.request);
  }
  // Causal span: the kPlan span is ambient while the solver runs so the
  // NSGA-II observer can parent its kGeneration spans under it. It
  // follows from the previous successful plan (the one whose bounds the
  // new pass refines).
  obs::SpanCollector& spans = telemetry_->spans();
  obs::SpanId plan_span =
      spans.Begin(obs::SpanKind::kPlan, "replan", now, trace_pid_,
                  obs::kPlannerTid, /*parent=*/0, /*follows=*/last_plan_span_);
  telemetry_->set_active_plan_span(plan_span);
  Result<ResourceShareResult> res =
      s->analyzer.AnalyzeIncremental(s->config.request);
  telemetry_->set_active_plan_span(0);
  if (!res.ok()) {
    // Keep the previous bounds; a transiently unsolvable request must
    // not strip the loops of their caps. last_plan_span_ also stays on
    // the previous success: the old plan remains the cause of the
    // bounds the loops keep running under.
    spans.End(plan_span, sim_->Now(), 0.0, /*outcome=*/1);
    s->failures->Increment();
    return;
  }
  spans.End(plan_span, sim_->Now(),
            static_cast<double>(res->pareto_plans.size()));
  if (plan_span != 0) last_plan_span_ = plan_span;
  s->front_size->Set(static_cast<double>(res->pareto_plans.size()));
  Result<ProvisioningPlan> max_shares =
      ResourceShareAnalyzer::MaxShares(*res);
  if (max_shares.ok()) {
    for (int i = 0; i < kNumLayers; ++i) {
      Layer layer = static_cast<Layer>(i);
      if (!IsAttached(layer)) continue;
      (void)SetShareUpperBound(layer, max_shares->shares[i]);
    }
  }
  if (flight_recorder_ != nullptr) {
    flight_recorder_->RecordReplan(
        now, s->config.request.hourly_budget_usd,
        max_shares.ok() ? max_shares->shares : nullptr,
        max_shares.ok() ? kNumLayers : 0, max_shares.ok());
  }
  if (s->config.on_plan) s->config.on_plan(now, *res);
}

Result<PlannerCounters> ElasticityManager::ReplanCounters() const {
  if (replan_ == nullptr) {
    return Status::NotFound("ElasticityManager: re-planning not enabled");
  }
  return replan_->analyzer.counters();
}

Status ElasticityManager::SetShareUpperBound(const std::string& name,
                                             double bound) {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  if (bound < 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: negative share upper bound");
  }
  it->second->state.share_upper_bound = bound;
  return Status::OK();
}

Status ElasticityManager::SetPaused(const std::string& name, bool paused) {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  it->second->paused = paused;
  return Status::OK();
}

Result<const LayerControlState*> ElasticityManager::GetState(
    const std::string& name) const {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  return &it->second->state;
}

Result<const control::Controller*> ElasticityManager::GetController(
    const std::string& name) const {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  return it->second->config.controller.get();
}

std::vector<std::string> ElasticityManager::LoopNames() const {
  std::vector<std::string> names;
  names.reserve(loops_.size());
  for (const auto& [name, attached] : loops_) names.push_back(name);
  return names;
}

}  // namespace flower::core
