#include "core/elasticity_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "stats/robust.h"

namespace flower::core {

namespace {

Status ValidateResilience(const ResiliencePolicy& p) {
  if (p.retry.max_retries < 0) {
    return Status::InvalidArgument("ElasticityManager: negative max_retries");
  }
  if (p.retry.initial_backoff_sec < 0.0 || p.retry.max_backoff_sec < 0.0) {
    return Status::InvalidArgument("ElasticityManager: negative backoff");
  }
  if (p.retry.backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "ElasticityManager: backoff multiplier must be >= 1");
  }
  if (p.retry.jitter_fraction < 0.0 || p.retry.jitter_fraction > 1.0) {
    return Status::InvalidArgument(
        "ElasticityManager: jitter fraction must be in [0, 1]");
  }
  if (p.breaker.failure_threshold < 0) {
    return Status::InvalidArgument(
        "ElasticityManager: negative breaker threshold");
  }
  if (p.breaker.failure_threshold > 0 && p.breaker.cooldown_sec <= 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: breaker cooldown must be positive");
  }
  if (p.sensor.max_hold_sec < 0.0) {
    return Status::InvalidArgument("ElasticityManager: negative max_hold");
  }
  if (p.sensor.winsorize_fraction < 0.0 ||
      p.sensor.winsorize_fraction >= 0.5) {
    return Status::InvalidArgument(
        "ElasticityManager: winsorize fraction must be in [0, 0.5)");
  }
  return Status::OK();
}

}  // namespace

Status ElasticityManager::Attach(LayerControlConfig config) {
  if (config.name.empty()) config.name = LayerToString(config.layer);
  if (loops_.count(config.name) > 0) {
    return Status::AlreadyExists("ElasticityManager: loop '" + config.name +
                                 "' already attached");
  }
  if (config.controller == nullptr) {
    return Status::InvalidArgument("ElasticityManager: missing controller");
  }
  if (!config.actuator) {
    return Status::InvalidArgument("ElasticityManager: missing actuator");
  }
  if (config.monitoring_period_sec <= 0.0 ||
      config.monitoring_window_sec <= 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: monitoring period/window must be positive");
  }
  FLOWER_RETURN_NOT_OK(ValidateResilience(config.resilience));
  auto attached = std::make_unique<Attached>();
  attached->config = std::move(config);
  attached->config.controller->Reset(attached->config.initial_u);
  attached->sense = attached->config.sensor
                        ? attached->config.sensor
                        : MakeDefaultSensor(attached->config);
  attached->rng = Rng(attached->config.resilience.retry.jitter_seed);
  Attached* raw = attached.get();
  Status st = sim_->SchedulePeriodic(
      sim_->Now() + attached->config.start_delay_sec,
      attached->config.monitoring_period_sec, [this, raw] {
        Step(raw);
        return true;
      });
  FLOWER_RETURN_NOT_OK(st);
  loops_[attached->config.name] = std::move(attached);
  return Status::OK();
}

std::function<Result<double>(SimTime)> ElasticityManager::MakeDefaultSensor(
    const LayerControlConfig& config) const {
  const cloudwatch::MetricStore* metrics = metrics_;
  cloudwatch::MetricId metric = config.sensor_metric;
  cloudwatch::Statistic stat = config.sensor_statistic;
  double window = config.monitoring_window_sec;
  SensorPolicy policy = config.resilience.sensor;
  return [metrics, metric, stat, window,
          policy](SimTime now) -> Result<double> {
    SimTime t0 = now - window;
    switch (policy.robust) {
      case RobustSensing::kOff:
        return metrics->GetStatistic(metric, t0, now, stat);
      case RobustSensing::kMedian:
        return metrics->GetStatistic(metric, t0, now,
                                     cloudwatch::Statistic::kP50);
      case RobustSensing::kWinsorizedMean: {
        FLOWER_ASSIGN_OR_RETURN(const TimeSeries* series,
                                metrics->GetSeries(metric));
        TimeSeries w = series->WindowLeftOpen(t0, now);
        if (w.empty()) {
          return Status::NotFound("no datapoints in window for " +
                                  metric.ToString());
        }
        return stats::WinsorizedMean(w.Values(), policy.winsorize_fraction);
      }
    }
    return Status::Internal("unhandled robust sensing mode");
  };
}

void ElasticityManager::Step(Attached* a) {
  if (a->paused) return;
  SimTime now = sim_->Now();
  const LayerControlConfig& cfg = a->config;
  // A new control step supersedes any retry chain still in flight.
  ++a->epoch;

  Result<double> raw = a->sense(now);
  double y;
  if (raw.ok()) {
    y = *raw;
    a->has_last_good = true;
    a->last_good_value = y;
    a->last_good_time = now;
  } else {
    const SensorPolicy& sp = cfg.resilience.sensor;
    bool can_hold = sp.on_miss == SensorMissPolicy::kHoldLastValue &&
                    a->has_last_good &&
                    (sp.max_hold_sec <= 0.0 ||
                     now - a->last_good_time <= sp.max_hold_sec);
    if (!can_hold) {
      ++a->state.sensor_misses;
      return;
    }
    y = a->last_good_value;
    ++a->state.stale_sensor_reads;
  }
  a->state.sensed.AppendUnchecked(now, y);

  auto u = cfg.controller->Update(now, y);
  if (!u.ok()) {
    ++a->state.actuation_failures;
    return;
  }
  double amount = *u;
  if (a->state.share_upper_bound > 0.0) {
    amount = std::min(amount, a->state.share_upper_bound);
  }
  if (a->state.breaker_open && now < a->breaker_reopen_time) {
    // Open breaker: record what the loop wanted, touch nothing.
    ++a->state.breaker_skipped_steps;
    a->state.actuations.AppendUnchecked(now, amount);
    return;
  }
  Actuate(a, amount, /*attempt=*/0);
  a->state.actuations.AppendUnchecked(now, amount);
}

void ElasticityManager::Actuate(Attached* a, double amount, int attempt) {
  const LayerControlConfig& cfg = a->config;
  Status st = cfg.actuator(amount);
  if (st.ok()) {
    a->consecutive_failures = 0;
    // A successful half-open probe closes the breaker.
    a->state.breaker_open = false;
    if (attempt > 0) ++a->state.retry_successes;
    return;
  }
  ++a->state.actuation_failures;
  ++a->consecutive_failures;
  FLOWER_LOG(Warning) << "actuation failed for loop '" << cfg.name
                      << "' (attempt " << attempt + 1 << "): " << st;

  const CircuitBreakerPolicy& cb = cfg.resilience.breaker;
  if (cb.failure_threshold > 0 &&
      a->consecutive_failures >= cb.failure_threshold) {
    // Trip (or re-trip after a failed half-open probe): stop calling
    // the actuator until the cooldown elapses.
    a->state.breaker_open = true;
    a->breaker_reopen_time = sim_->Now() + cb.cooldown_sec;
    ++a->state.breaker_trips;
    return;
  }

  const RetryPolicy& rp = cfg.resilience.retry;
  if (attempt >= rp.max_retries) return;
  double backoff = rp.initial_backoff_sec;
  for (int i = 0; i < attempt; ++i) backoff *= rp.backoff_multiplier;
  backoff = std::min(backoff, rp.max_backoff_sec);
  if (rp.jitter_fraction > 0.0) {
    backoff += backoff * rp.jitter_fraction * a->rng.Uniform(-1.0, 1.0);
  }
  backoff = std::max(backoff, 0.0);
  uint64_t epoch = a->epoch;
  (void)sim_->ScheduleAfter(backoff, [this, a, amount, attempt, epoch] {
    // Superseded by a newer step / pause / breaker trip: drop quietly.
    if (a->paused || epoch != a->epoch || a->state.breaker_open) return;
    ++a->state.actuation_retries;
    Actuate(a, amount, attempt + 1);
  });
}

Status ElasticityManager::SetShareUpperBound(const std::string& name,
                                             double bound) {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  if (bound < 0.0) {
    return Status::InvalidArgument(
        "ElasticityManager: negative share upper bound");
  }
  it->second->state.share_upper_bound = bound;
  return Status::OK();
}

Status ElasticityManager::SetPaused(const std::string& name, bool paused) {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  it->second->paused = paused;
  return Status::OK();
}

Result<const LayerControlState*> ElasticityManager::GetState(
    const std::string& name) const {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  return &it->second->state;
}

Result<const control::Controller*> ElasticityManager::GetController(
    const std::string& name) const {
  auto it = loops_.find(name);
  if (it == loops_.end()) {
    return Status::NotFound("ElasticityManager: loop '" + name +
                            "' not attached");
  }
  return it->second->config.controller.get();
}

std::vector<std::string> ElasticityManager::LoopNames() const {
  std::vector<std::string> names;
  names.reserve(loops_.size());
  for (const auto& [name, attached] : loops_) names.push_back(name);
  return names;
}

}  // namespace flower::core
