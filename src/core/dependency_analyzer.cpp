#include "core/dependency_analyzer.h"

#include <cmath>
#include <sstream>

namespace flower::core {

std::string Dependency::ToString() const {
  std::ostringstream os;
  os.precision(6);
  os << response.id.name << "(" << LayerToString(response.layer) << ") = "
     << fit.slope << " * " << predictor.id.name << "("
     << LayerToString(predictor.layer) << ") + " << fit.intercept
     << "  [r=" << fit.correlation << ", R2=" << fit.r_squared << ", n="
     << fit.n << (significant ? ", significant" : ", not significant")
     << "]";
  return os.str();
}

Result<Dependency> DependencyAnalyzer::Analyze(
    const cloudwatch::MetricStore& store, const LayerMetric& predictor,
    const LayerMetric& response, SimTime t0, SimTime t1) const {
  if (predictor.layer == response.layer) {
    return Status::InvalidArgument(
        "DependencyAnalyzer: Eq. 1 requires metrics from different layers");
  }
  FLOWER_ASSIGN_OR_RETURN(const TimeSeries* px,
                          store.GetSeries(predictor.id));
  FLOWER_ASSIGN_OR_RETURN(const TimeSeries* py, store.GetSeries(response.id));
  TimeSeries bx = px->Window(t0, t1).BucketMean(t0, config_.bucket_sec);
  TimeSeries by = py->Window(t0, t1).BucketMean(t0, config_.bucket_sec);

  // Join on bucket timestamps present in both series.
  std::vector<double> xs, ys;
  size_t i = 0, j = 0;
  while (i < bx.size() && j < by.size()) {
    double tx = bx[i].time, ty = by[j].time;
    if (std::fabs(tx - ty) < 1e-9) {
      xs.push_back(bx[i].value);
      ys.push_back(by[j].value);
      ++i;
      ++j;
    } else if (tx < ty) {
      ++i;
    } else {
      ++j;
    }
  }
  if (xs.size() < config_.min_samples) {
    return Status::FailedPrecondition(
        "DependencyAnalyzer: only " + std::to_string(xs.size()) +
        " aligned samples (< " + std::to_string(config_.min_samples) + ")");
  }
  stats::SimpleFit fit;
  if (config_.robust) {
    // Theil–Sen line + Spearman rank correlation: both resistant to
    // the occasional corrupted sample in operations logs.
    FLOWER_ASSIGN_OR_RETURN(stats::TheilSenFit ts,
                            stats::FitTheilSen(xs, ys));
    fit.slope = ts.slope;
    fit.intercept = ts.intercept;
    fit.n = ts.n;
    FLOWER_ASSIGN_OR_RETURN(fit.correlation,
                            stats::SpearmanCorrelation(xs, ys));
    double sse = 0.0, syy = 0.0;
    double my = 0.0;
    for (double v : ys) my += v;
    my /= static_cast<double>(ys.size());
    for (size_t k = 0; k < ys.size(); ++k) {
      double e = ys[k] - ts.Predict(xs[k]);
      sse += e * e;
      syy += (ys[k] - my) * (ys[k] - my);
    }
    fit.r_squared = syy > 0.0 ? std::max(0.0, 1.0 - sse / syy) : 1.0;
  } else {
    FLOWER_ASSIGN_OR_RETURN(fit, stats::FitSimple(xs, ys));
  }
  Dependency dep;
  dep.predictor = predictor;
  dep.response = response;
  dep.fit = fit;
  dep.significant =
      std::fabs(fit.correlation) >= config_.min_abs_correlation;
  return dep;
}

Result<MultiDependency> DependencyAnalyzer::AnalyzeMultiple(
    const cloudwatch::MetricStore& store,
    const std::vector<LayerMetric>& predictors, const LayerMetric& response,
    SimTime t0, SimTime t1) const {
  if (predictors.empty()) {
    return Status::InvalidArgument("AnalyzeMultiple: no predictors");
  }
  for (const LayerMetric& p : predictors) {
    if (p.layer == response.layer) {
      return Status::InvalidArgument(
          "AnalyzeMultiple: predictor '" + p.id.ToString() +
          "' shares the response's layer (Eq. 1 requires L1 != L2)");
    }
  }
  // Bucket every series onto the common grid.
  std::vector<TimeSeries> bx;
  bx.reserve(predictors.size());
  for (const LayerMetric& p : predictors) {
    FLOWER_ASSIGN_OR_RETURN(const TimeSeries* series, store.GetSeries(p.id));
    bx.push_back(series->Window(t0, t1).BucketMean(t0, config_.bucket_sec));
  }
  FLOWER_ASSIGN_OR_RETURN(const TimeSeries* ys, store.GetSeries(response.id));
  TimeSeries by = ys->Window(t0, t1).BucketMean(t0, config_.bucket_sec);

  // Join on bucket times present in every series.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  std::vector<size_t> idx(predictors.size(), 0);
  for (size_t j = 0; j < by.size(); ++j) {
    double t = by[j].time;
    std::vector<double> row;
    row.reserve(predictors.size());
    bool complete = true;
    for (size_t p = 0; p < bx.size(); ++p) {
      while (idx[p] < bx[p].size() && bx[p][idx[p]].time < t - 1e-9) {
        ++idx[p];
      }
      if (idx[p] < bx[p].size() &&
          std::fabs(bx[p][idx[p]].time - t) < 1e-9) {
        row.push_back(bx[p][idx[p]].value);
      } else {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    rows.push_back(std::move(row));
    y.push_back(by[j].value);
  }
  if (rows.size() < config_.min_samples) {
    return Status::FailedPrecondition(
        "AnalyzeMultiple: only " + std::to_string(rows.size()) +
        " aligned samples (< " + std::to_string(config_.min_samples) + ")");
  }
  FLOWER_ASSIGN_OR_RETURN(stats::MultipleFit fit,
                          stats::FitMultiple(rows, y));
  MultiDependency dep;
  dep.predictors = predictors;
  dep.response = response;
  dep.fit = fit;
  dep.significant = fit.r_squared >= config_.min_r_squared;
  return dep;
}

std::vector<Dependency> DependencyAnalyzer::AnalyzeAll(
    const cloudwatch::MetricStore& store,
    const std::vector<LayerMetric>& metrics, SimTime t0, SimTime t1) const {
  std::vector<Dependency> out;
  for (size_t a = 0; a < metrics.size(); ++a) {
    for (size_t b = 0; b < metrics.size(); ++b) {
      if (a == b || metrics[a].layer == metrics[b].layer) continue;
      auto dep = Analyze(store, metrics[a], metrics[b], t0, t1);
      if (dep.ok()) out.push_back(*dep);
    }
  }
  return out;
}

std::vector<obs::health::DependencyEdge> ToHealthEdges(
    const std::vector<Dependency>& dependencies) {
  std::vector<obs::health::DependencyEdge> edges;
  edges.reserve(dependencies.size());
  for (const Dependency& d : dependencies) {
    obs::health::DependencyEdge e;
    e.predictor_layer = LayerToString(d.predictor.layer);
    e.response_layer = LayerToString(d.response.layer);
    e.predictor_metric = d.predictor.id.ToString();
    e.response_metric = d.response.id.ToString();
    e.slope = d.fit.slope;
    e.correlation = d.fit.correlation;
    e.r_squared = d.fit.r_squared;
    e.significant = d.significant;
    edges.push_back(std::move(e));
  }
  return edges;
}

}  // namespace flower::core
