#ifndef FLOWER_CORE_RESOURCE_SHARE_H_
#define FLOWER_CORE_RESOURCE_SHARE_H_

#include <string>
#include <vector>

#include "core/layer.h"
#include "opt/nsga2.h"
#include "opt/problem.h"
#include "pricing/price_book.h"

namespace flower::core {

/// A linear dependency/business constraint over the three per-layer
/// resource amounts:  c_I·r_I + c_A·r_A + c_S·r_S  <=  rhs.
/// (>= constraints are expressed by negating all coefficients.)
/// The paper's Fig. 4 example uses: 5·r_A >= r_I, 2·r_A <= r_I,
/// 2·r_I <= r_S.
struct LinearConstraint {
  double coeff[kNumLayers] = {0.0, 0.0, 0.0};
  double rhs = 0.0;
  std::string label;

  /// Convenience builders for the common two-term forms.
  static LinearConstraint AtMost(Layer a, double ca, Layer b, double cb,
                                 double rhs, std::string label = "");
  /// ca·r_a >= cb·r_b  (i.e.  cb·r_b − ca·r_a <= 0).
  static LinearConstraint AtLeast(Layer a, double ca, Layer b, double cb,
                                  std::string label = "");
};

/// Per-layer decision-variable bounds (integer resource counts).
struct LayerBounds {
  double min = 1.0;
  double max = 100.0;
};

/// How constraints are fed to NSGA-II (ablation in bench/fig4_pareto).
enum class ConstraintHandling {
  /// Deb's constrained-domination (the default, what the solver is
  /// designed for).
  kConstrainedDomination,
  /// Static penalty subtracted from every objective.
  kPenalty,
};

/// Inputs of the resource share analysis (paper §3.2, Eq. 3–5).
struct ResourceShareRequest {
  /// Budget per hour in USD (Eq. 4's Bud_t for a one-hour window).
  double hourly_budget_usd = 10.0;
  /// Unit prices of the three layers' resources ($/unit-hour), taken
  /// from a PriceBook by the convenience constructor.
  double unit_price[kNumLayers] = {0.015, 0.10, 0.00065};
  LayerBounds bounds[kNumLayers];
  /// Dependency constraints learned by the DependencyAnalyzer plus any
  /// user-supplied business rules.
  std::vector<LinearConstraint> constraints;
  ConstraintHandling handling = ConstraintHandling::kConstrainedDomination;
  double penalty_weight = 1000.0;  ///< Used only with kPenalty.

  /// Fills unit prices from a price book (shard, instance, WCU).
  void SetPricesFrom(const pricing::PriceBook& book);
};

/// One Pareto-optimal provisioning plan: the simultaneous resource
/// shares of the three layers (Fig. 4's solution points).
struct ProvisioningPlan {
  double shares[kNumLayers] = {0.0, 0.0, 0.0};
  double hourly_cost_usd = 0.0;

  double ingestion() const { return shares[0]; }
  double analytics() const { return shares[1]; }
  double storage() const { return shares[2]; }
};

/// The multi-objective provisioning problem (Eq. 3–5) as an
/// opt::Problem: maximize (r_I, r_A, r_S) subject to the budget and the
/// linear dependency constraints. Exposed publicly so the exhaustive
/// oracle and the benches can evaluate the same problem object.
class ShareProblem final : public opt::Problem {
 public:
  explicit ShareProblem(ResourceShareRequest request);

  const std::vector<opt::VariableSpec>& variables() const override {
    return variables_;
  }
  size_t num_objectives() const override { return kNumLayers; }
  size_t num_constraints() const override;
  void Evaluate(const std::vector<double>& x,
                std::vector<double>* objectives,
                std::vector<double>* violations) const override;

  /// Hourly cost of a share vector under the request's unit prices.
  double HourlyCost(const std::vector<double>& x) const;
  const ResourceShareRequest& request() const { return request_; }

 private:
  ResourceShareRequest request_;
  std::vector<opt::VariableSpec> variables_;
};

/// Result of one analysis run.
struct ResourceShareResult {
  std::vector<ProvisioningPlan> pareto_plans;
  size_t evaluations = 0;
};

/// Resource share analysis (paper §3.2): searches the provisioning-plan
/// space with NSGA-II and returns the Pareto-optimal plans; the caller
/// (or `PickBalancedPlan`) selects the one to enact. The per-layer
/// *maximum* shares across the front become the controllers' actuation
/// upper bounds.
class ResourceShareAnalyzer {
 public:
  explicit ResourceShareAnalyzer(opt::Nsga2Config solver_config = {})
      : solver_config_(solver_config) {}

  /// Runs NSGA-II on the request.
  Result<ResourceShareResult> Analyze(const ResourceShareRequest& request) const;

  /// Exact Pareto front by exhaustive integer-grid enumeration (test
  /// oracle / small problems). Errors when the grid is too large.
  Result<ResourceShareResult> AnalyzeExhaustive(
      const ResourceShareRequest& request) const;

  /// Picks the plan maximizing the minimum bound-normalized share —
  /// Flower's automatic choice when the user does not pick manually.
  static Result<ProvisioningPlan> PickBalancedPlan(
      const ResourceShareResult& result, const ResourceShareRequest& request);

  /// Per-layer maximum share across the Pareto front — the "upper bound
  /// resource shares" handed to the per-layer controllers (§2).
  static Result<ProvisioningPlan> MaxShares(const ResourceShareResult& result);

 private:
  opt::Nsga2Config solver_config_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_RESOURCE_SHARE_H_
