#ifndef FLOWER_CORE_RESOURCE_SHARE_H_
#define FLOWER_CORE_RESOURCE_SHARE_H_

#include <map>
#include <string>
#include <vector>

#include "core/layer.h"
#include "obs/metrics_registry.h"
#include "opt/nsga2.h"
#include "opt/problem.h"
#include "pricing/price_book.h"

namespace flower::core {

/// A linear dependency/business constraint over the three per-layer
/// resource amounts:  c_I·r_I + c_A·r_A + c_S·r_S  <=  rhs.
/// (>= constraints are expressed by negating all coefficients.)
/// The paper's Fig. 4 example uses: 5·r_A >= r_I, 2·r_A <= r_I,
/// 2·r_I <= r_S.
struct LinearConstraint {
  double coeff[kNumLayers] = {0.0, 0.0, 0.0};
  double rhs = 0.0;
  std::string label;

  /// Convenience builders for the common two-term forms.
  static LinearConstraint AtMost(Layer a, double ca, Layer b, double cb,
                                 double rhs, std::string label = "");
  /// ca·r_a >= cb·r_b  (i.e.  cb·r_b − ca·r_a <= 0).
  static LinearConstraint AtLeast(Layer a, double ca, Layer b, double cb,
                                  std::string label = "");
};

/// Per-layer decision-variable bounds (integer resource counts).
struct LayerBounds {
  double min = 1.0;
  double max = 100.0;
};

/// How constraints are fed to NSGA-II (ablation in bench/fig4_pareto).
enum class ConstraintHandling {
  /// Deb's constrained-domination (the default, what the solver is
  /// designed for).
  kConstrainedDomination,
  /// Static penalty subtracted from every objective.
  kPenalty,
};

/// Inputs of the resource share analysis (paper §3.2, Eq. 3–5).
struct ResourceShareRequest {
  /// Budget per hour in USD (Eq. 4's Bud_t for a one-hour window).
  double hourly_budget_usd = 10.0;
  /// Unit prices of the three layers' resources ($/unit-hour), taken
  /// from a PriceBook by the convenience constructor.
  double unit_price[kNumLayers] = {0.015, 0.10, 0.00065};
  LayerBounds bounds[kNumLayers];
  /// Dependency constraints learned by the DependencyAnalyzer plus any
  /// user-supplied business rules.
  std::vector<LinearConstraint> constraints;
  ConstraintHandling handling = ConstraintHandling::kConstrainedDomination;
  double penalty_weight = 1000.0;  ///< Used only with kPenalty.

  /// Fills unit prices from a price book (shard, instance, WCU).
  void SetPricesFrom(const pricing::PriceBook& book);
};

/// One Pareto-optimal provisioning plan: the simultaneous resource
/// shares of the three layers (Fig. 4's solution points).
struct ProvisioningPlan {
  double shares[kNumLayers] = {0.0, 0.0, 0.0};
  double hourly_cost_usd = 0.0;

  double ingestion() const { return shares[0]; }
  double analytics() const { return shares[1]; }
  double storage() const { return shares[2]; }
};

/// The multi-objective provisioning problem (Eq. 3–5) as an
/// opt::Problem: maximize (r_I, r_A, r_S) subject to the budget and the
/// linear dependency constraints. Exposed publicly so the exhaustive
/// oracle and the benches can evaluate the same problem object.
class ShareProblem final : public opt::Problem {
 public:
  explicit ShareProblem(ResourceShareRequest request);

  const std::vector<opt::VariableSpec>& variables() const override {
    return variables_;
  }
  size_t num_objectives() const override { return kNumLayers; }
  size_t num_constraints() const override;
  void Evaluate(const std::vector<double>& x,
                std::vector<double>* objectives,
                std::vector<double>* violations) const override;

  /// Hourly cost of a share vector under the request's unit prices.
  double HourlyCost(const std::vector<double>& x) const;
  const ResourceShareRequest& request() const { return request_; }

 private:
  ResourceShareRequest request_;
  std::vector<opt::VariableSpec> variables_;
};

/// Result of one analysis run.
struct ResourceShareResult {
  std::vector<ProvisioningPlan> pareto_plans;
  size_t evaluations = 0;
  /// Final solver population (decision vectors) — feed through
  /// IncrementalPlanning::warm_start / Nsga2Config::seed_population to
  /// warm the next solve. Empty for the exhaustive oracle.
  std::vector<std::vector<double>> final_population;
  /// True when the convergence early-exit stopped the solver before
  /// its configured generation count.
  bool early_exit = false;
  /// True when AnalyzeIncremental served this result from the plan
  /// cache without running the solver (evaluations is then 0).
  bool cache_hit = false;
};

/// Knobs of the incremental planning engine (warm starts, plan cache,
/// convergence early-exit). Everything off by default reproduces the
/// cold-start behavior bit for bit.
struct IncrementalPlanning {
  /// Seed each solve with the previous solve's final population
  /// (clamped to the new bounds by the solver's repair step).
  bool warm_start = false;
  /// Memoize the last front keyed by a canonical fingerprint of
  /// (budget, prices, bounds, constraints, handling, solver config);
  /// an identical request returns the memoized result without running
  /// the solver, any drift forces a fresh solve.
  bool cache = false;
  /// Forwarded to Nsga2Config::stall_generations / stall_tolerance
  /// (0 = run the full generation budget).
  size_t stall_generations = 0;
  double stall_tolerance = 1e-4;
  /// Fraction of the population seeded from the carried-over solutions
  /// on a warm start; the remainder is drawn fresh by the solver.
  /// Seeding everything narrows exploration and can shrink the front,
  /// so partial injection is the default. Clamped to [0, 1].
  double seed_fraction = 0.5;
};

/// Cumulative incremental-planning counters (mirrored into the metrics
/// registry as planner.* when one is attached).
struct PlannerCounters {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t warm_starts = 0;
  uint64_t early_exits = 0;
  uint64_t evaluations = 0;
};

/// Resource share analysis (paper §3.2): searches the provisioning-plan
/// space with NSGA-II and returns the Pareto-optimal plans; the caller
/// (or `PickBalancedPlan`) selects the one to enact. The per-layer
/// *maximum* shares across the front become the controllers' actuation
/// upper bounds.
class ResourceShareAnalyzer {
 public:
  explicit ResourceShareAnalyzer(opt::Nsga2Config solver_config = {},
                                 IncrementalPlanning incremental = {})
      : solver_config_(std::move(solver_config)), incremental_(incremental) {}

  /// Runs NSGA-II on the request (always a cold solve; the incremental
  /// knobs only affect AnalyzeIncremental).
  Result<ResourceShareResult> Analyze(const ResourceShareRequest& request) const;

  /// Incremental analysis across successive control periods: consults
  /// the plan cache (when enabled) before solving, warm-starts the
  /// solver from the previous period's final population (when enabled),
  /// and applies the convergence early-exit knobs. With a default
  /// IncrementalPlanning this is exactly Analyze plus counter upkeep.
  ///
  /// `scope` names the flow (tenant) this call plans for. The plan
  /// cache and the warm-start population are kept *per scope*: an
  /// analyzer shared across tenants neither thrashes its memo between
  /// their alternating requests nor seeds one tenant's solve with
  /// another tenant's front. Single-flow callers use the default scope
  /// and get the original single-entry behavior bit for bit.
  Result<ResourceShareResult> AnalyzeIncremental(
      const ResourceShareRequest& request, const std::string& scope = "");

  /// Canonical plan-cache key: a textual fingerprint of every
  /// result-affecting field of (request, solver config) — budget,
  /// prices, bounds, constraint coefficients, handling, penalty
  /// weight, population/generations/operator parameters, seed, and the
  /// stall knobs. Deliberately excludes num_threads (results are
  /// thread-count-invariant), the observer, and the seed population
  /// (warm starts refine convergence speed, not the problem).
  static std::string Fingerprint(const ResourceShareRequest& request,
                                 const opt::Nsga2Config& solver);

  /// Mirrors the planner.* counters into `registry` (cache_hits,
  /// cache_misses, warm_starts, early_exits, evaluations). `registry`
  /// must outlive the analyzer; nullptr detaches. `labels` is stamped
  /// on every mirrored instrument — fleet runs pass {{"tenant", id}} so
  /// tenants sharing a registry keep distinct planner series.
  void SetMetricsRegistry(obs::MetricsRegistry* registry,
                          obs::LabelSet labels = {});

  /// Cumulative counters since construction (local mirror, available
  /// without a registry).
  const PlannerCounters& counters() const { return counters_; }
  const IncrementalPlanning& incremental() const { return incremental_; }

  /// Exact Pareto front by exhaustive integer-grid enumeration (test
  /// oracle / small problems). Errors when the grid is too large.
  Result<ResourceShareResult> AnalyzeExhaustive(
      const ResourceShareRequest& request) const;

  /// Picks the plan maximizing the minimum bound-normalized share —
  /// Flower's automatic choice when the user does not pick manually.
  static Result<ProvisioningPlan> PickBalancedPlan(
      const ResourceShareResult& result, const ResourceShareRequest& request);

  /// Per-layer maximum share across the Pareto front — the "upper bound
  /// resource shares" handed to the per-layer controllers (§2).
  static Result<ProvisioningPlan> MaxShares(const ResourceShareResult& result);

 private:
  /// Shared solve path of Analyze / AnalyzeIncremental.
  static Result<ResourceShareResult> Run(const ResourceShareRequest& request,
                                         const opt::Nsga2Config& config);

  /// Per-scope incremental state: one warm-start population and one
  /// single-entry plan cache per flow. Keeping these keyed by scope is
  /// what makes a shared analyzer safe across tenants — alternating
  /// requests from two flows hit two independent memos instead of
  /// invalidating (and cross-seeding) one.
  struct ScopeState {
    /// Warm-start memory: the previous solve's final population.
    std::vector<std::vector<double>> last_population;
    /// Plan cache (valid when cached_fingerprint is non-empty).
    std::string cached_fingerprint;
    ResourceShareResult cached_result;
  };

  opt::Nsga2Config solver_config_;
  IncrementalPlanning incremental_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::LabelSet planner_labels_;
  PlannerCounters counters_;
  std::map<std::string, ScopeState> scopes_;
};

}  // namespace flower::core

#endif  // FLOWER_CORE_RESOURCE_SHARE_H_
