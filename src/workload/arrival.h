#ifndef FLOWER_WORKLOAD_ARRIVAL_H_
#define FLOWER_WORKLOAD_ARRIVAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/time_series.h"
#include "common/units.h"

namespace flower::workload {

/// Deterministic intensity profile lambda(t): the *expected* event rate
/// (events/second) at simulated time t. Generators draw actual counts
/// from a Poisson distribution around this intensity.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual std::string name() const = 0;
  /// Expected events per second at time t. Must be >= 0.
  virtual double RatePerSec(SimTime t) const = 0;
};

/// Constant rate.
class ConstantArrival final : public ArrivalProcess {
 public:
  explicit ConstantArrival(double rate) : rate_(rate) {}
  std::string name() const override { return "constant"; }
  double RatePerSec(SimTime) const override { return rate_; }

 private:
  double rate_;
};

/// Sinusoidal diurnal pattern:
/// rate(t) = base + amplitude * sin(2*pi*(t + phase)/period), floored
/// at zero. Default period is one simulated day.
class DiurnalArrival final : public ArrivalProcess {
 public:
  DiurnalArrival(double base, double amplitude, double period = kDay,
                 double phase = 0.0)
      : base_(base), amplitude_(amplitude), period_(period), phase_(phase) {}
  std::string name() const override { return "diurnal"; }
  double RatePerSec(SimTime t) const override;

 private:
  double base_, amplitude_, period_, phase_;
};

/// Flash crowd: base rate plus a spike of height `extra` between
/// `start` and `start + duration`, with linear ramps of `ramp` seconds
/// on both sides (the unforeseen surge rule-based autoscalers miss).
class FlashCrowdArrival final : public ArrivalProcess {
 public:
  FlashCrowdArrival(double base, double extra, SimTime start,
                    double duration, double ramp = 60.0)
      : base_(base), extra_(extra), start_(start), duration_(duration),
        ramp_(ramp) {}
  std::string name() const override { return "flash-crowd"; }
  double RatePerSec(SimTime t) const override;

 private:
  double base_, extra_;
  SimTime start_;
  double duration_, ramp_;
};

/// Piecewise-constant profile given as (time, rate) steps; the rate of
/// the latest step at or before t applies (0 before the first step).
class StepArrival final : public ArrivalProcess {
 public:
  explicit StepArrival(std::vector<std::pair<SimTime, double>> steps);
  std::string name() const override { return "step"; }
  double RatePerSec(SimTime t) const override;

 private:
  std::vector<std::pair<SimTime, double>> steps_;  // Sorted by time.
};

/// Sum of component processes (e.g. diurnal + flash crowd + noise
/// floor), modelling realistic click traffic.
class CompositeArrival final : public ArrivalProcess {
 public:
  void Add(std::shared_ptr<ArrivalProcess> p) {
    parts_.push_back(std::move(p));
  }
  std::string name() const override { return "composite"; }
  double RatePerSec(SimTime t) const override {
    double r = 0.0;
    for (const auto& p : parts_) r += p->RatePerSec(t);
    return r;
  }
  size_t size() const { return parts_.size(); }

 private:
  std::vector<std::shared_ptr<ArrivalProcess>> parts_;
};

/// Markov-modulated intensity with two states (low/high). State
/// switches are pre-sampled from exponential holding times at
/// construction, so `RatePerSec` is a pure function of t and the whole
/// profile is reproducible from the seed.
class MmppArrival final : public ArrivalProcess {
 public:
  /// Pre-samples switches covering [0, horizon].
  MmppArrival(double low_rate, double high_rate, double mean_low_holding,
              double mean_high_holding, SimTime horizon, uint64_t seed);
  std::string name() const override { return "mmpp2"; }
  double RatePerSec(SimTime t) const override;

 private:
  double low_rate_, high_rate_;
  std::vector<std::pair<SimTime, bool>> switches_;  // (time, is_high).
};

/// Replays a recorded rate trace with last-observation-carried-forward
/// semantics.
class TraceArrival final : public ArrivalProcess {
 public:
  explicit TraceArrival(TimeSeries trace) : trace_(std::move(trace)) {}
  std::string name() const override { return "trace"; }
  double RatePerSec(SimTime t) const override {
    auto v = trace_.At(t);
    return v.ok() ? std::max(0.0, *v) : 0.0;
  }

 private:
  TimeSeries trace_;
};

}  // namespace flower::workload

#endif  // FLOWER_WORKLOAD_ARRIVAL_H_
