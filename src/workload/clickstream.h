#ifndef FLOWER_WORKLOAD_CLICKSTREAM_H_
#define FLOWER_WORKLOAD_CLICKSTREAM_H_

#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "kinesis/stream.h"
#include "sim/simulation.h"
#include "workload/arrival.h"

namespace flower::workload {

/// One synthetic click event.
struct ClickEvent {
  int64_t user_id = 0;
  int64_t url_id = 0;
  int32_t size_bytes = 256;
};

/// Configuration of the click-stream generator (the simulated
/// counterpart of the paper's "random multi-threaded click stream
/// generator deployed on several EC2 instances").
struct ClickStreamConfig {
  int64_t num_users = 100000;
  int64_t num_urls = 1000;
  double url_zipf_skew = 1.1;   ///< Clicks concentrate on popular URLs.
  int32_t record_bytes_mean = 256;
  int32_t record_bytes_jitter = 64;  ///< Uniform +/- jitter.
  /// Emulated generator instances; each holds an equal share of the
  /// arrival intensity and its own random stream, mirroring the demo's
  /// multi-instance deployment.
  int generator_instances = 4;
  /// How often each instance flushes a batch of events (seconds).
  double emit_period_sec = 1.0;
};

/// Generates click events at the intensity of an `ArrivalProcess` and
/// pushes them into a Kinesis stream. Throttled puts are counted as
/// dropped (producers in the demo architecture drop on sustained
/// throttle after retries; the count is the user-visible data-loss
/// signal).
class ClickStreamGenerator {
 public:
  /// Starts `generator_instances` periodic emitters on `sim`.
  ClickStreamGenerator(sim::Simulation* sim, kinesis::Stream* stream,
                       std::shared_ptr<ArrivalProcess> arrival,
                       ClickStreamConfig config, uint64_t seed);

  /// Stops all emitters (takes effect at their next firing).
  void Stop() { running_ = false; }

  uint64_t total_generated() const { return total_generated_; }
  uint64_t total_dropped() const { return total_dropped_; }
  const ClickStreamConfig& config() const { return config_; }

  /// Expected aggregate rate at time t (for test assertions).
  double ExpectedRate(SimTime t) const { return arrival_->RatePerSec(t); }

 private:
  struct Instance {
    Rng rng;
    std::discrete_distribution<int64_t> url_dist;
    explicit Instance(uint64_t seed) : rng(seed) {}
  };

  void EmitBatch(size_t instance_index);

  sim::Simulation* sim_;
  kinesis::Stream* stream_;
  std::shared_ptr<ArrivalProcess> arrival_;
  ClickStreamConfig config_;
  std::vector<std::unique_ptr<Instance>> instances_;
  bool running_ = true;
  uint64_t total_generated_ = 0;
  uint64_t total_dropped_ = 0;
};

}  // namespace flower::workload

#endif  // FLOWER_WORKLOAD_CLICKSTREAM_H_
