#ifndef FLOWER_WORKLOAD_TRACE_IO_H_
#define FLOWER_WORKLOAD_TRACE_IO_H_

#include <string>

#include "common/result.h"
#include "common/time_series.h"

namespace flower::workload {

/// Loads a rate trace from a CSV file with rows `time_sec,rate` (an
/// optional non-numeric header row is skipped; blank lines ignored).
/// Rows must be in non-decreasing time order. Errors: unreadable file,
/// malformed rows, non-monotonic times, or no data rows.
Result<TimeSeries> LoadRateTraceCsv(const std::string& path);

/// Writes a series as `time_sec,rate` CSV (with a header). Errors:
/// unwritable path.
Status SaveRateTraceCsv(const TimeSeries& series, const std::string& path);

}  // namespace flower::workload

#endif  // FLOWER_WORKLOAD_TRACE_IO_H_
