#ifndef FLOWER_WORKLOAD_DASHBOARD_READER_H_
#define FLOWER_WORKLOAD_DASHBOARD_READER_H_

#include <cstdint>

#include "common/random.h"
#include "dynamodb/table.h"
#include "sim/simulation.h"

namespace flower::workload {

/// Configuration of the dashboard read workload.
struct DashboardReaderConfig {
  /// The dashboard refreshes the top-k URL counters each cycle.
  int64_t top_k = 50;
  /// Refresh period, seconds.
  double period_sec = 5.0;
  /// Serialized aggregate item size (drives RCU consumption).
  int32_t item_bytes = 128;
  /// Number of concurrently open dashboards (each refreshes
  /// independently, phase-staggered).
  int viewers = 1;
};

/// Simulates the demo's live dashboard(s) reading the sliding-window
/// aggregates back out of DynamoDB (the read side of the storage
/// layer, which the write-oriented click-stream flow otherwise never
/// exercises). Each viewer issues `top_k` GetItem calls per refresh;
/// throttled reads count as visible dashboard staleness.
class DashboardReader {
 public:
  DashboardReader(sim::Simulation* sim, dynamodb::Table* table,
                  DashboardReaderConfig config);

  void Stop() { running_ = false; }

  uint64_t total_reads() const { return total_reads_; }
  uint64_t read_misses() const { return read_misses_; }       ///< NotFound.
  uint64_t throttled_reads() const { return throttled_reads_; }
  const DashboardReaderConfig& config() const { return config_; }

 private:
  void Refresh();

  sim::Simulation* sim_;
  dynamodb::Table* table_;
  DashboardReaderConfig config_;
  bool running_ = true;
  uint64_t total_reads_ = 0;
  uint64_t read_misses_ = 0;
  uint64_t throttled_reads_ = 0;
};

}  // namespace flower::workload

#endif  // FLOWER_WORKLOAD_DASHBOARD_READER_H_
