#include "workload/trace_io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/csv.h"

namespace flower::workload {

namespace {

bool ParseDouble(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(s, &pos);
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

Result<TimeSeries> LoadRateTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("LoadRateTraceCsv: cannot open " + path);
  }
  TimeSeries out(path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream ls(line);
    std::string t_str, v_str;
    if (!std::getline(ls, t_str, ',') || !std::getline(ls, v_str)) {
      return Status::InvalidArgument("LoadRateTraceCsv: malformed row " +
                                     std::to_string(line_no));
    }
    double t = 0.0, v = 0.0;
    if (!ParseDouble(t_str, &t) || !ParseDouble(v_str, &v)) {
      if (line_no == 1) continue;  // Header row.
      return Status::InvalidArgument("LoadRateTraceCsv: non-numeric row " +
                                     std::to_string(line_no));
    }
    Status st = out.Append(t, v);
    if (!st.ok()) {
      return Status::InvalidArgument(
          "LoadRateTraceCsv: non-monotonic time at row " +
          std::to_string(line_no));
    }
  }
  if (out.empty()) {
    return Status::FailedPrecondition("LoadRateTraceCsv: no data rows in " +
                                      path);
  }
  return out;
}

Status SaveRateTraceCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream outf(path);
  if (!outf) {
    return Status::InvalidArgument("SaveRateTraceCsv: cannot write " + path);
  }
  CsvWriter csv(&outf);
  csv.WriteRow({"time_sec", "rate"});
  for (const Sample& s : series.samples()) {
    csv.WriteNumericRow({s.time, s.value});
  }
  return Status::OK();
}

}  // namespace flower::workload
