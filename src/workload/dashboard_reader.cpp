#include "workload/dashboard_reader.h"

#include "common/logging.h"

namespace flower::workload {

DashboardReader::DashboardReader(sim::Simulation* sim,
                                 dynamodb::Table* table,
                                 DashboardReaderConfig config)
    : sim_(sim), table_(table), config_(config) {
  FLOWER_CHECK(config_.viewers > 0);
  FLOWER_CHECK(config_.period_sec > 0.0);
  for (int v = 0; v < config_.viewers; ++v) {
    double offset = config_.period_sec * static_cast<double>(v) /
                    static_cast<double>(config_.viewers);
    Status st = sim_->SchedulePeriodic(
        sim_->Now() + config_.period_sec + offset, config_.period_sec,
        [this] {
          if (!running_) return false;
          Refresh();
          return true;
        });
    FLOWER_CHECK(st.ok()) << st.ToString();
  }
}

void DashboardReader::Refresh() {
  for (int64_t key = 0; key < config_.top_k; ++key) {
    ++total_reads_;
    auto item = table_->GetItem(key, config_.item_bytes);
    if (item.ok()) continue;
    if (item.status().IsThrottled()) {
      ++throttled_reads_;
      // A throttled refresh abandons the rest of the cycle (the
      // dashboard shows stale data rather than hammering the table).
      return;
    }
    ++read_misses_;
  }
}

}  // namespace flower::workload
