#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace flower::workload {

double DiurnalArrival::RatePerSec(SimTime t) const {
  double r = base_ + amplitude_ * std::sin(2.0 * M_PI * (t + phase_) / period_);
  return std::max(0.0, r);
}

double FlashCrowdArrival::RatePerSec(SimTime t) const {
  double r = base_;
  if (t >= start_ - ramp_ && t < start_) {
    r += extra_ * (t - (start_ - ramp_)) / ramp_;
  } else if (t >= start_ && t < start_ + duration_) {
    r += extra_;
  } else if (t >= start_ + duration_ && t < start_ + duration_ + ramp_) {
    r += extra_ * (1.0 - (t - start_ - duration_) / ramp_);
  }
  return std::max(0.0, r);
}

StepArrival::StepArrival(std::vector<std::pair<SimTime, double>> steps)
    : steps_(std::move(steps)) {
  std::sort(steps_.begin(), steps_.end());
}

double StepArrival::RatePerSec(SimTime t) const {
  double rate = 0.0;
  for (const auto& [time, r] : steps_) {
    if (time > t) break;
    rate = r;
  }
  return std::max(0.0, rate);
}

MmppArrival::MmppArrival(double low_rate, double high_rate,
                         double mean_low_holding, double mean_high_holding,
                         SimTime horizon, uint64_t seed)
    : low_rate_(low_rate), high_rate_(high_rate) {
  Rng rng(seed);
  SimTime t = 0.0;
  bool high = false;
  switches_.emplace_back(0.0, high);
  while (t < horizon) {
    double hold = high ? rng.Exponential(1.0 / mean_high_holding)
                       : rng.Exponential(1.0 / mean_low_holding);
    t += hold;
    high = !high;
    switches_.emplace_back(t, high);
  }
}

double MmppArrival::RatePerSec(SimTime t) const {
  bool high = false;
  // switches_ is sorted; binary search for the state at t.
  auto it = std::upper_bound(
      switches_.begin(), switches_.end(), t,
      [](SimTime tt, const std::pair<SimTime, bool>& s) {
        return tt < s.first;
      });
  if (it != switches_.begin()) high = std::prev(it)->second;
  return high ? high_rate_ : low_rate_;
}

}  // namespace flower::workload
