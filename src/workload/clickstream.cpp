#include "workload/clickstream.h"

#include <cmath>

#include "common/logging.h"

namespace flower::workload {

namespace {

// Zipf weights over num_urls ranks with the given skew.
std::vector<double> ZipfWeights(int64_t n, double skew) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int64_t k = 1; k <= n; ++k) {
    w[static_cast<size_t>(k - 1)] =
        1.0 / std::pow(static_cast<double>(k), skew);
  }
  return w;
}

// 64-bit mix for partition keys (splitmix64 finalizer).
uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ClickStreamGenerator::ClickStreamGenerator(
    sim::Simulation* sim, kinesis::Stream* stream,
    std::shared_ptr<ArrivalProcess> arrival, ClickStreamConfig config,
    uint64_t seed)
    : sim_(sim), stream_(stream), arrival_(std::move(arrival)),
      config_(config) {
  FLOWER_CHECK(config_.generator_instances > 0);
  std::vector<double> weights =
      ZipfWeights(config_.num_urls, config_.url_zipf_skew);
  Rng seeder(seed);
  for (int i = 0; i < config_.generator_instances; ++i) {
    auto inst = std::make_unique<Instance>(seeder.engine()());
    inst->url_dist =
        std::discrete_distribution<int64_t>(weights.begin(), weights.end());
    instances_.push_back(std::move(inst));
  }
  for (size_t i = 0; i < instances_.size(); ++i) {
    // Stagger instance start offsets inside one emit period so batches
    // do not all land on the same instant.
    double offset = config_.emit_period_sec *
                    (static_cast<double>(i) /
                     static_cast<double>(instances_.size()));
    Status st = sim_->SchedulePeriodic(
        sim_->Now() + config_.emit_period_sec + offset,
        config_.emit_period_sec, [this, i] {
          if (!running_) return false;
          EmitBatch(i);
          return true;
        });
    FLOWER_CHECK(st.ok()) << st.ToString();
  }
}

void ClickStreamGenerator::EmitBatch(size_t instance_index) {
  Instance& inst = *instances_[instance_index];
  SimTime now = sim_->Now();
  double share = arrival_->RatePerSec(now) /
                 static_cast<double>(instances_.size());
  double expected = share * config_.emit_period_sec;
  if (expected <= 0.0) return;
  int64_t count = inst.rng.Poisson(expected);
  for (int64_t j = 0; j < count; ++j) {
    ClickEvent ev;
    ev.user_id = inst.rng.UniformInt(0, config_.num_users - 1);
    ev.url_id = inst.url_dist(inst.rng.engine());
    int32_t jitter = static_cast<int32_t>(inst.rng.UniformInt(
        -config_.record_bytes_jitter, config_.record_bytes_jitter));
    ev.size_bytes = std::max(32, config_.record_bytes_mean + jitter);
    ++total_generated_;
    kinesis::Record rec;
    rec.partition_key = MixHash(static_cast<uint64_t>(ev.user_id));
    rec.entity_id = ev.url_id;
    rec.size_bytes = ev.size_bytes;
    Status st = stream_->PutRecord(rec);
    if (!st.ok()) {
      ++total_dropped_;
    }
  }
}

}  // namespace flower::workload
