#ifndef FLOWER_COMMON_TIME_SERIES_H_
#define FLOWER_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace flower {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// One observation of a metric.
struct Sample {
  SimTime time = 0.0;
  double value = 0.0;
};

/// An append-only series of (time, value) samples ordered by time.
///
/// This is the exchange format between the simulated services, the
/// CloudWatch-like metric store, the dependency analyzer, and the
/// benchmark harness. Samples must be appended in non-decreasing time
/// order; `Append` returns InvalidArgument otherwise.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Status Append(SimTime time, double value);
  /// Appends unconditionally; asserts ordering only in debug builds.
  void AppendUnchecked(SimTime time, double value) {
    samples_.push_back({time, value});
  }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  SimTime start_time() const { return empty() ? 0.0 : samples_.front().time; }
  SimTime end_time() const { return empty() ? 0.0 : samples_.back().time; }

  /// All samples with time in [t0, t1) (bucket semantics: a sample at
  /// exactly t0 belongs to this bucket, one at t1 to the next).
  TimeSeries Window(SimTime t0, SimTime t1) const;

  /// All samples with time in (t0, t1] (trailing-window semantics: a
  /// sample stamped exactly "now" is visible to a query ending at now,
  /// and consecutive back-to-back windows never count an edge sample
  /// twice).
  TimeSeries WindowLeftOpen(SimTime t0, SimTime t1) const;

  /// Values only, in time order.
  std::vector<double> Values() const;
  /// Times only, in time order.
  std::vector<SimTime> Times() const;

  /// Value of the latest sample at or before `t`; NotFound when the
  /// series is empty or starts after `t`.
  Result<double> At(SimTime t) const;

  /// Resamples onto a fixed grid of period `step` starting at `t0` with
  /// `n` points, carrying the last observation forward (step function
  /// semantics, matching how provisioned-capacity metrics behave).
  /// Grid points before the first sample take the first sample's value.
  Result<TimeSeries> ResampleHold(SimTime t0, SimTime step, size_t n) const;

  /// Aggregates samples into consecutive buckets of width `step`
  /// (mean per bucket), producing one sample per non-empty bucket
  /// stamped at the bucket start. This matches CloudWatch "period"
  /// statistics.
  TimeSeries BucketMean(SimTime t0, SimTime step) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace flower

#endif  // FLOWER_COMMON_TIME_SERIES_H_
