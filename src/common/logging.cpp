#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace flower {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kError && enabled_ &&
      stream_.str().find("Check failed") != std::string::npos) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace flower
