#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace flower {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogClockFn> g_clock_fn{nullptr};
std::atomic<void*> g_clock_ctx{nullptr};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogClock(LogClockFn fn, void* ctx) {
  // Context first: a reader that sees the new fn must see its ctx.
  g_clock_ctx.store(ctx, std::memory_order_release);
  g_clock_fn.store(fn, std::memory_order_release);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       bool fatal)
    : enabled_(fatal || level >= g_level.load(std::memory_order_relaxed)),
      fatal_(fatal) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level);
  if (LogClockFn clock = g_clock_fn.load(std::memory_order_acquire)) {
    stream_ << " t=" << clock(g_clock_ctx.load(std::memory_order_acquire))
            << "s";
  }
  stream_ << " " << base << ":" << line << "] ";
}

void LogMessage::Flush() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
}

void LogMessage::AbortAfterLogging() {
  Flush();
  std::abort();
}

LogMessage::~LogMessage() {
  if (fatal_) AbortAfterLogging();
  Flush();
}

}  // namespace internal
}  // namespace flower
