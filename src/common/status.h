#ifndef FLOWER_COMMON_STATUS_H_
#define FLOWER_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace flower {

/// Canonical error codes used across the Flower library.
///
/// Loosely modelled on the Arrow/Abseil canonical space, with one
/// cloud-specific addition (`kThrottled`) because throttling is a
/// first-class signal for elasticity management rather than a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  /// A simulated cloud service rejected a request because provisioned
  /// throughput was exceeded (e.g. Kinesis ProvisionedThroughputExceeded,
  /// DynamoDB throttling). Retryable.
  kThrottled,
  kUnimplemented,
  kInternal,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Flower does not throw exceptions across public API boundaries;
/// operations that can fail return `Status` (or `Result<T>`, see
/// result.h). The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Throttled(std::string msg) {
    return Status(StatusCode::kThrottled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True when the failure is transient and the caller may retry
  /// (possibly after scaling up): throttling and resource exhaustion.
  bool IsRetryable() const {
    return code_ == StatusCode::kThrottled ||
           code_ == StatusCode::kResourceExhausted;
  }
  bool IsThrottled() const { return code_ == StatusCode::kThrottled; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace flower

/// Propagates a non-OK Status from the evaluated expression.
#define FLOWER_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::flower::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // FLOWER_COMMON_STATUS_H_
