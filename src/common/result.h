#ifndef FLOWER_COMMON_RESULT_H_
#define FLOWER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace flower {

/// Either a value of type `T` or a non-OK `Status` explaining why the
/// value could not be produced (the Arrow `Result<T>` idiom).
///
/// Invariant: exactly one of {value, non-OK status} is present. A
/// default-constructed Result is an Internal error; constructing a
/// Result from an OK status is a programming error and is demoted to an
/// Internal error so the invariant holds.
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Asserts in debug builds.
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }
  /// Moves the value out. Precondition: ok().
  T MoveValueOrDie() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace flower

/// Assigns the value of a Result expression to `lhs`, or returns its
/// error Status from the enclosing function.
#define FLOWER_ASSIGN_OR_RETURN(lhs, rexpr)          \
  FLOWER_ASSIGN_OR_RETURN_IMPL_(                     \
      FLOWER_RESULT_CONCAT_(_res, __COUNTER__), lhs, rexpr)

#define FLOWER_RESULT_CONCAT_INNER_(a, b) a##b
#define FLOWER_RESULT_CONCAT_(a, b) FLOWER_RESULT_CONCAT_INNER_(a, b)
#define FLOWER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = tmp.MoveValueOrDie()

#endif  // FLOWER_COMMON_RESULT_H_
