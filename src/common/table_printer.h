#ifndef FLOWER_COMMON_TABLE_PRINTER_H_
#define FLOWER_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace flower {

/// Renders aligned plain-text tables for the benchmark harness and the
/// cross-platform monitoring dashboard (the text equivalent of the
/// paper's Fig. 6 UI).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a double with `prec` digits after the decimal point.
  static std::string Num(double v, int prec = 2);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a single series as a fixed-height ASCII sparkline chart,
/// used by the monitoring dashboard to show live metric traces.
std::string AsciiChart(const std::vector<double>& values, int height = 8,
                       int width = 72, const std::string& label = "");

}  // namespace flower

#endif  // FLOWER_COMMON_TABLE_PRINTER_H_
