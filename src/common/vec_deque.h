#ifndef FLOWER_COMMON_VEC_DEQUE_H_
#define FLOWER_COMMON_VEC_DEQUE_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace flower {

/// Power-of-two ring-buffer FIFO over contiguous storage.
///
/// Drop-in replacement for the `std::deque` queues on the simulation
/// hot path (Storm bolt input queues, Kinesis shard buffers). Unlike
/// `std::deque`, which allocates and frees fixed-size chunks as the
/// head and tail move, a VecDeque that has reached its steady-state
/// capacity never touches the allocator again — a requirement of the
/// zero-allocation-per-tick guard in bench/perf_micro.
///
/// T must be default-constructible and assignable (the queues hold POD
/// tuples/records). Capacity grows by doubling and never shrinks.
template <typename T>
class VecDeque {
 public:
  VecDeque() = default;

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t capacity() const { return buf_.size(); }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  /// i-th element from the front (0 = front). No bounds check.
  T& operator[](size_t i) { return buf_[(head_ + i) & mask_]; }
  const T& operator[](size_t i) const { return buf_[(head_ + i) & mask_]; }

  void push_back(const T& v) {
    if (count_ == buf_.size()) Grow(count_ + 1);
    buf_[(head_ + count_) & mask_] = v;
    ++count_;
  }
  void push_back(T&& v) {
    if (count_ == buf_.size()) Grow(count_ + 1);
    buf_[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Bulk-appends `n` elements from `src` (the index-based span transfer
  /// used by Cluster::Tick: one capacity check, then straight copies).
  void AppendRange(const T* src, size_t n) {
    if (n == 0) return;
    if (count_ + n > buf_.size()) Grow(count_ + n);
    size_t tail = (head_ + count_) & mask_;
    for (size_t i = 0; i < n; ++i) {
      buf_[tail] = src[i];
      tail = (tail + 1) & mask_;
    }
    count_ += n;
  }

 private:
  void Grow(size_t need) {
    size_t cap = buf_.empty() ? 16 : buf_.size();
    while (cap < need) cap *= 2;
    std::vector<T> fresh(cap);
    for (size_t i = 0; i < count_; ++i) {
      fresh[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(fresh);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace flower

#endif  // FLOWER_COMMON_VEC_DEQUE_H_
