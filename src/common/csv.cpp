#include "common/csv.h"

#include <sstream>

namespace flower {

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << Escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& fields) {
  std::vector<std::string> s;
  s.reserve(fields.size());
  for (double v : fields) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    s.push_back(os.str());
  }
  WriteRow(s);
}

}  // namespace flower
