#include "common/random.h"

#include <cmath>

namespace flower {

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  // Inverse-CDF sampling over H(n, s). Harmonic prefix is recomputed per
  // call only for small n; callers that need large n should cache a
  // std::discrete_distribution instead.
  double h = 0.0;
  for (int64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double u = Uniform(0.0, h);
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= acc) return k;
  }
  return n;
}

}  // namespace flower
