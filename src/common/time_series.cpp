#include "common/time_series.h"

#include <algorithm>
#include <cmath>

namespace flower {

Status TimeSeries::Append(SimTime time, double value) {
  if (!samples_.empty() && time < samples_.back().time) {
    return Status::InvalidArgument(
        "TimeSeries '" + name_ + "': non-monotonic append");
  }
  samples_.push_back({time, value});
  return Status::OK();
}

TimeSeries TimeSeries::Window(SimTime t0, SimTime t1) const {
  TimeSeries out(name_);
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), t0,
      [](const Sample& s, SimTime t) { return s.time < t; });
  for (auto it = lo; it != samples_.end() && it->time < t1; ++it) {
    out.AppendUnchecked(it->time, it->value);
  }
  return out;
}

TimeSeries TimeSeries::WindowLeftOpen(SimTime t0, SimTime t1) const {
  TimeSeries out(name_);
  auto lo = std::upper_bound(
      samples_.begin(), samples_.end(), t0,
      [](SimTime t, const Sample& s) { return t < s.time; });
  for (auto it = lo; it != samples_.end() && it->time <= t1; ++it) {
    out.AppendUnchecked(it->time, it->value);
  }
  return out;
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const Sample& s : samples_) v.push_back(s.value);
  return v;
}

std::vector<SimTime> TimeSeries::Times() const {
  std::vector<SimTime> v;
  v.reserve(samples_.size());
  for (const Sample& s : samples_) v.push_back(s.time);
  return v;
}

Result<double> TimeSeries::At(SimTime t) const {
  if (samples_.empty()) {
    return Status::NotFound("TimeSeries '" + name_ + "' is empty");
  }
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimTime tt, const Sample& s) { return tt < s.time; });
  if (it == samples_.begin()) {
    return Status::NotFound("TimeSeries '" + name_ +
                            "' has no sample at or before requested time");
  }
  return std::prev(it)->value;
}

Result<TimeSeries> TimeSeries::ResampleHold(SimTime t0, SimTime step,
                                            size_t n) const {
  if (step <= 0.0) {
    return Status::InvalidArgument("ResampleHold: step must be positive");
  }
  if (samples_.empty()) {
    return Status::FailedPrecondition("ResampleHold on empty series");
  }
  TimeSeries out(name_);
  size_t idx = 0;
  double current = samples_.front().value;
  for (size_t i = 0; i < n; ++i) {
    SimTime t = t0 + static_cast<double>(i) * step;
    while (idx < samples_.size() && samples_[idx].time <= t) {
      current = samples_[idx].value;
      ++idx;
    }
    out.AppendUnchecked(t, current);
  }
  return out;
}

TimeSeries TimeSeries::BucketMean(SimTime t0, SimTime step) const {
  TimeSeries out(name_);
  if (samples_.empty() || step <= 0.0) return out;
  double bucket_start = t0;
  double sum = 0.0;
  size_t count = 0;
  for (const Sample& s : samples_) {
    if (s.time < t0) continue;
    while (s.time >= bucket_start + step) {
      if (count > 0) {
        out.AppendUnchecked(bucket_start, sum / static_cast<double>(count));
      }
      bucket_start += step;
      sum = 0.0;
      count = 0;
    }
    sum += s.value;
    ++count;
  }
  if (count > 0) {
    out.AppendUnchecked(bucket_start, sum / static_cast<double>(count));
  }
  return out;
}

}  // namespace flower
