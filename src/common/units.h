#ifndef FLOWER_COMMON_UNITS_H_
#define FLOWER_COMMON_UNITS_H_

#include <cstdint>

namespace flower {

/// Time unit helpers: Flower's simulated clock counts seconds.
constexpr double kSecond = 1.0;
constexpr double kMinute = 60.0;
constexpr double kHour = 3600.0;
constexpr double kDay = 86400.0;

/// Data size helpers (bytes).
constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

/// Kinesis service limits (per shard), matching the published AWS
/// contract the paper relies on ("each Shard supports up to 1,000
/// records/second for writes").
constexpr double kKinesisShardWriteRecordsPerSec = 1000.0;
constexpr int64_t kKinesisShardWriteBytesPerSec = 1 * kMiB;
constexpr int64_t kKinesisShardReadBytesPerSec = 2 * kMiB;
constexpr double kKinesisShardReadCallsPerSec = 5.0;

/// DynamoDB capacity-unit contract: one WCU = one 1 KiB write/s,
/// one RCU = one strongly consistent 4 KiB read/s.
constexpr int64_t kDynamoWcuBytes = 1 * kKiB;
constexpr int64_t kDynamoRcuBytes = 4 * kKiB;

}  // namespace flower

#endif  // FLOWER_COMMON_UNITS_H_
