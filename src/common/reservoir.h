#ifndef FLOWER_COMMON_RESERVOIR_H_
#define FLOWER_COMMON_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace flower {

/// Fixed-size uniform reservoir sample (Vitter's algorithm R): keeps a
/// uniform random subset of an unbounded stream in O(capacity) memory,
/// so per-period latency percentiles stay cheap even at millions of
/// tuples per period.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void Add(double value);

  size_t size() const { return sample_.size(); }
  uint64_t observed() const { return observed_; }
  const std::vector<double>& sample() const { return sample_; }

  /// Percentile (linear interpolation) over the current sample.
  /// Errors: empty reservoir or p outside [0, 100].
  Result<double> Percentile(double p) const;

  /// Clears the sample but keeps the RNG state (fresh period).
  void Reset();

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<double> sample_;
  uint64_t observed_ = 0;
};

}  // namespace flower

#endif  // FLOWER_COMMON_RESERVOIR_H_
