#include "common/reservoir.h"

#include <algorithm>
#include <cmath>

namespace flower {

void ReservoirSampler::Add(double value) {
  ++observed_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  // Replace a random element with probability capacity/observed.
  uint64_t j = static_cast<uint64_t>(
      rng_.UniformInt(0, static_cast<int64_t>(observed_) - 1));
  if (j < capacity_) {
    sample_[static_cast<size_t>(j)] = value;
  }
}

Result<double> ReservoirSampler::Percentile(double p) const {
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("Reservoir percentile: p outside [0,100]");
  }
  if (sample_.empty()) {
    return Status::FailedPrecondition("Reservoir percentile: empty sample");
  }
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void ReservoirSampler::Reset() {
  sample_.clear();
  observed_ = 0;
}

}  // namespace flower
