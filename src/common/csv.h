#ifndef FLOWER_COMMON_CSV_H_
#define FLOWER_COMMON_CSV_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace flower {

/// Minimal CSV emitter used by the benchmark harness to dump
/// paper-figure data series for external plotting.
///
/// Fields containing commas, quotes, or newlines are quoted per RFC
/// 4180. The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(std::initializer_list<std::string> fields) {
    WriteRow(std::vector<std::string>(fields));
  }

  /// Convenience for numeric rows; doubles are formatted with up to 10
  /// significant digits.
  void WriteNumericRow(const std::vector<double>& fields);

  static std::string Escape(const std::string& field);

 private:
  std::ostream* out_;
};

}  // namespace flower

#endif  // FLOWER_COMMON_CSV_H_
