#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace flower {

std::string TablePrinter::Num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_sep = [&]() {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string AsciiChart(const std::vector<double>& values, int height,
                       int width, const std::string& label) {
  std::ostringstream os;
  if (!label.empty()) os << label << '\n';
  if (values.empty() || height < 2 || width < 2) {
    os << "(no data)\n";
    return os.str();
  }
  // Downsample to `width` columns by bucket mean.
  std::vector<double> cols;
  cols.reserve(static_cast<size_t>(width));
  size_t n = values.size();
  for (int c = 0; c < width; ++c) {
    size_t lo = static_cast<size_t>(c) * n / static_cast<size_t>(width);
    size_t hi = static_cast<size_t>(c + 1) * n / static_cast<size_t>(width);
    if (hi <= lo) hi = lo + 1;
    if (hi > n) hi = n;
    if (lo >= n) break;
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += values[i];
    cols.push_back(sum / static_cast<double>(hi - lo));
  }
  double vmin = *std::min_element(cols.begin(), cols.end());
  double vmax = *std::max_element(cols.begin(), cols.end());
  double span = vmax - vmin;
  if (span <= 0.0) span = 1.0;
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(cols.size(), ' '));
  for (size_t c = 0; c < cols.size(); ++c) {
    int level = static_cast<int>(
        std::lround((cols[c] - vmin) / span * (height - 1)));
    level = std::clamp(level, 0, height - 1);
    grid[static_cast<size_t>(height - 1 - level)][c] = '*';
  }
  std::ostringstream maxs, mins;
  maxs << std::setprecision(4) << vmax;
  mins << std::setprecision(4) << vmin;
  os << maxs.str() << " max\n";
  for (const std::string& row : grid) os << '|' << row << '\n';
  os << '+' << std::string(cols.size(), '-') << '\n';
  os << mins.str() << " min\n";
  return os.str();
}

}  // namespace flower
