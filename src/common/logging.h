#ifndef FLOWER_COMMON_LOGGING_H_
#define FLOWER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace flower {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are discarded.
/// Defaults to kWarning so simulations stay quiet in tests/benches.
/// Reads and writes are relaxed atomics: the level is a monotonic
/// filter, not a synchronization point.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Optional simulated-clock hook: when installed, every log line is
/// prefixed with the current sim time ("[W t=123.4s file:line]"), so
/// logs correlate with traces and decision records. A raw function
/// pointer + context (not std::function) keeps installation trivially
/// thread-safe and the disabled path free of static-init ordering
/// hazards. Pass (nullptr, nullptr) to uninstall.
using LogClockFn = double (*)(void* ctx);
void SetLogClock(LogClockFn fn, void* ctx);

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
/// A fatal message (FLOWER_CHECK failure) aborts the process after
/// emitting, regardless of the configured log level.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  [[noreturn]] void AbortAfterLogging();
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  void Flush();

  bool enabled_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace flower

#define FLOWER_LOG(severity)                                        \
  ::flower::internal::LogMessage(::flower::LogLevel::k##severity,   \
                                 __FILE__, __LINE__)

/// Unconditional invariant check (active in all build types): logs the
/// failed condition and aborts. Statements after a failed check never
/// run — do not rely on fall-through.
#define FLOWER_CHECK(cond)                                               \
  if (cond) {                                                            \
  } else /* NOLINT(readability/braces) */                                \
    ::flower::internal::LogMessage(::flower::LogLevel::kError, __FILE__, \
                                   __LINE__, /*fatal=*/true)             \
        << "Check failed: " #cond " "

/// Debug-only invariant check: same as FLOWER_CHECK in debug builds,
/// compiled out (condition not evaluated, operands still type-checked)
/// under NDEBUG.
#ifdef NDEBUG
#define FLOWER_DCHECK(cond)                                              \
  if (true || (cond)) {                                                  \
  } else /* NOLINT(readability/braces) */                                \
    ::flower::internal::LogMessage(::flower::LogLevel::kError, __FILE__, \
                                   __LINE__, /*fatal=*/true)             \
        << "Check failed: " #cond " "
#else
#define FLOWER_DCHECK(cond) FLOWER_CHECK(cond)
#endif

#endif  // FLOWER_COMMON_LOGGING_H_
