#ifndef FLOWER_COMMON_LOGGING_H_
#define FLOWER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace flower {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are discarded.
/// Defaults to kWarning so simulations stay quiet in tests/benches.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace flower

#define FLOWER_LOG(severity)                                        \
  ::flower::internal::LogMessage(::flower::LogLevel::k##severity,   \
                                 __FILE__, __LINE__)

/// Unconditional invariant check (active in all build types).
#define FLOWER_CHECK(cond)                                               \
  if (!(cond))                                                           \
  ::flower::internal::LogMessage(::flower::LogLevel::kError, __FILE__,   \
                                 __LINE__)                               \
      << "Check failed: " #cond " "

#endif  // FLOWER_COMMON_LOGGING_H_
