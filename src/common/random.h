#ifndef FLOWER_COMMON_RANDOM_H_
#define FLOWER_COMMON_RANDOM_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

namespace flower {

/// Deterministic pseudo-random source used everywhere in Flower.
///
/// All stochastic components (workload generators, NSGA-II, simulated
/// service jitter) draw from an explicitly seeded `Rng` so that every
/// simulation, test, and benchmark is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Gaussian with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential with the given rate (events per unit time).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  /// Poisson-distributed count with the given mean.
  ///
  /// Serialized process-wide: libstdc++'s poisson_distribution calls
  /// glibc lgamma(), which writes the hidden global `signgam`, so
  /// concurrent draws from otherwise independent Rngs race on libm
  /// state. The drawn value depends only on `engine_` and `mean`, so
  /// the lock cannot change any sampled sequence.
  int64_t Poisson(double mean) {
    static std::mutex lgamma_mutex;
    std::lock_guard<std::mutex> lock(lgamma_mutex);
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  /// Zipf-distributed rank in [1, n] with skew parameter s, via
  /// inverse-CDF over precomputed weights (suitable for small n).
  int64_t Zipf(int64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace flower

#endif  // FLOWER_COMMON_RANDOM_H_
