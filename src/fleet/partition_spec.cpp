#include "fleet/partition_spec.h"

#include <cstdio>
#include <cstdlib>

namespace flower::fleet {

namespace {

std::string F64(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

Status ParseF64(const std::string& key, const std::string& value,
                double* out) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::InvalidArgument("partition spec: bad number for '" + key +
                                   "': '" + value + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::InvalidArgument("partition spec: bad integer for '" + key +
                                   "': '" + value + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseInt(const std::string& key, const std::string& value, int* out) {
  uint64_t v = 0;
  FLOWER_RETURN_NOT_OK(ParseU64(key, value, &v));
  *out = static_cast<int>(v);
  return Status::OK();
}

Status ParseBool(const std::string& key, const std::string& value, bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
    return Status::OK();
  }
  if (value == "false" || value == "0") {
    *out = false;
    return Status::OK();
  }
  return Status::InvalidArgument("partition spec: bad bool for '" + key +
                                 "': '" + value + "'");
}

}  // namespace

std::vector<std::pair<std::string, std::string>> SerializePartitionSpec(
    const TenantConfig& tenant, const PartitionConfig& config) {
  std::vector<std::pair<std::string, std::string>> spec;
  auto put = [&spec](const char* key, std::string value) {
    spec.emplace_back(key, std::move(value));
  };
  put("tenant.id", tenant.id);
  put("tenant.seed", U64(tenant.seed));
  put("tenant.initial_budget_usd", F64(tenant.initial_budget_usd));
  put("tenant.budget_weight", F64(tenant.budget_weight));
  put("tenant.pattern", ArrivalPatternToString(tenant.pattern));
  put("tenant.base_rate_per_sec", F64(tenant.base_rate_per_sec));
  put("tenant.amplitude_per_sec", F64(tenant.amplitude_per_sec));
  put("tenant.period_sec", F64(tenant.period_sec));
  put("tenant.phase_sec", F64(tenant.phase_sec));
  put("tenant.initial_shards", U64(tenant.initial_shards));
  put("tenant.max_shards", U64(tenant.max_shards));
  put("tenant.initial_workers", U64(tenant.initial_workers));
  put("tenant.max_workers", U64(tenant.max_workers));
  put("tenant.initial_wcu", F64(tenant.initial_wcu));
  put("tenant.max_wcu", F64(tenant.max_wcu));
  put("tenant.reference_utilization_pct",
      F64(tenant.reference_utilization_pct));
  put("tenant.monitoring_period_sec", F64(tenant.monitoring_period_sec));
  put("tenant.arbitration_period_sec", F64(tenant.arbitration_period_sec));

  put("partition.arbitration_period_sec", F64(config.arbitration_period_sec));
  put("partition.replan_offset_sec", F64(config.replan_offset_sec));
  put("partition.horizon_sec", F64(config.horizon_sec));
  put("partition.workload_emit_period_sec",
      F64(config.workload_emit_period_sec));
  put("partition.storm_tick_period_sec", F64(config.storm_tick_period_sec));
  put("partition.solver_population", U64(config.flow_solver.population_size));
  put("partition.solver_generations", U64(config.flow_solver.generations));
  put("partition.warm_start", config.flow_incremental.warm_start ? "true"
                                                                 : "false");
  put("partition.cache", config.flow_incremental.cache ? "true" : "false");
  put("partition.stall_generations",
      U64(config.flow_incremental.stall_generations));

  put("capture.health_trigger",
      config.capture.health_trigger ? "true" : "false");
  put("capture.health_eval_period_sec",
      F64(config.capture.health_eval_period_sec));
  put("capture.util_threshold", F64(config.capture.util_threshold));
  put("capture.slo_objective", F64(config.capture.slo_objective));
  put("capture.slo_fast_window_sec", F64(config.capture.slo_fast_window_sec));
  put("capture.slo_slow_window_sec", F64(config.capture.slo_slow_window_sec));
  return spec;
}

Status ParsePartitionSpec(
    const std::vector<std::pair<std::string, std::string>>& spec,
    TenantConfig* tenant, PartitionConfig* config) {
  for (const auto& [key, value] : spec) {
    if (key == "tenant.id") {
      tenant->id = value;
    } else if (key == "tenant.seed") {
      FLOWER_RETURN_NOT_OK(ParseU64(key, value, &tenant->seed));
    } else if (key == "tenant.initial_budget_usd") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->initial_budget_usd));
    } else if (key == "tenant.budget_weight") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->budget_weight));
    } else if (key == "tenant.pattern") {
      if (!ArrivalPatternFromString(value, &tenant->pattern)) {
        return Status::InvalidArgument(
            "partition spec: unknown arrival pattern '" + value + "'");
      }
    } else if (key == "tenant.base_rate_per_sec") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->base_rate_per_sec));
    } else if (key == "tenant.amplitude_per_sec") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->amplitude_per_sec));
    } else if (key == "tenant.period_sec") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->period_sec));
    } else if (key == "tenant.phase_sec") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->phase_sec));
    } else if (key == "tenant.initial_shards") {
      FLOWER_RETURN_NOT_OK(ParseInt(key, value, &tenant->initial_shards));
    } else if (key == "tenant.max_shards") {
      FLOWER_RETURN_NOT_OK(ParseInt(key, value, &tenant->max_shards));
    } else if (key == "tenant.initial_workers") {
      FLOWER_RETURN_NOT_OK(ParseInt(key, value, &tenant->initial_workers));
    } else if (key == "tenant.max_workers") {
      FLOWER_RETURN_NOT_OK(ParseInt(key, value, &tenant->max_workers));
    } else if (key == "tenant.initial_wcu") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->initial_wcu));
    } else if (key == "tenant.max_wcu") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &tenant->max_wcu));
    } else if (key == "tenant.reference_utilization_pct") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &tenant->reference_utilization_pct));
    } else if (key == "tenant.monitoring_period_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &tenant->monitoring_period_sec));
    } else if (key == "tenant.arbitration_period_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &tenant->arbitration_period_sec));
    } else if (key == "partition.arbitration_period_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->arbitration_period_sec));
    } else if (key == "partition.replan_offset_sec") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &config->replan_offset_sec));
    } else if (key == "partition.horizon_sec") {
      FLOWER_RETURN_NOT_OK(ParseF64(key, value, &config->horizon_sec));
    } else if (key == "partition.workload_emit_period_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->workload_emit_period_sec));
    } else if (key == "partition.storm_tick_period_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->storm_tick_period_sec));
    } else if (key == "partition.solver_population") {
      uint64_t v = 0;
      FLOWER_RETURN_NOT_OK(ParseU64(key, value, &v));
      config->flow_solver.population_size = static_cast<size_t>(v);
    } else if (key == "partition.solver_generations") {
      uint64_t v = 0;
      FLOWER_RETURN_NOT_OK(ParseU64(key, value, &v));
      config->flow_solver.generations = static_cast<size_t>(v);
    } else if (key == "partition.warm_start") {
      FLOWER_RETURN_NOT_OK(
          ParseBool(key, value, &config->flow_incremental.warm_start));
    } else if (key == "partition.cache") {
      FLOWER_RETURN_NOT_OK(
          ParseBool(key, value, &config->flow_incremental.cache));
    } else if (key == "partition.stall_generations") {
      uint64_t v = 0;
      FLOWER_RETURN_NOT_OK(ParseU64(key, value, &v));
      config->flow_incremental.stall_generations = static_cast<size_t>(v);
    } else if (key == "capture.health_trigger") {
      FLOWER_RETURN_NOT_OK(
          ParseBool(key, value, &config->capture.health_trigger));
    } else if (key == "capture.health_eval_period_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->capture.health_eval_period_sec));
    } else if (key == "capture.util_threshold") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->capture.util_threshold));
    } else if (key == "capture.slo_objective") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->capture.slo_objective));
    } else if (key == "capture.slo_fast_window_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->capture.slo_fast_window_sec));
    } else if (key == "capture.slo_slow_window_sec") {
      FLOWER_RETURN_NOT_OK(
          ParseF64(key, value, &config->capture.slo_slow_window_sec));
    }
    // Unknown keys are ignored (forward compatibility).
  }
  return Status::OK();
}

}  // namespace flower::fleet
