#ifndef FLOWER_FLEET_BUDGET_ARBITER_H_
#define FLOWER_FLEET_BUDGET_ARBITER_H_

#include <vector>

#include "common/result.h"
#include "opt/nsga2.h"
#include "opt/problem.h"

namespace flower::fleet {

/// Fleet-level budget arbitration knobs.
struct ArbiterConfig {
  /// The fleet-wide hourly dollar budget divided across tenants.
  double fleet_budget_usd_per_hour = 100.0;
  /// Starvation floor: every tenant with non-zero demand is granted at
  /// least this fraction of min(its demand, budget / active tenants)
  /// before the weighted surplus split. 0 disables the floor.
  double starvation_floor_frac = 0.05;
  /// NSGA-II settings for the split search. num_threads may be > 1 —
  /// the solver is bit-identical at any thread count, which is what
  /// keeps fleet splits deterministic at 1/4/16 threads.
  opt::Nsga2Config solver;
};

/// One arbitration outcome: per-tenant hourly budgets (indexed like the
/// demand vector passed to Arbitrate).
struct BudgetSplit {
  std::vector<double> grants_usd;
  double total_granted_usd = 0.0;
  /// True iff the split respects the fleet budget (checked against the
  /// config with a 1e-9 relative tolerance). Conservation holds by
  /// construction; the bit exists so callers can assert it cheaply.
  bool conserved = false;
  /// True when the demand fit inside the budget and no solver ran.
  bool uncontended = false;
  size_t evaluations = 0;
};

/// The fleet -> flow level of the hierarchical planner: decides how the
/// fleet budget is split across tenant flows. (The flow -> layer level
/// is each flow's own ResourceShareAnalyzer re-plan, fed the granted
/// budget through ElasticityManager::EnableReplanning's update_request
/// hook.)
///
/// Decision variables are one surplus share x_i in [0, 1] per tenant.
/// Decoding guarantees feasibility for *every* genome, so the solver
/// explores trade-offs instead of fighting constraints:
///
///   floor_i = floor_frac * min(demand_i, B / n_active)   (demand>0)
///   extra_i = weight_i * x_i * (demand_i - floor_i)
///   scale   = min(1, (B - sum floors) / sum extras)
///   grant_i = min(demand_i, floor_i + scale * extra_i)
///
/// so sum grant_i <= B always (conservation) and grant_i > 0 whenever
/// demand_i > 0 (starvation floor). Objectives (maximized): total
/// satisfied demand, worst-tenant satisfaction ratio (fairness), and
/// budget left unspent (economy). The enacted split is picked from the
/// Pareto front deterministically: max fairness, ties broken by max
/// satisfaction, then front order.
class FleetBudgetProblem final : public opt::Problem {
 public:
  FleetBudgetProblem(ArbiterConfig config, std::vector<double> demands,
                     std::vector<double> weights);

  const std::vector<opt::VariableSpec>& variables() const override {
    return variables_;
  }
  size_t num_objectives() const override { return 3; }
  size_t num_constraints() const override { return 0; }
  void Evaluate(const std::vector<double>& x,
                std::vector<double>* objectives,
                std::vector<double>* violations) const override;

  /// Decodes a genome into per-tenant grants (the mapping documented
  /// above). Exposed for tests and for the arbiter's final pick.
  std::vector<double> Decode(const std::vector<double>& x) const;

 private:
  ArbiterConfig config_;
  std::vector<double> demands_;
  std::vector<double> weights_;
  std::vector<double> floors_;
  double floor_sum_ = 0.0;
  std::vector<opt::VariableSpec> variables_;
};

class BudgetArbiter {
 public:
  explicit BudgetArbiter(ArbiterConfig config);

  /// Splits the fleet budget across tenants given their current hourly
  /// dollar demands (estimated spend at full satisfaction) and weights.
  /// Fast paths: an all-zero demand vector grants nothing; total demand
  /// within budget grants every demand outright. Contended demand runs
  /// NSGA-II. Errors: size mismatch, negative demand/weight, or a
  /// solver failure.
  Result<BudgetSplit> Arbitrate(const std::vector<double>& demands,
                                const std::vector<double>& weights);

  /// Same split over an explicit budget instead of the configured
  /// fleet-wide one. Heterogeneous-horizon sweeps arbitrate each
  /// boundary over the *remainder* budget — the fleet budget minus the
  /// grants currently held by tenants not at this boundary — so the
  /// fleet-wide hourly budget stays conserved per overlapping window.
  /// `split.conserved` is checked against `budget_usd_per_hour`.
  Result<BudgetSplit> Arbitrate(const std::vector<double>& demands,
                                const std::vector<double>& weights,
                                double budget_usd_per_hour);

  const ArbiterConfig& config() const { return config_; }

 private:
  ArbiterConfig config_;
};

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_BUDGET_ARBITER_H_
