#ifndef FLOWER_FLEET_FLOW_PARTITION_H_
#define FLOWER_FLEET_FLOW_PARTITION_H_

#include <memory>
#include <string>
#include <vector>

#include "cloudwatch/metric_store.h"
#include "core/flow_builder.h"
#include "fleet/budget_mailbox.h"
#include "fleet/tenant.h"
#include "obs/health/health_monitor.h"
#include "obs/replay/bundle.h"
#include "obs/replay/flight_recorder.h"
#include "obs/telemetry.h"
#include "sim/fault_injector.h"
#include "sim/simulation.h"

namespace flower::fleet {

/// Flight-recorder / postmortem knobs of one partition. The recorder
/// itself is allocation-capped (see obs::replay::RecorderConfig);
/// health_trigger additionally runs a per-partition HealthMonitor with
/// burn-rate SLOs so an alert edge arms the capture automatically.
struct CaptureConfig {
  bool enabled = false;
  /// Evaluate per-layer burn-rate SLOs every health_eval_period_sec and
  /// trigger the recorder (plus a bundle dump when bundle_dir is set)
  /// on the first alert edge.
  bool health_trigger = false;
  double health_eval_period_sec = 60.0;
  /// Per-layer utilization SLO shape (MakeDefaultSloPack semantics).
  double util_threshold = 90.0;
  double slo_objective = 0.95;
  double slo_fast_window_sec = 300.0;
  double slo_slow_window_sec = 3600.0;
  obs::replay::RecorderConfig recorder;
  /// When non-empty, an alert-edge trigger dumps the capture bundle to
  /// `<bundle_dir>/<tenant>.json` (one dump per partition; created if
  /// missing).
  std::string bundle_dir;
};

/// Shared partition-shaping knobs, set once by the FleetManager.
/// Defaults are tuned for fleet scale: coarse service ticks and small
/// telemetry rings keep a thousand partitions tractable while leaving
/// every control decision observable.
struct PartitionConfig {
  /// Fleet arbitration cadence; also each flow's re-plan period.
  double arbitration_period_sec = 900.0;
  /// Re-plans fire this long *after* each period boundary, so they see
  /// the budget granted by the arbitration that opened the period (the
  /// boundary itself belongs to the previous advance — RunUntil's end
  /// is inclusive).
  double replan_offset_sec = 1.0;
  /// Longest simulated horizon (pre-samples MMPP switch schedules).
  double horizon_sec = 86400.0;
  /// Workload/service cadence (coarser than the single-flow defaults).
  double workload_emit_period_sec = 5.0;
  double storm_tick_period_sec = 5.0;
  /// Telemetry ring capacities per partition.
  size_t decision_capacity = 256;
  size_t trace_capacity = 256;
  size_t span_capacity = 1024;
  /// Enables causal-span recording (each partition gets a disjoint id
  /// namespace: partition index × SpanCollector::kIdStride).
  bool record_spans = false;
  /// Per-flow NSGA-II re-plan settings (the flow -> layer level of the
  /// hierarchical planner). Tiny by default — a thousand flows re-plan
  /// every period — with warm starts and the plan cache on so unchanged
  /// grants skip the solver entirely.
  opt::Nsga2Config flow_solver = [] {
    opt::Nsga2Config c;
    c.population_size = 16;
    c.generations = 10;
    return c;
  }();
  core::IncrementalPlanning flow_incremental = [] {
    core::IncrementalPlanning inc;
    inc.warm_start = true;
    inc.cache = true;
    inc.stall_generations = 3;
    return inc;
  }();
  /// Threads for the per-flow NSGA-II solve. 1 inside fleet sweeps
  /// (nested parallelism would oversubscribe the pool); replays of a
  /// solo partition may raise it — the solver is thread-count-invariant,
  /// so the digest does not change.
  size_t flow_solver_threads = 1;
  /// Flight-recorder / postmortem capture.
  CaptureConfig capture;
};

/// One tenant's self-contained simulation partition: its own clock
/// (sim::Simulation), metric store, telemetry hub, and managed flow.
/// Nothing here is shared with other partitions, so the FleetManager
/// can advance many partitions concurrently over a ThreadPool and the
/// result of each is independent of the thread that ran it — the
/// determinism contract of the fleet merge.
class FlowPartition {
 public:
  /// Builds and starts the partition (flow running, loops attached,
  /// re-planning scheduled). `index` is the tenant's position in the
  /// fleet (span id namespace, stable ordering).
  static Result<std::unique_ptr<FlowPartition>> Create(
      const TenantConfig& tenant, const PartitionConfig& config,
      size_t index);

  /// Runs this partition's simulation up to (and including) `t`.
  /// Safe to call concurrently with other partitions' AdvanceTo — never
  /// with this one's.
  Status AdvanceTo(SimTime t);

  /// Sets the hourly budget the next re-plan will request under (the
  /// arbiter's grant for this tenant).
  void SetBudget(double usd_per_hour) { granted_budget_usd_ = usd_per_hour; }
  double granted_budget_usd() const { return granted_budget_usd_; }

  /// Estimated hourly dollar demand: the controllers' latest *unclamped*
  /// asks (raw_u) priced per layer. Unclamped so a tenant throttled by a
  /// small grant still signals its true need to the arbiter; before the
  /// first control step it is the provisioned resources' cost.
  double DemandUsdPerHour() const;

  /// Hourly cost of the latest *applied* actuations (clamped_u priced
  /// per layer); provisioned cost before the first step.
  double SpendUsdPerHour() const;

  /// Control steps taken so far (decision records ever appended).
  uint64_t StepsTaken() const;

  /// This partition's arbitration cadence: the tenant's own
  /// `arbitration_period_sec` when positive, else the fleet-wide
  /// period it was created under. Also the flow's re-plan period.
  double effective_period_sec() const { return effective_period_sec_; }

  /// Budget handoff cell between this partition and the fleet's
  /// arbitration events (work-stealing sweep only).
  BudgetMailbox& mailbox() { return mailbox_; }
  const BudgetMailbox& mailbox() const { return mailbox_; }

  /// Publishes this partition's demand snapshot for the window opening
  /// at `boundary` into the mailbox. Must be called by the task
  /// currently advancing the partition, with the simulation parked
  /// exactly at `boundary`.
  void PostBoundaryDemand(SimTime boundary);

  /// Consumes the grant with mailbox sequence `seq` if it has been
  /// posted: applies it as the live budget and mirrors it into the
  /// flight recorder. False when the arbiter has not answered yet (the
  /// caller parks the partition instead of blocking a worker).
  bool TryConsumeGrant(uint64_t seq);

  /// Appends this partition's canonical control-decision digest: one
  /// line per retained decision record, formatted identically across
  /// runs. Byte-identical digests at different thread counts are the
  /// fleet determinism verdict.
  void AppendDigest(std::string* out) const;

  /// Mirrors one arbiter grant into the flight recorder (no-op when
  /// capture is off). Called by the FleetManager right after each
  /// arbitration, before the period's sweep.
  void RecordGrant(SimTime t, double demand_usd, double grant_usd);

  /// Snapshot of the flight recorder as a capture bundle. NotFound when
  /// capture is disabled.
  Result<obs::replay::CaptureBundle> MakeBundle() const;

  /// Dumps the capture bundle to `path` (latching an "explicit" trigger
  /// at the current sim time if none fired yet). NotFound when capture
  /// is disabled.
  Status DumpBundle(const std::string& path);

  /// Bundle files written so far (alert-edge auto-dumps + DumpBundle).
  const std::vector<std::string>& bundle_paths() const {
    return bundle_paths_;
  }

  const TenantConfig& tenant() const { return tenant_; }
  sim::Simulation& sim() { return *sim_; }
  obs::Telemetry& telemetry() { return *telemetry_; }
  core::ElasticityManager& manager() { return *managed_.manager; }
  /// Null unless capture.enabled.
  obs::replay::FlightRecorder* recorder() { return recorder_.get(); }
  const obs::replay::FlightRecorder* recorder() const {
    return recorder_.get();
  }
  /// Null unless capture.health_trigger.
  obs::health::HealthMonitor* health() { return health_.get(); }
  /// Null unless the tenant has a fault schedule.
  sim::FaultInjector* fault_injector() { return chaos_.get(); }

 private:
  FlowPartition() = default;

  TenantConfig tenant_;
  CaptureConfig capture_;
  double unit_price_[core::kNumLayers] = {0.0, 0.0, 0.0};
  double granted_budget_usd_ = 0.0;
  double effective_period_sec_ = 0.0;
  BudgetMailbox mailbox_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloudwatch::MetricStore> metrics_;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<sim::FaultInjector> chaos_;
  std::unique_ptr<obs::replay::FlightRecorder> recorder_;
  std::unique_ptr<obs::health::HealthMonitor> health_;
  std::vector<std::string> bundle_paths_;
  bool dumped_ = false;  ///< One auto-dump per partition.
  core::ManagedFlow managed_;
};

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_FLOW_PARTITION_H_
