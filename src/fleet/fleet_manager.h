#ifndef FLOWER_FLEET_FLEET_MANAGER_H_
#define FLOWER_FLEET_FLEET_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "fleet/budget_arbiter.h"
#include "fleet/flow_partition.h"
#include "fleet/tenant.h"
#include "obs/scoped_registry.h"
#include "obs/span.h"

namespace flower::fleet {

/// Fleet-wide settings.
struct FleetConfig {
  /// How RunFor advances the fleet.
  enum class SweepMode {
    /// Work-stealing task sweep: each partition advances independently
    /// to its own next arbitration boundary; the arbiter fires as an
    /// event in virtual time when every tenant sharing a boundary has
    /// posted demand into its budget mailbox. Supports heterogeneous
    /// per-tenant `arbitration_period_sec`; byte-identical digests to
    /// kLockStep for homogeneous fleets.
    kWorkStealing,
    /// Legacy barrier sweep: every partition advances to every fleet
    /// period boundary in lock step. Homogeneous fleets only; kept for
    /// regression comparison and the barrier-vs-stealing benchmark.
    kLockStep,
  };
  SweepMode sweep_mode = SweepMode::kWorkStealing;

  /// The global hourly dollar budget the arbiter divides across
  /// tenants every arbitration period.
  double fleet_budget_usd_per_hour = 100.0;
  double arbitration_period_sec = 900.0;
  double starvation_floor_frac = 0.05;
  /// Worker threads advancing partitions (ThreadPool semantics: counts
  /// the calling thread; 1 = fully inline). The merged result is
  /// identical at any value — that is the fleet determinism contract.
  size_t num_threads = 1;
  /// Fleet -> flow NSGA-II settings. Default is a small fleet-tuned
  /// solver: the split problem is smooth and low-dimensional, so a few
  /// hundred evaluations per period suffice.
  opt::Nsga2Config arbiter_solver = [] {
    opt::Nsga2Config c;
    c.population_size = 32;
    c.generations = 16;
    return c;
  }();
  /// Shared partition shaping (cadence, telemetry caps, flow solver,
  /// flight-recorder capture).
  PartitionConfig partition;
  /// Convenience alias for partition.capture.bundle_dir: when set (and
  /// partition.capture.bundle_dir is empty) alert-triggered capture
  /// bundles are dumped here, one `<tenant>.json` per partition.
  std::string bundle_dir;
};

/// Schedule-level counters of the fleet sweep, accumulated across
/// RunFor calls. Everything here describes the *execution schedule*
/// (stealing, parking, overlap) — none of it feeds ControlDigest() or
/// reports(), which is what lets the numbers vary freely with thread
/// count while the results do not.
struct FleetSweepStats {
  uint64_t tasks_executed = 0;  ///< Partition-segment tasks run.
  uint64_t tasks_spawned = 0;   ///< Tasks re-spawned after a park.
  uint64_t steals = 0;          ///< Tasks claimed cross-worker.
  uint64_t mailbox_waits = 0;   ///< Partitions parked awaiting a grant.
  uint64_t arbitration_events = 0;
  /// Windows where the sum of simultaneously-active grants exceeded
  /// the fleet budget (must stay 0).
  uint64_t conservation_violations = 0;
  double busy_sec = 0.0;  ///< Wall time inside partition tasks, summed.
  double wall_sec = 0.0;  ///< Wall time of the sweeps themselves.
  /// busy/wall: ~1 on one thread, approaches the thread count when
  /// heterogeneous horizons overlap well.
  double overlap_ratio() const {
    return wall_sec > 0.0 ? busy_sec / wall_sec : 0.0;
  }
};

/// Per-tenant outcome of one arbitration period.
struct TenantPeriodOutcome {
  std::string tenant;
  double demand_usd = 0.0;  ///< Demand the arbitration ran on.
  double grant_usd = 0.0;   ///< Budget granted for the period.
  double spend_usd = 0.0;   ///< Applied-actuation cost at period end.
  uint64_t steps = 0;       ///< Control steps taken during the period.
};

/// One arbitration period's merged fleet view, rows in tenant index
/// order (deterministic).
struct FleetPeriodReport {
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::vector<TenantPeriodOutcome> tenants;
  double total_granted_usd = 0.0;
  /// Sum of grants <= fleet budget (must hold every period).
  bool conservation_ok = false;
  /// True when total demand fit the budget and no solver ran.
  bool uncontended = false;
};

/// Runs a fleet of independent tenant flows: one simulation partition
/// per tenant advanced in parallel over a ThreadPool, with a global
/// BudgetArbiter re-dividing the fleet budget at every period boundary
/// (the fleet -> flow level of the hierarchical planner; each flow then
/// re-plans its layers under the grant it received).
///
/// The default sweep is work-stealing: each partition advances
/// independently to its *own* next arbitration boundary, posts its
/// demand into a per-partition budget mailbox, and parks until the
/// boundary's arbitration event fires (all tenants sharing that
/// boundary have posted). Arbitration order is a pure function of
/// (virtual time, tenant index) and partitions share nothing, so the
/// merged reports — and every partition's decision log — are
/// byte-identical at any thread count, and identical to the legacy
/// lock-step sweep for homogeneous fleets.
class FleetManager {
 public:
  explicit FleetManager(FleetConfig config);

  /// Registers a tenant. Errors: duplicate id, or called after Start.
  Status AddTenant(TenantConfig tenant);

  /// Builds every partition (serially, in tenant index order — span id
  /// namespaces and RNG streams depend only on the index). Errors
  /// propagate from partition construction.
  Status Start();

  /// Advances the whole fleet by `horizon_sec`, boundary by boundary,
  /// appending to reports(). Callable repeatedly; every call arbitrates
  /// once at its start (all tenants share the start boundary).
  Status RunFor(double horizon_sec);

  /// Cumulative sweep schedule counters (see FleetSweepStats).
  FleetSweepStats sweep_stats() const;

  /// Fleet-level collector of kArbitrate spans, one per arbitration
  /// event, in the id namespace right above the last partition's
  /// (num_tenants × kIdStride). Null unless partition.record_spans.
  obs::SpanCollector* arbitration_spans() { return arb_spans_.get(); }

  size_t num_tenants() const { return partitions_.size(); }
  SimTime Now() const { return now_; }
  const std::vector<FleetPeriodReport>& reports() const { return reports_; }

  /// Fleet metrics rollup: per-tenant summary instruments live in one
  /// child scope per tenant ({"tenant", id}-labeled), aggregated on
  /// demand by registry().AggregateSnapshot().
  obs::ScopedRegistry& registry() { return registry_; }

  /// Canonical fleet control digest: every arbitration split plus every
  /// partition's retained decision records, in a fixed order and
  /// format. Byte-identical digests across thread counts are the
  /// determinism verdict.
  std::string ControlDigest() const;

  /// Partition access for tests (index order = AddTenant order).
  FlowPartition* partition(size_t i) { return partitions_[i].get(); }

  /// Dumps tenant `index`'s capture bundle to `path` (explicit trigger;
  /// see FlowPartition::DumpBundle). Errors: bad index, capture off.
  Status DumpBundle(size_t index, const std::string& path);

  /// Every bundle file written so far across the fleet (alert-edge
  /// auto-dumps and explicit dumps), tenant index order.
  std::vector<std::string> CapturedBundles() const;

  /// Writes reports() as JSONL: one row per (period, tenant) with
  /// demand/grant/spend/steps plus the period's conservation flag —
  /// fleet runs become analyzable offline. Stable field order.
  Status ExportReportsJsonl(const std::string& path) const;

 private:
  struct SweepEngine;  // Work-stealing event engine (fleet_manager.cpp).

  Status RunForLockStep(double horizon_sec);
  Status RunForWorkStealing(double horizon_sec);

  FleetConfig config_;
  std::vector<TenantConfig> tenants_;
  std::vector<std::unique_ptr<FlowPartition>> partitions_;
  std::unique_ptr<BudgetArbiter> arbiter_;
  std::unique_ptr<exec::ThreadPool> pool_;
  obs::ScopedRegistry registry_;
  std::vector<FleetPeriodReport> reports_;
  std::string split_digest_;  ///< Arbiter grant lines, appended per window.
  std::unique_ptr<obs::SpanCollector> arb_spans_;
  FleetSweepStats stats_;  ///< mailbox_waits filled in sweep_stats().
  SimTime now_ = 0.0;
  bool started_ = false;
};

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_FLEET_MANAGER_H_
