#ifndef FLOWER_FLEET_BUDGET_MAILBOX_H_
#define FLOWER_FLEET_BUDGET_MAILBOX_H_

#include <atomic>
#include <cstdint>

#include "common/time_series.h"

namespace flower::fleet {

/// SPSC handoff cell between one FlowPartition and the fleet's
/// arbitration events. The partition side posts a demand snapshot every
/// time it reaches one of its own arbitration boundaries; the arbiter
/// side consumes the demand, and posts back the grant that opens the
/// partition's next window. Each direction is single-producer /
/// single-consumer by construction: only the task currently advancing
/// the partition posts demands, and arbitration events are processed
/// one at a time in virtual-time order.
///
/// Sequence numbers pair the messages: demand seq n is answered by
/// grant seq n, so a stale read (a grant from a previous boundary) is
/// detectable instead of silently reused. Payload fields are plain —
/// the release store of the sequence publishes them, and the acquire
/// load on the reader side synchronizes, which is what lets the grant
/// cross threads without the partition ever touching a fleet-wide lock.
class BudgetMailbox {
 public:
  /// What a partition publishes when it reaches a boundary. `steps` and
  /// `spend_usd` snapshot the partition state *at* the boundary, so the
  /// arbiter can close the books on the window that just ended without
  /// touching the partition's telemetry from another thread.
  struct Demand {
    SimTime boundary = 0.0;
    double demand_usd = 0.0;
    double spend_usd = 0.0;
    uint64_t steps = 0;  ///< Cumulative control steps at the boundary.
  };

  /// What the arbiter posts back: the hourly budget for the window
  /// opening at `boundary`.
  struct Grant {
    SimTime boundary = 0.0;
    double demand_usd = 0.0;  ///< Demand the grant was computed from.
    double grant_usd = 0.0;
  };

  /// Partition side. Publishes `d` as sequence demand_seq() + 1.
  void PostDemand(const Demand& d);

  /// Arbiter side: the latest posted demand. Valid once demand_seq()
  /// covers the boundary the caller is arbitrating.
  const Demand& demand() const { return demand_; }
  uint64_t demand_seq() const {
    return demand_seq_.load(std::memory_order_acquire);
  }

  /// Arbiter side. Publishes `g` as sequence grant_seq() + 1.
  void PostGrant(const Grant& g);

  /// Partition side: receives the grant with sequence `seq`. False when
  /// that grant has not been posted yet (the partition must park).
  bool TryReceiveGrant(uint64_t seq, Grant* out) const;
  uint64_t grant_seq() const {
    return grant_seq_.load(std::memory_order_acquire);
  }

  /// Times a partition parked at a boundary because its grant was not
  /// ready when it posted (schedule noise — never digest material).
  void RecordWait() { waits_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }

 private:
  Demand demand_;
  Grant grant_;
  std::atomic<uint64_t> demand_seq_{0};
  std::atomic<uint64_t> grant_seq_{0};
  std::atomic<uint64_t> waits_{0};
};

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_BUDGET_MAILBOX_H_
