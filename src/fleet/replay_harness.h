#ifndef FLOWER_FLEET_REPLAY_HARNESS_H_
#define FLOWER_FLEET_REPLAY_HARNESS_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "fleet/flow_partition.h"
#include "obs/replay/bundle.h"
#include "obs/replay/divergence.h"

namespace flower::fleet {

/// Replay-side knobs. The capture is record-cheap; the replay is
/// replay-rich: telemetry rings are forced large and span recording is
/// forced on, so a postmortem sees everything the original fleet run
/// had disabled for scale.
struct ReplayOptions {
  /// Threads for the solo flow's NSGA-II re-plans. The solver is
  /// thread-count-invariant, so any value reproduces the digest.
  size_t flow_solver_threads = 1;
  size_t decision_capacity = 65536;
  size_t trace_capacity = 1 << 20;
  size_t span_capacity = 1 << 16;
};

/// Reconstructs the tenant of a capture bundle as a solo FlowPartition
/// and re-runs it to the trigger time, playing back the recorded
/// arbiter grants at their original timestamps. The replayed flight
/// recorder then carries a decision chain directly comparable to the
/// bundle's — CompareReplay pins the first divergence if any.
class ReplayHarness {
 public:
  /// Builds the solo partition from the bundle's config fingerprint
  /// inputs (spec, seed, fault schedule, span-id namespace). Errors:
  /// bundle without a latched trigger, malformed spec, partition
  /// construction failures. A fingerprint mismatch (bundle edited since
  /// capture) is a warning, not an error — the divergence checker will
  /// attribute it at decision granularity.
  static Result<std::unique_ptr<ReplayHarness>> Create(
      obs::replay::CaptureBundle bundle, const ReplayOptions& options = {});

  /// Re-runs the partition to the recorded trigger time (inclusive),
  /// with grant playback events firing at their recorded timestamps.
  Status Run();

  /// Compares the replayed recorder against the bundle. Call after
  /// Run().
  obs::replay::DivergenceReport Check() const;

  FlowPartition& partition() { return *partition_; }
  const obs::replay::CaptureBundle& bundle() const { return bundle_; }

 private:
  ReplayHarness() = default;

  obs::replay::CaptureBundle bundle_;
  std::unique_ptr<FlowPartition> partition_;
};

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_REPLAY_HARNESS_H_
