#include "fleet/budget_mailbox.h"

namespace flower::fleet {

void BudgetMailbox::PostDemand(const Demand& d) {
  demand_ = d;  // Plain store; published by the release below.
  demand_seq_.fetch_add(1, std::memory_order_release);
}

void BudgetMailbox::PostGrant(const Grant& g) {
  grant_ = g;  // Plain store; published by the release below.
  grant_seq_.fetch_add(1, std::memory_order_release);
}

bool BudgetMailbox::TryReceiveGrant(uint64_t seq, Grant* out) const {
  if (grant_seq_.load(std::memory_order_acquire) < seq) return false;
  *out = grant_;
  return true;
}

}  // namespace flower::fleet
