#ifndef FLOWER_FLEET_TENANT_H_
#define FLOWER_FLEET_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/replay/flight_recorder.h"

namespace flower::fleet {

/// One scheduled fault on a tenant's flow, as plain data (the kind
/// strings are sim::FaultKindToString names, e.g. "sensor-spike"). The
/// partition builds a seeded sim::FaultInjector from these, and the
/// flight recorder captures them verbatim so a replay re-injects the
/// identical schedule.
using TenantFault = obs::replay::RecordedFault;

/// Arrival-pattern family of one tenant's click traffic. Kept as a
/// small enum (instead of a shared_ptr<ArrivalProcess>) so a fleet of
/// thousands of tenants is describable as plain data and every
/// partition can build its own process instance locally.
enum class ArrivalPattern {
  kConstant,    ///< Flat base_rate_per_sec.
  kDiurnal,     ///< base + amplitude * sin(2*pi*(t+phase)/period).
  kFlashCrowd,  ///< base plus a surge of `amplitude` starting at phase.
  kMmpp,        ///< Two-state Markov-modulated (low=base, high=base+amp).
};

const char* ArrivalPatternToString(ArrivalPattern pattern);

/// Inverse of ArrivalPatternToString; false when `name` is unknown.
bool ArrivalPatternFromString(const std::string& name,
                              ArrivalPattern* pattern);

/// Everything the fleet needs to instantiate one tenant's managed flow:
/// identity, money, traffic shape, and topology scale. Heterogeneous
/// fleets are vectors of these; `MakeTenantFleet` synthesizes a varied
/// fleet deterministically from a seed.
struct TenantConfig {
  /// Unique tenant id; used as the metrics {"tenant", id} label, the
  /// ScopedRegistry child name (no '/'), and the trace scope.
  std::string id = "tenant-0";
  /// Seeds the tenant's workload generator and controller jitter.
  uint64_t seed = 42;

  /// Budget the tenant starts with before the first arbitration, and
  /// its weight in the arbiter's split (higher weight = larger slice of
  /// the surplus beyond the starvation floor).
  double initial_budget_usd = 5.0;
  double budget_weight = 1.0;

  /// Traffic shape.
  ArrivalPattern pattern = ArrivalPattern::kConstant;
  double base_rate_per_sec = 10.0;
  double amplitude_per_sec = 0.0;   ///< Diurnal/flash/MMPP swing.
  double period_sec = 3600.0;       ///< Diurnal period / MMPP holding.
  double phase_sec = 0.0;           ///< Diurnal phase / flash start.

  /// Topology scale (initial and max resources per layer).
  int initial_shards = 1;
  int max_shards = 50;
  int initial_workers = 2;
  int max_workers = 50;
  double initial_wcu = 5.0;
  double max_wcu = 2000.0;

  /// Control knobs.
  double reference_utilization_pct = 60.0;
  double monitoring_period_sec = 120.0;

  /// Tenant-local arbitration cadence. 0 (the default) inherits the
  /// fleet-wide `FleetConfig::arbitration_period_sec`, which keeps
  /// existing fleets byte-identical; a positive value gives this tenant
  /// its own boundary lattice {k * period}, letting streaming tenants
  /// arbitrate faster than batch tenants sharing the same budget.
  double arbitration_period_sec = 0.0;

  /// Fault schedule injected into this tenant's partition (empty =
  /// fair weather). Targets are layer names; seeding uses `seed`.
  std::vector<TenantFault> faults;
};

/// Deterministically synthesizes `count` heterogeneous tenants: ids
/// "t0000".."tNNNN", budgets/weights/rates/patterns/topologies varied
/// by cheap per-index mixing of `seed` (no RNG state, so the same
/// (count, seed) always yields the same fleet — the bench's 1/4/16
/// thread runs must build identical fleets).
std::vector<TenantConfig> MakeTenantFleet(size_t count, uint64_t seed);

/// Spreads heterogeneous arbitration horizons over an existing fleet:
/// tenant i gets `base_period_sec / d` where the divisor d is drawn
/// deterministically from {1, 2, 3, 4} by mixing `seed` with i. Using
/// exact divisors keeps shared boundaries exact in double arithmetic
/// (k * (P/d) sums to the same bits as the fleet boundary), so tenants
/// with different cadences still group at common multiples. Divisor 1
/// tenants keep the fleet cadence.
void ApplyPeriodJitter(std::vector<TenantConfig>* tenants,
                       double base_period_sec, uint64_t seed);

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_TENANT_H_
