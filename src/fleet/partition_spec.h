#ifndef FLOWER_FLEET_PARTITION_SPEC_H_
#define FLOWER_FLEET_PARTITION_SPEC_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "fleet/flow_partition.h"
#include "fleet/tenant.h"

namespace flower::fleet {

/// Serializes every *decision-relevant* knob of (tenant, partition) as
/// ordered (key, value) pairs — the flight recorder's config spec. Two
/// runs with equal specs (and equal seed/faults/grants) produce the
/// same control digest, so the spec deliberately EXCLUDES knobs that
/// cannot change decisions: telemetry ring capacities, record_spans,
/// and flow_solver_threads (the solver is thread-count-invariant).
/// Replay overrides exactly those, so bundle fingerprints still match.
std::vector<std::pair<std::string, std::string>> SerializePartitionSpec(
    const TenantConfig& tenant, const PartitionConfig& config);

/// Rebuilds (tenant, partition) from a serialized spec on top of the
/// callers' defaults. Unknown keys are ignored (older builds can read
/// bundles from newer ones as long as the knobs they know about are
/// present). Errors: malformed numeric value, unknown arrival pattern.
Status ParsePartitionSpec(
    const std::vector<std::pair<std::string, std::string>>& spec,
    TenantConfig* tenant, PartitionConfig* config);

}  // namespace flower::fleet

#endif  // FLOWER_FLEET_PARTITION_SPEC_H_
