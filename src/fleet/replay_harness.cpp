#include "fleet/replay_harness.h"

#include <utility>

#include "common/logging.h"
#include "fleet/partition_spec.h"

namespace flower::fleet {

Result<std::unique_ptr<ReplayHarness>> ReplayHarness::Create(
    obs::replay::CaptureBundle bundle, const ReplayOptions& options) {
  if (!bundle.trigger.fired) {
    return Status::InvalidArgument(
        "replay: bundle has no latched trigger (nothing to replay to)");
  }
  if (obs::replay::BundleFingerprint(bundle) != bundle.fingerprint) {
    FLOWER_LOG(Warning)
        << "replay: bundle fingerprint mismatch — seed/spec/fault inputs "
           "were altered since capture; the divergence checker will "
           "attribute the drift at decision granularity";
  }

  TenantConfig tenant;
  PartitionConfig pc;
  FLOWER_RETURN_NOT_OK(ParsePartitionSpec(bundle.spec, &tenant, &pc));

  // The bundle's identity fields win over the spec: a corrupted bundle
  // (e.g. a bumped seed) must replay with its own claimed inputs so the
  // checker can pin where the recorded chain stops matching.
  tenant.seed = bundle.seed;
  tenant.faults = bundle.faults;

  // Replay-rich overrides. None of these are part of the spec (or the
  // fingerprint): they change what is *observed*, never what is decided.
  pc.decision_capacity = options.decision_capacity;
  pc.trace_capacity = options.trace_capacity;
  pc.span_capacity = options.span_capacity;
  pc.record_spans = true;
  pc.flow_solver_threads =
      options.flow_solver_threads == 0 ? 1 : options.flow_solver_threads;
  pc.capture.enabled = true;
  pc.capture.recorder = bundle.recorder;
  pc.capture.bundle_dir.clear();  // A replay never re-dumps.

  auto harness = std::unique_ptr<ReplayHarness>(new ReplayHarness());
  FLOWER_ASSIGN_OR_RETURN(
      harness->partition_,
      FlowPartition::Create(tenant, pc, bundle.tenant_index));

  // Stamp the replayed recorder with the bundle's identity verbatim, so
  // its fingerprint answers "same inputs as the capture claims?" rather
  // than re-deriving from the reconstructed config.
  obs::replay::FlightRecorder* rec = harness->partition_->recorder();
  rec->SetIdentity(bundle.tenant_id, bundle.tenant_index, bundle.seed,
                   bundle.span_id_offset);
  rec->SetSpec(bundle.spec);
  rec->ClearFaults();
  for (const obs::replay::RecordedFault& f : bundle.faults) rec->AddFault(f);

  // Grant playback: in the fleet, SetBudget lands at each arbitration
  // boundary before the period's sweep; the only reader is the re-plan
  // at boundary + replan_offset_sec, so scheduling the same values at
  // the same timestamps inside one continuous run is exact.
  FlowPartition* part = harness->partition_.get();
  for (const obs::replay::GrantEntry& g : bundle.grants) {
    double usd = g.grant_usd;
    FLOWER_RETURN_NOT_OK(part->sim().ScheduleAt(
        g.time, [part, usd]() { part->SetBudget(usd); }));
  }

  harness->bundle_ = std::move(bundle);
  return harness;
}

Status ReplayHarness::Run() {
  return partition_->AdvanceTo(bundle_.trigger.time);
}

obs::replay::DivergenceReport ReplayHarness::Check() const {
  return obs::replay::CompareReplay(bundle_, *partition_->recorder());
}

}  // namespace flower::fleet
