#include "fleet/fleet_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "obs/exporters.h"

namespace flower::fleet {

FleetManager::FleetManager(FleetConfig config) : config_(std::move(config)) {
  // The partition re-plan cadence is the arbitration cadence — a flow
  // re-plans exactly once under each grant. Tenants with their own
  // arbitration_period_sec override this per partition.
  config_.partition.arbitration_period_sec = config_.arbitration_period_sec;
  if (!config_.bundle_dir.empty() &&
      config_.partition.capture.bundle_dir.empty()) {
    config_.partition.capture.bundle_dir = config_.bundle_dir;
  }
}

Status FleetManager::AddTenant(TenantConfig tenant) {
  if (started_) {
    return Status::FailedPrecondition(
        "FleetManager: AddTenant must precede Start");
  }
  for (const TenantConfig& t : tenants_) {
    if (t.id == tenant.id) {
      return Status::AlreadyExists("FleetManager: duplicate tenant id '" +
                                   tenant.id + "'");
    }
  }
  if (tenant.arbitration_period_sec < 0.0 ||
      !std::isfinite(tenant.arbitration_period_sec)) {
    return Status::InvalidArgument(
        "FleetManager: tenant arbitration_period_sec must be >= 0");
  }
  tenants_.push_back(std::move(tenant));
  return Status::OK();
}

Status FleetManager::Start() {
  if (started_) {
    return Status::FailedPrecondition("FleetManager: already started");
  }
  if (tenants_.empty()) {
    return Status::InvalidArgument("FleetManager: no tenants");
  }
  if (config_.sweep_mode == FleetConfig::SweepMode::kLockStep) {
    for (const TenantConfig& t : tenants_) {
      if (t.arbitration_period_sec > 0.0 &&
          t.arbitration_period_sec != config_.arbitration_period_sec) {
        return Status::InvalidArgument(
            "FleetManager: lock-step sweep requires homogeneous "
            "arbitration periods (tenant '" +
            t.id + "' overrides the fleet period)");
      }
    }
  }
  ArbiterConfig ac;
  ac.fleet_budget_usd_per_hour = config_.fleet_budget_usd_per_hour;
  ac.starvation_floor_frac = config_.starvation_floor_frac;
  ac.solver = config_.arbiter_solver;
  // Lock-step arbitrations run between sweeps and may use the fleet's
  // full parallelism. Work-stealing arbitrations run *inside* worker
  // tasks, so they stay single-threaded to avoid nested pools — the
  // solver is thread-count-invariant, so grants are identical either
  // way.
  ac.solver.num_threads =
      config_.sweep_mode == FleetConfig::SweepMode::kLockStep
          ? config_.num_threads
          : 1;
  arbiter_ = std::make_unique<BudgetArbiter>(ac);
  pool_ = std::make_unique<exec::ThreadPool>(config_.num_threads);
  partitions_.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    FLOWER_ASSIGN_OR_RETURN(
        std::unique_ptr<FlowPartition> p,
        FlowPartition::Create(tenants_[i], config_.partition, i));
    partitions_.push_back(std::move(p));
  }
  if (config_.partition.record_spans) {
    arb_spans_ = std::make_unique<obs::SpanCollector>();
    FLOWER_RETURN_NOT_OK(arb_spans_->set_id_offset(
        static_cast<obs::SpanId>(tenants_.size()) *
        obs::SpanCollector::kIdStride));
    arb_spans_->set_enabled(true);
  }
  started_ = true;
  return Status::OK();
}

Status FleetManager::RunFor(double horizon_sec) {
  if (!started_) {
    return Status::FailedPrecondition("FleetManager: not started");
  }
  if (horizon_sec < 0.0) {
    return Status::InvalidArgument("FleetManager: negative horizon");
  }
  if (horizon_sec == 0.0) return Status::OK();
  auto t0 = std::chrono::steady_clock::now();
  Status st = config_.sweep_mode == FleetConfig::SweepMode::kLockStep
                  ? RunForLockStep(horizon_sec)
                  : RunForWorkStealing(horizon_sec);
  stats_.wall_sec +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return st;
}

Status FleetManager::RunForLockStep(double horizon_sec) {
  size_t n = partitions_.size();
  SimTime target = now_ + horizon_sec;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) weights[i] = tenants_[i].budget_weight;
  // One report per period; exact up-front reservation so long horizons
  // never reallocate mid-run.
  reports_.reserve(reports_.size() +
                   static_cast<size_t>(std::ceil(
                       horizon_sec / config_.arbitration_period_sec)));

  while (now_ < target) {
    SimTime t_end = std::min(now_ + config_.arbitration_period_sec, target);

    // Arbitrate on the demands visible now (period 0 sees the
    // provisioned-resource cost; later periods see the controllers'
    // latest unclamped asks).
    std::vector<double> demands(n);
    std::vector<uint64_t> steps_before(n);
    for (size_t i = 0; i < n; ++i) {
      demands[i] = partitions_[i]->DemandUsdPerHour();
      steps_before[i] = partitions_[i]->StepsTaken();
    }
    FLOWER_ASSIGN_OR_RETURN(BudgetSplit split,
                            arbiter_->Arbitrate(demands, weights));
    ++stats_.arbitration_events;
    if (arb_spans_ != nullptr) {
      arb_spans_->Emit(obs::SpanKind::kArbitrate, "arbitrate", now_, 0.0, 1,
                       0, 0, 0, split.total_granted_usd);
    }
    for (size_t i = 0; i < n; ++i) {
      partitions_[i]->SetBudget(split.grants_usd[i]);
      // Mirror the grant into the partition's flight recorder before
      // the sweep: a capture taken mid-period carries the grant that
      // shaped the period's re-plan.
      partitions_[i]->RecordGrant(now_, demands[i], split.grants_usd[i]);
    }

    // Advance every partition to the boundary. Partitions share
    // nothing; each one's events run on whichever worker claims it.
    FLOWER_RETURN_NOT_OK(pool_->ParallelFor(
        0, n, 1, [&](size_t i) { return partitions_[i]->AdvanceTo(t_end); }));

    // Deterministic merge, tenant index order.
    FleetPeriodReport report;
    report.start = now_;
    report.end = t_end;
    report.uncontended = split.uncontended;
    report.conservation_ok =
        split.conserved &&
        split.total_granted_usd <=
            config_.fleet_budget_usd_per_hour * (1.0 + 1e-9) + 1e-12;
    if (!report.conservation_ok) ++stats_.conservation_violations;
    report.total_granted_usd = split.total_granted_usd;
    report.tenants.reserve(n);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "period t=[%.3f,%.3f] granted=%.6f\n",
                  now_, t_end, split.total_granted_usd);
    split_digest_ += buf;
    for (size_t i = 0; i < n; ++i) {
      TenantPeriodOutcome row;
      row.tenant = tenants_[i].id;
      row.demand_usd = demands[i];
      row.grant_usd = split.grants_usd[i];
      row.spend_usd = partitions_[i]->SpendUsdPerHour();
      row.steps = partitions_[i]->StepsTaken() - steps_before[i];
      std::snprintf(buf, sizeof(buf),
                    "  %s demand=%.6f grant=%.6f spend=%.6f steps=%llu\n",
                    row.tenant.c_str(), row.demand_usd, row.grant_usd,
                    row.spend_usd,
                    static_cast<unsigned long long>(row.steps));
      split_digest_ += buf;

      // Fleet rollup: per-tenant summary instruments in the tenant's
      // own child scope, {"tenant", id}-labeled so AggregateSnapshot
      // never merges two tenants' series.
      obs::MetricsRegistry& m = registry_.Child(row.tenant)->metrics();
      obs::LabelSet labels = {{"tenant", row.tenant}};
      m.GetGauge("fleet.demand_usd", labels)->Set(row.demand_usd);
      m.GetGauge("fleet.grant_usd", labels)->Set(row.grant_usd);
      m.GetGauge("fleet.spend_usd", labels)->Set(row.spend_usd);
      m.GetCounter("fleet.steps", labels)->Increment(row.steps);
      report.tenants.push_back(std::move(row));
    }
    reports_.push_back(std::move(report));
    now_ = t_end;
  }
  return Status::OK();
}

/// Work-stealing event engine of one RunFor call.
///
/// Each tenant's arbitration boundaries {start + k * P_i : < target}
/// are precomputed and grouped by exact virtual time into events; a
/// tenant task advances its partition boundary to boundary, posting a
/// demand snapshot into its mailbox at each one. The event whose every
/// participant has posted is arbitrated — strictly in ascending
/// virtual-time order, under a single-flight token — over the fleet
/// budget minus the grants currently held by tenants *not* at this
/// boundary, which is what conserves the budget per overlapping
/// window. Grants flow back through the mailboxes; a tenant whose
/// grant is not ready parks (its task returns) and is re-spawned by
/// the arbitration that answers it, so only that tenant waits — never
/// the fleet.
///
/// Determinism: boundary times and event order are pure functions of
/// the tenant configs; demands are pure functions of each partition's
/// own simulation at the boundary; the remainder budget at an event
/// depends only on grants from earlier events (ascending-order
/// processing). No result anywhere depends on which worker ran what.
struct FleetManager::SweepEngine {
  struct TenantState {
    std::vector<SimTime> boundaries;  ///< start + k * P_i, < target.
    std::vector<size_t> event_of;     ///< Event index per boundary.
    uint64_t seq_base = 0;  ///< Mailbox seq before this run's windows.
    // Task-owned cursor (ownership transfers through the park baton).
    size_t k = 0;             ///< Current boundary index.
    bool posted_first = false;
    bool advancing = false;   ///< Grant consumed, segment not yet run.
    /// Park baton: set by the tenant task before it returns to wait,
    /// cleared by whoever takes responsibility for resuming it (the
    /// arbitration that posts the grant, or the task itself when the
    /// grant lands in the park window). Exactly one side wins the
    /// exchange, so the tenant is resumed exactly once.
    std::atomic<bool> parked{false};
  };

  struct Window {
    SimTime open = 0.0, close = 0.0;
    double demand = 0.0, grant = 0.0, spend = 0.0;
    uint64_t steps_open = 0, steps_close = 0;
    bool conserved = false, uncontended = false;
  };

  struct Event {
    SimTime time = 0.0;
    std::vector<uint32_t> participants;    ///< Tenant index, ascending.
    std::vector<uint32_t> boundary_index;  ///< Participant's k at time.
    std::atomic<uint32_t> arrived{0};
  };

  FleetManager& fm;
  SimTime start, target;
  std::unique_ptr<TenantState[]> states;
  std::unique_ptr<Event[]> events;
  size_t num_events = 0;
  /// windows[i][k] = tenant i's window opening at boundaries[k].
  std::vector<std::vector<Window>> windows;
  std::vector<double> current_grant;  ///< Guarded by events_mu.
  std::mutex events_mu;               ///< Single-flight processing token.
  std::atomic<size_t> next_event{0};  ///< Written under events_mu.

  SweepEngine(FleetManager& fleet, SimTime start_t, SimTime target_t)
      : fm(fleet), start(start_t), target(target_t) {}

  Status Build() {
    size_t n = fm.partitions_.size();
    states = std::make_unique<TenantState[]>(n);
    windows.resize(n);
    current_grant.assign(n, 0.0);
    std::vector<std::pair<SimTime, uint32_t>> marks;  // (time, tenant)
    for (size_t i = 0; i < n; ++i) {
      double period = fm.partitions_[i]->effective_period_sec();
      if (period <= 0.0 || !std::isfinite(period)) {
        return Status::InvalidArgument(
            "FleetManager: non-positive arbitration period for tenant '" +
            fm.tenants_[i].id + "'");
      }
      TenantState& s = states[i];
      s.seq_base = fm.partitions_[i]->mailbox().demand_seq();
      for (uint64_t k = 0;; ++k) {
        SimTime b = start + static_cast<double>(k) * period;
        if (b >= target) break;
        s.boundaries.push_back(b);
        marks.emplace_back(b, static_cast<uint32_t>(i));
      }
      s.event_of.resize(s.boundaries.size());
      windows[i].resize(s.boundaries.size());
      for (size_t k = 0; k < s.boundaries.size(); ++k) {
        windows[i][k].open = s.boundaries[k];
        windows[i][k].close =
            k + 1 < s.boundaries.size() ? s.boundaries[k + 1] : target;
      }
    }
    // Group boundary marks sharing an exact virtual time into events
    // (ApplyPeriodJitter's divisor periods make shared boundaries
    // bit-exact). Sorted by (time, tenant), so participants ascend.
    std::sort(marks.begin(), marks.end());
    std::vector<size_t> event_start;
    for (size_t m = 0; m < marks.size(); ++m) {
      if (m == 0 || marks[m].first != marks[m - 1].first) {
        event_start.push_back(m);
      }
    }
    num_events = event_start.size();
    events = std::make_unique<Event[]>(num_events);
    // Marks are sorted, so each tenant's boundaries stream by in
    // ascending order — a per-tenant cursor recovers the boundary
    // index without any time matching.
    std::vector<uint32_t> next_k(n, 0);
    for (size_t e = 0; e < num_events; ++e) {
      size_t lo = event_start[e];
      size_t hi = e + 1 < num_events ? event_start[e + 1] : marks.size();
      Event& ev = events[e];
      ev.time = marks[lo].first;
      for (size_t m = lo; m < hi; ++m) {
        uint32_t i = marks[m].second;
        uint32_t k = next_k[i]++;
        states[i].event_of[k] = e;
        ev.participants.push_back(i);
        ev.boundary_index.push_back(k);
      }
    }
    return Status::OK();
  }

  void PostAndArrive(uint32_t i, size_t k) {
    TenantState& s = states[i];
    fm.partitions_[i]->PostBoundaryDemand(s.boundaries[k]);
    events[s.event_of[k]].arrived.fetch_add(1);
  }

  bool EventReady(size_t e) const {
    return events[e].arrived.load() ==
           static_cast<uint32_t>(events[e].participants.size());
  }

  /// Arbitrates event `e`: closes the participants' previous windows,
  /// opens their next ones, and posts grants. Runs under events_mu.
  Status ProcessEvent(size_t e, exec::ThreadPool::TaskContext& ctx) {
    Event& ev = events[e];
    size_t p = ev.participants.size();
    std::vector<double> demands(p), weights(p);
    for (size_t idx = 0; idx < p; ++idx) {
      uint32_t i = ev.participants[idx];
      uint32_t k = ev.boundary_index[idx];
      const BudgetMailbox& mb = fm.partitions_[i]->mailbox();
      if (mb.demand_seq() < states[i].seq_base + k + 1) {
        return Status::Internal("FleetManager: demand not posted at event");
      }
      const BudgetMailbox::Demand& d = mb.demand();
      if (k > 0) {
        Window& prev = windows[i][k - 1];
        prev.spend = d.spend_usd;
        prev.steps_close = d.steps;
      }
      Window& w = windows[i][k];
      w.demand = d.demand_usd;
      w.steps_open = d.steps;
      demands[idx] = d.demand_usd;
      weights[idx] = fm.tenants_[i].budget_weight;
    }
    // Remainder budget: the fleet budget minus grants still held by
    // tenants whose windows straddle this boundary.
    double held = 0.0;
    for (size_t j = 0; j < current_grant.size(); ++j) held += current_grant[j];
    for (size_t idx = 0; idx < p; ++idx) {
      held -= current_grant[ev.participants[idx]];
    }
    double budget = fm.config_.fleet_budget_usd_per_hour;
    double remainder = std::max(0.0, budget - held);
    FLOWER_ASSIGN_OR_RETURN(BudgetSplit split,
                            fm.arbiter_->Arbitrate(demands, weights,
                                                   remainder));
    for (size_t idx = 0; idx < p; ++idx) {
      current_grant[ev.participants[idx]] = split.grants_usd[idx];
    }
    double active = 0.0;
    for (size_t j = 0; j < current_grant.size(); ++j) {
      active += current_grant[j];
    }
    bool conserved =
        split.conserved && active <= budget * (1.0 + 1e-9) + 1e-12;
    if (!conserved) ++fm.stats_.conservation_violations;
    ++fm.stats_.arbitration_events;
    if (fm.arb_spans_ != nullptr) {
      fm.arb_spans_->Emit(obs::SpanKind::kArbitrate, "arbitrate", ev.time,
                          0.0, 1, 0, 0, 0, split.total_granted_usd);
    }
    for (size_t idx = 0; idx < p; ++idx) {
      uint32_t i = ev.participants[idx];
      Window& w = windows[i][ev.boundary_index[idx]];
      w.grant = split.grants_usd[idx];
      w.conserved = conserved;
      w.uncontended = split.uncontended;
    }
    // Answer the mailboxes last, then hand parked tenants back to the
    // pool. The baton exchange makes the resume exactly-once even when
    // the tenant is mid-park on another worker.
    for (size_t idx = 0; idx < p; ++idx) {
      uint32_t i = ev.participants[idx];
      BudgetMailbox::Grant g;
      g.boundary = ev.time;
      g.demand_usd = demands[idx];
      g.grant_usd = split.grants_usd[idx];
      fm.partitions_[i]->mailbox().PostGrant(g);
      if (states[i].parked.exchange(false)) ctx.Spawn(i);
    }
    return Status::OK();
  }

  /// Drains ready events in ascending virtual-time order. try_lock +
  /// recheck-after-unlock: a thread that loses the token returns, and
  /// the holder re-checks after releasing so an event made ready during
  /// its critical section is never stranded.
  Status ProcessReadyEvents(exec::ThreadPool::TaskContext& ctx) {
    for (;;) {
      if (!events_mu.try_lock()) return Status::OK();
      Status st = Status::OK();
      while (st.ok()) {
        size_t e = next_event.load(std::memory_order_relaxed);
        if (e >= num_events || !EventReady(e)) break;
        st = ProcessEvent(e, ctx);
        if (st.ok()) {
          next_event.store(e + 1, std::memory_order_relaxed);
        }
      }
      events_mu.unlock();
      if (!st.ok()) return st;
      size_t e = next_event.load();
      if (e >= num_events || !EventReady(e)) return Status::OK();
    }
  }

  /// One tenant's task body. Runs the partition from its current
  /// boundary toward the target, parking at boundaries whose grant has
  /// not been arbitrated yet.
  Status TenantTask(uint64_t id, exec::ThreadPool::TaskContext& ctx) {
    uint32_t i = static_cast<uint32_t>(id);
    TenantState& s = states[i];
    FlowPartition* part = fm.partitions_[i].get();
    if (!s.posted_first) {
      s.posted_first = true;
      PostAndArrive(i, 0);
      FLOWER_RETURN_NOT_OK(ProcessReadyEvents(ctx));
    }
    for (;;) {
      if (!s.advancing) {
        uint64_t seq = s.seq_base + s.k + 1;
        if (part->TryConsumeGrant(seq)) {
          s.advancing = true;
        } else {
          s.parked.store(true);
          if (part->mailbox().grant_seq() >= seq &&
              s.parked.exchange(false)) {
            // The grant landed inside the park window and we won our
            // own baton back — consume inline instead of returning.
            part->TryConsumeGrant(seq);
            s.advancing = true;
          } else {
            part->mailbox().RecordWait();
            return Status::OK();  // Resumed by the arbitration's Spawn.
          }
        }
      }
      SimTime next =
          s.k + 1 < s.boundaries.size() ? s.boundaries[s.k + 1] : target;
      FLOWER_RETURN_NOT_OK(part->AdvanceTo(next));
      if (s.k + 1 >= s.boundaries.size()) return Status::OK();
      ++s.k;
      s.advancing = false;
      PostAndArrive(i, s.k);
      FLOWER_RETURN_NOT_OK(ProcessReadyEvents(ctx));
    }
  }

  /// Post-sweep merge on the calling thread: close the final windows
  /// from live partition state, then emit digest lines, reports, and
  /// the registry rollup in (close, open, tenant) order — the exact
  /// byte sequence the lock-step sweep produced for homogeneous fleets.
  void Finalize() {
    size_t n = fm.partitions_.size();
    for (size_t i = 0; i < n; ++i) {
      if (windows[i].empty()) continue;
      Window& last = windows[i].back();
      last.spend = fm.partitions_[i]->SpendUsdPerHour();
      last.steps_close = fm.partitions_[i]->StepsTaken();
    }
    // (tenant, boundary) refs sorted into emission order.
    std::vector<std::pair<uint32_t, uint32_t>> order;
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < windows[i].size(); ++k) {
        order.emplace_back(static_cast<uint32_t>(i),
                           static_cast<uint32_t>(k));
      }
    }
    std::sort(order.begin(), order.end(),
              [this](const std::pair<uint32_t, uint32_t>& a,
                     const std::pair<uint32_t, uint32_t>& b) {
                const Window& wa = windows[a.first][a.second];
                const Window& wb = windows[b.first][b.second];
                if (wa.close != wb.close) return wa.close < wb.close;
                if (wa.open != wb.open) return wa.open < wb.open;
                return a.first < b.first;
              });
    size_t groups = 0;
    for (size_t m = 0; m < order.size(); ++m) {
      const Window& w = windows[order[m].first][order[m].second];
      if (m == 0) {
        ++groups;
        continue;
      }
      const Window& prev = windows[order[m - 1].first][order[m - 1].second];
      if (w.close != prev.close || w.open != prev.open) ++groups;
    }
    fm.reports_.reserve(fm.reports_.size() + groups);

    char buf[160];
    size_t m = 0;
    while (m < order.size()) {
      const Window& head = windows[order[m].first][order[m].second];
      size_t hi = m;
      double granted = 0.0;
      while (hi < order.size()) {
        const Window& w = windows[order[hi].first][order[hi].second];
        if (w.close != head.close || w.open != head.open) break;
        granted += w.grant;
        ++hi;
      }
      FleetPeriodReport report;
      report.start = head.open;
      report.end = head.close;
      report.total_granted_usd = granted;
      report.conservation_ok = head.conserved;
      report.uncontended = head.uncontended;
      report.tenants.reserve(hi - m);
      std::snprintf(buf, sizeof(buf), "period t=[%.3f,%.3f] granted=%.6f\n",
                    head.open, head.close, granted);
      fm.split_digest_ += buf;
      for (; m < hi; ++m) {
        uint32_t i = order[m].first;
        const Window& w = windows[i][order[m].second];
        TenantPeriodOutcome row;
        row.tenant = fm.tenants_[i].id;
        row.demand_usd = w.demand;
        row.grant_usd = w.grant;
        row.spend_usd = w.spend;
        row.steps = w.steps_close - w.steps_open;
        std::snprintf(buf, sizeof(buf),
                      "  %s demand=%.6f grant=%.6f spend=%.6f steps=%llu\n",
                      row.tenant.c_str(), row.demand_usd, row.grant_usd,
                      row.spend_usd,
                      static_cast<unsigned long long>(row.steps));
        fm.split_digest_ += buf;
        obs::MetricsRegistry& reg =
            fm.registry_.Child(row.tenant)->metrics();
        obs::LabelSet labels = {{"tenant", row.tenant}};
        reg.GetGauge("fleet.demand_usd", labels)->Set(row.demand_usd);
        reg.GetGauge("fleet.grant_usd", labels)->Set(row.grant_usd);
        reg.GetGauge("fleet.spend_usd", labels)->Set(row.spend_usd);
        reg.GetCounter("fleet.steps", labels)->Increment(row.steps);
        report.tenants.push_back(std::move(row));
      }
      fm.reports_.push_back(std::move(report));
    }
  }
};

Status FleetManager::RunForWorkStealing(double horizon_sec) {
  SweepEngine engine(*this, now_, now_ + horizon_sec);
  FLOWER_RETURN_NOT_OK(engine.Build());
  std::vector<uint64_t> seeds(partitions_.size());
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  exec::TaskStats ts;
  FLOWER_RETURN_NOT_OK(pool_->RunTasks(
      seeds,
      [&engine](uint64_t id, exec::ThreadPool::TaskContext& ctx) {
        return engine.TenantTask(id, ctx);
      },
      &ts));
  if (engine.next_event.load() != engine.num_events) {
    return Status::Internal("FleetManager: sweep ended with unprocessed "
                            "arbitration events");
  }
  stats_.tasks_executed += ts.executed;
  stats_.tasks_spawned += ts.spawned;
  stats_.steals += ts.steals;
  stats_.busy_sec += ts.busy_sec;
  engine.Finalize();
  now_ = engine.target;
  return Status::OK();
}

FleetSweepStats FleetManager::sweep_stats() const {
  FleetSweepStats out = stats_;
  for (const std::unique_ptr<FlowPartition>& p : partitions_) {
    out.mailbox_waits += p->mailbox().waits();
  }
  return out;
}

std::string FleetManager::ControlDigest() const {
  std::string out = split_digest_;
  for (const std::unique_ptr<FlowPartition>& p : partitions_) {
    p->AppendDigest(&out);
  }
  return out;
}

Status FleetManager::DumpBundle(size_t index, const std::string& path) {
  if (index >= partitions_.size()) {
    return Status::OutOfRange("FleetManager: tenant index out of range");
  }
  return partitions_[index]->DumpBundle(path);
}

std::vector<std::string> FleetManager::CapturedBundles() const {
  std::vector<std::string> out;
  for (const std::unique_ptr<FlowPartition>& p : partitions_) {
    const std::vector<std::string>& paths = p->bundle_paths();
    out.insert(out.end(), paths.begin(), paths.end());
  }
  return out;
}

Status FleetManager::ExportReportsJsonl(const std::string& path) const {
  return obs::ExportToFile(path, [this](std::ostream& os) {
    char buf[64];
    auto num = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.6f", v);
      return std::string(buf);
    };
    for (const FleetPeriodReport& r : reports_) {
      for (const TenantPeriodOutcome& t : r.tenants) {
        os << "{\"start\":" << num(r.start) << ",\"end\":" << num(r.end)
           << ",\"tenant\":\"" << obs::internal::JsonEscape(t.tenant)
           << "\",\"demand_usd\":" << num(t.demand_usd)
           << ",\"grant_usd\":" << num(t.grant_usd)
           << ",\"spend_usd\":" << num(t.spend_usd) << ",\"steps\":" << t.steps
           << ",\"total_granted_usd\":" << num(r.total_granted_usd)
           << ",\"conservation_ok\":" << (r.conservation_ok ? "true" : "false")
           << ",\"uncontended\":" << (r.uncontended ? "true" : "false")
           << "}\n";
      }
    }
  });
}

}  // namespace flower::fleet
