#include "fleet/fleet_manager.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/exporters.h"

namespace flower::fleet {

FleetManager::FleetManager(FleetConfig config) : config_(std::move(config)) {
  // The partition re-plan cadence is the arbitration cadence — a flow
  // re-plans exactly once under each grant.
  config_.partition.arbitration_period_sec = config_.arbitration_period_sec;
  if (!config_.bundle_dir.empty() &&
      config_.partition.capture.bundle_dir.empty()) {
    config_.partition.capture.bundle_dir = config_.bundle_dir;
  }
}

Status FleetManager::AddTenant(TenantConfig tenant) {
  if (started_) {
    return Status::FailedPrecondition(
        "FleetManager: AddTenant must precede Start");
  }
  for (const TenantConfig& t : tenants_) {
    if (t.id == tenant.id) {
      return Status::AlreadyExists("FleetManager: duplicate tenant id '" +
                                   tenant.id + "'");
    }
  }
  tenants_.push_back(std::move(tenant));
  return Status::OK();
}

Status FleetManager::Start() {
  if (started_) {
    return Status::FailedPrecondition("FleetManager: already started");
  }
  if (tenants_.empty()) {
    return Status::InvalidArgument("FleetManager: no tenants");
  }
  ArbiterConfig ac;
  ac.fleet_budget_usd_per_hour = config_.fleet_budget_usd_per_hour;
  ac.starvation_floor_frac = config_.starvation_floor_frac;
  ac.solver = config_.arbiter_solver;
  // The split search runs between partition sweeps, so it may use the
  // fleet's full parallelism; its result is thread-count-invariant.
  ac.solver.num_threads = config_.num_threads;
  arbiter_ = std::make_unique<BudgetArbiter>(ac);
  pool_ = std::make_unique<exec::ThreadPool>(config_.num_threads);
  partitions_.reserve(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    FLOWER_ASSIGN_OR_RETURN(
        std::unique_ptr<FlowPartition> p,
        FlowPartition::Create(tenants_[i], config_.partition, i));
    partitions_.push_back(std::move(p));
  }
  started_ = true;
  return Status::OK();
}

Status FleetManager::RunFor(double horizon_sec) {
  if (!started_) {
    return Status::FailedPrecondition("FleetManager: not started");
  }
  if (horizon_sec < 0.0) {
    return Status::InvalidArgument("FleetManager: negative horizon");
  }
  size_t n = partitions_.size();
  SimTime target = now_ + horizon_sec;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) weights[i] = tenants_[i].budget_weight;

  while (now_ < target) {
    SimTime t_end = std::min(now_ + config_.arbitration_period_sec, target);

    // Arbitrate on the demands visible now (period 0 sees the
    // provisioned-resource cost; later periods see the controllers'
    // latest unclamped asks).
    std::vector<double> demands(n);
    std::vector<uint64_t> steps_before(n);
    for (size_t i = 0; i < n; ++i) {
      demands[i] = partitions_[i]->DemandUsdPerHour();
      steps_before[i] = partitions_[i]->StepsTaken();
    }
    FLOWER_ASSIGN_OR_RETURN(BudgetSplit split,
                            arbiter_->Arbitrate(demands, weights));
    for (size_t i = 0; i < n; ++i) {
      partitions_[i]->SetBudget(split.grants_usd[i]);
      // Mirror the grant into the partition's flight recorder before
      // the sweep: a capture taken mid-period carries the grant that
      // shaped the period's re-plan.
      partitions_[i]->RecordGrant(now_, demands[i], split.grants_usd[i]);
    }

    // Advance every partition to the boundary. Partitions share
    // nothing; each one's events run on whichever worker claims it.
    FLOWER_RETURN_NOT_OK(pool_->ParallelFor(
        0, n, 1, [&](size_t i) { return partitions_[i]->AdvanceTo(t_end); }));

    // Deterministic merge, tenant index order.
    FleetPeriodReport report;
    report.start = now_;
    report.end = t_end;
    report.uncontended = split.uncontended;
    report.conservation_ok =
        split.conserved &&
        split.total_granted_usd <=
            config_.fleet_budget_usd_per_hour * (1.0 + 1e-9) + 1e-12;
    report.total_granted_usd = split.total_granted_usd;
    report.tenants.reserve(n);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "period t=[%.3f,%.3f] granted=%.6f\n",
                  now_, t_end, split.total_granted_usd);
    split_digest_ += buf;
    for (size_t i = 0; i < n; ++i) {
      TenantPeriodOutcome row;
      row.tenant = tenants_[i].id;
      row.demand_usd = demands[i];
      row.grant_usd = split.grants_usd[i];
      row.spend_usd = partitions_[i]->SpendUsdPerHour();
      row.steps = partitions_[i]->StepsTaken() - steps_before[i];
      std::snprintf(buf, sizeof(buf),
                    "  %s demand=%.6f grant=%.6f spend=%.6f steps=%llu\n",
                    row.tenant.c_str(), row.demand_usd, row.grant_usd,
                    row.spend_usd,
                    static_cast<unsigned long long>(row.steps));
      split_digest_ += buf;

      // Fleet rollup: per-tenant summary instruments in the tenant's
      // own child scope, {"tenant", id}-labeled so AggregateSnapshot
      // never merges two tenants' series.
      obs::MetricsRegistry& m = registry_.Child(row.tenant)->metrics();
      obs::LabelSet labels = {{"tenant", row.tenant}};
      m.GetGauge("fleet.demand_usd", labels)->Set(row.demand_usd);
      m.GetGauge("fleet.grant_usd", labels)->Set(row.grant_usd);
      m.GetGauge("fleet.spend_usd", labels)->Set(row.spend_usd);
      m.GetCounter("fleet.steps", labels)->Increment(row.steps);
      report.tenants.push_back(std::move(row));
    }
    reports_.push_back(std::move(report));
    now_ = t_end;
  }
  return Status::OK();
}

std::string FleetManager::ControlDigest() const {
  std::string out = split_digest_;
  for (const std::unique_ptr<FlowPartition>& p : partitions_) {
    p->AppendDigest(&out);
  }
  return out;
}

Status FleetManager::DumpBundle(size_t index, const std::string& path) {
  if (index >= partitions_.size()) {
    return Status::OutOfRange("FleetManager: tenant index out of range");
  }
  return partitions_[index]->DumpBundle(path);
}

std::vector<std::string> FleetManager::CapturedBundles() const {
  std::vector<std::string> out;
  for (const std::unique_ptr<FlowPartition>& p : partitions_) {
    const std::vector<std::string>& paths = p->bundle_paths();
    out.insert(out.end(), paths.begin(), paths.end());
  }
  return out;
}

Status FleetManager::ExportReportsJsonl(const std::string& path) const {
  return obs::ExportToFile(path, [this](std::ostream& os) {
    char buf[64];
    auto num = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.6f", v);
      return std::string(buf);
    };
    for (const FleetPeriodReport& r : reports_) {
      for (const TenantPeriodOutcome& t : r.tenants) {
        os << "{\"start\":" << num(r.start) << ",\"end\":" << num(r.end)
           << ",\"tenant\":\"" << obs::internal::JsonEscape(t.tenant)
           << "\",\"demand_usd\":" << num(t.demand_usd)
           << ",\"grant_usd\":" << num(t.grant_usd)
           << ",\"spend_usd\":" << num(t.spend_usd) << ",\"steps\":" << t.steps
           << ",\"total_granted_usd\":" << num(r.total_granted_usd)
           << ",\"conservation_ok\":" << (r.conservation_ok ? "true" : "false")
           << ",\"uncontended\":" << (r.uncontended ? "true" : "false")
           << "}\n";
      }
    }
  });
}

}  // namespace flower::fleet
