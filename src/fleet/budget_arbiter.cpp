#include "fleet/budget_arbiter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace flower::fleet {

FleetBudgetProblem::FleetBudgetProblem(ArbiterConfig config,
                                       std::vector<double> demands,
                                       std::vector<double> weights)
    : config_(std::move(config)),
      demands_(std::move(demands)),
      weights_(std::move(weights)) {
  size_t n = demands_.size();
  size_t active = 0;
  for (double d : demands_) {
    if (d > 0.0) ++active;
  }
  double budget = config_.fleet_budget_usd_per_hour;
  double frac = std::clamp(config_.starvation_floor_frac, 0.0, 1.0);
  double per_active = active > 0 ? budget / static_cast<double>(active) : 0.0;
  floors_.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (demands_[i] > 0.0) {
      floors_[i] = frac * std::min(demands_[i], per_active);
      floor_sum_ += floors_[i];
    }
  }
  variables_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "x%zu", i);
    variables_[i].name = buf;
    variables_[i].lower = 0.0;
    variables_[i].upper = 1.0;
    variables_[i].integer = false;
  }
}

std::vector<double> FleetBudgetProblem::Decode(
    const std::vector<double>& x) const {
  size_t n = demands_.size();
  double budget = config_.fleet_budget_usd_per_hour;
  std::vector<double> extras(n, 0.0);
  double extra_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (demands_[i] <= 0.0) continue;
    extras[i] = weights_[i] * x[i] * std::max(0.0, demands_[i] - floors_[i]);
    extra_sum += extras[i];
  }
  double surplus = std::max(0.0, budget - floor_sum_);
  double scale = extra_sum > surplus && extra_sum > 0.0
                     ? surplus / extra_sum
                     : 1.0;
  std::vector<double> grants(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (demands_[i] <= 0.0) continue;
    grants[i] = std::min(demands_[i], floors_[i] + scale * extras[i]);
  }
  return grants;
}

void FleetBudgetProblem::Evaluate(const std::vector<double>& x,
                                  std::vector<double>* objectives,
                                  std::vector<double>* violations) const {
  std::vector<double> grants = Decode(x);
  double satisfied = 0.0;
  double worst_ratio = 1.0;
  for (size_t i = 0; i < grants.size(); ++i) {
    satisfied += grants[i];
    if (demands_[i] > 0.0) {
      worst_ratio = std::min(worst_ratio, grants[i] / demands_[i]);
    }
  }
  objectives->assign(
      {satisfied, worst_ratio,
       config_.fleet_budget_usd_per_hour - satisfied});
  violations->clear();
}

BudgetArbiter::BudgetArbiter(ArbiterConfig config)
    : config_(std::move(config)) {}

Result<BudgetSplit> BudgetArbiter::Arbitrate(
    const std::vector<double>& demands, const std::vector<double>& weights) {
  return Arbitrate(demands, weights, config_.fleet_budget_usd_per_hour);
}

Result<BudgetSplit> BudgetArbiter::Arbitrate(
    const std::vector<double>& demands, const std::vector<double>& weights,
    double budget_usd_per_hour) {
  if (demands.size() != weights.size()) {
    return Status::InvalidArgument(
        "BudgetArbiter: demands/weights size mismatch");
  }
  if (budget_usd_per_hour < 0.0 || !std::isfinite(budget_usd_per_hour)) {
    return Status::InvalidArgument("BudgetArbiter: negative fleet budget");
  }
  double total_demand = 0.0;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (demands[i] < 0.0 || !std::isfinite(demands[i])) {
      return Status::InvalidArgument("BudgetArbiter: invalid demand");
    }
    if (weights[i] < 0.0 || !std::isfinite(weights[i])) {
      return Status::InvalidArgument("BudgetArbiter: invalid weight");
    }
    total_demand += demands[i];
  }

  double budget = budget_usd_per_hour;
  BudgetSplit split;
  // Uncontended fast path: everyone gets what they asked for. Also
  // covers the all-idle fleet (total demand 0 grants all zeros).
  if (total_demand <= budget) {
    split.grants_usd = demands;
    split.total_granted_usd = total_demand;
    split.conserved = true;
    split.uncontended = true;
    return split;
  }

  ArbiterConfig scoped = config_;
  scoped.fleet_budget_usd_per_hour = budget;
  FleetBudgetProblem problem(scoped, demands, weights);
  opt::Nsga2 solver(config_.solver);
  FLOWER_ASSIGN_OR_RETURN(opt::Nsga2Result res, solver.Solve(problem));
  if (res.pareto_front.empty()) {
    return Status::Internal("BudgetArbiter: empty Pareto front");
  }

  // Deterministic pick: max fairness (worst-tenant ratio), ties broken
  // by max satisfied demand, then by front order. The front itself is
  // deterministic and thread-count-invariant, so so is the pick.
  const opt::Solution* best = &res.pareto_front[0];
  for (const opt::Solution& s : res.pareto_front) {
    if (s.objectives[1] > best->objectives[1] ||
        (s.objectives[1] == best->objectives[1] &&
         s.objectives[0] > best->objectives[0])) {
      best = &s;
    }
  }
  split.grants_usd = problem.Decode(best->x);
  for (double g : split.grants_usd) split.total_granted_usd += g;
  split.evaluations = res.evaluations;
  split.conserved =
      split.total_granted_usd <= budget * (1.0 + 1e-9) + 1e-12;
  return split;
}

}  // namespace flower::fleet
