#include "fleet/tenant.h"

#include <cstdio>

namespace flower::fleet {

const char* ArrivalPatternToString(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kConstant:
      return "constant";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
    case ArrivalPattern::kFlashCrowd:
      return "flash-crowd";
    case ArrivalPattern::kMmpp:
      return "mmpp";
  }
  return "unknown";
}

bool ArrivalPatternFromString(const std::string& name,
                              ArrivalPattern* pattern) {
  for (ArrivalPattern p :
       {ArrivalPattern::kConstant, ArrivalPattern::kDiurnal,
        ArrivalPattern::kFlashCrowd, ArrivalPattern::kMmpp}) {
    if (name == ArrivalPatternToString(p)) {
      *pattern = p;
      return true;
    }
  }
  return false;
}

namespace {

/// SplitMix64 finalizer: a stateless index->uint64 mixer, so tenant i's
/// parameters depend only on (seed, i) and never on generation order.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a mixed word.
double Unit(uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

std::vector<TenantConfig> MakeTenantFleet(size_t count, uint64_t seed) {
  std::vector<TenantConfig> fleet;
  fleet.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TenantConfig t;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t%04zu", i);
    t.id = buf;
    t.seed = Mix(seed ^ (0x1000 + i));

    uint64_t h = Mix(seed ^ i);
    t.initial_budget_usd = 2.0 + 8.0 * Unit(Mix(h ^ 1));
    t.budget_weight = 0.5 + 1.5 * Unit(Mix(h ^ 2));

    t.pattern = static_cast<ArrivalPattern>(Mix(h ^ 3) % 4);
    t.base_rate_per_sec = 5.0 + 15.0 * Unit(Mix(h ^ 4));
    t.amplitude_per_sec = t.base_rate_per_sec * (0.3 + 0.5 * Unit(Mix(h ^ 5)));
    t.period_sec = 1800.0 + 3600.0 * Unit(Mix(h ^ 6));
    t.phase_sec = t.period_sec * Unit(Mix(h ^ 7));

    t.initial_shards = 1 + static_cast<int>(Mix(h ^ 8) % 3);
    t.max_shards = 20 + static_cast<int>(Mix(h ^ 9) % 40);
    t.initial_workers = 2 + static_cast<int>(Mix(h ^ 10) % 3);
    t.max_workers = 20 + static_cast<int>(Mix(h ^ 11) % 40);
    t.initial_wcu = 5.0 + 10.0 * Unit(Mix(h ^ 12));
    t.max_wcu = 1000.0 + 2000.0 * Unit(Mix(h ^ 13));

    t.reference_utilization_pct = 50.0 + 20.0 * Unit(Mix(h ^ 14));
    fleet.push_back(std::move(t));
  }
  return fleet;
}

void ApplyPeriodJitter(std::vector<TenantConfig>* tenants,
                       double base_period_sec, uint64_t seed) {
  // Divisors rather than arbitrary scales: when base/d divides exactly
  // in double arithmetic (true for the bench's 900 s fleet period and
  // every d below), tenant boundaries k*(base/d) land bit-exactly on
  // the shared lattice, so co-periodic tenants group at identical
  // virtual times instead of epsilon-apart ones.
  static constexpr int kDivisors[] = {1, 2, 3, 4};
  for (size_t i = 0; i < tenants->size(); ++i) {
    int d = kDivisors[Mix(seed ^ (0x7e57 + i)) % 4];
    (*tenants)[i].arbitration_period_sec =
        base_period_sec / static_cast<double>(d);
  }
}

}  // namespace flower::fleet
