#include "fleet/flow_partition.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/units.h"
#include "fleet/partition_spec.h"
#include "workload/arrival.h"

namespace flower::fleet {

namespace {

bool FaultKindFromString(const std::string& name, sim::FaultKind* kind) {
  for (sim::FaultKind k :
       {sim::FaultKind::kActuatorFailure, sim::FaultKind::kActuatorThrottle,
        sim::FaultKind::kMetricGap, sim::FaultKind::kMetricDelay,
        sim::FaultKind::kSensorSpike}) {
    if (name == sim::FaultKindToString(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

std::shared_ptr<workload::ArrivalProcess> MakeArrival(
    const TenantConfig& t, double horizon_sec) {
  switch (t.pattern) {
    case ArrivalPattern::kConstant:
      return std::make_shared<workload::ConstantArrival>(t.base_rate_per_sec);
    case ArrivalPattern::kDiurnal:
      return std::make_shared<workload::DiurnalArrival>(
          t.base_rate_per_sec, t.amplitude_per_sec, t.period_sec,
          t.phase_sec);
    case ArrivalPattern::kFlashCrowd:
      return std::make_shared<workload::FlashCrowdArrival>(
          t.base_rate_per_sec, t.amplitude_per_sec, t.phase_sec,
          t.period_sec);
    case ArrivalPattern::kMmpp:
      return std::make_shared<workload::MmppArrival>(
          t.base_rate_per_sec, t.base_rate_per_sec + t.amplitude_per_sec,
          t.period_sec, t.period_sec, horizon_sec, t.seed);
  }
  return std::make_shared<workload::ConstantArrival>(t.base_rate_per_sec);
}

}  // namespace

Result<std::unique_ptr<FlowPartition>> FlowPartition::Create(
    const TenantConfig& tenant, const PartitionConfig& config, size_t index) {
  auto p = std::unique_ptr<FlowPartition>(new FlowPartition());
  p->tenant_ = tenant;
  p->capture_ = config.capture;
  p->granted_budget_usd_ = tenant.initial_budget_usd;
  p->effective_period_sec_ = tenant.arbitration_period_sec > 0.0
                                 ? tenant.arbitration_period_sec
                                 : config.arbitration_period_sec;
  p->sim_ = std::make_unique<sim::Simulation>();
  p->metrics_ = std::make_unique<cloudwatch::MetricStore>();
  p->telemetry_ = std::make_unique<obs::Telemetry>(config.decision_capacity,
                                                   config.trace_capacity,
                                                   config.span_capacity);
  if (config.record_spans) {
    FLOWER_RETURN_NOT_OK(p->telemetry_->spans().set_id_offset(
        static_cast<obs::SpanId>(index) * obs::SpanCollector::kIdStride));
    p->telemetry_->spans().set_enabled(true);
  }

  // The tenant's scheduled faults become a seeded injector wrapped
  // around the flow's sensors/actuators by the builder below.
  if (!tenant.faults.empty()) {
    p->chaos_ = std::make_unique<sim::FaultInjector>(p->sim_.get(),
                                                     tenant.seed);
    p->chaos_->SetTelemetry(p->telemetry_.get());
    for (const TenantFault& f : tenant.faults) {
      sim::FaultSpec fs;
      if (!FaultKindFromString(f.kind, &fs.kind)) {
        return Status::InvalidArgument("FlowPartition: unknown fault kind '" +
                                       f.kind + "'");
      }
      fs.target = f.target;
      fs.start = f.start;
      fs.end = f.end;
      fs.probability = f.probability;
      fs.delay_sec = f.delay_sec;
      fs.factor = f.factor;
      fs.offset = f.offset;
      FLOWER_ASSIGN_OR_RETURN(int fault_id, p->chaos_->Add(fs));
      (void)fault_id;
    }
  }

  flow::FlowConfig fc;
  fc.name = tenant.id + "-flow";
  fc.stream.name = tenant.id + "-stream";
  fc.stream.initial_shards = tenant.initial_shards;
  fc.stream.max_shards = tenant.max_shards;
  fc.cluster.name = tenant.id + "-storm";
  fc.cluster.tick_period_sec = config.storm_tick_period_sec;
  fc.table.name = tenant.id + "-table";
  fc.table.initial_wcu = tenant.initial_wcu;
  fc.table.max_wcu = tenant.max_wcu;
  fc.initial_workers = tenant.initial_workers;

  workload::ClickStreamConfig wl;
  wl.num_users = 1000;
  wl.num_urls = 100;
  wl.generator_instances = 1;
  wl.emit_period_sec = config.workload_emit_period_sec;

  auto layer_config = [&](double max_resource) {
    core::LayerElasticityConfig lc;
    lc.reference_utilization_pct = tenant.reference_utilization_pct;
    lc.monitoring_period_sec = tenant.monitoring_period_sec;
    lc.monitoring_window_sec = tenant.monitoring_period_sec;
    lc.max_resource = max_resource;
    return lc;
  };
  core::LayerElasticityConfig storage = layer_config(tenant.max_wcu);
  storage.min_resource = 5.0;

  core::FlowBuilder builder;
  builder.WithFlowConfig(fc)
      .WithIngestion(layer_config(tenant.max_shards))
      .WithAnalytics(layer_config(tenant.max_workers))
      .WithStorage(storage)
      .WithWorkload(MakeArrival(tenant, config.horizon_sec), wl)
      .WithSeed(tenant.seed)
      .WithTelemetry(p->telemetry_.get())
      .WithTenantLabel(tenant.id);
  if (p->chaos_ != nullptr) builder.WithFaultInjector(p->chaos_.get());
  FLOWER_ASSIGN_OR_RETURN(p->managed_,
                          builder.Build(p->sim_.get(), p->metrics_.get()));

  // Flow -> layer re-planning under the arbiter's grant. The request is
  // refreshed from granted_budget_usd_ right before each solve; the
  // incremental plan cache then skips the solver entirely for periods
  // whose grant did not move.
  core::ReplanConfig rc;
  rc.request.hourly_budget_usd = p->granted_budget_usd_;
  rc.request.bounds[0] = {1.0, static_cast<double>(tenant.max_shards)};
  rc.request.bounds[1] = {1.0, static_cast<double>(tenant.max_workers)};
  rc.request.bounds[2] = {5.0, tenant.max_wcu};
  for (int i = 0; i < core::kNumLayers; ++i) {
    p->unit_price_[i] = rc.request.unit_price[i];
  }
  rc.solver = config.flow_solver;
  // Partitions advance inside a fleet ParallelFor sweep; nested
  // parallelism on another pool would oversubscribe, so per-flow solves
  // default to single-threaded. Solo replays may raise this — the
  // solver is thread-count-invariant, so decisions do not change.
  rc.solver.num_threads = config.flow_solver_threads == 0
                              ? 1
                              : config.flow_solver_threads;
  rc.solver.seed = tenant.seed;
  rc.incremental = config.flow_incremental;
  // Re-plans track the tenant's *own* arbitration cadence, so a tenant
  // on a faster lattice sees each of its grants (a fleet-period cadence
  // would skip every boundary between fleet ticks).
  rc.period_sec = p->effective_period_sec_;
  rc.start_delay_sec = config.replan_offset_sec;
  FlowPartition* raw = p.get();
  rc.update_request = [raw](SimTime, core::ResourceShareRequest* req) {
    req->hourly_budget_usd = raw->granted_budget_usd_;
  };
  FLOWER_RETURN_NOT_OK(p->managed_.manager->EnableReplanning(std::move(rc)));

  if (config.capture.enabled) {
    p->recorder_ = std::make_unique<obs::replay::FlightRecorder>(
        config.capture.recorder);
    p->recorder_->SetIdentity(
        tenant.id, index, tenant.seed,
        static_cast<uint64_t>(index) * obs::SpanCollector::kIdStride);
    p->recorder_->SetSpec(SerializePartitionSpec(tenant, config));
    for (const TenantFault& f : tenant.faults) p->recorder_->AddFault(f);
    p->managed_.manager->SetFlightRecorder(p->recorder_.get());
  }

  if (config.capture.health_trigger) {
    obs::health::HealthMonitorConfig hc;
    hc.eval_period_sec = config.capture.health_eval_period_sec;
    p->health_ = std::make_unique<obs::health::HealthMonitor>(
        p->telemetry_.get(), hc);
    // Per-layer burn-rate SLOs over this tenant's utilization gauges
    // (the manager labels them {"tenant", id} — see SetTenantLabel).
    for (const char* layer : {"ingestion", "analytics", "storage"}) {
      obs::health::SloSpec s;
      s.id = std::string(layer) + "/utilization";
      s.layer = layer;
      s.kind = obs::health::SliKind::kGaugeBelow;
      s.metric = {"loop.sensed_y",
                  {{"loop", layer}, {"layer", layer}, {"tenant", tenant.id}}};
      s.threshold = config.capture.util_threshold;
      s.objective = config.capture.slo_objective;
      s.fast_window_sec = config.capture.slo_fast_window_sec;
      s.slow_window_sec = config.capture.slo_slow_window_sec;
      FLOWER_RETURN_NOT_OK(p->health_->AddSlo(s));
    }
    FlowPartition* raw = p.get();
    p->managed_.manager->SetHealthAnnotator(
        [raw](const std::string& layer, SimTime) {
          return raw->health_->MaskFor(layer);
        });
    // An alert edge latches the capture trigger and (once) dumps the
    // bundle. The hook runs inside Evaluate, i.e. on this partition's
    // own simulation thread — no synchronization needed.
    p->health_->SetAlertEdgeHook(
        [raw](SimTime t, const obs::health::SloStatus& st) {
          if (raw->recorder_ == nullptr) return;
          raw->recorder_->Trigger(t, st.id, st.burn_fast, st.burn_slow);
          if (raw->capture_.bundle_dir.empty() || raw->dumped_) return;
          raw->dumped_ = true;
          ::mkdir(raw->capture_.bundle_dir.c_str(), 0755);
          std::string path =
              raw->capture_.bundle_dir + "/" + raw->tenant_.id + ".json";
          Status dump = obs::replay::WriteBundleJson(
              obs::replay::BundleFromRecorder(*raw->recorder_), path);
          if (dump.ok()) {
            raw->bundle_paths_.push_back(std::move(path));
          } else {
            FLOWER_LOG(Warning)
                << "FlowPartition: capture bundle dump failed: " << dump;
          }
        });
    FLOWER_RETURN_NOT_OK(p->sim_->SchedulePeriodic(
        config.capture.health_eval_period_sec,
        config.capture.health_eval_period_sec, [raw] {
          raw->health_->Evaluate(raw->sim_->Now());
          return true;
        }));
  }
  return p;
}

Status FlowPartition::AdvanceTo(SimTime t) {
  if (t < sim_->Now()) {
    return Status::InvalidArgument("FlowPartition: advance target in past");
  }
  sim_->RunUntil(t);
  return Status::OK();
}

namespace {

/// Latest finite per-layer value of `field` across the retained
/// decision records, priced hourly; `fallback` per layer when a layer
/// has no usable record yet.
double PricedLatest(const obs::DecisionLog& log,
                    double ControlDecisionRecord_value(
                        const obs::ControlDecisionRecord&),
                    const double unit_price[core::kNumLayers],
                    const double fallback[core::kNumLayers]) {
  double latest[core::kNumLayers];
  bool have[core::kNumLayers] = {false, false, false};
  std::vector<obs::ControlDecisionRecord> records = log.Snapshot();
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    for (int i = 0; i < core::kNumLayers; ++i) {
      if (have[i] ||
          it->layer != core::LayerToString(static_cast<core::Layer>(i))) {
        continue;
      }
      double v = ControlDecisionRecord_value(*it);
      if (std::isfinite(v)) {
        latest[i] = v;
        have[i] = true;
      }
    }
  }
  double usd = 0.0;
  for (int i = 0; i < core::kNumLayers; ++i) {
    double amount = have[i] ? std::max(0.0, latest[i]) : fallback[i];
    usd += amount * unit_price[i];
  }
  return usd;
}

}  // namespace

double FlowPartition::DemandUsdPerHour() const {
  double fallback[core::kNumLayers] = {
      static_cast<double>(tenant_.initial_shards),
      static_cast<double>(tenant_.initial_workers), tenant_.initial_wcu};
  return PricedLatest(
      telemetry_->decisions(),
      [](const obs::ControlDecisionRecord& r) { return r.raw_u; },
      unit_price_, fallback);
}

double FlowPartition::SpendUsdPerHour() const {
  double fallback[core::kNumLayers] = {
      static_cast<double>(tenant_.initial_shards),
      static_cast<double>(tenant_.initial_workers), tenant_.initial_wcu};
  return PricedLatest(
      telemetry_->decisions(),
      [](const obs::ControlDecisionRecord& r) { return r.clamped_u; },
      unit_price_, fallback);
}

uint64_t FlowPartition::StepsTaken() const {
  return telemetry_->decisions().total_appended();
}

void FlowPartition::PostBoundaryDemand(SimTime boundary) {
  BudgetMailbox::Demand d;
  d.boundary = boundary;
  d.demand_usd = DemandUsdPerHour();
  d.spend_usd = SpendUsdPerHour();
  d.steps = StepsTaken();
  mailbox_.PostDemand(d);
}

bool FlowPartition::TryConsumeGrant(uint64_t seq) {
  BudgetMailbox::Grant g;
  if (!mailbox_.TryReceiveGrant(seq, &g)) return false;
  SetBudget(g.grant_usd);
  RecordGrant(g.boundary, g.demand_usd, g.grant_usd);
  return true;
}

void FlowPartition::RecordGrant(SimTime t, double demand_usd,
                                double grant_usd) {
  if (recorder_ != nullptr) recorder_->RecordGrant(t, demand_usd, grant_usd);
}

Result<obs::replay::CaptureBundle> FlowPartition::MakeBundle() const {
  if (recorder_ == nullptr) {
    return Status::NotFound("FlowPartition: capture not enabled for tenant '" +
                            tenant_.id + "'");
  }
  return obs::replay::BundleFromRecorder(*recorder_);
}

Status FlowPartition::DumpBundle(const std::string& path) {
  if (recorder_ == nullptr) {
    return Status::NotFound("FlowPartition: capture not enabled for tenant '" +
                            tenant_.id + "'");
  }
  recorder_->Trigger(sim_->Now(), "explicit");
  FLOWER_RETURN_NOT_OK(obs::replay::WriteBundleJson(
      obs::replay::BundleFromRecorder(*recorder_), path));
  bundle_paths_.push_back(path);
  return Status::OK();
}

void FlowPartition::AppendDigest(std::string* out) const {
  char buf[192];
  for (const obs::ControlDecisionRecord& r :
       telemetry_->decisions().Snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "%s t=%.3f loop=%s y=%.6f raw_u=%.6f u=%.6f out=%s\n",
                  tenant_.id.c_str(), r.time, r.loop.c_str(), r.sensed_y,
                  r.raw_u, r.clamped_u, obs::StepOutcomeToString(r.outcome));
    *out += buf;
  }
}

}  // namespace flower::fleet
