#ifndef FLOWER_OBS_ROLLUP_H_
#define FLOWER_OBS_ROLLUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "obs/metrics_registry.h"

namespace flower::obs {

/// Shape of the downsampling pyramid. With the defaults each tracked
/// series keeps 120 slots at 1 s, 120 at 10 s, and 120 at 60 s — two
/// hours of history in a few KB of fixed memory, no allocation after
/// the first tick resolves the instrument.
struct RollupConfig {
  double base_period_sec = 1.0;  ///< Tick() cadence; tier 0 resolution.
  size_t slots_per_tier = 120;   ///< Ring length of every tier.
  /// Base-period multiples per tier, ascending; {1, 10, 60} = the
  /// 1 s -> 10 s -> 60 s pyramid.
  std::vector<size_t> tier_multiples = {1, 10, 60};
};

/// Aggregations Query() can compute over a trailing window.
enum class RollupAgg : uint8_t {
  kLast = 0,  ///< Newest sampled value (gauge) / cumulative count.
  kMin = 1,   ///< Min per-tick sample (gauge) or per-tick delta.
  kMax = 2,
  kMean = 3,  ///< Mean sample (gauge) / mean per-tick delta (counter)
              ///< / mean recorded value (histogram).
  kSum = 4,   ///< Sum of samples (gauge) or of deltas (counter/hist).
  kDelta = 5, ///< Newest cumulative minus cumulative at window start.
  kRate = 6,  ///< kDelta divided by the covered timespan (per second).
};

const char* RollupAggToString(RollupAgg agg);

/// One closed slot of one tier. Semantics depend on the instrument:
/// gauges aggregate sampled values; counters and histograms aggregate
/// per-base-tick deltas and carry the cumulative total at slot close,
/// which is what burn-rate windows difference.
struct RollupSlot {
  SimTime t_end = 0.0;   ///< Sim time of the closing tick.
  double last = 0.0;     ///< Last sampled value in the slot.
  double min = 0.0;      ///< Min sample (gauge) / min tick delta.
  double max = 0.0;
  double sum = 0.0;      ///< Sum of samples / sum of tick deltas.
  uint64_t samples = 0;  ///< Base ticks aggregated into the slot.
  double cum = 0.0;      ///< Cumulative counter value / histogram count.
  double cum_sum = 0.0;  ///< Histogram only: cumulative sum of values.
  double sum2 = 0.0;     ///< Histogram only: value-sum delta in the slot.
};

/// Fixed-memory time-series store over a MetricsRegistry: Track*() a
/// handful of series, call Tick(now) once per base period, and Query()
/// trailing-window aggregates from the downsampled tiers. Tick reads
/// only the tracked instruments' atomics — it never deep-copies the
/// registry — so feeding SLO burn-rate windows from a rollup replaces
/// the per-evaluation full-registry scan that used to dominate
/// HealthMonitor::Evaluate at fleet cardinalities.
///
/// Instruments are resolved lazily: tracking a series that is not yet
/// registered is fine; it contributes nothing until some component
/// registers it (matching the SLO engine's "missing until registered"
/// semantics), then picks up on the next tick. Tracking never creates
/// instruments.
///
/// Single-writer like the rest of the telemetry hub: Tick/Track from
/// the simulation thread only.
class RollupStore {
 public:
  explicit RollupStore(MetricsRegistry* registry, RollupConfig config = {});

  /// Track a series; returns a stable track id for id-based Query.
  /// Re-tracking the same (kind, name, labels) returns the same id.
  size_t TrackCounter(const std::string& name, const LabelSet& labels = {});
  size_t TrackGauge(const std::string& name, const LabelSet& labels = {});
  size_t TrackHistogram(const std::string& name, const LabelSet& labels = {});

  /// Samples every tracked instrument and advances the tier rings.
  void Tick(SimTime now);

  uint64_t ticks() const { return ticks_; }
  size_t NumTracked() const { return tracked_.size(); }
  const RollupConfig& config() const { return config_; }

  /// Aggregate over the trailing `window_sec` ending at the last tick,
  /// served from the finest tier whose retained history covers the
  /// window. NotFound when the series is untracked or has no data yet.
  Result<double> Query(const std::string& metric, const LabelSet& labels,
                       double window_sec, RollupAgg agg) const;
  Result<double> Query(size_t track_id, double window_sec,
                       RollupAgg agg) const;

  /// Sparse point-in-time view of the tracked series that have resolved,
  /// as of the last Tick — the exact shape MetricsRegistry::Snapshot()
  /// produces, restricted to tracked instruments. The reference is into
  /// an internal buffer reused across ticks; it is invalidated by the
  /// next Tick().
  const MetricsSnapshot& TrackedSnapshot() const { return snapshot_; }

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Tier {
    size_t multiple = 1;
    std::vector<RollupSlot> ring;  ///< Sized slots_per_tier up front.
    size_t filled = 0;             ///< Closed slots retained (<= size).
    size_t head = 0;               ///< Next write index.
    RollupSlot partial;            ///< Accumulating, not yet closed.
    size_t pending = 0;            ///< Base ticks in `partial`.
  };

  struct Tracked {
    Kind kind = Kind::kGauge;
    std::string name;
    LabelSet labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    bool seen = false;      ///< Sampled at least once since resolving.
    double prev_cum = 0.0;  ///< Cumulative value at the previous tick.
    double prev_cum_sum = 0.0;  ///< Histogram value-sum at previous tick.
    std::vector<Tier> tiers;
    /// Slot in snapshot_'s counters/gauges/histograms vector, or -1
    /// until the instrument resolves.
    int snapshot_index = -1;
  };

  size_t TrackSeries(Kind kind, const std::string& name,
                     const LabelSet& labels);
  void Resolve(Tracked* t);
  const Tracked* FindSeries(Kind kind, const std::string& name,
                            const LabelSet& labels) const;
  Result<double> QueryTracked(const Tracked& t, double window_sec,
                              RollupAgg agg) const;

  MetricsRegistry* registry_;
  RollupConfig config_;
  uint64_t ticks_ = 0;
  SimTime last_tick_ = 0.0;
  std::vector<Tracked> tracked_;
  /// Series-key -> index into tracked_, for name-based Query and
  /// re-track dedup.
  std::vector<std::pair<std::string, size_t>> index_;  ///< Sorted.
  MetricsSnapshot snapshot_;  ///< Reused sparse snapshot buffer.
};

}  // namespace flower::obs

#endif  // FLOWER_OBS_ROLLUP_H_
