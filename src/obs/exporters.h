#ifndef FLOWER_OBS_EXPORTERS_H_
#define FLOWER_OBS_EXPORTERS_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace flower::obs {

/// CSV sink for decision records: one header row, then one row per
/// record (columns: time, loop, layer, law, sensed_y, reference, error,
/// gain, raw_u, clamped_u, stale, outcome, fault_mask).
void WriteDecisionCsv(std::ostream& os,
                      const std::vector<ControlDecisionRecord>& records);

/// JSON-lines sink: one {"type":"decision",...} object per line.
void WriteDecisionJsonl(std::ostream& os,
                        const std::vector<ControlDecisionRecord>& records);

/// CSV sink for a metrics snapshot (kind, name, labels, value columns;
/// histograms summarized as count/sum/min/max/p50/p99).
void WriteSnapshotCsv(std::ostream& os, const MetricsSnapshot& snapshot);

/// JSON-lines sink: one {"type":"counter"|"gauge"|"histogram",...}
/// object per line, all stamped with `at` (sim seconds).
void WriteSnapshotJsonl(std::ostream& os, const MetricsSnapshot& snapshot,
                        SimTime at);

/// Chrome trace_event JSON (the "JSON Array Format" with an object
/// wrapper), loadable in Perfetto / chrome://tracing. Emits thread-name
/// metadata for every named track, then every collected event.
void WriteChromeTrace(std::ostream& os, const TraceCollector& trace);

/// Opens `path` for writing and runs `writer(stream)`; IO errors become
/// a non-OK Status.
Status ExportToFile(const std::string& path,
                    const std::function<void(std::ostream&)>& writer);

}  // namespace flower::obs

#endif  // FLOWER_OBS_EXPORTERS_H_
