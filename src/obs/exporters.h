#ifndef FLOWER_OBS_EXPORTERS_H_
#define FLOWER_OBS_EXPORTERS_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace flower::obs {

/// Shared JSON formatting used by every JSONL sink in obs (exporters,
/// the health monitor). Not a stable public API.
namespace internal {
std::string JsonEscape(const std::string& s);
/// JSON has no NaN/Infinity literals; they render as null.
std::string JsonNum(double v);
std::string LabelsToJson(const LabelSet& labels);
}  // namespace internal

/// CSV sink for decision records: one header row, then one row per
/// record (columns: time, loop, layer, law, sensed_y, reference, error,
/// gain, raw_u, clamped_u, stale, outcome, fault_mask, health_mask,
/// span_id).
void WriteDecisionCsv(std::ostream& os,
                      const std::vector<ControlDecisionRecord>& records);

/// JSON-lines sink: one {"type":"decision",...} object per line.
void WriteDecisionJsonl(std::ostream& os,
                        const std::vector<ControlDecisionRecord>& records);

/// CSV sink for a metrics snapshot (kind, name, labels, value columns;
/// histograms summarized as count/sum/min/max/p50/p99).
void WriteSnapshotCsv(std::ostream& os, const MetricsSnapshot& snapshot);

/// JSON-lines sink: one {"type":"counter"|"gauge"|"histogram",...}
/// object per line, all stamped with `at` (sim seconds).
void WriteSnapshotJsonl(std::ostream& os, const MetricsSnapshot& snapshot,
                        SimTime at);

/// OpenMetrics / Prometheus text exposition of a metrics snapshot:
/// `# TYPE` headers per family (plus `# HELP` when the registry has
/// help text), counters suffixed `_total`, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`, and a terminating
/// `# EOF`. Instrument names are sanitized to the metric charset
/// ([a-zA-Z0-9_:]; every other byte becomes '_'), so "loop.sensed_y"
/// exports as "loop_sensed_y". Label values escape `\`, `"`, and
/// newline; HELP text escapes `\` and newline, per the exposition
/// format. Scrape-compatible with Prometheus and lintable by
/// tools/check_openmetrics.py.
void WriteSnapshotOpenMetrics(std::ostream& os,
                              const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON (the "JSON Array Format" with an object
/// wrapper), loadable in Perfetto / chrome://tracing. Emits
/// process-name metadata for the fleet pid and every registered scope,
/// thread-name metadata for every named (pid, tid) track, then every
/// collected event on its own (pid, tid) lane.
void WriteChromeTrace(std::ostream& os, const TraceCollector& trace);

/// Causal spans as Chrome trace JSON: one 'X' slice per span (virtual-
/// time duration, args carrying id/parent/follows/kind/value/outcome)
/// plus flow events — 's'/'f' pairs with cat "causal" for parent/child
/// edges and cat "follows" for follows-from edges — so Perfetto draws
/// the sense -> decide -> actuate -> effect arrows across lanes. Pass
/// the run's TraceCollector to reuse its scope/track names.
void WriteSpansChromeTrace(std::ostream& os, const SpanCollector& spans,
                           const TraceCollector* names = nullptr);

/// Opens `path` for writing and runs `writer(stream)`; IO errors become
/// a non-OK Status.
Status ExportToFile(const std::string& path,
                    const std::function<void(std::ostream&)>& writer);

}  // namespace flower::obs

#endif  // FLOWER_OBS_EXPORTERS_H_
