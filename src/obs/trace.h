#ifndef FLOWER_OBS_TRACE_H_
#define FLOWER_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time_series.h"

namespace flower::obs {

/// Converts simulated seconds to Chrome-trace microseconds (the trace
/// timeline is the simulation clock, 1 sim second = 1 trace second).
inline double SimToTraceUs(SimTime t) { return t * 1e6; }

/// Track ("thread") ids of the exported trace. Control loops get
/// consecutive ids from kFirstLoopTid in attach order.
constexpr int kTracePid = 1;
constexpr int kPlannerTid = 100;
constexpr int kFaultInjectorTid = 99;
constexpr int kSimulatorTid = 98;
constexpr int kFirstLoopTid = 1;

/// One Chrome trace_event entry. Phases used: 'X' (complete span with
/// duration), 'i' (instant), 'C' (counter track).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< 'X' only.
  /// Process lane. The fleet default is kTracePid; per-flow/per-layer
  /// scopes registered via TraceCollector::RegisterScope get their own
  /// pid so Perfetto renders them as separate process groups instead of
  /// interleaving every flow on one row.
  int pid = kTracePid;
  int tid = 0;
  /// Rendered into the event's "args" object. Numeric args keep full
  /// precision; string args are JSON-escaped at export.
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Bounded in-memory collector of trace events. When the capacity is
/// reached new events are dropped (and counted) rather than evicting
/// old ones — a truncated-at-the-end trace stays internally consistent
/// for Perfetto. Export with obs::WriteChromeTrace.
class TraceCollector {
 public:
  explicit TraceCollector(size_t capacity = 1 << 20) : capacity_(capacity) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Complete span [t0, t0 + dur) on track `tid`, times in sim seconds.
  void AddSpan(std::string name, std::string category, SimTime t0,
               double dur_sec, int tid, TraceEvent event_args = {});
  /// Instant event at `t` on track `tid`.
  void AddInstant(std::string name, std::string category, SimTime t, int tid,
                  TraceEvent event_args = {});
  /// Counter sample: renders as a value track named `name`.
  void AddCounter(std::string name, SimTime t, int tid, double value,
                  int pid = kTracePid);

  /// Allocates a fresh pid for a named scope (flow, layer) and records
  /// its process_name metadata. Events carrying the returned pid render
  /// in their own Perfetto lane group.
  int RegisterScope(std::string name);

  /// Names the track in the trace viewer ("analytics", "nsga2", ...).
  /// The tid-only overload names tracks of the default kTracePid lane.
  void SetTrackName(int tid, std::string name);
  void SetTrackName(int pid, int tid, std::string name);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Track names keyed by (pid, tid).
  const std::map<std::pair<int, int>, std::string>& track_names() const {
    return track_names_;
  }
  /// Scope process names keyed by pid (kTracePid itself excluded; the
  /// exporter names it "flower").
  const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

 private:
  bool Admit();

  size_t capacity_;
  uint64_t dropped_ = 0;
  int next_pid_ = kTracePid + 1;
  std::vector<TraceEvent> events_;
  std::map<std::pair<int, int>, std::string> track_names_;
  std::map<int, std::string> process_names_;
};

}  // namespace flower::obs

#endif  // FLOWER_OBS_TRACE_H_
