#ifndef FLOWER_OBS_HEALTH_ANOMALY_H_
#define FLOWER_OBS_HEALTH_ANOMALY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "obs/health/slo.h"
#include "obs/metrics_registry.h"
#include "stats/rolling.h"

namespace flower::exec {
class ThreadPool;
}  // namespace flower::exec

namespace flower::obs::health {

/// Tuning for one stream's detector pair. Defaults are sized for
/// one-sample-per-evaluation-tick streams (60 s cadence): warmup is two
/// sim-minutes of history, the spike gate is ~5 robust sigmas, and the
/// Page–Hinkley budget trips after a sustained ~2-sigma level shift in
/// roughly 4 samples.
struct AnomalyConfig {
  double ewma_alpha = 0.25;  ///< Location tracking speed.
  double scale_alpha = 0.1;  ///< Robust scale (EW abs-deviation) speed.
  double z_threshold = 5.0;  ///< |z| above this flags a spike.
  /// Samples buffered in a stats::RollingWindow to seed the EWMA
  /// location/scale before any flagging starts.
  size_t warmup_samples = 8;
  /// Absolute floor on the scale estimate so constant streams do not
  /// divide by zero (any change on a flat stream is then a spike).
  double min_scale = 1e-6;
  double ph_delta = 0.5;    ///< PH drift allowance, in robust sigmas.
  double ph_lambda = 8.0;   ///< PH alarm threshold, in robust sigmas.
};

enum class AnomalyKind {
  kSpike,      ///< One-sample outlier (EWMA + MAD-style z-score gate).
  kLevelShift, ///< Sustained mean change (Page–Hinkley).
};

const char* AnomalyKindToString(AnomalyKind kind);

struct AnomalyEvent {
  SimTime time = 0.0;
  std::string stream;  ///< Display id, e.g. "loop.sensed_y{loop=storage}".
  std::string layer;   ///< Layer tag attached at Watch(); may be "".
  AnomalyKind kind = AnomalyKind::kSpike;
  double value = 0.0;  ///< The observed sample.
  double score = 0.0;  ///< |z| for spikes; PH statistic for shifts.
};

/// O(1)-per-sample detector: EWMA location + exponentially weighted
/// mean absolute deviation as a MAD-style robust scale (×1.2533 for
/// Gaussian consistency), gating a z-score spike test; plus a
/// two-sided Page–Hinkley cumulative test on the normalized residual
/// for level shifts. The first `warmup_samples` observations are
/// collected in a stats::RollingWindow and used to seed location and
/// scale; nothing is flagged during warmup. State updates winsorize
/// the residual at 3 sigma so a single spike cannot drag the baseline
/// to the outlier and mask the next one.
class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config);

  struct Sample {
    bool spike = false;
    bool shift = false;
    double z = 0.0;        ///< Signed z-score vs the pre-update baseline.
    double ph_stat = 0.0;  ///< Max of the two one-sided PH statistics.
  };

  Sample Update(double x);

  bool warmed_up() const { return warmed_up_; }
  double mean() const { return mean_; }
  double scale() const;

 private:
  AnomalyConfig config_;
  stats::RollingWindow seed_;
  bool warmed_up_ = false;
  double mean_ = 0.0;
  double abs_dev_ = 0.0;  ///< EW mean absolute deviation.
  // Two-sided Page–Hinkley accumulators over the normalized residual.
  double ph_up_ = 0.0;
  double ph_up_min_ = 0.0;
  double ph_down_ = 0.0;
  double ph_down_max_ = 0.0;
};

/// A set of detectors bound to registry instruments. `UpdateAll` pulls
/// each watched stream's current sample out of a MetricsSnapshot
/// (gauges directly; counters as per-tick rate) and advances its
/// detector. Detector updates are independent per stream, so they fan
/// out across a thread pool with per-stream result slots merged in
/// stream order — output is bit-identical at any thread count.
class AnomalyBank {
 public:
  enum class Source {
    kGauge,        ///< Sample = gauge value.
    kCounterRate,  ///< Sample = counter delta per tick.
  };

  /// Registers a stream. `layer` tags resulting events for attribution
  /// ("" for flow-level streams). Duplicate (source, selector) watches
  /// are rejected.
  Status Watch(Source source, MetricSelector selector, std::string layer,
               AnomalyConfig config = {});

  /// Advances every stream one tick. Streams whose instrument is absent
  /// from the snapshot skip the tick (detectors hold state). `pool` may
  /// be null for inline execution.
  std::vector<AnomalyEvent> UpdateAll(SimTime now,
                                      const MetricsSnapshot& snapshot,
                                      exec::ThreadPool* pool = nullptr);

  struct StreamState {
    std::string stream;
    std::string layer;
    double last_value = 0.0;
    double last_z = 0.0;
    bool anomalous = false;  ///< Spike or shift on the latest tick.
  };
  /// Current per-stream state in registration order (for publication
  /// and dashboards).
  std::vector<StreamState> States() const;

  size_t NumStreams() const { return streams_.size(); }

 private:
  struct Stream {
    Source source;
    MetricSelector selector;
    std::string display;  ///< selector.ToString(), cached.
    std::string layer;
    AnomalyDetector detector;
    // Counter-rate differencing state.
    bool has_last_counter = false;
    double last_counter = 0.0;
    StreamState state;
  };

  std::vector<Stream> streams_;
};

}  // namespace flower::obs::health

#endif  // FLOWER_OBS_HEALTH_ANOMALY_H_
