#include "obs/health/attribution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace flower::obs::health {

namespace {

std::string FormatFraction(double frac) {
  std::ostringstream os;
  os.precision(3);
  os << frac;
  return os.str();
}

/// Per-layer tallies over the recent decision-record window.
struct Symptoms {
  size_t records = 0;
  size_t saturated = 0;
  size_t breaker_open = 0;
  size_t actuation_failed = 0;
  size_t sensor_miss = 0;
  size_t stale = 0;
  size_t faulted = 0;
};

}  // namespace

HealthReport RootCauseAttributor::Attribute(
    SimTime now, const SloStatus& breached,
    const std::vector<ControlDecisionRecord>& decisions,
    const std::vector<AnomalyEvent>& anomalies) const {
  HealthReport report;
  report.time = now;
  report.slo = breached;

  // std::map keeps layers in name order, which makes tie-handling and
  // evidence ordering deterministic.
  std::map<std::string, Symptoms> symptoms;
  double cutoff = now - config_.decision_window_sec;
  for (const ControlDecisionRecord& rec : decisions) {
    if (rec.time < cutoff || rec.time > now) continue;
    Symptoms& s = symptoms[rec.layer];
    s.records += 1;
    if (rec.outcome == StepOutcome::kActuated &&
        rec.raw_u - rec.clamped_u > config_.saturation_eps) {
      s.saturated += 1;
    }
    switch (rec.outcome) {
      case StepOutcome::kBreakerOpen:
        s.breaker_open += 1;
        break;
      case StepOutcome::kActuationFailed:
        s.actuation_failed += 1;
        break;
      case StepOutcome::kSensorMiss:
        s.sensor_miss += 1;
        break;
      default:
        break;
    }
    if (rec.stale_sensor) s.stale += 1;
    if (rec.fault_mask != 0) s.faulted += 1;
  }

  std::map<std::string, std::vector<const AnomalyEvent*>> layer_anomalies;
  double anomaly_cutoff = now - config_.anomaly_window_sec;
  for (const AnomalyEvent& ev : anomalies) {
    if (ev.time < anomaly_cutoff || ev.time > now) continue;
    report.recent_anomalies.push_back(ev);
    if (!ev.layer.empty()) layer_anomalies[ev.layer].push_back(&ev);
  }

  // Union of layers with any signal at all; edges add their endpoints
  // so a silent-but-implicated layer still appears in the ranking.
  std::map<std::string, LayerAttribution> scores;
  for (const auto& [layer, s] : symptoms) scores[layer].layer = layer;
  for (const auto& [layer, evs] : layer_anomalies) {
    scores[layer].layer = layer;
  }
  for (const DependencyEdge& e : edges_) {
    if (!e.significant) continue;
    scores[e.predictor_layer].layer = e.predictor_layer;
    scores[e.response_layer].layer = e.response_layer;
  }

  for (auto& [layer, attr] : scores) {
    auto it = symptoms.find(layer);
    if (it != symptoms.end() && it->second.records > 0) {
      const Symptoms& s = it->second;
      double n = static_cast<double>(s.records);
      auto add = [&](size_t count, double weight, const char* kind,
                     const char* what) {
        if (count == 0) return;
        double frac = static_cast<double>(count) / n;
        attr.score += frac * weight;
        attr.evidence.push_back(
            {kind,
             std::string(what) + " in " + FormatFraction(frac) +
                 " of recent control steps",
             frac * weight});
      };
      add(s.saturated, config_.w_saturation, "saturation",
          "actuation clamped below controller demand");
      add(s.breaker_open, config_.w_breaker_open, "breaker_open",
          "circuit breaker open");
      add(s.actuation_failed, config_.w_actuation_failed, "actuation_failed",
          "actuation attempts failed");
      add(s.sensor_miss, config_.w_sensor_miss, "sensor_miss",
          "control steps skipped on missing measurements");
      add(s.stale, config_.w_stale_sensor, "stale_sensor",
          "control steps ran on held last-good values");
      add(s.faulted, config_.w_fault_interference, "fault_interference",
          "injected-fault interference stamped");
    }

    auto an = layer_anomalies.find(layer);
    if (an != layer_anomalies.end() && !an->second.empty()) {
      double contribution = std::min(
          config_.anomaly_cap,
          config_.w_anomaly * static_cast<double>(an->second.size()));
      attr.score += contribution;
      const AnomalyEvent* top = an->second.front();
      for (const AnomalyEvent* ev : an->second) {
        if (ev->score > top->score) top = ev;
      }
      std::ostringstream detail;
      detail << an->second.size() << " detector events, strongest "
             << AnomalyKindToString(top->kind) << " on " << top->stream
             << " (score " << FormatFraction(top->score) << ")";
      attr.evidence.push_back({"anomaly", detail.str(), contribution});
    }
  }

  // Dependency propagation (Eq. 1/2): a significant edge P -> R says
  // R's load is driven by P. When R is already showing distress — or
  // is the breached SLO's own layer — the edge is the causal story for
  // *why* R is the bottleneck (upstream demand outgrew R's capacity),
  // so R gets the credit, scaled by |r|.
  for (const DependencyEdge& e : edges_) {
    if (!e.significant) continue;
    auto it = scores.find(e.response_layer);
    if (it == scores.end()) continue;
    bool distressed = it->second.score > 0.0;
    bool slo_layer = !breached.layer.empty() && breached.layer == e.response_layer;
    if (!distressed && !slo_layer) continue;
    double w = config_.w_dependency * std::abs(e.correlation);
    it->second.score += w;
    std::ostringstream detail;
    detail << "Eq. 1 edge: " << e.response_metric << " = "
           << e.slope << " * " << e.predictor_metric << " (r="
           << FormatFraction(e.correlation)
           << ") — load driven by " << e.predictor_layer;
    it->second.evidence.push_back({"dependency", detail.str(), w});
  }

  report.ranking.reserve(scores.size());
  for (auto& [layer, attr] : scores) {
    // Evidence strongest-first within a layer.
    std::stable_sort(attr.evidence.begin(), attr.evidence.end(),
                     [](const AttributionEvidence& a,
                        const AttributionEvidence& b) {
                       return a.weight > b.weight;
                     });
    report.ranking.push_back(std::move(attr));
  }

  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [](const LayerAttribution& a, const LayerAttribution& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.layer < b.layer;
                   });

  std::ostringstream summary;
  summary << "SLO " << breached.id << " breached (burn fast "
          << FormatFraction(breached.burn_fast) << ", slow "
          << FormatFraction(breached.burn_slow) << ")";
  if (!report.ranking.empty() && report.ranking.front().score > 0.0) {
    const LayerAttribution& top = report.ranking.front();
    summary << "; top attribution: " << top.layer << " (score "
            << FormatFraction(top.score) << ")";
    if (!top.evidence.empty()) {
      summary << " — " << top.evidence.front().detail;
    }
  } else {
    summary << "; no layer implicated by recent telemetry";
  }
  report.summary = summary.str();
  return report;
}

}  // namespace flower::obs::health
