#include "obs/health/slo.h"

#include <algorithm>
#include <cmath>

namespace flower::obs::health {

namespace {

LabelSet NormalizeLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Window capacity in ticks; a window shorter than one tick still holds
/// one sample so burn math stays defined.
size_t TicksFor(double window_sec, double eval_period_sec) {
  if (eval_period_sec <= 0.0) return 1;
  double ticks = std::ceil(window_sec / eval_period_sec);
  if (ticks < 1.0) return 1;
  return static_cast<size_t>(ticks);
}

}  // namespace

const char* SliKindToString(SliKind kind) {
  switch (kind) {
    case SliKind::kGaugeBelow:
      return "gauge_below";
    case SliKind::kGaugeAbove:
      return "gauge_above";
    case SliKind::kCounterRatio:
      return "counter_ratio";
    case SliKind::kHistogramBelow:
      return "histogram_below";
  }
  return "unknown";
}

std::string MetricSelector::ToString() const {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += '=';
      out += v;
    }
    out += '}';
  }
  return out;
}

const GaugeSample* FindGauge(const MetricsSnapshot& snapshot,
                             const MetricSelector& selector) {
  LabelSet norm = NormalizeLabels(selector.labels);
  for (const auto& g : snapshot.gauges) {
    if (g.name == selector.name && g.labels == norm) return &g;
  }
  return nullptr;
}

const CounterSample* FindCounter(const MetricsSnapshot& snapshot,
                                 const MetricSelector& selector) {
  LabelSet norm = NormalizeLabels(selector.labels);
  for (const auto& c : snapshot.counters) {
    if (c.name == selector.name && c.labels == norm) return &c;
  }
  return nullptr;
}

const HistogramSample* FindHistogram(const MetricsSnapshot& snapshot,
                                     const MetricSelector& selector) {
  LabelSet norm = NormalizeLabels(selector.labels);
  for (const auto& h : snapshot.histograms) {
    if (h.name == selector.name && h.labels == norm) return &h;
  }
  return nullptr;
}

Status ValidateSloSpec(const SloSpec& spec) {
  if (spec.id.empty()) {
    return Status::InvalidArgument("SloSpec: id must be non-empty");
  }
  if (spec.metric.name.empty()) {
    return Status::InvalidArgument("SloSpec " + spec.id +
                                   ": metric selector must name an instrument");
  }
  if (spec.kind == SliKind::kCounterRatio && spec.total.name.empty()) {
    return Status::InvalidArgument(
        "SloSpec " + spec.id + ": counter_ratio needs a total counter");
  }
  if (!(spec.objective > 0.0 && spec.objective < 1.0)) {
    return Status::InvalidArgument("SloSpec " + spec.id +
                                   ": objective must be in (0, 1)");
  }
  if (spec.fast_window_sec <= 0.0 ||
      spec.slow_window_sec < spec.fast_window_sec ||
      spec.budget_window_sec < spec.slow_window_sec) {
    return Status::InvalidArgument(
        "SloSpec " + spec.id +
        ": windows must satisfy 0 < fast <= slow <= budget");
  }
  if (spec.burn_alert_threshold <= 0.0) {
    return Status::InvalidArgument(
        "SloSpec " + spec.id + ": burn_alert_threshold must be positive");
  }
  return Status::OK();
}

void SloTracker::RatioWindow::Add(double bad, double total) {
  ring_.emplace_back(bad, total);
  bad_sum_ += bad;
  total_sum_ += total;
  if (ring_.size() > capacity_) {
    bad_sum_ -= ring_.front().first;
    total_sum_ -= ring_.front().second;
    ring_.pop_front();
  }
  // The sums are maintained incrementally; clamp tiny negative residue
  // from float cancellation so bad_fraction stays in [0, 1].
  if (bad_sum_ < 0.0) bad_sum_ = 0.0;
  if (total_sum_ < 0.0) total_sum_ = 0.0;
}

SloTracker::SloTracker(SloSpec spec, double eval_period_sec)
    : spec_(std::move(spec)),
      fast_(TicksFor(spec_.fast_window_sec, eval_period_sec)),
      slow_(TicksFor(spec_.slow_window_sec, eval_period_sec)),
      budget_(TicksFor(spec_.budget_window_sec, eval_period_sec)),
      warmup_ticks_(TicksFor(spec_.fast_window_sec, eval_period_sec)) {
  status_.id = spec_.id;
  status_.layer = spec_.layer;
}

std::pair<double, double> SloTracker::Measure(
    const MetricsSnapshot& snapshot) {
  switch (spec_.kind) {
    case SliKind::kGaugeBelow:
    case SliKind::kGaugeAbove: {
      const GaugeSample* g = FindGauge(snapshot, spec_.metric);
      if (g == nullptr) return {0.0, 0.0};
      bool bad = spec_.kind == SliKind::kGaugeBelow
                     ? g->value > spec_.threshold
                     : g->value < spec_.threshold;
      return {bad ? 1.0 : 0.0, 1.0};
    }
    case SliKind::kCounterRatio: {
      const CounterSample* bad = FindCounter(snapshot, spec_.metric);
      const CounterSample* total = FindCounter(snapshot, spec_.total);
      if (bad == nullptr || total == nullptr) return {0.0, 0.0};
      double bad_now = static_cast<double>(bad->value);
      double total_now = static_cast<double>(total->value);
      if (!has_baseline_) {
        // First sighting sets the baseline; pre-existing counts are
        // history the tracker was not running for.
        has_baseline_ = true;
        last_bad_counter_ = bad_now;
        last_total_counter_ = total_now;
        return {0.0, 0.0};
      }
      double d_bad = std::max(0.0, bad_now - last_bad_counter_);
      double d_total = std::max(0.0, total_now - last_total_counter_);
      last_bad_counter_ = bad_now;
      last_total_counter_ = total_now;
      // A counter pair can report bad > total transiently if the two
      // increments race the snapshot; never claim more bad than total.
      return {std::min(d_bad, d_total), d_total};
    }
    case SliKind::kHistogramBelow: {
      const HistogramSample* h = FindHistogram(snapshot, spec_.metric);
      if (h == nullptr) return {0.0, 0.0};
      if (!has_baseline_ || last_buckets_.size() != h->buckets.size()) {
        has_baseline_ = true;
        last_buckets_ = h->buckets;
        return {0.0, 0.0};
      }
      double d_total = 0.0;
      double d_good = 0.0;
      for (size_t i = 0; i < h->buckets.size(); ++i) {
        uint64_t prev = last_buckets_[i];
        double d = h->buckets[i] >= prev
                       ? static_cast<double>(h->buckets[i] - prev)
                       : 0.0;
        d_total += d;
        // A bucket is good only when every value it can hold is within
        // the threshold (conservative for the straddling bucket).
        if (h->bounds[i] <= spec_.threshold) d_good += d;
      }
      last_buckets_ = h->buckets;
      return {d_total - d_good, d_total};
    }
  }
  return {0.0, 0.0};
}

void SloTracker::Update(SimTime now, const MetricsSnapshot& snapshot) {
  auto [bad, total] = Measure(snapshot);
  fast_.Add(bad, total);
  slow_.Add(bad, total);
  budget_.Add(bad, total);

  double budget_fraction = 1.0 - spec_.objective;
  status_.time = now;
  status_.evaluations += 1;
  status_.good_fraction = 1.0 - fast_.bad_fraction();
  status_.burn_fast = fast_.bad_fraction() / budget_fraction;
  status_.burn_slow = slow_.bad_fraction() / budget_fraction;
  // Budget consumed = bad events so far relative to the events the
  // objective allows over the budget window's observed traffic.
  double allowed = budget_.total_sum() * budget_fraction;
  status_.budget_consumed =
      allowed <= 0.0 ? 0.0 : budget_.bad_sum() / allowed;

  // Multi-window rule: page only when the short window confirms the
  // burn is still happening AND the long window confirms it is not a
  // blip. Clearing needs only the fast window to recover, so alerts
  // stop promptly once the condition ends.
  bool fast_hot = status_.burn_fast >= spec_.burn_alert_threshold;
  bool slow_hot = status_.burn_slow >= spec_.burn_alert_threshold;
  // No alerting until the fast window has filled once: over a 1-2
  // sample history every startup transient reads as a max-burn breach
  // (cold-start alert noise, the multi-window analogue of alerting on
  // an empty error budget).
  bool warmed = status_.evaluations >= warmup_ticks_;
  if (!status_.breached && warmed && fast_hot && slow_hot) {
    status_.breached = true;
    status_.breach_since = now;
    status_.alerts_fired += 1;
  } else if (status_.breached && !fast_hot) {
    status_.breached = false;
    status_.breach_since = -1.0;
  }
}

}  // namespace flower::obs::health
