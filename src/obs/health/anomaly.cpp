#include "obs/health/anomaly.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"

namespace flower::obs::health {

namespace {

/// E|X - mu| = sigma * sqrt(2/pi) for a Gaussian, so sigma ≈ 1.2533 *
/// mean absolute deviation — the same consistency idea as the classic
/// 1.4826 * MAD, applied to the exponentially weighted abs-deviation.
constexpr double kMadToSigma = 1.2533141373155003;

}  // namespace

const char* AnomalyKindToString(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kSpike:
      return "spike";
    case AnomalyKind::kLevelShift:
      return "level_shift";
  }
  return "unknown";
}

AnomalyDetector::AnomalyDetector(AnomalyConfig config)
    : config_(config),
      seed_(config.warmup_samples == 0 ? 1 : config.warmup_samples) {
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    config_.ewma_alpha = 0.25;
  }
  if (config_.scale_alpha <= 0.0 || config_.scale_alpha > 1.0) {
    config_.scale_alpha = 0.1;
  }
  if (config_.z_threshold <= 0.0) config_.z_threshold = 5.0;
  if (config_.min_scale <= 0.0) config_.min_scale = 1e-6;
  if (config_.ph_lambda <= 0.0) config_.ph_lambda = 8.0;
  if (config_.ph_delta < 0.0) config_.ph_delta = 0.0;
}

double AnomalyDetector::scale() const {
  return std::max(config_.min_scale, kMadToSigma * abs_dev_);
}

AnomalyDetector::Sample AnomalyDetector::Update(double x) {
  Sample out;
  if (std::isnan(x)) return out;

  if (!warmed_up_) {
    seed_.Add(x);
    if (seed_.full()) {
      // Seed location from the window mean and the abs-deviation from
      // the window stddev (sigma -> mean-abs-dev is the inverse of the
      // consistency factor).
      mean_ = seed_.Mean();
      abs_dev_ = seed_.StdDev() / kMadToSigma;
      warmed_up_ = true;
    }
    return out;
  }

  double s = scale();
  double residual = x - mean_;
  out.z = residual / s;
  out.spike = std::abs(out.z) >= config_.z_threshold;

  // Two-sided Page–Hinkley on the winsorized residual: accumulate
  // drift beyond the allowance delta and alarm when the excursion from
  // the running extremum exceeds lambda. Clamping the input to 3 sigma
  // keeps a single wild sample — the spike detector's job — from
  // tripping the drift alarm on its own.
  double zc = std::clamp(out.z, -3.0, 3.0);
  ph_up_ += zc - config_.ph_delta;
  ph_up_min_ = std::min(ph_up_min_, ph_up_);
  ph_down_ += zc + config_.ph_delta;
  ph_down_max_ = std::max(ph_down_max_, ph_down_);
  double up_stat = ph_up_ - ph_up_min_;
  double down_stat = ph_down_max_ - ph_down_;
  out.ph_stat = std::max(up_stat, down_stat);
  if (out.ph_stat >= config_.ph_lambda) {
    out.shift = true;
    // Restart the test at the new level: re-center the location on the
    // sample and zero the accumulators, otherwise the alarm latches
    // forever after one shift.
    mean_ = x;
    ph_up_ = ph_up_min_ = 0.0;
    ph_down_ = ph_down_max_ = 0.0;
  }

  // Winsorized state update: clamp the residual to 3 sigma so outliers
  // nudge the baseline instead of capturing it.
  double clamped = std::clamp(residual, -3.0 * s, 3.0 * s);
  if (!out.shift) {
    mean_ += config_.ewma_alpha * clamped;
  }
  abs_dev_ += config_.scale_alpha * (std::abs(clamped) - abs_dev_);
  return out;
}

Status AnomalyBank::Watch(Source source, MetricSelector selector,
                          std::string layer, AnomalyConfig config) {
  std::sort(selector.labels.begin(), selector.labels.end());
  for (const Stream& s : streams_) {
    if (s.source == source && s.selector.name == selector.name &&
        s.selector.labels == selector.labels) {
      return Status::InvalidArgument("AnomalyBank: duplicate watch for " +
                                     selector.ToString());
    }
  }
  Stream s{source,
           selector,
           selector.ToString(),
           std::move(layer),
           AnomalyDetector(config),
           /*has_last_counter=*/false,
           /*last_counter=*/0.0,
           StreamState{}};
  s.state.stream = s.display;
  s.state.layer = s.layer;
  streams_.push_back(std::move(s));
  return Status::OK();
}

std::vector<AnomalyEvent> AnomalyBank::UpdateAll(
    SimTime now, const MetricsSnapshot& snapshot, exec::ThreadPool* pool) {
  struct Slot {
    bool sampled = false;
    double value = 0.0;
    AnomalyDetector::Sample sample;
  };
  std::vector<Slot> slots(streams_.size());

  // Per-stream work is independent (each touches only its own detector
  // and slot), so it parallelizes with no synchronization; the merge
  // below runs in stream order, keeping output identical at any thread
  // count.
  auto body = [&](size_t i) -> Status {
    Stream& s = streams_[i];
    Slot& slot = slots[i];
    double x = 0.0;
    switch (s.source) {
      case Source::kGauge: {
        const GaugeSample* g = FindGauge(snapshot, s.selector);
        if (g == nullptr) return Status::OK();
        x = g->value;
        break;
      }
      case Source::kCounterRate: {
        const CounterSample* c = FindCounter(snapshot, s.selector);
        if (c == nullptr) return Status::OK();
        double v = static_cast<double>(c->value);
        if (!s.has_last_counter) {
          s.has_last_counter = true;
          s.last_counter = v;
          return Status::OK();
        }
        x = std::max(0.0, v - s.last_counter);
        s.last_counter = v;
        break;
      }
    }
    slot.sampled = true;
    slot.value = x;
    slot.sample = s.detector.Update(x);
    return Status::OK();
  };

  if (pool != nullptr && pool->num_threads() > 1 && streams_.size() > 1) {
    pool->ParallelFor(0, streams_.size(), 1, body);
  } else {
    for (size_t i = 0; i < streams_.size(); ++i) body(i);
  }

  std::vector<AnomalyEvent> events;
  for (size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    const Slot& slot = slots[i];
    if (!slot.sampled) continue;
    s.state.last_value = slot.value;
    s.state.last_z = slot.sample.z;
    s.state.anomalous = slot.sample.spike || slot.sample.shift;
    if (slot.sample.spike) {
      events.push_back({now, s.display, s.layer, AnomalyKind::kSpike,
                        slot.value, std::abs(slot.sample.z)});
    }
    if (slot.sample.shift) {
      events.push_back({now, s.display, s.layer, AnomalyKind::kLevelShift,
                        slot.value, slot.sample.ph_stat});
    }
  }
  return events;
}

std::vector<AnomalyBank::StreamState> AnomalyBank::States() const {
  std::vector<StreamState> out;
  out.reserve(streams_.size());
  for (const Stream& s : streams_) out.push_back(s.state);
  return out;
}

}  // namespace flower::obs::health
