#ifndef FLOWER_OBS_HEALTH_ATTRIBUTION_H_
#define FLOWER_OBS_HEALTH_ATTRIBUTION_H_

#include <string>
#include <vector>

#include "common/time_series.h"
#include "obs/event_log.h"
#include "obs/health/anomaly.h"
#include "obs/health/slo.h"

namespace flower::obs::health {

/// A learned Eq. 1 cross-layer regression edge, in neutral form: obs
/// cannot include core, so core::DependencyAnalyzer results are
/// converted to this struct (see core::ToHealthEdges) and handed in.
struct DependencyEdge {
  std::string predictor_layer;
  std::string response_layer;
  std::string predictor_metric;  ///< Display name, e.g. "IncomingRecords".
  std::string response_metric;
  double slope = 0.0;
  double correlation = 0.0;
  double r_squared = 0.0;
  bool significant = false;
};

/// One scored contribution to a layer's attribution.
struct AttributionEvidence {
  std::string kind;    ///< "saturation", "breaker_open", "dependency", ...
  std::string detail;  ///< Human-readable specifics.
  double weight = 0.0;
};

struct LayerAttribution {
  std::string layer;
  double score = 0.0;
  std::vector<AttributionEvidence> evidence;
};

/// The structured artifact emitted on an SLO breach: which objective
/// broke, how hard it is burning, and the ranked per-layer attribution
/// (§4's "which layer is starving the flow" question, answered from
/// data already in the telemetry hub).
struct HealthReport {
  SimTime time = 0.0;
  SloStatus slo;  ///< Status of the breached objective at report time.
  /// Layers ranked by attribution score, highest first; ties break by
  /// layer name so reports are deterministic.
  std::vector<LayerAttribution> ranking;
  std::vector<AnomalyEvent> recent_anomalies;
  std::string summary;  ///< One line: top layer + dominant evidence.
};

struct AttributorConfig {
  /// How far back in sim-time decisions and anomalies are considered.
  double decision_window_sec = 600.0;
  double anomaly_window_sec = 600.0;
  /// clamped_u below raw_u by more than this counts as saturation
  /// (the loop asked for more capacity than limits/share allowed).
  double saturation_eps = 0.5;
  // Symptom weights. Decision-record symptoms are scored as the
  // fraction of the layer's recent records showing the symptom, times
  // the weight — so a layer with a faster control period is not
  // over-counted just for logging more rows.
  double w_saturation = 3.0;
  double w_breaker_open = 2.5;
  double w_actuation_failed = 2.0;
  double w_sensor_miss = 1.0;
  double w_stale_sensor = 0.5;
  double w_fault_interference = 1.5;
  double w_anomaly = 2.0;        ///< Per anomalous stream-tick, capped.
  double anomaly_cap = 4.0;      ///< Max total anomaly contribution.
  /// Credit |r| * w for each significant edge feeding a distressed
  /// layer: rising upstream load explains why the response layer is
  /// the bottleneck (Eq. 1/2 propagation).
  double w_dependency = 2.0;
};

/// Ranks layers by likely responsibility for an SLO breach, combining
/// three independent signal families: control-decision symptoms
/// (saturation, breaker state, failed actuations, sensor loss, fault
/// stamps), recent anomaly-detector events, and the learned dependency
/// graph. Pure function of its inputs — no clocks, no registry access —
/// so reports are reproducible from a decision-log snapshot.
class RootCauseAttributor {
 public:
  explicit RootCauseAttributor(AttributorConfig config = {})
      : config_(config) {}

  /// Replaces the dependency edges (re-learned periodically by the
  /// caller via core::DependencyAnalyzer).
  void SetDependencyEdges(std::vector<DependencyEdge> edges) {
    edges_ = std::move(edges);
  }
  const std::vector<DependencyEdge>& edges() const { return edges_; }

  /// Builds a report for one breached SLO. `decisions` is a DecisionLog
  /// snapshot (oldest first); `anomalies` recent detector events.
  HealthReport Attribute(SimTime now, const SloStatus& breached,
                         const std::vector<ControlDecisionRecord>& decisions,
                         const std::vector<AnomalyEvent>& anomalies) const;

  const AttributorConfig& config() const { return config_; }

 private:
  AttributorConfig config_;
  std::vector<DependencyEdge> edges_;
};

}  // namespace flower::obs::health

#endif  // FLOWER_OBS_HEALTH_ATTRIBUTION_H_
