#include "obs/health/health_monitor.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"
#include "obs/exporters.h"

namespace flower::obs::health {

namespace {

using internal::JsonEscape;
using internal::JsonNum;

}  // namespace

HealthMonitor::HealthMonitor(Telemetry* telemetry, HealthMonitorConfig config)
    : telemetry_(telemetry), config_(config), attributor_(config.attributor) {
  if (config_.eval_period_sec <= 0.0) config_.eval_period_sec = 60.0;
  if (config_.num_threads == 0) config_.num_threads = 1;
  if (config_.max_reports == 0) config_.max_reports = 1;
  if (config_.max_anomaly_events == 0) config_.max_anomaly_events = 1;
  if (config_.reattribute_every == 0) config_.reattribute_every = 1;
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(config_.num_threads);
  }
  if (config_.use_rollups) {
    config_.rollup.base_period_sec = config_.eval_period_sec;
    rollups_ = std::make_unique<RollupStore>(&telemetry_->metrics(),
                                             config_.rollup);
  }
  anomaly_counter_ = telemetry_->metrics().GetCounter("health.anomalies");
  report_counter_ = telemetry_->metrics().GetCounter("health.reports");
}

HealthMonitor::~HealthMonitor() = default;

Status HealthMonitor::AddSlo(const SloSpec& spec) {
  FLOWER_RETURN_NOT_OK(ValidateSloSpec(spec));
  for (const TrackedSlo& t : slos_) {
    if (t.tracker.spec().id == spec.id) {
      return Status::AlreadyExists("HealthMonitor: duplicate SLO id '" +
                                   spec.id + "'");
    }
  }
  TrackedSlo t{SloTracker(spec, config_.eval_period_sec)};
  LabelSet labels{{"slo", spec.id}};
  if (!spec.layer.empty()) labels.push_back({"layer", spec.layer});
  MetricsRegistry& reg = telemetry_->metrics();
  t.good_fraction = reg.GetGauge("slo.good_fraction", labels);
  t.burn_fast = reg.GetGauge("slo.burn_fast", labels);
  t.burn_slow = reg.GetGauge("slo.burn_slow", labels);
  t.budget_consumed = reg.GetGauge("slo.budget_consumed", labels);
  t.breached = reg.GetGauge("slo.breached", labels);
  t.alerts = reg.GetCounter("slo.alerts", labels);
  t.good_fraction->Set(1.0);
  TrackSloSeries(spec);
  slos_.push_back(std::move(t));
  return Status::OK();
}

void HealthMonitor::TrackSloSeries(const SloSpec& spec) {
  if (rollups_ == nullptr) return;
  switch (spec.kind) {
    case SliKind::kGaugeBelow:
    case SliKind::kGaugeAbove:
      rollups_->TrackGauge(spec.metric.name, spec.metric.labels);
      break;
    case SliKind::kCounterRatio:
      rollups_->TrackCounter(spec.metric.name, spec.metric.labels);
      rollups_->TrackCounter(spec.total.name, spec.total.labels);
      break;
    case SliKind::kHistogramBelow:
      rollups_->TrackHistogram(spec.metric.name, spec.metric.labels);
      break;
  }
}

Status HealthMonitor::Watch(AnomalyBank::Source source,
                            MetricSelector selector, std::string layer,
                            AnomalyConfig config) {
  if (rollups_ != nullptr) {
    if (source == AnomalyBank::Source::kGauge) {
      rollups_->TrackGauge(selector.name, selector.labels);
    } else {
      rollups_->TrackCounter(selector.name, selector.labels);
    }
  }
  return bank_.Watch(source, std::move(selector), std::move(layer), config);
}

void HealthMonitor::SetDependencyEdges(std::vector<DependencyEdge> edges) {
  attributor_.SetDependencyEdges(std::move(edges));
}

void HealthMonitor::PublishStreamGauges() {
  MetricsRegistry& reg = telemetry_->metrics();
  for (const AnomalyBank::StreamState& s : bank_.States()) {
    // Registration is idempotent (same pointer back), so resolving by
    // name each tick costs one locked map lookup per stream.
    reg.GetGauge("health.z", {{"stream", s.stream}})->Set(s.last_z);
  }
}

HealthReport HealthMonitor::BuildReport(SimTime now, const SloStatus& status) {
  std::vector<AnomalyEvent> recent(anomaly_log_.begin(), anomaly_log_.end());
  return attributor_.Attribute(now, status,
                               telemetry_->decisions().Snapshot(), recent);
}

void HealthMonitor::Evaluate(SimTime now) {
  evaluations_ += 1;
  // Rollup path: one atomic read per tracked series into the reused
  // sparse snapshot. Raw path: deep copy of the whole registry. Both
  // feeds skip absent instruments, so the health trajectory is
  // identical — only the per-tick cost differs.
  MetricsSnapshot raw_snapshot;
  if (rollups_ != nullptr) {
    rollups_->Tick(now);
  } else {
    raw_snapshot = telemetry_->metrics().Snapshot();
  }
  const MetricsSnapshot& snapshot =
      rollups_ != nullptr ? rollups_->TrackedSnapshot() : raw_snapshot;

  std::vector<AnomalyEvent> events =
      bank_.UpdateAll(now, snapshot, pool_.get());
  for (AnomalyEvent& ev : events) {
    anomaly_counter_->Increment();
    telemetry_->metrics()
        .GetCounter("health.anomaly_events",
                    {{"stream", ev.stream},
                     {"kind", AnomalyKindToString(ev.kind)}})
        ->Increment();
    anomaly_log_.push_back(std::move(ev));
    while (anomaly_log_.size() > config_.max_anomaly_events) {
      anomaly_log_.pop_front();
    }
  }
  PublishStreamGauges();

  for (TrackedSlo& t : slos_) {
    uint64_t alerts_before = t.tracker.status().alerts_fired;
    bool breached_before = t.tracker.status().breached;
    t.tracker.Update(now, snapshot);
    const SloStatus& st = t.tracker.status();
    t.good_fraction->Set(st.good_fraction);
    t.burn_fast->Set(st.burn_fast);
    t.burn_slow->Set(st.burn_slow);
    t.budget_consumed->Set(st.budget_consumed);
    t.breached->Set(st.breached ? 1.0 : 0.0);
    if (st.alerts_fired > alerts_before) t.alerts->Increment();

    // Attribute on the alert edge, and refresh periodically while the
    // breach persists so long incidents get reports with current
    // evidence instead of only the onset picture.
    bool fresh_alert = st.alerts_fired > alerts_before;
    bool periodic_refresh =
        st.breached && breached_before &&
        st.evaluations % config_.reattribute_every == 0;
    if (fresh_alert || periodic_refresh) {
      reports_.push_back(BuildReport(now, st));
      report_counter_->Increment();
      while (reports_.size() > config_.max_reports) reports_.pop_front();
    }
    if (fresh_alert && alert_edge_hook_) alert_edge_hook_(now, st);
  }
}

uint8_t HealthMonitor::MaskFor(const std::string& layer) const {
  uint8_t mask = 0;
  for (const TrackedSlo& t : slos_) {
    if (!t.tracker.status().breached) continue;
    if (t.tracker.spec().layer.empty()) {
      mask |= kHealthFlowBreach;
    } else if (t.tracker.spec().layer == layer) {
      mask |= kHealthLayerBreach;
    }
  }
  for (const AnomalyBank::StreamState& s : bank_.States()) {
    if (s.anomalous && s.layer == layer) {
      mask |= kHealthAnomaly;
      break;
    }
  }
  return mask;
}

std::vector<SloStatus> HealthMonitor::Statuses() const {
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const TrackedSlo& t : slos_) out.push_back(t.tracker.status());
  return out;
}

std::vector<std::string> HealthMonitor::ActiveAlerts() const {
  std::vector<std::string> out;
  for (const TrackedSlo& t : slos_) {
    if (t.tracker.status().breached) out.push_back(t.tracker.spec().id);
  }
  return out;
}

void HealthMonitor::WriteJsonl(std::ostream& os) const {
  for (const TrackedSlo& t : slos_) {
    const SloSpec& spec = t.tracker.spec();
    const SloStatus& st = t.tracker.status();
    os << "{\"type\":\"slo\",\"id\":\"" << JsonEscape(st.id)
       << "\",\"layer\":\"" << JsonEscape(st.layer) << "\",\"kind\":\""
       << SliKindToString(spec.kind) << "\",\"metric\":\""
       << JsonEscape(spec.metric.ToString())
       << "\",\"objective\":" << JsonNum(spec.objective)
       << ",\"time\":" << JsonNum(st.time)
       << ",\"good_fraction\":" << JsonNum(st.good_fraction)
       << ",\"burn_fast\":" << JsonNum(st.burn_fast)
       << ",\"burn_slow\":" << JsonNum(st.burn_slow)
       << ",\"budget_consumed\":" << JsonNum(st.budget_consumed)
       << ",\"breached\":" << (st.breached ? "true" : "false")
       << ",\"breach_since\":" << JsonNum(st.breach_since)
       << ",\"alerts_fired\":" << st.alerts_fired
       << ",\"evaluations\":" << st.evaluations << "}\n";
  }
  for (const AnomalyEvent& ev : anomaly_log_) {
    os << "{\"type\":\"anomaly\",\"time\":" << JsonNum(ev.time)
       << ",\"stream\":\"" << JsonEscape(ev.stream) << "\",\"layer\":\""
       << JsonEscape(ev.layer) << "\",\"kind\":\""
       << AnomalyKindToString(ev.kind)
       << "\",\"value\":" << JsonNum(ev.value)
       << ",\"score\":" << JsonNum(ev.score) << "}\n";
  }
  for (const HealthReport& r : reports_) {
    os << "{\"type\":\"report\",\"time\":" << JsonNum(r.time)
       << ",\"slo\":\"" << JsonEscape(r.slo.id)
       << "\",\"burn_fast\":" << JsonNum(r.slo.burn_fast)
       << ",\"summary\":\"" << JsonEscape(r.summary) << "\",\"ranking\":[";
    for (size_t i = 0; i < r.ranking.size(); ++i) {
      const LayerAttribution& a = r.ranking[i];
      if (i > 0) os << ',';
      os << "{\"layer\":\"" << JsonEscape(a.layer)
         << "\",\"score\":" << JsonNum(a.score) << ",\"evidence\":[";
      for (size_t j = 0; j < a.evidence.size(); ++j) {
        const AttributionEvidence& e = a.evidence[j];
        if (j > 0) os << ',';
        os << "{\"kind\":\"" << JsonEscape(e.kind) << "\",\"weight\":"
           << JsonNum(e.weight) << ",\"detail\":\"" << JsonEscape(e.detail)
           << "\"}";
      }
      os << "]}";
    }
    os << "]}\n";
  }
}

Status HealthMonitor::ExportJsonl(const std::string& path) const {
  return ExportToFile(path, [this](std::ostream& os) { WriteJsonl(os); });
}

std::vector<SloSpec> MakeDefaultSloPack(double util_threshold,
                                        double objective) {
  std::vector<SloSpec> pack;
  for (const char* layer : {"ingestion", "analytics", "storage"}) {
    SloSpec s;
    s.id = std::string(layer) + "/utilization";
    s.layer = layer;
    s.kind = SliKind::kGaugeBelow;
    s.metric = {"loop.sensed_y", {{"loop", layer}, {"layer", layer}}};
    s.threshold = util_threshold;
    s.objective = objective;
    pack.push_back(std::move(s));
  }
  return pack;
}

}  // namespace flower::obs::health
