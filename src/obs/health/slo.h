#ifndef FLOWER_OBS_HEALTH_SLO_H_
#define FLOWER_OBS_HEALTH_SLO_H_

#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "obs/metrics_registry.h"

namespace flower::obs::health {

/// How an SLO's service-level indicator is read from a registry
/// snapshot. All four forms reduce each evaluation tick to one
/// (bad, total) pair, so the error-budget math downstream is uniform.
enum class SliKind {
  /// Time-based: the tick is bad when the gauge exceeds `threshold`
  /// (e.g. p99-style utilization above the alarm line). total = 1.
  kGaugeBelow,
  /// Time-based: bad when the gauge is *under* `threshold` (headroom
  /// objectives, e.g. CPU idle or free capacity floors). total = 1.
  kGaugeAbove,
  /// Event-based: bad = delta of the `metric` counter, total = delta of
  /// the `total` counter since the previous tick (e.g. throttled writes
  /// over attempted writes).
  kCounterRatio,
  /// Event-based over a histogram delta: bad = events recorded since
  /// the previous tick that landed in buckets whose upper bound exceeds
  /// `threshold` (e.g. "ingest latency <= 250 ms").
  kHistogramBelow,
};

const char* SliKindToString(SliKind kind);

/// Addresses one instrument in a MetricsSnapshot. Labels are
/// canonicalized (sorted by key) exactly like the registry does, so a
/// selector matches regardless of the order the caller listed labels.
struct MetricSelector {
  std::string name;
  LabelSet labels;

  std::string ToString() const;
};

/// One service-level objective, per-layer or flow-wide, with the
/// Google-SRE multi-window burn-rate alert shape: the alert fires when
/// the burn rate over BOTH the fast window (default 5 sim-minutes) and
/// the slow window (default 1 sim-hour) is at or above
/// `burn_alert_threshold`, and clears when the fast-window burn drops
/// back under it. Burn rate = (bad fraction in window) / (1 − objective);
/// a burn of 1.0 consumes the budget exactly at the allowed pace.
struct SloSpec {
  std::string id;     ///< Unique name, e.g. "flow/write-availability".
  std::string layer;  ///< Layer scope ("ingestion", ...); "" = flow-wide.
  SliKind kind = SliKind::kGaugeBelow;
  MetricSelector metric;  ///< Gauge / histogram / bad-event counter.
  MetricSelector total;   ///< kCounterRatio only: the total counter.
  double threshold = 0.0; ///< Gauge bound / histogram latency bound.
  /// Target good fraction in (0, 1), e.g. 0.99 for a 99% objective.
  double objective = 0.99;
  double fast_window_sec = 300.0;
  double slow_window_sec = 3600.0;
  /// SRE page-worthy fast burn (5m/1h at 14.4 exhausts a 30-day budget
  /// in ~2 days; here windows are sim-time and the default is kept).
  double burn_alert_threshold = 14.4;
  /// Error budget accounting horizon.
  double budget_window_sec = 86400.0;
};

/// Point-in-time evaluation state of one SLO.
struct SloStatus {
  std::string id;
  std::string layer;
  SimTime time = 0.0;          ///< Last evaluation tick.
  double good_fraction = 1.0;  ///< Over the fast window.
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  /// Fraction of the error budget consumed over the budget window
  /// (>= 1 means the budget is spent).
  double budget_consumed = 0.0;
  bool breached = false;       ///< Multi-window burn alert active.
  SimTime breach_since = -1.0; ///< Start of the current breach; -1 idle.
  uint64_t alerts_fired = 0;   ///< Idle -> breached transitions.
  uint64_t evaluations = 0;
};

/// Incremental multi-window error-budget tracker for one SloSpec.
/// `Update` is called once per evaluation tick with the current
/// registry snapshot; counter/histogram forms difference against the
/// previous tick internally, so the tracker never rescans history.
/// Everything is sim-time driven — no wall clock — so a given snapshot
/// sequence reproduces the identical status trajectory.
class SloTracker {
 public:
  /// `eval_period_sec` is the tick spacing the windows are sized by.
  SloTracker(SloSpec spec, double eval_period_sec);

  /// Evaluates one tick. Missing instruments contribute no events (the
  /// tick is neither good nor bad), so an SLO over a not-yet-registered
  /// instrument stays at burn 0 instead of erroring.
  void Update(SimTime now, const MetricsSnapshot& snapshot);

  const SloSpec& spec() const { return spec_; }
  const SloStatus& status() const { return status_; }

 private:
  /// Fixed-capacity window of (bad, total) tick pairs with O(1) running
  /// sums (the SLO analogue of stats::RollingWindow, which carries one
  /// value per slot where this needs the pair).
  class RatioWindow {
   public:
    explicit RatioWindow(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}
    void Add(double bad, double total);
    double bad_fraction() const {
      return total_sum_ <= 0.0 ? 0.0 : bad_sum_ / total_sum_;
    }
    double bad_sum() const { return bad_sum_; }
    double total_sum() const { return total_sum_; }

   private:
    size_t capacity_;
    std::deque<std::pair<double, double>> ring_;
    double bad_sum_ = 0.0;
    double total_sum_ = 0.0;
  };

  /// The (bad, total) contribution of this tick, differenced against
  /// the previous tick's counter/histogram readings.
  std::pair<double, double> Measure(const MetricsSnapshot& snapshot);

  SloSpec spec_;
  SloStatus status_;
  RatioWindow fast_;
  RatioWindow slow_;
  RatioWindow budget_;
  /// Ticks before alerting can start (one full fast window).
  uint64_t warmup_ticks_ = 1;
  // Previous-tick readings for the delta forms.
  bool has_baseline_ = false;
  double last_bad_counter_ = 0.0;
  double last_total_counter_ = 0.0;
  std::vector<uint64_t> last_buckets_;
};

/// Validates a spec (non-empty id, objective in (0,1), positive and
/// ordered windows, selector present for the kind).
Status ValidateSloSpec(const SloSpec& spec);

/// Finds instruments in a snapshot by canonicalized (name, labels).
/// Return nullptr when absent.
const GaugeSample* FindGauge(const MetricsSnapshot& snapshot,
                             const MetricSelector& selector);
const CounterSample* FindCounter(const MetricsSnapshot& snapshot,
                                 const MetricSelector& selector);
const HistogramSample* FindHistogram(const MetricsSnapshot& snapshot,
                                     const MetricSelector& selector);

}  // namespace flower::obs::health

#endif  // FLOWER_OBS_HEALTH_SLO_H_
