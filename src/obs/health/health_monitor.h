#ifndef FLOWER_OBS_HEALTH_HEALTH_MONITOR_H_
#define FLOWER_OBS_HEALTH_HEALTH_MONITOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "obs/health/anomaly.h"
#include "obs/health/attribution.h"
#include "obs/health/slo.h"
#include "obs/rollup.h"
#include "obs/telemetry.h"

namespace flower::exec {
class ThreadPool;
}  // namespace flower::exec

namespace flower::obs::health {

/// Bits a HealthMonitor reports for a layer at a given instant (the
/// health analogue of FaultMask, and like it a plain integer so the
/// control layer can carry it without depending on obs/health).
inline constexpr uint8_t kHealthFlowBreach = 1 << 0;
inline constexpr uint8_t kHealthLayerBreach = 1 << 1;
inline constexpr uint8_t kHealthAnomaly = 1 << 2;

struct HealthMonitorConfig {
  /// Spacing of Evaluate() ticks; SLO windows are sized in these ticks.
  double eval_period_sec = 60.0;
  /// Threads for the anomaly-bank fan-out. 1 = inline. Results are
  /// bit-identical at any setting (per-stream slots, ordered merge).
  size_t num_threads = 1;
  /// Retained health reports / anomaly events (oldest dropped first).
  size_t max_reports = 256;
  size_t max_anomaly_events = 4096;
  /// While an SLO stays breached, re-attribute every this many ticks
  /// (fresh evidence) in addition to the initial alert report.
  uint64_t reattribute_every = 10;
  /// Feed SLO trackers and anomaly detectors from a RollupStore's
  /// sparse tracked snapshot instead of deep-copying the whole registry
  /// each tick. AddSlo/Watch auto-track the series they read, so the
  /// trajectory is identical to the raw scan (both skip instruments
  /// that are absent); set false only to A/B against the raw path.
  bool use_rollups = true;
  /// Tier shape for the rollup feed. base_period_sec is overridden to
  /// eval_period_sec (the store ticks once per Evaluate), so with the
  /// default multiples the tiers are 1x / 10x / 60x the eval period.
  RollupConfig rollup;
  AttributorConfig attributor;
};

/// The flow-health brain: owns the SLO trackers, the anomaly bank, and
/// the attributor; consumes the Telemetry hub each evaluation tick and
/// publishes its own state back into the registry (slo.* gauges,
/// health.* counters) so dashboards and exporters see health through
/// the same pipe as every other instrument.
///
/// Driving: sim-time only. Callers schedule
///   sim.SchedulePeriodic(start, config.eval_period_sec,
///                        [&] { monitor.Evaluate(sim.Now()); return true; });
/// themselves — the monitor never touches a clock or the Simulation
/// (obs cannot depend on sim), so a given telemetry history replays to
/// the identical health trajectory.
class HealthMonitor {
 public:
  /// `telemetry` must outlive the monitor.
  HealthMonitor(Telemetry* telemetry, HealthMonitorConfig config = {});
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Registers an objective. Duplicate ids are rejected. Registers the
  /// slo.* gauges for it immediately so exporters see the series from
  /// tick zero.
  Status AddSlo(const SloSpec& spec);

  /// Watches a registry instrument with an anomaly detector pair.
  /// `layer` tags events for attribution ("" = flow-level stream).
  Status Watch(AnomalyBank::Source source, MetricSelector selector,
               std::string layer, AnomalyConfig config = {});

  /// Installs/refreshes the learned dependency edges used by the
  /// attributor (typically re-learned periodically from
  /// core::DependencyAnalyzer via core::ToHealthEdges).
  void SetDependencyEdges(std::vector<DependencyEdge> edges);

  /// Installs a callback fired on every SLO alert *edge* (the tick a
  /// burn-rate alert first fires, not while it stays breached). This is
  /// the flight-recorder capture trigger: the hook runs inside
  /// Evaluate() after the tracker update, so the status it sees is the
  /// alert-tick state. Pass nullptr to uninstall.
  void SetAlertEdgeHook(std::function<void(SimTime, const SloStatus&)> hook) {
    alert_edge_hook_ = std::move(hook);
  }

  /// One evaluation tick: snapshots the registry, advances detectors
  /// and SLO trackers, publishes slo.*/health.* instruments, and on a
  /// breach transition builds a HealthReport from the decision log,
  /// recent anomalies, and the dependency edges.
  void Evaluate(SimTime now);

  /// Health bits for `layer` as of the latest Evaluate() tick.
  uint8_t MaskFor(const std::string& layer) const;

  /// Latest status per SLO, in AddSlo order.
  std::vector<SloStatus> Statuses() const;
  /// Ids of currently breached SLOs, in AddSlo order.
  std::vector<std::string> ActiveAlerts() const;
  const std::deque<HealthReport>& reports() const { return reports_; }
  const std::deque<AnomalyEvent>& anomaly_log() const { return anomaly_log_; }
  std::vector<AnomalyBank::StreamState> StreamStates() const {
    return bank_.States();
  }
  const HealthMonitorConfig& config() const { return config_; }
  uint64_t evaluations() const { return evaluations_; }

  /// The rollup store feeding Evaluate (per-SLO/watch series are
  /// tracked automatically; callers may Track/Query more). Null when
  /// config.use_rollups is false.
  RollupStore* rollups() { return rollups_.get(); }
  const RollupStore* rollups() const { return rollups_.get(); }

  /// Serializes the full health state as JSONL: one "slo" line per
  /// objective, one "anomaly" line per retained event, one "report"
  /// line per retained report (ranked attribution inline). Stable field
  /// order, %.6g numbers — byte-identical across runs and thread counts.
  void WriteJsonl(std::ostream& os) const;
  /// WriteJsonl to a file.
  Status ExportJsonl(const std::string& path) const;

 private:
  struct TrackedSlo {
    SloTracker tracker;
    Gauge* good_fraction = nullptr;
    Gauge* burn_fast = nullptr;
    Gauge* burn_slow = nullptr;
    Gauge* budget_consumed = nullptr;
    Gauge* breached = nullptr;
    Counter* alerts = nullptr;
  };

  void PublishStreamGauges();
  HealthReport BuildReport(SimTime now, const SloStatus& status);
  void TrackSloSeries(const SloSpec& spec);

  Telemetry* telemetry_;
  HealthMonitorConfig config_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<RollupStore> rollups_;
  std::vector<TrackedSlo> slos_;
  AnomalyBank bank_;
  RootCauseAttributor attributor_;
  std::deque<HealthReport> reports_;
  std::deque<AnomalyEvent> anomaly_log_;
  Counter* anomaly_counter_ = nullptr;
  Counter* report_counter_ = nullptr;
  std::function<void(SimTime, const SloStatus&)> alert_edge_hook_;
  uint64_t evaluations_ = 0;
};

/// The stock objective set for the canonical three-layer flow: per-layer
/// utilization SLOs over the manager's loop.sensed_y gauges (bad when
/// utilization exceeds `util_threshold`) plus, when the caller supplies
/// bad/total counter names, a flow-wide event-ratio SLO. Loop names are
/// the layer names ("ingestion", "analytics", "storage").
std::vector<SloSpec> MakeDefaultSloPack(double util_threshold = 90.0,
                                        double objective = 0.95);

}  // namespace flower::obs::health

#endif  // FLOWER_OBS_HEALTH_HEALTH_MONITOR_H_
