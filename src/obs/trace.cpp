#include "obs/trace.h"

namespace flower::obs {

bool TraceCollector::Admit() {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceCollector::AddSpan(std::string name, std::string category,
                             SimTime t0, double dur_sec, int tid,
                             TraceEvent event_args) {
  if (!Admit()) return;
  TraceEvent e = std::move(event_args);
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = SimToTraceUs(t0);
  e.dur_us = SimToTraceUs(dur_sec);
  e.tid = tid;
  events_.push_back(std::move(e));
}

void TraceCollector::AddInstant(std::string name, std::string category,
                                SimTime t, int tid, TraceEvent event_args) {
  if (!Admit()) return;
  TraceEvent e = std::move(event_args);
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = SimToTraceUs(t);
  e.tid = tid;
  events_.push_back(std::move(e));
}

void TraceCollector::AddCounter(std::string name, SimTime t, int tid,
                                double value, int pid) {
  if (!Admit()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = "counter";
  e.phase = 'C';
  e.ts_us = SimToTraceUs(t);
  e.pid = pid;
  e.tid = tid;
  e.num_args.emplace_back("value", value);
  events_.push_back(std::move(e));
}

int TraceCollector::RegisterScope(std::string name) {
  int pid = next_pid_++;
  process_names_[pid] = std::move(name);
  return pid;
}

void TraceCollector::SetTrackName(int tid, std::string name) {
  track_names_[{kTracePid, tid}] = std::move(name);
}

void TraceCollector::SetTrackName(int pid, int tid, std::string name) {
  track_names_[{pid, tid}] = std::move(name);
}

}  // namespace flower::obs
