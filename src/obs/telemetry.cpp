#include "obs/telemetry.h"

#include <cmath>
#include <utility>

namespace flower::obs {

void Telemetry::NoteFault(const std::string& target, FaultMask bits,
                          SimTime now) {
  FaultNote& note = fault_notes_[target];
  if (note.time == now) {
    note.mask = static_cast<FaultMask>(note.mask | bits);
  } else {
    note.time = now;
    note.mask = bits;
  }
}

FaultMask Telemetry::FaultMaskAt(const std::string& target,
                                 SimTime now) const {
  auto it = fault_notes_.find(target);
  if (it == fault_notes_.end() || it->second.time != now) return 0;
  return it->second.mask;
}

Status Telemetry::ExportTrace(const std::string& path) const {
  return ExportToFile(path,
                      [this](std::ostream& os) { WriteChromeTrace(os, trace_); });
}

Status Telemetry::ExportSpans(const std::string& path) const {
  return ExportToFile(path, [this](std::ostream& os) {
    WriteSpansChromeTrace(os, spans_, &trace_);
  });
}

Status Telemetry::ExportJsonl(const std::string& path, SimTime at) const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  auto records = decisions_.Snapshot();
  return ExportToFile(path, [&](std::ostream& os) {
    WriteDecisionJsonl(os, records);
    WriteSnapshotJsonl(os, snapshot, at);
  });
}

Status Telemetry::ExportDecisionsCsv(const std::string& path) const {
  auto records = decisions_.Snapshot();
  return ExportToFile(
      path, [&](std::ostream& os) { WriteDecisionCsv(os, records); });
}

std::function<void(const opt::Nsga2GenerationStats&)> MakeNsga2Observer(
    Telemetry* telemetry, std::string planner_name, SimTime anchor,
    double slice_sec) {
  telemetry->trace().SetTrackName(kPlannerTid, "planner:" + planner_name);
  Counter* generations = telemetry->metrics().GetCounter(
      "nsga2.generations", {{"planner", planner_name}});
  Gauge* front_size = telemetry->metrics().GetGauge(
      "nsga2.front_size", {{"planner", planner_name}});
  Gauge* hypervolume = telemetry->metrics().GetGauge(
      "nsga2.hypervolume", {{"planner", planner_name}});
  Gauge* evaluations = telemetry->metrics().GetGauge(
      "nsga2.evaluations", {{"planner", planner_name}});
  Gauge* stalled = telemetry->metrics().GetGauge(
      "nsga2.stalled_generations", {{"planner", planner_name}});
  return [telemetry, planner_name = std::move(planner_name), anchor,
          slice_sec, generations, front_size, hypervolume, evaluations,
          stalled](const opt::Nsga2GenerationStats& s) {
    generations->Increment();
    front_size->Set(static_cast<double>(s.front_size));
    evaluations->Set(static_cast<double>(s.evaluations));
    stalled->Set(static_cast<double>(s.stalled_generations));
    if (!std::isnan(s.hypervolume)) hypervolume->Set(s.hypervolume);

    // The optimizer runs outside the simulation clock; generations are
    // drawn as consecutive schematic slices from the planning instant.
    SimTime t0 = anchor + static_cast<double>(s.generation) * slice_sec;
    TraceEvent args;
    args.num_args.emplace_back("generation",
                               static_cast<double>(s.generation));
    args.num_args.emplace_back("front_size",
                               static_cast<double>(s.front_size));
    args.num_args.emplace_back("evaluations",
                               static_cast<double>(s.evaluations));
    if (!std::isnan(s.hypervolume)) {
      args.num_args.emplace_back("hypervolume", s.hypervolume);
    }
    telemetry->trace().AddSpan(planner_name + ".generation", "planning", t0,
                               slice_sec, kPlannerTid, std::move(args));
    telemetry->trace().AddCounter("nsga2.front_size", t0, kPlannerTid,
                                  static_cast<double>(s.front_size));

    // Causal span: one kGeneration child under the active kPlan span.
    // The observer only fires on the coordinator thread, so this is
    // deterministic at any solver thread count.
    telemetry->spans().Emit(
        SpanKind::kGeneration, planner_name, t0, slice_sec, kTracePid,
        kPlannerTid, telemetry->active_plan_span(), /*follows=*/0,
        static_cast<double>(s.front_size));
  };
}

}  // namespace flower::obs
