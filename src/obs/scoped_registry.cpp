#include "obs/scoped_registry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace flower::obs {

namespace {

// Labels in a sample are already normalized, so equal series produce
// equal MetricsRegistry::SeriesKey keys.
std::string SeriesKey(const std::string& name, const LabelSet& labels) {
  return MetricsRegistry::SeriesKey(name, labels);
}

// Inserts/overwrites the "scope" label, keeping the set sorted by key.
LabelSet WithScopeLabel(LabelSet labels, const std::string& scope) {
  auto it = std::lower_bound(
      labels.begin(), labels.end(), std::string("scope"),
      [](const auto& pair, const std::string& k) { return pair.first < k; });
  if (it != labels.end() && it->first == "scope") {
    it->second = scope;
  } else {
    labels.insert(it, {"scope", scope});
  }
  return labels;
}

bool SampleLess(const LabelSet& a, const LabelSet& b) { return a < b; }

}  // namespace

Result<double> HistogramSampleQuantile(const HistogramSample& s, double q) {
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument(
        "HistogramSampleQuantile: q outside [0, 1]");
  }
  if (s.count == 0) {
    return Status::NotFound("HistogramSampleQuantile: empty histogram");
  }
  double target = q * static_cast<double>(s.count);
  uint64_t seen = 0;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    uint64_t c = s.buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      double lo = i == 0 ? 0.0 : s.bounds[i - 1];
      double hi = i < s.bounds.size() ? s.bounds[i] : s.max;
      // The snapshot's overflow bucket carries +inf as its upper bound
      // (Histogram::UpperBound past the last boundary); interpolate to
      // the observed max there, exactly like Histogram::Quantile.
      if (!std::isfinite(hi)) hi = s.max;
      if (hi < lo) hi = lo;
      double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      // Same strict tightening as Histogram::Quantile: recorded min/max
      // bound where mass can sit, so clamp into [min, max].
      return std::clamp(lo + frac * (hi - lo), s.min, s.max);
    }
    seen += c;
  }
  return s.max;
}

bool MergeHistogramSample(const HistogramSample& src, HistogramSample* dst) {
  if (src.bounds != dst->bounds || src.buckets.size() != dst->buckets.size()) {
    return false;
  }
  if (src.count == 0) return true;
  if (dst->count == 0) {
    dst->min = src.min;
    dst->max = src.max;
  } else {
    dst->min = std::min(dst->min, src.min);
    dst->max = std::max(dst->max, src.max);
  }
  dst->count += src.count;
  dst->sum += src.sum;
  for (size_t i = 0; i < src.buckets.size(); ++i) {
    dst->buckets[i] += src.buckets[i];
  }
  dst->p50 = HistogramSampleQuantile(*dst, 0.5).ValueOr(0.0);
  dst->p99 = HistogramSampleQuantile(*dst, 0.99).ValueOr(0.0);
  return true;
}

ScopedRegistry* ScopedRegistry::Child(const std::string& name) {
  FLOWER_CHECK(!name.empty() && name.find('/') == std::string::npos)
      << "ScopedRegistry::Child: invalid scope name '" << name << "'";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(name);
  if (it == children_.end()) {
    std::string child_path = path_.empty() ? name : path_ + "/" + name;
    it = children_
             .emplace(name, std::unique_ptr<ScopedRegistry>(
                                new ScopedRegistry(std::move(child_path))))
             .first;
  }
  return it->second.get();
}

const ScopedRegistry* ScopedRegistry::FindChild(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(name);
  return it == children_.end() ? nullptr : it->second.get();
}

std::vector<const ScopedRegistry*> ScopedRegistry::Children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ScopedRegistry*> out;
  out.reserve(children_.size());
  for (const auto& [name, child] : children_) out.push_back(child.get());
  return out;
}

size_t ScopedRegistry::NumScopes() const {
  size_t n = 1;
  for (const ScopedRegistry* c : Children()) n += c->NumScopes();
  return n;
}

void ScopedRegistry::CollectSnapshots(
    std::vector<std::pair<std::string, MetricsSnapshot>>* out) const {
  out->emplace_back(path_, metrics_.Snapshot());
  for (const ScopedRegistry* c : Children()) c->CollectSnapshots(out);
}

MetricsSnapshot ScopedRegistry::AggregateSnapshot() const {
  std::vector<std::pair<std::string, MetricsSnapshot>> scopes;
  CollectSnapshots(&scopes);

  MetricsSnapshot out;

  // Counters: sum across scopes per (name, labels).
  std::map<std::string, CounterSample> counters;
  for (const auto& [path, snap] : scopes) {
    for (const CounterSample& s : snap.counters) {
      auto [it, inserted] =
          counters.emplace(SeriesKey(s.name, s.labels), s);
      if (!inserted) it->second.value += s.value;
    }
  }
  out.counters.reserve(counters.size());
  for (auto& [key, s] : counters) out.counters.push_back(std::move(s));

  // Gauges: labeled fan-out — one series per contributing scope.
  for (const auto& [path, snap] : scopes) {
    for (const GaugeSample& s : snap.gauges) {
      GaugeSample g = s;
      g.labels = WithScopeLabel(std::move(g.labels), path);
      out.gauges.push_back(std::move(g));
    }
  }

  // Histograms: bucket-exact merge when every contributor shares the
  // bucket layout; otherwise fan the series out per scope rather than
  // merging incompatible buckets.
  std::map<std::string, std::vector<std::pair<const std::string*,
                                              const HistogramSample*>>>
      hist_groups;
  for (const auto& [path, snap] : scopes) {
    for (const HistogramSample& s : snap.histograms) {
      hist_groups[SeriesKey(s.name, s.labels)].emplace_back(&path, &s);
    }
  }
  for (auto& [key, group] : hist_groups) {
    HistogramSample merged = *group.front().second;
    bool ok = true;
    for (size_t i = 1; i < group.size() && ok; ++i) {
      ok = MergeHistogramSample(*group[i].second, &merged);
    }
    if (ok) {
      out.histograms.push_back(std::move(merged));
    } else {
      for (const auto& [path, sample] : group) {
        HistogramSample h = *sample;
        h.labels = WithScopeLabel(std::move(h.labels), *path);
        out.histograms.push_back(std::move(h));
      }
    }
  }

  auto by_series = [](const auto& a, const auto& b) {
    if (a.name != b.name) return a.name < b.name;
    return SampleLess(a.labels, b.labels);
  };
  std::sort(out.counters.begin(), out.counters.end(), by_series);
  std::sort(out.gauges.begin(), out.gauges.end(), by_series);
  std::sort(out.histograms.begin(), out.histograms.end(), by_series);
  return out;
}

}  // namespace flower::obs
