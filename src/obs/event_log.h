#ifndef FLOWER_OBS_EVENT_LOG_H_
#define FLOWER_OBS_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time_series.h"

namespace flower::obs {

/// What a control step ultimately did.
enum class StepOutcome : uint8_t {
  kActuated = 0,         ///< Controller ran and the actuation succeeded.
  kSensorMiss = 1,       ///< No usable measurement; step skipped.
  kControllerError = 2,  ///< Controller Update returned an error.
  kBreakerOpen = 3,      ///< Circuit breaker open; actuator untouched.
  kActuationFailed = 4,  ///< Initial actuation attempt failed (retries
                         ///< may still land later; see retry counters).
};

const char* StepOutcomeToString(StepOutcome outcome);

/// Bitmask of fault-injector interference observed during one step
/// (bit i == 1 << static_cast<int>(sim::FaultKind)). Kept as a plain
/// uint8_t so obs does not depend on sim.
using FaultMask = uint8_t;

/// Bitmask of flow-health state stamped on a step by the health layer
/// (bits are obs::health::kHealthFlowBreach / kHealthLayerBreach /
/// kHealthAnomaly). Plain uint8_t for the same reason as FaultMask:
/// control code carries it without depending on obs/health.
using HealthMask = uint8_t;

/// One structured record per control step — the row the paper's §4
/// demo charts are drawn from: what the loop sensed, what the control
/// law computed (including the Eq. 7 adapted gain), what was actually
/// applied, and everything that interfered.
struct ControlDecisionRecord {
  SimTime time = 0.0;
  std::string loop;   ///< Loop name ("analytics", ...).
  std::string layer;  ///< Layer name.
  std::string law;    ///< Controller family ("adaptive-gain", ...).
  double sensed_y = 0.0;    ///< y_k fed to the controller.
  double reference = 0.0;   ///< y_r.
  double error = 0.0;       ///< y_k − y_r.
  /// Adapted gain l_k after the step (Eq. 7); NaN for control laws
  /// without an explicit gain (rule-based, target-tracking).
  double gain = 0.0;
  /// Raw control-law output u_{k+1} before actuator clamping.
  double raw_u = 0.0;
  /// Quantized actuation after limits and the share upper bound.
  double clamped_u = 0.0;
  bool stale_sensor = false;  ///< Step ran on a held last-good value.
  StepOutcome outcome = StepOutcome::kActuated;
  FaultMask fault_mask = 0;   ///< Injected-fault interference this step.
  /// Flow-health state (SLO breach / anomaly bits) at step time, 0 when
  /// no health annotator is installed on the manager.
  HealthMask health_mask = 0;
  /// Causal decide-span id (obs::SpanId) for this step, resolvable via
  /// SpanIndex::EffectOf to the sensed-metric parents and actuation
  /// children. 0 when span recording is disabled. Kept as a plain
  /// uint64_t so the event log does not depend on obs/span.
  uint64_t span_id = 0;
};

/// Bounded ring buffer of decision records, owned by the
/// ElasticityManager. Appending past capacity overwrites the oldest
/// record; `Snapshot` returns the retained records oldest-first.
class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 65536);

  void Append(ControlDecisionRecord record);

  size_t capacity() const { return capacity_; }
  /// Records currently retained (<= capacity).
  size_t size() const { return ring_.size(); }
  /// Records ever appended (including overwritten ones).
  uint64_t total_appended() const { return total_; }

  /// Retained records, oldest first.
  std::vector<ControlDecisionRecord> Snapshot() const;

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< Next write position once the ring is full.
  uint64_t total_ = 0;
  std::vector<ControlDecisionRecord> ring_;
};

}  // namespace flower::obs

#endif  // FLOWER_OBS_EVENT_LOG_H_
