#ifndef FLOWER_OBS_SCOPED_REGISTRY_H_
#define FLOWER_OBS_SCOPED_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics_registry.h"

namespace flower::obs {

/// Merges `src` bucket counts into `dst`. Requires identical bucket
/// layouts (same bounds vector); returns false and leaves `dst`
/// untouched on a layout mismatch. count/sum/min/max are combined
/// exactly; p50/p99 are recomputed from the merged buckets with the
/// same interpolation-and-clamp rule as Histogram::Quantile, so a merge
/// of N scoped histograms is bucket-exact versus recording every sample
/// into one histogram.
bool MergeHistogramSample(const HistogramSample& src, HistogramSample* dst);

/// Quantile over an already-snapshotted histogram sample. Mirrors
/// Histogram::Quantile: linear interpolation within the containing
/// bucket, clamped into [min, max]; NotFound when empty.
Result<double> HistogramSampleQuantile(const HistogramSample& s, double q);

/// Hierarchical metrics scoping for fleet runs: every flow (and layer
/// within it) gets its own child ScopedRegistry whose instruments live
/// in a private MetricsRegistry. Hot-path recording therefore touches
/// only per-scope atomics — a thousand flows tick independently with no
/// shared contended cacheline — and the fleet view is produced on
/// demand by AggregateSnapshot():
///
///   - counters with the same (name, labels) are summed across scopes;
///   - histograms with the same (name, labels) and identical bucket
///     layout are bucket-merged (exact; see MergeHistogramSample) —
///     layout mismatches fan out per scope instead of merging wrong;
///   - gauges fan out with a {"scope", <path>} label per contributing
///     child (summing last-value instruments would be meaningless).
///
/// Child creation takes the parent's mutex; everything after the
/// returned pointer is as lock-free as MetricsRegistry itself. Children
/// are owned by the parent and live as long as it does.
class ScopedRegistry {
 public:
  ScopedRegistry() = default;  ///< Root scope (path "").
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  /// This scope's own instruments.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Child scope, created on first use; stable pointer. `name` must be
  /// non-empty and must not contain '/'.
  ScopedRegistry* Child(const std::string& name);

  /// Descendant lookup without creation; nullptr when absent.
  const ScopedRegistry* FindChild(const std::string& name) const;

  /// "" for the root, "flow-a" / "flow-a/analytics" for descendants.
  const std::string& path() const { return path_; }

  /// Direct children, sorted by name (stable iteration order).
  std::vector<const ScopedRegistry*> Children() const;

  /// Scopes in this subtree, including this one.
  size_t NumScopes() const;

  /// Fleet view: this scope's instruments merged with every
  /// descendant's, per the rules above, sorted by (name, labels).
  MetricsSnapshot AggregateSnapshot() const;

 private:
  explicit ScopedRegistry(std::string path) : path_(std::move(path)) {}

  /// Appends (path, snapshot) pairs for the whole subtree, depth-first
  /// in sorted child order.
  void CollectSnapshots(
      std::vector<std::pair<std::string, MetricsSnapshot>>* out) const;

  std::string path_;
  MetricsRegistry metrics_;
  mutable std::mutex mu_;  ///< Guards children_ only.
  std::map<std::string, std::unique_ptr<ScopedRegistry>> children_;
};

}  // namespace flower::obs

#endif  // FLOWER_OBS_SCOPED_REGISTRY_H_
