#include "obs/exporters.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace flower::obs {

namespace internal {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no NaN/Infinity literals; export them as null.
std::string JsonNum(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

std::string LabelsToJson(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(k) + "\":\"" + JsonEscape(v) + '"';
  }
  out += '}';
  return out;
}

}  // namespace internal

namespace {

using internal::JsonEscape;
using internal::JsonNum;
using internal::LabelsToJson;

// CSV cells are all controlled identifiers/numbers; quote defensively
// only when a delimiter sneaks in.
std::string CsvCell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string LabelsToString(const LabelSet& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

// OpenMetrics metric-name charset; every other byte maps to '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string SanitizeLabelName(const std::string& name) {
  std::string out = SanitizeMetricName(name);
  // Label names additionally may not contain ':'.
  for (char& c : out) {
    if (c == ':') c = '_';
  }
  return out;
}

// Label *values* keep arbitrary text, escaped per the exposition format.
std::string OpenMetricsEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Rendered {label="value",...} block with an optional trailing `le`
// pair (histogram bucket rows); empty string for no labels and no le.
std::string OpenMetricsLabels(const LabelSet& labels,
                              const std::string& le = "") {
  if (labels.empty() && le.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += SanitizeLabelName(k);
    out += "=\"";
    out += OpenMetricsEscape(v);
    out += '"';
  }
  if (!le.empty()) {
    if (!first) out += ',';
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
  return out;
}

std::string OpenMetricsNum(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

void WriteDecisionCsv(std::ostream& os,
                      const std::vector<ControlDecisionRecord>& records) {
  os << "time,loop,layer,law,sensed_y,reference,error,gain,raw_u,"
        "clamped_u,stale,outcome,fault_mask,health_mask,span_id\n";
  for (const ControlDecisionRecord& r : records) {
    os << std::setprecision(12) << r.time << ',' << CsvCell(r.loop) << ','
       << CsvCell(r.layer) << ',' << CsvCell(r.law) << ',' << r.sensed_y
       << ',' << r.reference << ',' << r.error << ',' << r.gain << ','
       << r.raw_u << ',' << r.clamped_u << ',' << (r.stale_sensor ? 1 : 0)
       << ',' << StepOutcomeToString(r.outcome) << ','
       << static_cast<int>(r.fault_mask) << ','
       << static_cast<int>(r.health_mask) << ',' << r.span_id << '\n';
  }
}

void WriteDecisionJsonl(std::ostream& os,
                        const std::vector<ControlDecisionRecord>& records) {
  for (const ControlDecisionRecord& r : records) {
    os << "{\"type\":\"decision\",\"time\":" << JsonNum(r.time)
       << ",\"loop\":\"" << JsonEscape(r.loop) << "\",\"layer\":\""
       << JsonEscape(r.layer) << "\",\"law\":\"" << JsonEscape(r.law)
       << "\",\"sensed_y\":" << JsonNum(r.sensed_y)
       << ",\"reference\":" << JsonNum(r.reference)
       << ",\"error\":" << JsonNum(r.error) << ",\"gain\":" << JsonNum(r.gain)
       << ",\"raw_u\":" << JsonNum(r.raw_u)
       << ",\"clamped_u\":" << JsonNum(r.clamped_u) << ",\"stale\":"
       << (r.stale_sensor ? "true" : "false") << ",\"outcome\":\""
       << StepOutcomeToString(r.outcome)
       << "\",\"fault_mask\":" << static_cast<int>(r.fault_mask)
       << ",\"health_mask\":" << static_cast<int>(r.health_mask)
       << ",\"span_id\":" << r.span_id << "}\n";
  }
}

void WriteSnapshotCsv(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "kind,name,labels,value,count,sum,min,max,p50,p99\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "counter," << CsvCell(c.name) << ','
       << CsvCell(LabelsToString(c.labels)) << ',' << c.value << ",,,,,,\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    os << "gauge," << CsvCell(g.name) << ','
       << CsvCell(LabelsToString(g.labels)) << ',' << std::setprecision(12)
       << g.value << ",,,,,,\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "histogram," << CsvCell(h.name) << ','
       << CsvCell(LabelsToString(h.labels)) << ",," << h.count << ','
       << std::setprecision(12) << h.sum << ',' << h.min << ',' << h.max
       << ',' << h.p50 << ',' << h.p99 << '\n';
  }
}

void WriteSnapshotJsonl(std::ostream& os, const MetricsSnapshot& snapshot,
                        SimTime at) {
  for (const CounterSample& c : snapshot.counters) {
    os << "{\"type\":\"counter\",\"time\":" << JsonNum(at) << ",\"name\":\""
       << JsonEscape(c.name) << "\",\"labels\":" << LabelsToJson(c.labels)
       << ",\"value\":" << c.value << "}\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    os << "{\"type\":\"gauge\",\"time\":" << JsonNum(at) << ",\"name\":\""
       << JsonEscape(g.name) << "\",\"labels\":" << LabelsToJson(g.labels)
       << ",\"value\":" << JsonNum(g.value) << "}\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "{\"type\":\"histogram\",\"time\":" << JsonNum(at) << ",\"name\":\""
       << JsonEscape(h.name) << "\",\"labels\":" << LabelsToJson(h.labels)
       << ",\"count\":" << h.count << ",\"sum\":" << JsonNum(h.sum)
       << ",\"min\":" << JsonNum(h.min) << ",\"max\":" << JsonNum(h.max)
       << ",\"p50\":" << JsonNum(h.p50) << ",\"p99\":" << JsonNum(h.p99)
       << "}\n";
  }
}

namespace {

// HELP text escaping per the exposition format: only backslash and
// newline are escaped (HELP text is not quoted, unlike label values).
std::string OpenMetricsHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void EmitFamilyHeader(std::ostream& os, const std::string& fam,
                      const char* type, const std::string& original_name,
                      const MetricsSnapshot& snapshot) {
  os << "# TYPE " << fam << ' ' << type << '\n';
  auto it = snapshot.help.find(original_name);
  if (it != snapshot.help.end() && !it->second.empty()) {
    os << "# HELP " << fam << ' ' << OpenMetricsHelpEscape(it->second)
       << '\n';
  }
}

}  // namespace

void WriteSnapshotOpenMetrics(std::ostream& os,
                              const MetricsSnapshot& snapshot) {
  // Snapshot samples arrive sorted by (name, labels), so one family's
  // series are contiguous; TYPE (and HELP, when registered) headers are
  // emitted whenever the sanitized family name changes.
  std::string prev;
  for (const CounterSample& c : snapshot.counters) {
    std::string fam = SanitizeMetricName(c.name);
    if (fam != prev) {
      EmitFamilyHeader(os, fam, "counter", c.name, snapshot);
      prev = fam;
    }
    os << fam << "_total" << OpenMetricsLabels(c.labels) << ' ' << c.value
       << '\n';
  }
  prev.clear();
  for (const GaugeSample& g : snapshot.gauges) {
    std::string fam = SanitizeMetricName(g.name);
    if (fam != prev) {
      EmitFamilyHeader(os, fam, "gauge", g.name, snapshot);
      prev = fam;
    }
    os << fam << OpenMetricsLabels(g.labels) << ' ' << OpenMetricsNum(g.value)
       << '\n';
  }
  prev.clear();
  for (const HistogramSample& h : snapshot.histograms) {
    std::string fam = SanitizeMetricName(h.name);
    if (fam != prev) {
      EmitFamilyHeader(os, fam, "histogram", h.name, snapshot);
      prev = fam;
    }
    // Exposition buckets are cumulative; the registry's are disjoint.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      bool overflow = std::isinf(h.bounds[i]);
      os << fam << "_bucket"
         << OpenMetricsLabels(h.labels,
                              overflow ? "+Inf" : OpenMetricsNum(h.bounds[i]))
         << ' ' << cumulative << '\n';
    }
    os << fam << "_sum" << OpenMetricsLabels(h.labels) << ' '
       << OpenMetricsNum(h.sum) << '\n';
    os << fam << "_count" << OpenMetricsLabels(h.labels) << ' ' << h.count
       << '\n';
  }
  os << "# EOF\n";
}

void WriteChromeTrace(std::ostream& os, const TraceCollector& trace) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Process / thread-name metadata first so Perfetto labels the lanes:
  // the fleet pid, then one process group per registered scope.
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kTracePid
     << ",\"tid\":0,\"args\":{\"name\":\"flower\"}}";
  for (const auto& [pid, name] : trace.process_names()) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }
  for (const auto& [track, name] : trace.track_names()) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.first
       << ",\"tid\":" << track.second << ",\"args\":{\"name\":\""
       << JsonEscape(name) << "\"}}";
  }
  for (const TraceEvent& e : trace.events()) {
    sep();
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
       << JsonEscape(e.category) << "\",\"ph\":\"" << e.phase
       << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << JsonNum(e.ts_us);
    if (e.phase == 'X') os << ",\"dur\":" << JsonNum(e.dur_us);
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{";
    bool first_arg = true;
    for (const auto& [k, v] : e.num_args) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << JsonEscape(k) << "\":" << JsonNum(v);
    }
    for (const auto& [k, v] : e.str_args) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << JsonEscape(k) << "\":\"" << JsonEscape(v) << '"';
    }
    os << "}}";
  }
  os << "\n]}\n";
}

void WriteSpansChromeTrace(std::ostream& os, const SpanCollector& spans,
                           const TraceCollector* names) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kTracePid
     << ",\"tid\":0,\"args\":{\"name\":\"flower\"}}";
  if (names != nullptr) {
    for (const auto& [pid, name] : names->process_names()) {
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    }
    for (const auto& [track, name] : names->track_names()) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.first
         << ",\"tid\":" << track.second << ",\"args\":{\"name\":\""
         << JsonEscape(name) << "\"}}";
    }
  }
  auto lane = [&](const SpanRecord& r) {
    os << "\"pid\":" << r.pid << ",\"tid\":" << r.tid;
  };
  // Flow-event ids must be unique per arrow; parent/child edges use
  // 2*child_id, follows-from edges 2*child_id+1.
  auto flow = [&](const SpanRecord& from, const SpanRecord& to,
                  const char* cat, uint64_t flow_id) {
    sep();
    os << "{\"name\":\"" << cat << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"s\",\"id\":" << flow_id << ",";
    lane(from);
    os << ",\"ts\":" << JsonNum(SimToTraceUs(from.start)) << "}";
    sep();
    os << "{\"name\":\"" << cat << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << flow_id << ",";
    lane(to);
    os << ",\"ts\":" << JsonNum(SimToTraceUs(to.start)) << "}";
  };
  for (SpanId id = spans.first_retained(); id != 0 && id < spans.end_id();
       ++id) {
    const SpanRecord* r = spans.Find(id);
    if (r == nullptr) continue;
    sep();
    os << "{\"name\":\"" << SpanKindToString(r->kind) << "\",\"cat\":\"span\""
       << ",\"ph\":\"X\",";
    lane(*r);
    os << ",\"ts\":" << JsonNum(SimToTraceUs(r->start))
       << ",\"dur\":" << JsonNum(SimToTraceUs(r->end - r->start))
       << ",\"args\":{\"id\":" << r->id << ",\"parent\":" << r->parent
       << ",\"follows\":" << r->follows << ",\"label\":\""
       << JsonEscape(r->label) << "\",\"value\":" << JsonNum(r->value)
       << ",\"outcome\":" << static_cast<int>(r->outcome) << "}}";
    if (const SpanRecord* p = spans.Find(r->parent)) {
      flow(*p, *r, "causal", 2 * r->id);
    }
    if (const SpanRecord* f = spans.Find(r->follows)) {
      flow(*f, *r, "follows", 2 * r->id + 1);
    }
  }
  os << "\n]}\n";
}

Status ExportToFile(const std::string& path,
                    const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("ExportToFile: cannot open '" + path +
                                   "' for writing");
  }
  writer(out);
  out.flush();
  if (!out) {
    return Status::Internal("ExportToFile: write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace flower::obs
