#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace flower::obs {

namespace {

// Relaxed-atomic accumulate for doubles (atomic<double>::fetch_add is
// C++20 but not universally lowered to hardware; a CAS loop is portable
// and allocation-free).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Collapsed series every over-cardinality registration of a metric name
// lands in (see MetricsRegistry::set_max_label_cardinality).
const LabelSet& OverflowLabels() {
  static const LabelSet kOverflow = {{"overflow", "true"}};
  return kOverflow;
}

// The guard's own counter; exempted from self-instrumentation inside
// AdmitSeriesLocked to keep the recursion finite.
constexpr char kOverflowCounterName[] = "registry.label_overflow";

}  // namespace

// Canonical label form: sorted by key, duplicate keys collapsed with
// the *last* written value winning (repeated assignment semantics), so
// {a=1,b=2}, {b=2,a=1}, and {a=0,a=1,b=2} all address the same series.
LabelSet MetricsRegistry::NormalizeLabels(LabelSet labels) {
  std::stable_sort(labels.begin(), labels.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  auto last_of_key = std::unique(
      labels.rbegin(), labels.rend(),
      [](const auto& a, const auto& b) { return a.first == b.first; });
  labels.erase(labels.begin(), last_of_key.base());
  return labels;
}

std::string MetricsRegistry::SeriesKey(const std::string& name,
                                       const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (options_.min <= 0.0) options_.min = 1e-3;
  if (options_.max <= options_.min) options_.max = options_.min * 2.0;
  if (options_.sub_buckets < 1) options_.sub_buckets = 1;
  // One underflow bucket, then sub_buckets linear buckets per octave
  // [min*2^k, min*2^(k+1)), then one overflow bucket.
  bounds_.push_back(options_.min);
  double lo = options_.min;
  while (lo < options_.max) {
    double hi = std::min(lo * 2.0, options_.max);
    double width = (hi - lo) / options_.sub_buckets;
    for (int i = 1; i <= options_.sub_buckets; ++i) {
      double b = i == options_.sub_buckets ? hi : lo + width * i;
      if (b > bounds_.back()) bounds_.push_back(b);
    }
    lo = hi;
  }
  // counts_ covers every [bounds_[i-1], bounds_[i]) range, bucket 0 is
  // [0, bounds_[0]), plus one trailing overflow bucket.
  counts_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  // Binary search over the precomputed boundaries: no allocation.
  size_t idx = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

double Histogram::Min() const {
  double m = min_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

double Histogram::Max() const {
  double m = max_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

double Histogram::UpperBound(size_t i) const {
  if (i < bounds_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

Result<double> Histogram::Quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("Histogram::Quantile: q outside [0, 1]");
  }
  uint64_t total = TotalCount();
  if (total == 0) {
    return Status::NotFound("Histogram::Quantile: empty histogram");
  }
  double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      double lo = i == 0 ? 0.0 : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : Max();
      if (hi < lo) hi = lo;
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(c);
      // Interpolation assumes mass spread across the whole bucket; the
      // recorded Min()/Max() bound where mass can actually sit, so
      // clamping into [Min, Max] is a strict tightening (and makes the
      // estimate exact for constant streams, where the winning bucket
      // is wide but Min == Max).
      return std::clamp(lo + frac * (hi - lo), Min(), Max());
    }
    seen += c;
  }
  return Max();
}

bool MetricsRegistry::AdmitSeriesLocked(const std::string& name,
                                        const LabelSet& norm) {
  if (norm == OverflowLabels()) return true;  // Collapsed series: always.
  auto it = series_per_name_.find(name);
  size_t count = it == series_per_name_.end() ? 0 : it->second;
  if (count < max_cardinality_) return true;
  ++label_overflow_total_;
  if (name != kOverflowCounterName) {
    GetCounterLocked(kOverflowCounterName, {{"metric", name}})->Increment();
  }
  bool& warned = overflow_warned_[name];
  if (!warned) {
    warned = true;
    FLOWER_LOG(Warning) << "metrics registry: label cardinality cap ("
                        << max_cardinality_ << ") reached for metric '"
                        << name
                        << "'; further label-sets collapse into "
                           "{overflow=\"true\"}";
  }
  return false;
}

Counter* MetricsRegistry::GetCounterLocked(const std::string& name,
                                           LabelSet norm) {
  std::string key = SeriesKey(name, norm);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    if (!AdmitSeriesLocked(name, norm)) {
      return GetCounterLocked(name, OverflowLabels());
    }
    ++series_per_name_[name];
    Entry<Counter> e{name, std::move(norm),
                     std::unique_ptr<Counter>(new Counter())};
    it = counters_.emplace(std::move(key), std::move(e)).first;
  }
  return it->second.instrument.get();
}

Gauge* MetricsRegistry::GetGaugeLocked(const std::string& name,
                                       LabelSet norm) {
  std::string key = SeriesKey(name, norm);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    if (!AdmitSeriesLocked(name, norm)) {
      return GetGaugeLocked(name, OverflowLabels());
    }
    ++series_per_name_[name];
    Entry<Gauge> e{name, std::move(norm), std::unique_ptr<Gauge>(new Gauge())};
    it = gauges_.emplace(std::move(key), std::move(e)).first;
  }
  return it->second.instrument.get();
}

Histogram* MetricsRegistry::GetHistogramLocked(const std::string& name,
                                               LabelSet norm,
                                               HistogramOptions options) {
  std::string key = SeriesKey(name, norm);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (!AdmitSeriesLocked(name, norm)) {
      return GetHistogramLocked(name, OverflowLabels(), options);
    }
    ++series_per_name_[name];
    Entry<Histogram> e{name, std::move(norm),
                       std::unique_ptr<Histogram>(new Histogram(options))};
    it = histograms_.emplace(std::move(key), std::move(e)).first;
  }
  return it->second.instrument.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  LabelSet norm = NormalizeLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  return GetCounterLocked(name, std::move(norm));
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  LabelSet norm = NormalizeLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  return GetGaugeLocked(name, std::move(norm));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         HistogramOptions options) {
  LabelSet norm = NormalizeLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  return GetHistogramLocked(name, std::move(norm), options);
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const LabelSet& labels) const {
  std::string key = SeriesKey(name, NormalizeLabels(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  return it == counters_.end() ? nullptr : it->second.instrument.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const LabelSet& labels) const {
  std::string key = SeriesKey(name, NormalizeLabels(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  return it == gauges_.end() ? nullptr : it->second.instrument.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const LabelSet& labels) const {
  std::string key = SeriesKey(name, NormalizeLabels(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  return it == histograms_.end() ? nullptr : it->second.instrument.get();
}

uint64_t MetricsRegistry::label_overflow_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_overflow_total_;
}

void MetricsRegistry::SetHelp(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = std::move(help);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, e] : counters_) {
    snap.counters.push_back({e.name, e.labels, e.instrument->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, e] : gauges_) {
    snap.gauges.push_back({e.name, e.labels, e.instrument->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, e] : histograms_) {
    const Histogram& h = *e.instrument;
    HistogramSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.count = h.TotalCount();
    s.sum = h.Sum();
    s.min = h.Min();
    s.max = h.Max();
    s.p50 = h.Quantile(0.5).ValueOr(0.0);
    s.p99 = h.Quantile(0.99).ValueOr(0.0);
    s.bounds.reserve(h.NumBuckets());
    s.buckets.reserve(h.NumBuckets());
    for (size_t i = 0; i < h.NumBuckets(); ++i) {
      s.bounds.push_back(h.UpperBound(i));
      s.buckets.push_back(h.BucketCount(i));
    }
    snap.histograms.push_back(std::move(s));
  }
  snap.help = help_;
  return snap;
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace flower::obs
