#include "obs/replay/flight_recorder.h"

#include <cstdio>
#include <cstring>

namespace flower::obs::replay {

uint64_t FnvMix(uint64_t seed, const void* data, size_t len) {
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h = seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

namespace {

uint64_t FnvStr(uint64_t seed, const std::string& s) {
  return FnvMix(seed, s.data(), s.size());
}

uint64_t FnvF64(uint64_t seed, double v) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  return FnvMix(seed, buf, static_cast<size_t>(n));
}

uint64_t FnvU64(uint64_t seed, uint64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(v));
  return FnvMix(seed, buf, static_cast<size_t>(n));
}

}  // namespace

FlightRecorder::FlightRecorder(RecorderConfig config) : config_(config) {
  if (config_.decision_capacity == 0) config_.decision_capacity = 1;
  if (config_.grant_capacity == 0) config_.grant_capacity = 1;
  if (config_.replan_capacity == 0) config_.replan_capacity = 1;
  if (config_.checkpoint_capacity == 0) config_.checkpoint_capacity = 1;
  if (config_.checkpoint_every == 0) config_.checkpoint_every = 1;
  decisions_.resize(config_.decision_capacity);
  grants_.resize(config_.grant_capacity);
  replans_.resize(config_.replan_capacity);
  checkpoints_.resize(config_.checkpoint_capacity);
}

void FlightRecorder::SetIdentity(std::string tenant_id, size_t tenant_index,
                                 uint64_t seed, uint64_t span_id_offset) {
  tenant_id_ = std::move(tenant_id);
  tenant_index_ = tenant_index;
  seed_ = seed;
  span_id_offset_ = span_id_offset;
}

void FlightRecorder::SetSpec(
    std::vector<std::pair<std::string, std::string>> spec) {
  spec_ = std::move(spec);
}

void FlightRecorder::AddFault(RecordedFault fault) {
  faults_.push_back(std::move(fault));
}

uint64_t FlightRecorder::Fingerprint() const {
  uint64_t h = kFnvOffsetBasis;
  h = FnvStr(h, tenant_id_);
  h = FnvU64(h, tenant_index_);
  h = FnvU64(h, seed_);
  h = FnvU64(h, span_id_offset_);
  for (const auto& [key, value] : spec_) {
    h = FnvStr(h, key);
    h = FnvMix(h, "=", 1);
    h = FnvStr(h, value);
    h = FnvMix(h, ";", 1);
  }
  for (const RecordedFault& f : faults_) {
    h = FnvStr(h, f.kind);
    h = FnvStr(h, f.target);
    h = FnvF64(h, f.start);
    h = FnvF64(h, f.end);
    h = FnvF64(h, f.probability);
    h = FnvF64(h, f.delay_sec);
    h = FnvF64(h, f.factor);
    h = FnvF64(h, f.offset);
  }
  return h;
}

void FlightRecorder::RecordDecision(const ControlDecisionRecord& record) {
  // Canonical digest line: the same fields, formats, and order as
  // fleet::FlowPartition::AppendDigest (minus the constant tenant
  // prefix), so a digest match here is a digest match there.
  char line[160];
  int n = std::snprintf(line, sizeof(line),
                        "t=%.3f loop=%s y=%.6f raw_u=%.6f u=%.6f out=%s",
                        record.time, record.loop.c_str(), record.sensed_y,
                        record.raw_u, record.clamped_u,
                        StepOutcomeToString(record.outcome));
  if (n < 0) return;
  size_t len = std::min(static_cast<size_t>(n), sizeof(line) - 1);
  uint64_t line_hash = FnvMix(kFnvOffsetBasis, line, len);
  // Seeding each line's hash with the previous chain value makes the
  // chain positional: any historical mismatch poisons every later value.
  chain_ = FnvMix(chain_, line, len);

  DecisionEntry& e =
      decisions_[static_cast<size_t>(total_decisions_ % decisions_.size())];
  e.index = total_decisions_;
  e.time = record.time;
  e.sensed_y = record.sensed_y;
  e.raw_u = record.raw_u;
  e.clamped_u = record.clamped_u;
  e.line_hash = line_hash;
  e.chain = chain_;
  e.outcome = static_cast<uint8_t>(record.outcome);
  size_t loop_len = std::min(record.loop.size(), sizeof(e.loop) - 1);
  std::memcpy(e.loop, record.loop.data(), loop_len);
  e.loop[loop_len] = '\0';
  last_span_id_ = record.span_id;

  ++total_decisions_;
  if (total_decisions_ % config_.checkpoint_every == 0) {
    HashCheckpoint& c = checkpoints_[static_cast<size_t>(
        total_checkpoints_ % checkpoints_.size())];
    c.index = total_decisions_ - 1;
    c.time = record.time;
    c.chain = chain_;
    ++total_checkpoints_;
  }
}

void FlightRecorder::RecordGrant(SimTime t, double demand_usd,
                                 double grant_usd) {
  GrantEntry& g = grants_[static_cast<size_t>(total_grants_ % grants_.size())];
  g.index = total_grants_;
  g.time = t;
  g.demand_usd = demand_usd;
  g.grant_usd = grant_usd;
  ++total_grants_;
}

void FlightRecorder::RecordReplan(SimTime t, double budget_usd,
                                  const double* shares, int num_shares,
                                  bool applied) {
  ReplanEntry& r =
      replans_[static_cast<size_t>(total_replans_ % replans_.size())];
  r.index = total_replans_;
  r.time = t;
  r.budget_usd = budget_usd;
  r.num_shares = std::min(num_shares, ReplanEntry::kMaxShares);
  for (int i = 0; i < ReplanEntry::kMaxShares; ++i) {
    r.shares[i] = i < r.num_shares ? shares[i] : 0.0;
  }
  r.applied = applied;
  ++total_replans_;
}

void FlightRecorder::Trigger(SimTime t, const std::string& reason,
                             double burn_fast, double burn_slow) {
  if (trigger_.fired) return;
  trigger_.fired = true;
  trigger_.time = t;
  trigger_.reason = reason;
  trigger_.span_id = last_span_id_;
  trigger_.burn_fast = burn_fast;
  trigger_.burn_slow = burn_slow;
}

SimTime FlightRecorder::window_start() const {
  if (total_decisions_ == 0) return 0.0;
  uint64_t oldest = total_decisions_ <= decisions_.size()
                        ? 0
                        : total_decisions_ - decisions_.size();
  return decisions_[static_cast<size_t>(oldest % decisions_.size())].time;
}

template <typename T>
std::vector<T> FlightRecorder::RingSnapshot(const std::vector<T>& ring,
                                            uint64_t total, size_t capacity) {
  std::vector<T> out;
  uint64_t first = total <= capacity ? 0 : total - capacity;
  out.reserve(static_cast<size_t>(total - first));
  for (uint64_t i = first; i < total; ++i) {
    out.push_back(ring[static_cast<size_t>(i % capacity)]);
  }
  return out;
}

std::vector<DecisionEntry> FlightRecorder::Decisions() const {
  return RingSnapshot(decisions_, total_decisions_, decisions_.size());
}

std::vector<GrantEntry> FlightRecorder::Grants() const {
  return RingSnapshot(grants_, total_grants_, grants_.size());
}

std::vector<ReplanEntry> FlightRecorder::Replans() const {
  return RingSnapshot(replans_, total_replans_, replans_.size());
}

std::vector<HashCheckpoint> FlightRecorder::Checkpoints() const {
  return RingSnapshot(checkpoints_, total_checkpoints_, checkpoints_.size());
}

}  // namespace flower::obs::replay
