#ifndef FLOWER_OBS_REPLAY_DIVERGENCE_H_
#define FLOWER_OBS_REPLAY_DIVERGENCE_H_

#include <string>

#include "obs/replay/bundle.h"
#include "obs/replay/flight_recorder.h"

namespace flower::obs::replay {

/// Verdict of comparing a replayed run's flight recorder against the
/// recorded capture bundle, step by step.
struct DivergenceReport {
  /// Overall verdict: true when any check failed (fingerprint mismatch
  /// is reported separately and does NOT by itself set this — a
  /// deliberately perturbed replay still gets a decision-level verdict).
  bool diverged = false;

  /// Capture-time inputs (identity + spec + faults) hash the same.
  bool fingerprint_match = true;

  /// The digest chain after the recorded decision count matches.
  bool chain_match = true;

  /// First recorded decision whose replayed counterpart differs.
  bool has_first_mismatch = false;
  uint64_t first_mismatch_index = 0;
  SimTime first_mismatch_time = 0.0;
  std::string loop;    ///< Layer/loop of the first mismatching decision.
  std::string detail;  ///< Human-readable field-level diff.

  /// True when the drift predates the retained decision tail but a
  /// hash checkpoint narrowed it to [suspect_window_start,
  /// suspect_window_end] (a window of `checkpoint_every` decisions).
  bool localized_by_checkpoint = false;
  SimTime suspect_window_start = 0.0;
  SimTime suspect_window_end = 0.0;

  uint64_t recorded_total = 0;
  uint64_t replayed_total = 0;

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Compares a replayed recorder against the recorded bundle.
///
/// The replay runs to the trigger time *inclusive*, so it may execute a
/// few same-instant decisions the original dump (taken mid-callback)
/// never saw; only the first `recorded.total_decisions` decisions are
/// compared, via the per-entry chain values. Requires replayed_total >=
/// recorded_total — fewer replayed decisions is itself a divergence.
DivergenceReport CompareReplay(const CaptureBundle& recorded,
                               const FlightRecorder& replayed);

}  // namespace flower::obs::replay

#endif  // FLOWER_OBS_REPLAY_DIVERGENCE_H_
