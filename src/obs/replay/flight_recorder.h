#ifndef FLOWER_OBS_REPLAY_FLIGHT_RECORDER_H_
#define FLOWER_OBS_REPLAY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "obs/event_log.h"

namespace flower::obs::replay {

/// Ring capacities of one flight recorder. Every ring is preallocated
/// at construction, so steady-state recording never allocates — the
/// black box can ride inside a thousand fleet partitions without
/// touching the hot-path allocation budget.
struct RecorderConfig {
  /// Tail of the control-decision digest kept for step-by-step
  /// divergence checking (oldest evicted first).
  size_t decision_capacity = 1024;
  /// Arbiter grant history (one entry per arbitration period).
  size_t grant_capacity = 256;
  /// Re-plan applications (one entry per successful re-plan).
  size_t replan_capacity = 256;
  /// Running-digest checkpoints: one every `checkpoint_every` decisions,
  /// so divergence that predates the retained decision tail can still be
  /// localized to a window of `checkpoint_every` steps.
  size_t checkpoint_every = 64;
  size_t checkpoint_capacity = 128;
};

/// One scheduled fault, as plain recordable data (the obs mirror of
/// sim::FaultSpec — obs cannot depend on sim). `kind` strings match
/// sim::FaultKindToString.
struct RecordedFault {
  std::string kind;
  std::string target;
  SimTime start = 0.0;
  SimTime end = std::numeric_limits<double>::infinity();
  double probability = 1.0;
  double delay_sec = 0.0;
  double factor = 1.0;
  double offset = 0.0;
};

/// Fixed-size snapshot of one control decision: the fields of the
/// canonical digest line plus the running digest so a replay can be
/// compared step-by-step without re-parsing text.
struct DecisionEntry {
  uint64_t index = 0;  ///< 0-based position in the decision stream.
  SimTime time = 0.0;
  double sensed_y = 0.0;
  double raw_u = 0.0;
  double clamped_u = 0.0;
  uint64_t line_hash = 0;  ///< FNV-1a of this decision's canonical line.
  uint64_t chain = 0;      ///< Digest chain value *after* this decision.
  uint8_t outcome = 0;     ///< obs::StepOutcome.
  char loop[23] = {};      ///< Loop name, truncated to fit the slot.
};

/// One arbiter grant (demand the arbitration ran on, budget granted).
struct GrantEntry {
  uint64_t index = 0;  ///< 0-based arbitration period number.
  SimTime time = 0.0;  ///< Period start.
  double demand_usd = 0.0;
  double grant_usd = 0.0;
};

/// One applied re-plan (budget the solve ran under, MaxShares bounds).
struct ReplanEntry {
  static constexpr int kMaxShares = 4;
  uint64_t index = 0;  ///< 0-based re-plan number.
  SimTime time = 0.0;
  double budget_usd = 0.0;
  double shares[kMaxShares] = {0.0, 0.0, 0.0, 0.0};
  int num_shares = 0;
  bool applied = false;  ///< False when the plan had no usable MaxShares.
};

/// Running-digest checkpoint: the chain hash after `index + 1` decisions.
struct HashCheckpoint {
  uint64_t index = 0;
  SimTime time = 0.0;
  uint64_t chain = 0;
};

/// The anomaly that armed the capture. Latched once: the first trigger
/// wins, later alerts on the same partition do not overwrite it.
struct TriggerInfo {
  bool fired = false;
  SimTime time = 0.0;
  std::string reason;     ///< SLO id, or "explicit".
  uint64_t span_id = 0;   ///< Latest decide-span id at trigger time.
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

/// 64-bit FNV-1a over `len` bytes, continuing from `seed` (pass
/// kFnvOffsetBasis to start a fresh hash). The decision digest chain is
/// chain' = FnvMix(chain, line) — each line's hash is seeded by the
/// previous chain value, so any historical mismatch poisons every later
/// chain value.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
uint64_t FnvMix(uint64_t seed, const void* data, size_t len);

/// Bounded black box for one flow/partition: identity (tenant, seeds,
/// span-id namespace), config spec, fault schedule, arbiter grant
/// history, re-plan history, and the tail of the control-decision
/// digest with a running chain hash. Everything after construction and
/// the setup-time setters is allocation-free, so a recorder per
/// partition costs a fixed few-hundred KB and zero steady-tick allocs.
///
/// Not thread-safe: each partition owns one recorder and records into
/// it only from its own simulation thread (the same contract as the
/// partition's telemetry hub).
class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderConfig config = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // --- Setup-time capture (may allocate; call before the run). ---

  void SetIdentity(std::string tenant_id, size_t tenant_index, uint64_t seed,
                   uint64_t span_id_offset);
  /// Replaces the config spec: ordered (key, value) pairs covering every
  /// decision-relevant knob (see fleet::SerializePartitionSpec).
  void SetSpec(std::vector<std::pair<std::string, std::string>> spec);
  void AddFault(RecordedFault fault);
  void ClearFaults() { faults_.clear(); }

  /// FNV-1a over the canonical serialization of identity + spec +
  /// faults. Two recorders fingerprint equal iff they describe the same
  /// deterministic run inputs.
  uint64_t Fingerprint() const;

  // --- Hot path (allocation-free). ---

  /// Appends one decision: formats the canonical digest line (the same
  /// fields as FlowPartition::AppendDigest), advances the chain hash,
  /// and pushes a fixed-size entry into the decision ring.
  void RecordDecision(const ControlDecisionRecord& record);

  // --- Period/boundary paths (allocation-free). ---

  void RecordGrant(SimTime t, double demand_usd, double grant_usd);
  void RecordReplan(SimTime t, double budget_usd, const double* shares,
                    int num_shares, bool applied);

  /// Latches the capture trigger (first call wins; later calls no-op).
  /// `reason` is copied into the latched TriggerInfo (one allocation at
  /// trigger time — the run is over for this partition's hot path).
  void Trigger(SimTime t, const std::string& reason, double burn_fast = 0.0,
               double burn_slow = 0.0);

  // --- Read side. ---

  const RecorderConfig& config() const { return config_; }
  const std::string& tenant_id() const { return tenant_id_; }
  size_t tenant_index() const { return tenant_index_; }
  uint64_t seed() const { return seed_; }
  uint64_t span_id_offset() const { return span_id_offset_; }
  const std::vector<std::pair<std::string, std::string>>& spec() const {
    return spec_;
  }
  const std::vector<RecordedFault>& faults() const { return faults_; }
  const TriggerInfo& trigger() const { return trigger_; }

  uint64_t total_decisions() const { return total_decisions_; }
  uint64_t chain_hash() const { return chain_; }
  /// Time of the oldest retained decision (the capture window start);
  /// 0.0 when no decision was recorded yet.
  SimTime window_start() const;

  /// Retained rings, oldest first.
  std::vector<DecisionEntry> Decisions() const;
  std::vector<GrantEntry> Grants() const;
  std::vector<ReplanEntry> Replans() const;
  std::vector<HashCheckpoint> Checkpoints() const;

  uint64_t total_grants() const { return total_grants_; }
  uint64_t total_replans() const { return total_replans_; }

 private:
  template <typename T>
  static std::vector<T> RingSnapshot(const std::vector<T>& ring,
                                     uint64_t total, size_t capacity);

  RecorderConfig config_;
  std::string tenant_id_;
  size_t tenant_index_ = 0;
  uint64_t seed_ = 0;
  uint64_t span_id_offset_ = 0;
  std::vector<std::pair<std::string, std::string>> spec_;
  std::vector<RecordedFault> faults_;
  TriggerInfo trigger_;

  uint64_t chain_ = kFnvOffsetBasis;
  uint64_t total_decisions_ = 0;
  uint64_t total_grants_ = 0;
  uint64_t total_replans_ = 0;
  uint64_t total_checkpoints_ = 0;
  uint64_t last_span_id_ = 0;
  std::vector<DecisionEntry> decisions_;
  std::vector<GrantEntry> grants_;
  std::vector<ReplanEntry> replans_;
  std::vector<HashCheckpoint> checkpoints_;
};

}  // namespace flower::obs::replay

#endif  // FLOWER_OBS_REPLAY_FLIGHT_RECORDER_H_
