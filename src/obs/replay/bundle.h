#ifndef FLOWER_OBS_REPLAY_BUNDLE_H_
#define FLOWER_OBS_REPLAY_BUNDLE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/replay/flight_recorder.h"

namespace flower::obs::replay {

/// Bundle schema version written by WriteBundleJson; LoadBundleJson
/// rejects bundles from a newer schema.
inline constexpr int kBundleSchemaVersion = 1;

/// A self-contained postmortem capture: everything needed to rebuild
/// the captured tenant as a solo partition and re-run it to the trigger
/// time (identity, config spec, fault schedule, grant history), plus
/// the recorded decision-digest tail the replay is checked against.
/// Serialized as a single JSON file.
struct CaptureBundle {
  int schema_version = kBundleSchemaVersion;
  std::string tenant_id;
  size_t tenant_index = 0;
  uint64_t seed = 0;
  uint64_t span_id_offset = 0;
  /// FlightRecorder::Fingerprint() of the capture-time inputs.
  uint64_t fingerprint = 0;
  /// Capture window [window_start, trigger.time]: the oldest retained
  /// decision to the anomaly that armed the dump.
  SimTime window_start = 0.0;
  TriggerInfo trigger;
  RecorderConfig recorder;
  std::vector<std::pair<std::string, std::string>> spec;
  std::vector<RecordedFault> faults;
  std::vector<GrantEntry> grants;
  std::vector<ReplanEntry> replans;
  std::vector<DecisionEntry> decisions;
  std::vector<HashCheckpoint> checkpoints;
  uint64_t chain_hash = kFnvOffsetBasis;
  uint64_t total_decisions = 0;
};

/// Snapshots a recorder into a bundle (fingerprint included).
CaptureBundle BundleFromRecorder(const FlightRecorder& recorder);

/// Recomputes the fingerprint from the bundle's identity + spec +
/// faults (must equal bundle.fingerprint for an uncorrupted bundle).
uint64_t BundleFingerprint(const CaptureBundle& bundle);

/// Writes the bundle as one JSON file. 64-bit hashes/ids are encoded as
/// decimal strings (JSON numbers are doubles), non-finite times as
/// "inf"/"-inf" strings; everything else is plain JSON.
Status WriteBundleJson(const CaptureBundle& bundle, const std::string& path);

/// Parses a bundle written by WriteBundleJson. Errors: unreadable file,
/// malformed JSON, missing required fields, or a newer schema_version.
Result<CaptureBundle> LoadBundleJson(const std::string& path);

}  // namespace flower::obs::replay

#endif  // FLOWER_OBS_REPLAY_BUNDLE_H_
