#include "obs/replay/bundle.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/exporters.h"

namespace flower::obs::replay {

namespace {

// ---------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------

/// Doubles with full round-trip precision; JSON has no non-finite
/// literals, so those are encoded as tagged strings the loader accepts.
std::string Num(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// 64-bit values as decimal strings: a JSON number is a double and
/// silently loses bits above 2^53 (span-id offsets and hashes exceed
/// that routinely).
std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%llu\"",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string Str(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += internal::JsonEscape(s);
  out += '"';
  return out;
}

void WriteBundle(std::ostream& os, const CaptureBundle& b) {
  os << "{\n";
  os << " \"schema_version\": " << b.schema_version << ",\n";
  os << " \"tenant_id\": " << Str(b.tenant_id) << ",\n";
  os << " \"tenant_index\": " << b.tenant_index << ",\n";
  os << " \"seed\": " << U64(b.seed) << ",\n";
  os << " \"span_id_offset\": " << U64(b.span_id_offset) << ",\n";
  os << " \"fingerprint\": " << U64(b.fingerprint) << ",\n";
  os << " \"window_start\": " << Num(b.window_start) << ",\n";
  os << " \"trigger\": {\"fired\": " << (b.trigger.fired ? "true" : "false")
     << ", \"time\": " << Num(b.trigger.time)
     << ", \"reason\": " << Str(b.trigger.reason)
     << ", \"span_id\": " << U64(b.trigger.span_id)
     << ", \"burn_fast\": " << Num(b.trigger.burn_fast)
     << ", \"burn_slow\": " << Num(b.trigger.burn_slow) << "},\n";
  os << " \"recorder\": {\"decision_capacity\": " << b.recorder.decision_capacity
     << ", \"grant_capacity\": " << b.recorder.grant_capacity
     << ", \"replan_capacity\": " << b.recorder.replan_capacity
     << ", \"checkpoint_every\": " << b.recorder.checkpoint_every
     << ", \"checkpoint_capacity\": " << b.recorder.checkpoint_capacity
     << "},\n";
  os << " \"chain_hash\": " << U64(b.chain_hash) << ",\n";
  os << " \"total_decisions\": " << b.total_decisions << ",\n";

  os << " \"spec\": [";
  for (size_t i = 0; i < b.spec.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n  {\"k\": " << Str(b.spec[i].first)
       << ", \"v\": " << Str(b.spec[i].second) << "}";
  }
  os << "\n ],\n";

  os << " \"faults\": [";
  for (size_t i = 0; i < b.faults.size(); ++i) {
    const RecordedFault& f = b.faults[i];
    if (i > 0) os << ",";
    os << "\n  {\"kind\": " << Str(f.kind) << ", \"target\": " << Str(f.target)
       << ", \"start\": " << Num(f.start) << ", \"end\": " << Num(f.end)
       << ", \"probability\": " << Num(f.probability)
       << ", \"delay_sec\": " << Num(f.delay_sec)
       << ", \"factor\": " << Num(f.factor)
       << ", \"offset\": " << Num(f.offset) << "}";
  }
  os << "\n ],\n";

  os << " \"grants\": [";
  for (size_t i = 0; i < b.grants.size(); ++i) {
    const GrantEntry& g = b.grants[i];
    if (i > 0) os << ",";
    os << "\n  {\"index\": " << g.index << ", \"time\": " << Num(g.time)
       << ", \"demand_usd\": " << Num(g.demand_usd)
       << ", \"grant_usd\": " << Num(g.grant_usd) << "}";
  }
  os << "\n ],\n";

  os << " \"replans\": [";
  for (size_t i = 0; i < b.replans.size(); ++i) {
    const ReplanEntry& r = b.replans[i];
    if (i > 0) os << ",";
    os << "\n  {\"index\": " << r.index << ", \"time\": " << Num(r.time)
       << ", \"budget_usd\": " << Num(r.budget_usd) << ", \"shares\": [";
    for (int j = 0; j < r.num_shares; ++j) {
      if (j > 0) os << ", ";
      os << Num(r.shares[j]);
    }
    os << "], \"applied\": " << (r.applied ? "true" : "false") << "}";
  }
  os << "\n ],\n";

  os << " \"checkpoints\": [";
  for (size_t i = 0; i < b.checkpoints.size(); ++i) {
    const HashCheckpoint& c = b.checkpoints[i];
    if (i > 0) os << ",";
    os << "\n  {\"index\": " << c.index << ", \"time\": " << Num(c.time)
       << ", \"chain\": " << U64(c.chain) << "}";
  }
  os << "\n ],\n";

  os << " \"decisions\": [";
  for (size_t i = 0; i < b.decisions.size(); ++i) {
    const DecisionEntry& d = b.decisions[i];
    if (i > 0) os << ",";
    os << "\n  {\"index\": " << d.index << ", \"time\": " << Num(d.time)
       << ", \"loop\": " << Str(d.loop) << ", \"y\": " << Num(d.sensed_y)
       << ", \"raw_u\": " << Num(d.raw_u) << ", \"u\": " << Num(d.clamped_u)
       << ", \"out\": " << static_cast<int>(d.outcome)
       << ", \"line_hash\": " << U64(d.line_hash)
       << ", \"chain\": " << U64(d.chain) << "}";
  }
  os << "\n ]\n";
  os << "}\n";
}

// ---------------------------------------------------------------------
// Parsing: a minimal recursive-descent JSON reader (the repo vendors no
// JSON library). Supports exactly what WriteBundle emits plus the usual
// escapes; numbers parse as doubles, 64-bit fields arrive as strings.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    FLOWER_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::InvalidArgument("bundle JSON: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      size_t len = c == 't' ? 4 : 5;
      if (text_.compare(pos_, len, word) != 0) return Err("bad literal");
      pos_ += len;
      out->type = JsonValue::Type::kBool;
      out->boolean = c == 't';
      return Status::OK();
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return Err("bad literal");
      pos_ += 4;
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      std::string key;
      FLOWER_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Err("expected ':'");
      ++pos_;
      JsonValue value;
      FLOWER_RETURN_NOT_OK(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      FLOWER_RETURN_NOT_OK(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // The writer only escapes control bytes, so non-ASCII code
          // points never appear; keep the low byte.
          out->push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err("malformed number");
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Typed extraction.
// ---------------------------------------------------------------------

const JsonValue* Find(const JsonValue& obj, const std::string& key) {
  if (obj.type != JsonValue::Type::kObject) return nullptr;
  for (const auto& [k, v] : obj.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<double> AsDouble(const JsonValue& v, const std::string& what) {
  if (v.type == JsonValue::Type::kNumber) return v.number;
  if (v.type == JsonValue::Type::kString) {
    if (v.str == "nan") return std::nan("");
    if (v.str == "inf") return std::numeric_limits<double>::infinity();
    if (v.str == "-inf") return -std::numeric_limits<double>::infinity();
  }
  return Status::InvalidArgument("bundle JSON: '" + what + "' is not a number");
}

Result<uint64_t> AsU64(const JsonValue& v, const std::string& what) {
  if (v.type == JsonValue::Type::kString && !v.str.empty()) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v.str.c_str(), &end, 10);
    if (end == v.str.c_str() + v.str.size()) return uint64_t{parsed};
  }
  if (v.type == JsonValue::Type::kNumber && v.number >= 0) {
    return static_cast<uint64_t>(v.number);
  }
  return Status::InvalidArgument("bundle JSON: '" + what +
                                 "' is not a 64-bit value");
}

Result<std::string> AsString(const JsonValue& v, const std::string& what) {
  if (v.type != JsonValue::Type::kString) {
    return Status::InvalidArgument("bundle JSON: '" + what +
                                   "' is not a string");
  }
  return v.str;
}

Result<bool> AsBool(const JsonValue& v, const std::string& what) {
  if (v.type != JsonValue::Type::kBool) {
    return Status::InvalidArgument("bundle JSON: '" + what +
                                   "' is not a bool");
  }
  return v.boolean;
}

#define BUNDLE_FIELD(target, obj, key, conv)                               \
  do {                                                                     \
    const JsonValue* field = Find(obj, key);                               \
    if (field == nullptr) {                                                \
      return Status::InvalidArgument("bundle JSON: missing '" +            \
                                     std::string(key) + "'");              \
    }                                                                      \
    FLOWER_ASSIGN_OR_RETURN(target, conv(*field, key));                    \
  } while (0)

Result<RecordedFault> ParseFault(const JsonValue& v) {
  RecordedFault f;
  BUNDLE_FIELD(f.kind, v, "kind", AsString);
  BUNDLE_FIELD(f.target, v, "target", AsString);
  BUNDLE_FIELD(f.start, v, "start", AsDouble);
  BUNDLE_FIELD(f.end, v, "end", AsDouble);
  BUNDLE_FIELD(f.probability, v, "probability", AsDouble);
  BUNDLE_FIELD(f.delay_sec, v, "delay_sec", AsDouble);
  BUNDLE_FIELD(f.factor, v, "factor", AsDouble);
  BUNDLE_FIELD(f.offset, v, "offset", AsDouble);
  return f;
}

Result<GrantEntry> ParseGrant(const JsonValue& v) {
  GrantEntry g;
  BUNDLE_FIELD(g.index, v, "index", AsU64);
  BUNDLE_FIELD(g.time, v, "time", AsDouble);
  BUNDLE_FIELD(g.demand_usd, v, "demand_usd", AsDouble);
  BUNDLE_FIELD(g.grant_usd, v, "grant_usd", AsDouble);
  return g;
}

Result<ReplanEntry> ParseReplan(const JsonValue& v) {
  ReplanEntry r;
  BUNDLE_FIELD(r.index, v, "index", AsU64);
  BUNDLE_FIELD(r.time, v, "time", AsDouble);
  BUNDLE_FIELD(r.budget_usd, v, "budget_usd", AsDouble);
  BUNDLE_FIELD(r.applied, v, "applied", AsBool);
  const JsonValue* shares = Find(v, "shares");
  if (shares == nullptr || shares->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'shares'");
  }
  r.num_shares = 0;
  for (const JsonValue& s : shares->array) {
    if (r.num_shares >= ReplanEntry::kMaxShares) break;
    FLOWER_ASSIGN_OR_RETURN(r.shares[r.num_shares], AsDouble(s, "shares"));
    ++r.num_shares;
  }
  return r;
}

Result<HashCheckpoint> ParseCheckpoint(const JsonValue& v) {
  HashCheckpoint c;
  BUNDLE_FIELD(c.index, v, "index", AsU64);
  BUNDLE_FIELD(c.time, v, "time", AsDouble);
  BUNDLE_FIELD(c.chain, v, "chain", AsU64);
  return c;
}

Result<DecisionEntry> ParseDecision(const JsonValue& v) {
  DecisionEntry d;
  BUNDLE_FIELD(d.index, v, "index", AsU64);
  BUNDLE_FIELD(d.time, v, "time", AsDouble);
  BUNDLE_FIELD(d.sensed_y, v, "y", AsDouble);
  BUNDLE_FIELD(d.raw_u, v, "raw_u", AsDouble);
  BUNDLE_FIELD(d.clamped_u, v, "u", AsDouble);
  BUNDLE_FIELD(d.line_hash, v, "line_hash", AsU64);
  BUNDLE_FIELD(d.chain, v, "chain", AsU64);
  uint64_t outcome = 0;
  BUNDLE_FIELD(outcome, v, "out", AsU64);
  d.outcome = static_cast<uint8_t>(outcome);
  std::string loop;
  BUNDLE_FIELD(loop, v, "loop", AsString);
  size_t len = std::min(loop.size(), sizeof(d.loop) - 1);
  loop.copy(d.loop, len);
  d.loop[len] = '\0';
  return d;
}

}  // namespace

CaptureBundle BundleFromRecorder(const FlightRecorder& recorder) {
  CaptureBundle b;
  b.tenant_id = recorder.tenant_id();
  b.tenant_index = recorder.tenant_index();
  b.seed = recorder.seed();
  b.span_id_offset = recorder.span_id_offset();
  b.fingerprint = recorder.Fingerprint();
  b.window_start = recorder.window_start();
  b.trigger = recorder.trigger();
  b.recorder = recorder.config();
  b.spec = recorder.spec();
  b.faults = recorder.faults();
  b.grants = recorder.Grants();
  b.replans = recorder.Replans();
  b.decisions = recorder.Decisions();
  b.checkpoints = recorder.Checkpoints();
  b.chain_hash = recorder.chain_hash();
  b.total_decisions = recorder.total_decisions();
  if (b.trigger.fired) {
    // The bundle contract is the [window_start, t_trigger] window: a
    // recorder snapshotted *after* its trigger (an explicit dump at the
    // end of a run whose alert fired mid-way) may hold entries the
    // replay — which stops at the trigger — can never reproduce. Trim
    // them and rewind the chain verdict to the last in-window decision.
    auto past = [&b](SimTime t) { return t > b.trigger.time; };
    while (!b.decisions.empty() && past(b.decisions.back().time)) {
      b.decisions.pop_back();
    }
    while (!b.grants.empty() && past(b.grants.back().time)) {
      b.grants.pop_back();
    }
    while (!b.replans.empty() && past(b.replans.back().time)) {
      b.replans.pop_back();
    }
    while (!b.checkpoints.empty() && past(b.checkpoints.back().time)) {
      b.checkpoints.pop_back();
    }
    if (b.decisions.empty()) {
      // The whole in-window tail was evicted by post-trigger recording;
      // nothing is comparable step-by-step.
      b.total_decisions = 0;
      b.chain_hash = kFnvOffsetBasis;
    } else {
      b.total_decisions = b.decisions.back().index + 1;
      b.chain_hash = b.decisions.back().chain;
    }
  }
  return b;
}

uint64_t BundleFingerprint(const CaptureBundle& bundle) {
  FlightRecorder scratch{RecorderConfig{1, 1, 1, 1, 1}};
  scratch.SetIdentity(bundle.tenant_id, bundle.tenant_index, bundle.seed,
                      bundle.span_id_offset);
  scratch.SetSpec(bundle.spec);
  for (const RecordedFault& f : bundle.faults) scratch.AddFault(f);
  return scratch.Fingerprint();
}

Status WriteBundleJson(const CaptureBundle& bundle, const std::string& path) {
  return ExportToFile(path,
                      [&](std::ostream& os) { WriteBundle(os, bundle); });
}

Result<CaptureBundle> LoadBundleJson(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open capture bundle '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  FLOWER_ASSIGN_OR_RETURN(JsonValue root, JsonParser(text).Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("bundle JSON: top level is not an object");
  }

  CaptureBundle b;
  uint64_t schema = 0;
  BUNDLE_FIELD(schema, root, "schema_version", AsU64);
  b.schema_version = static_cast<int>(schema);
  if (b.schema_version > kBundleSchemaVersion) {
    return Status::InvalidArgument(
        "capture bundle schema v" + std::to_string(b.schema_version) +
        " is newer than this build understands (v" +
        std::to_string(kBundleSchemaVersion) + ")");
  }
  BUNDLE_FIELD(b.tenant_id, root, "tenant_id", AsString);
  uint64_t index = 0;
  BUNDLE_FIELD(index, root, "tenant_index", AsU64);
  b.tenant_index = static_cast<size_t>(index);
  BUNDLE_FIELD(b.seed, root, "seed", AsU64);
  BUNDLE_FIELD(b.span_id_offset, root, "span_id_offset", AsU64);
  BUNDLE_FIELD(b.fingerprint, root, "fingerprint", AsU64);
  BUNDLE_FIELD(b.window_start, root, "window_start", AsDouble);
  BUNDLE_FIELD(b.chain_hash, root, "chain_hash", AsU64);
  BUNDLE_FIELD(b.total_decisions, root, "total_decisions", AsU64);

  const JsonValue* trigger = Find(root, "trigger");
  if (trigger == nullptr) {
    return Status::InvalidArgument("bundle JSON: missing 'trigger'");
  }
  BUNDLE_FIELD(b.trigger.fired, *trigger, "fired", AsBool);
  BUNDLE_FIELD(b.trigger.time, *trigger, "time", AsDouble);
  BUNDLE_FIELD(b.trigger.reason, *trigger, "reason", AsString);
  BUNDLE_FIELD(b.trigger.span_id, *trigger, "span_id", AsU64);
  BUNDLE_FIELD(b.trigger.burn_fast, *trigger, "burn_fast", AsDouble);
  BUNDLE_FIELD(b.trigger.burn_slow, *trigger, "burn_slow", AsDouble);

  const JsonValue* recorder = Find(root, "recorder");
  if (recorder == nullptr) {
    return Status::InvalidArgument("bundle JSON: missing 'recorder'");
  }
  uint64_t cap = 0;
  BUNDLE_FIELD(cap, *recorder, "decision_capacity", AsU64);
  b.recorder.decision_capacity = static_cast<size_t>(cap);
  BUNDLE_FIELD(cap, *recorder, "grant_capacity", AsU64);
  b.recorder.grant_capacity = static_cast<size_t>(cap);
  BUNDLE_FIELD(cap, *recorder, "replan_capacity", AsU64);
  b.recorder.replan_capacity = static_cast<size_t>(cap);
  BUNDLE_FIELD(cap, *recorder, "checkpoint_every", AsU64);
  b.recorder.checkpoint_every = static_cast<size_t>(cap);
  BUNDLE_FIELD(cap, *recorder, "checkpoint_capacity", AsU64);
  b.recorder.checkpoint_capacity = static_cast<size_t>(cap);

  const JsonValue* spec = Find(root, "spec");
  if (spec == nullptr || spec->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'spec'");
  }
  for (const JsonValue& pair : spec->array) {
    std::string k, v;
    BUNDLE_FIELD(k, pair, "k", AsString);
    BUNDLE_FIELD(v, pair, "v", AsString);
    b.spec.emplace_back(std::move(k), std::move(v));
  }

  const JsonValue* arr = Find(root, "faults");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'faults'");
  }
  for (const JsonValue& v : arr->array) {
    FLOWER_ASSIGN_OR_RETURN(RecordedFault f, ParseFault(v));
    b.faults.push_back(std::move(f));
  }

  arr = Find(root, "grants");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'grants'");
  }
  for (const JsonValue& v : arr->array) {
    FLOWER_ASSIGN_OR_RETURN(GrantEntry g, ParseGrant(v));
    b.grants.push_back(g);
  }

  arr = Find(root, "replans");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'replans'");
  }
  for (const JsonValue& v : arr->array) {
    FLOWER_ASSIGN_OR_RETURN(ReplanEntry r, ParseReplan(v));
    b.replans.push_back(r);
  }

  arr = Find(root, "checkpoints");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'checkpoints'");
  }
  for (const JsonValue& v : arr->array) {
    FLOWER_ASSIGN_OR_RETURN(HashCheckpoint c, ParseCheckpoint(v));
    b.checkpoints.push_back(c);
  }

  arr = Find(root, "decisions");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("bundle JSON: missing 'decisions'");
  }
  for (const JsonValue& v : arr->array) {
    FLOWER_ASSIGN_OR_RETURN(DecisionEntry d, ParseDecision(v));
    b.decisions.push_back(d);
  }
  return b;
}

}  // namespace flower::obs::replay
