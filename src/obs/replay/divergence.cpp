#include "obs/replay/divergence.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace flower::obs::replay {

namespace {

/// Field-by-field diff of a recorded vs replayed decision, for the
/// report's `detail` line.
std::string DescribeMismatch(const DecisionEntry& rec,
                             const DecisionEntry& rep) {
  std::ostringstream os;
  char buf[128];
  auto field = [&](const char* name, double a, double b) {
    if (a == b) return;
    std::snprintf(buf, sizeof(buf), "%s recorded=%.6f replayed=%.6f; ", name,
                  a, b);
    os << buf;
  };
  if (std::strcmp(rec.loop, rep.loop) != 0) {
    os << "loop recorded=" << rec.loop << " replayed=" << rep.loop << "; ";
  }
  field("t", rec.time, rep.time);
  field("y", rec.sensed_y, rep.sensed_y);
  field("raw_u", rec.raw_u, rep.raw_u);
  field("u", rec.clamped_u, rep.clamped_u);
  if (rec.outcome != rep.outcome) {
    os << "out recorded=" << int{rec.outcome} << " replayed=" << int{rep.outcome}
       << "; ";
  }
  std::string s = os.str();
  if (s.empty()) s = "line hashes differ (formatting-level drift); ";
  s.pop_back();  // trailing space
  s.pop_back();  // trailing ';'
  return s;
}

}  // namespace

DivergenceReport CompareReplay(const CaptureBundle& recorded,
                               const FlightRecorder& replayed) {
  DivergenceReport r;
  r.fingerprint_match = recorded.fingerprint == replayed.Fingerprint();
  r.recorded_total = recorded.total_decisions;
  r.replayed_total = replayed.total_decisions();

  const std::vector<DecisionEntry> rep = replayed.Decisions();
  const uint64_t rep_first = r.replayed_total - rep.size();
  auto find_replayed = [&](uint64_t index) -> const DecisionEntry* {
    if (index < rep_first || index >= r.replayed_total) return nullptr;
    return &rep[static_cast<size_t>(index - rep_first)];
  };

  if (r.replayed_total < r.recorded_total) r.diverged = true;

  // Step through the recorded decision tail, oldest first. The first
  // line-hash mismatch is *the* divergence point; a chain mismatch on a
  // matching line means the drift predates the retained tail.
  bool drift_before_tail = false;
  for (const DecisionEntry& rec : recorded.decisions) {
    if (rec.index >= r.recorded_total) continue;
    const DecisionEntry* cur = find_replayed(rec.index);
    if (cur == nullptr) {
      if (rec.index >= r.replayed_total) {
        r.diverged = true;
        r.has_first_mismatch = true;
        r.first_mismatch_index = rec.index;
        r.first_mismatch_time = rec.time;
        r.loop = rec.loop;
        r.detail = "replay ended before this decision";
        break;
      }
      continue;  // evicted from the replayed ring
    }
    if (cur->line_hash != rec.line_hash) {
      r.diverged = true;
      r.has_first_mismatch = true;
      r.first_mismatch_index = rec.index;
      r.first_mismatch_time = rec.time;
      r.loop = rec.loop;
      r.detail = DescribeMismatch(rec, *cur);
      break;
    }
    if (cur->chain != rec.chain) {
      r.diverged = true;
      drift_before_tail = true;
      break;
    }
  }

  // Chain verdict after exactly the recorded number of decisions (the
  // replay may legitimately run a few more same-instant steps).
  if (r.recorded_total > 0) {
    const DecisionEntry* last = find_replayed(r.recorded_total - 1);
    if (last != nullptr) {
      r.chain_match = last->chain == recorded.chain_hash;
    } else if (r.replayed_total == r.recorded_total) {
      r.chain_match = replayed.chain_hash() == recorded.chain_hash;
    } else if (r.replayed_total < r.recorded_total) {
      r.chain_match = false;
    }
    // (recorded index evicted from a larger replayed ring cannot happen
    // in practice: replay uses at-least-recorded capacities.)
  }
  if (!r.chain_match) r.diverged = true;

  // When the drift predates the retained tail, hash checkpoints can
  // still pin it to a window of `checkpoint_every` decisions.
  if (drift_before_tail || (!r.chain_match && !r.has_first_mismatch)) {
    bool have_good = false;
    HashCheckpoint last_good{};
    for (const HashCheckpoint& cp : recorded.checkpoints) {
      const DecisionEntry* cur = find_replayed(cp.index);
      if (cur == nullptr) continue;
      if (cur->chain == cp.chain) {
        last_good = cp;
        have_good = true;
        continue;
      }
      r.localized_by_checkpoint = true;
      r.suspect_window_start = have_good ? last_good.time : 0.0;
      r.suspect_window_end = cp.time;
      break;
    }
  }
  return r;
}

std::string DivergenceReport::ToString() const {
  std::ostringstream os;
  char buf[192];
  os << (diverged ? "DIVERGED" : "MATCH") << ": replayed " << replayed_total
     << " decisions against " << recorded_total << " recorded\n";
  os << "  fingerprint: " << (fingerprint_match ? "match" : "MISMATCH")
     << "  digest chain: " << (chain_match ? "match" : "MISMATCH") << "\n";
  if (has_first_mismatch) {
    std::snprintf(buf, sizeof(buf),
                  "  first mismatch: decision #%llu at t=%.3f loop=%s\n",
                  static_cast<unsigned long long>(first_mismatch_index),
                  first_mismatch_time, loop.c_str());
    os << buf;
    os << "    " << detail << "\n";
  }
  if (localized_by_checkpoint) {
    std::snprintf(buf, sizeof(buf),
                  "  drift predates the decision tail; checkpoint-localized "
                  "to t=[%.3f, %.3f]\n",
                  suspect_window_start, suspect_window_end);
    os << buf;
  }
  return os.str();
}

}  // namespace flower::obs::replay
