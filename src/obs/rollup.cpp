#include "obs/rollup.h"

#include <algorithm>
#include <cmath>

namespace flower::obs {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

const char* RollupAggToString(RollupAgg agg) {
  switch (agg) {
    case RollupAgg::kLast:
      return "last";
    case RollupAgg::kMin:
      return "min";
    case RollupAgg::kMax:
      return "max";
    case RollupAgg::kMean:
      return "mean";
    case RollupAgg::kSum:
      return "sum";
    case RollupAgg::kDelta:
      return "delta";
    case RollupAgg::kRate:
      return "rate";
  }
  return "unknown";
}

RollupStore::RollupStore(MetricsRegistry* registry, RollupConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.base_period_sec <= 0.0) config_.base_period_sec = 1.0;
  if (config_.slots_per_tier == 0) config_.slots_per_tier = 1;
  if (config_.tier_multiples.empty()) config_.tier_multiples = {1};
  std::sort(config_.tier_multiples.begin(), config_.tier_multiples.end());
}

size_t RollupStore::TrackCounter(const std::string& name,
                                 const LabelSet& labels) {
  return TrackSeries(Kind::kCounter, name, labels);
}

size_t RollupStore::TrackGauge(const std::string& name,
                               const LabelSet& labels) {
  return TrackSeries(Kind::kGauge, name, labels);
}

size_t RollupStore::TrackHistogram(const std::string& name,
                                   const LabelSet& labels) {
  return TrackSeries(Kind::kHistogram, name, labels);
}

size_t RollupStore::TrackSeries(Kind kind, const std::string& name,
                                const LabelSet& labels) {
  LabelSet norm = MetricsRegistry::NormalizeLabels(labels);
  std::string key(1, static_cast<char>(kind));
  key += MetricsRegistry::SeriesKey(name, norm);
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const auto& pair, const std::string& k) { return pair.first < k; });
  if (it != index_.end() && it->first == key) return it->second;

  Tracked t;
  t.kind = kind;
  t.name = name;
  t.labels = std::move(norm);
  t.tiers.resize(config_.tier_multiples.size());
  for (size_t i = 0; i < t.tiers.size(); ++i) {
    t.tiers[i].multiple = std::max<size_t>(1, config_.tier_multiples[i]);
    t.tiers[i].ring.resize(config_.slots_per_tier);
  }
  size_t id = tracked_.size();
  tracked_.push_back(std::move(t));
  index_.insert(it, {std::move(key), id});
  Resolve(&tracked_[id]);
  return id;
}

void RollupStore::Resolve(Tracked* t) {
  switch (t->kind) {
    case Kind::kCounter:
      t->counter = registry_->FindCounter(t->name, t->labels);
      if (t->counter != nullptr) {
        t->snapshot_index = static_cast<int>(snapshot_.counters.size());
        snapshot_.counters.push_back({t->name, t->labels, 0});
      }
      break;
    case Kind::kGauge:
      t->gauge = registry_->FindGauge(t->name, t->labels);
      if (t->gauge != nullptr) {
        t->snapshot_index = static_cast<int>(snapshot_.gauges.size());
        snapshot_.gauges.push_back({t->name, t->labels, 0.0});
      }
      break;
    case Kind::kHistogram:
      t->histogram = registry_->FindHistogram(t->name, t->labels);
      if (t->histogram != nullptr) {
        t->snapshot_index = static_cast<int>(snapshot_.histograms.size());
        HistogramSample s;
        s.name = t->name;
        s.labels = t->labels;
        snapshot_.histograms.push_back(std::move(s));
      }
      break;
  }
}

void RollupStore::Tick(SimTime now) {
  ++ticks_;
  last_tick_ = now;
  for (Tracked& t : tracked_) {
    bool resolved = t.counter != nullptr || t.gauge != nullptr ||
                    t.histogram != nullptr;
    if (!resolved) {
      // Lazy re-resolution: the instrument may have been registered
      // since the last tick.
      Resolve(&t);
      resolved =
          t.counter != nullptr || t.gauge != nullptr || t.histogram != nullptr;
      if (!resolved) continue;
    }

    // Sample the instrument: x is the per-tick value folded into the
    // slot aggregates (gauge reading, or counter/histogram delta), x2
    // the histogram value-sum delta.
    double x = 0.0;
    double x2 = 0.0;
    double last = 0.0;
    double cum = 0.0;
    double cum_sum = 0.0;
    switch (t.kind) {
      case Kind::kGauge: {
        double v = t.gauge->Value();
        x = v;
        last = v;
        cum = v;
        snapshot_.gauges[t.snapshot_index].value = v;
        break;
      }
      case Kind::kCounter: {
        uint64_t v = t.counter->Value();
        cum = static_cast<double>(v);
        x = t.seen ? cum - t.prev_cum : cum;
        last = cum;
        snapshot_.counters[t.snapshot_index].value = v;
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *t.histogram;
        cum = static_cast<double>(h.TotalCount());
        cum_sum = h.Sum();
        x = t.seen ? cum - t.prev_cum : cum;
        x2 = t.seen ? cum_sum - t.prev_cum_sum : cum_sum;
        last = cum;
        HistogramSample& s = snapshot_.histograms[t.snapshot_index];
        s.count = h.TotalCount();
        s.sum = h.Sum();
        s.min = h.Min();
        s.max = h.Max();
        s.p50 = h.Quantile(0.5).ValueOr(0.0);
        s.p99 = h.Quantile(0.99).ValueOr(0.0);
        size_t n = h.NumBuckets();
        if (s.bounds.size() != n) {
          s.bounds.resize(n);
          s.buckets.resize(n);
          for (size_t i = 0; i < n; ++i) s.bounds[i] = h.UpperBound(i);
        }
        for (size_t i = 0; i < n; ++i) s.buckets[i] = h.BucketCount(i);
        break;
      }
    }
    t.seen = true;
    t.prev_cum = cum;
    t.prev_cum_sum = cum_sum;

    for (Tier& tier : t.tiers) {
      RollupSlot& p = tier.partial;
      if (tier.pending == 0) {
        p = RollupSlot{};
        p.min = x;
        p.max = x;
      } else {
        p.min = std::min(p.min, x);
        p.max = std::max(p.max, x);
      }
      p.t_end = now;
      p.last = last;
      p.sum += x;
      p.sum2 += x2;
      ++p.samples;
      p.cum = cum;
      p.cum_sum = cum_sum;
      if (++tier.pending >= tier.multiple) {
        tier.ring[tier.head] = p;
        tier.head = (tier.head + 1) % tier.ring.size();
        tier.filled = std::min(tier.filled + 1, tier.ring.size());
        tier.pending = 0;
      }
    }
  }
}

const RollupStore::Tracked* RollupStore::FindSeries(
    Kind kind, const std::string& name, const LabelSet& labels) const {
  LabelSet norm = MetricsRegistry::NormalizeLabels(labels);
  std::string key(1, static_cast<char>(kind));
  key += MetricsRegistry::SeriesKey(name, norm);
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const auto& pair, const std::string& k) { return pair.first < k; });
  if (it == index_.end() || it->first != key) return nullptr;
  return &tracked_[it->second];
}

Result<double> RollupStore::Query(const std::string& metric,
                                  const LabelSet& labels, double window_sec,
                                  RollupAgg agg) const {
  for (Kind kind : {Kind::kCounter, Kind::kGauge, Kind::kHistogram}) {
    if (const Tracked* t = FindSeries(kind, metric, labels)) {
      return QueryTracked(*t, window_sec, agg);
    }
  }
  return Status::NotFound("RollupStore::Query: series not tracked: " + metric);
}

Result<double> RollupStore::Query(size_t track_id, double window_sec,
                                  RollupAgg agg) const {
  if (track_id >= tracked_.size()) {
    return Status::InvalidArgument("RollupStore::Query: bad track id");
  }
  return QueryTracked(tracked_[track_id], window_sec, agg);
}

Result<double> RollupStore::QueryTracked(const Tracked& t, double window_sec,
                                         RollupAgg agg) const {
  if (window_sec <= 0.0) {
    return Status::InvalidArgument("RollupStore::Query: window must be > 0");
  }
  // Finest tier whose retained capacity covers the window; fall back to
  // the coarsest when none does.
  const Tier* tier = &t.tiers.back();
  for (const Tier& cand : t.tiers) {
    double coverage = static_cast<double>(cand.ring.size()) *
                      static_cast<double>(cand.multiple) *
                      config_.base_period_sec;
    if (coverage + kEps >= window_sec) {
      tier = &cand;
      break;
    }
  }
  if (tier->filled == 0) {
    return Status::NotFound("RollupStore::Query: no closed slots yet");
  }

  double cutoff = last_tick_ - window_sec;
  size_t n = tier->ring.size();
  size_t oldest = (tier->head + n - tier->filled) % n;

  // Newest closed slot at/before the cutoff anchors the baseline for
  // delta/rate; slots after it are inside the window.
  const RollupSlot* baseline = nullptr;
  const RollupSlot* newest = nullptr;
  const RollupSlot* first_in = nullptr;
  double min_v = 0.0, max_v = 0.0, sum_v = 0.0;
  uint64_t samples = 0;
  bool any = false;
  for (size_t i = 0; i < tier->filled; ++i) {
    const RollupSlot& s = tier->ring[(oldest + i) % n];
    if (s.t_end <= cutoff + kEps) {
      baseline = &s;
      continue;
    }
    if (!any) {
      first_in = &s;
      min_v = s.min;
      max_v = s.max;
      any = true;
    } else {
      min_v = std::min(min_v, s.min);
      max_v = std::max(max_v, s.max);
    }
    sum_v += s.sum;
    samples += s.samples;
    newest = &s;
  }
  if (!any) {
    return Status::NotFound("RollupStore::Query: window has no data");
  }

  double slot_span = static_cast<double>(tier->multiple) *
                     config_.base_period_sec;
  double base_cum = baseline != nullptr ? baseline->cum
                                        : first_in->cum - first_in->sum;
  double base_cum_sum = baseline != nullptr
                            ? baseline->cum_sum
                            : first_in->cum_sum - first_in->sum2;
  double window_start =
      baseline != nullptr ? baseline->t_end : first_in->t_end - slot_span;

  switch (agg) {
    case RollupAgg::kLast:
      return newest->last;
    case RollupAgg::kMin:
      return min_v;
    case RollupAgg::kMax:
      return max_v;
    case RollupAgg::kSum:
      return sum_v;
    case RollupAgg::kMean:
      if (t.kind == Kind::kHistogram) {
        double dc = newest->cum - base_cum;
        return dc <= 0.0 ? 0.0 : (newest->cum_sum - base_cum_sum) / dc;
      }
      return samples == 0 ? 0.0
                          : sum_v / static_cast<double>(samples);
    case RollupAgg::kDelta:
      return newest->cum - base_cum;
    case RollupAgg::kRate: {
      double covered = newest->t_end - window_start;
      if (covered <= 0.0) covered = slot_span;
      return (newest->cum - base_cum) / covered;
    }
  }
  return Status::InvalidArgument("RollupStore::Query: unknown aggregation");
}

}  // namespace flower::obs
