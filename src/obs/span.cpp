#include "obs/span.h"

#include <algorithm>

#include "common/logging.h"

namespace flower::obs {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSense:
      return "sense";
    case SpanKind::kDecide:
      return "decide";
    case SpanKind::kPlan:
      return "plan";
    case SpanKind::kActuate:
      return "actuate";
    case SpanKind::kEffect:
      return "effect";
    case SpanKind::kGeneration:
      return "generation";
    case SpanKind::kArbitrate:
      return "arbitrate";
  }
  return "unknown";
}

SpanCollector::SpanCollector(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpanCollector::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (enabled_ && ring_.size() != capacity_) ring_.resize(capacity_);
}

Status SpanCollector::set_id_offset(SpanId offset) {
  if (total_started() != 0) {
    return Status::FailedPrecondition(
        "SpanCollector: id offset must be set before any span is recorded");
  }
  id_offset_ = offset;
  next_id_.store(offset + 1, std::memory_order_relaxed);
  return Status::OK();
}

SpanId SpanCollector::Begin(SpanKind kind, std::string_view label,
                            SimTime start, int pid, int tid, SpanId parent,
                            SpanId follows) {
  if (!enabled_) return 0;
  SpanId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (id > id_offset_ + kIdStride) {
    // Namespace exhausted: minting this id would collide with the next
    // sibling collector's (offset + kIdStride, ...] range. Drop the
    // span, count it, and hold next_id_ at the boundary so the counter
    // cannot creep into foreign territory however often this fires.
    next_id_.store(id_offset_ + kIdStride + 1, std::memory_order_relaxed);
    if (id_overflows_.fetch_add(1, std::memory_order_relaxed) == 0) {
      FLOWER_LOG(Warning)
          << "SpanCollector: id namespace exhausted (offset=" << id_offset_
          << ", stride=" << kIdStride
          << "); dropping further spans for this collector";
    }
    return 0;
  }
  SpanRecord* r = Slot(id);
  r->id = id;
  r->parent = parent;
  r->follows = follows;
  r->kind = kind;
  r->outcome = 0;
  r->pid = pid;
  r->tid = tid;
  r->start = start;
  r->end = start;
  r->value = 0.0;
  r->label.assign(label.data(), label.size());
  r->open = true;
  return id;
}

void SpanCollector::End(SpanId id, SimTime end, double value,
                        uint8_t outcome) {
  if (id == 0 || ring_.empty()) return;
  SpanRecord* r = Slot(id);
  if (r->id != id || !r->open) return;  // Evicted (or double-ended).
  r->end = end;
  r->value = value;
  r->outcome = outcome;
  r->open = false;
}

SpanId SpanCollector::Emit(SpanKind kind, std::string_view label,
                           SimTime start, double dur_sec, int pid, int tid,
                           SpanId parent, SpanId follows, double value,
                           uint8_t outcome) {
  SpanId id = Begin(kind, label, start, pid, tid, parent, follows);
  End(id, start + dur_sec, value, outcome);
  return id;
}

const SpanRecord* SpanCollector::Find(SpanId id) const {
  if (id <= id_offset_ || id >= end_id() || ring_.empty()) return nullptr;
  const SpanRecord* r = &ring_[(id - id_offset_ - 1) % capacity_];
  return r->id == id ? r : nullptr;
}

SpanId SpanCollector::first_retained() const {
  uint64_t started = total_started();
  if (started == 0) return 0;
  return started <= capacity_ ? id_offset_ + 1 : end_id() - capacity_;
}

size_t SpanCollector::size() const {
  uint64_t started = total_started();
  return started <= capacity_ ? static_cast<size_t>(started) : capacity_;
}

uint64_t SpanCollector::evicted() const {
  uint64_t started = total_started();
  return started <= capacity_ ? 0 : started - capacity_;
}

SpanIndex::SpanIndex(const SpanCollector& spans) : spans_(spans) {
  children_.reserve(spans.size());
  followers_.reserve(spans.size());
  for (SpanId id = spans.first_retained(); id != 0 && id < spans.end_id();
       ++id) {
    const SpanRecord* r = spans.Find(id);
    if (r == nullptr) continue;
    if (r->parent != 0) children_.emplace_back(r->parent, id);
    if (r->follows != 0) followers_.emplace_back(r->follows, id);
  }
  std::sort(children_.begin(), children_.end());
  std::sort(followers_.begin(), followers_.end());
}

namespace {

std::vector<const SpanRecord*> EdgeTargets(
    const std::vector<std::pair<SpanId, SpanId>>& edges, SpanId from,
    const SpanCollector& spans) {
  std::vector<const SpanRecord*> out;
  auto lo = std::lower_bound(edges.begin(), edges.end(),
                             std::make_pair(from, SpanId{0}));
  for (auto it = lo; it != edges.end() && it->first == from; ++it) {
    if (const SpanRecord* r = spans.Find(it->second)) out.push_back(r);
  }
  return out;
}

}  // namespace

std::vector<const SpanRecord*> SpanIndex::ChildrenOf(SpanId id) const {
  return EdgeTargets(children_, id, spans_);
}

std::vector<const SpanRecord*> SpanIndex::FollowersOf(SpanId id) const {
  return EdgeTargets(followers_, id, spans_);
}

Result<SpanIndex::CausalChain> SpanIndex::EffectOf(SpanId decision_id) const {
  const SpanRecord* d = Get(decision_id);
  if (d == nullptr) {
    return Status::NotFound("SpanIndex::EffectOf: span not retained");
  }
  if (d->kind != SpanKind::kDecide) {
    return Status::InvalidArgument(
        "SpanIndex::EffectOf: span is not a decision span");
  }
  CausalChain chain;
  chain.decision = d;
  // Upstream: walk the parent chain collecting sensed-metric spans.
  for (const SpanRecord* p = Get(d->parent); p != nullptr;
       p = Get(p->parent)) {
    if (p->kind == SpanKind::kSense) chain.senses.push_back(p);
  }
  // Sideways: the plan run whose bounds shaped this decision.
  for (const SpanRecord* f = Get(d->follows); f != nullptr;
       f = Get(f->follows)) {
    if (f->kind == SpanKind::kPlan) {
      chain.plans.push_back(f);
      break;  // Older plans were superseded; one hop is the cause.
    }
  }
  // Downstream: actuation attempts are children of the decision (retry
  // attempts chain to each other with follows-from, still parented on
  // the decision), and each observed effect is a child of the actuation
  // that caused it.
  for (const SpanRecord* a : ChildrenOf(decision_id)) {
    if (a->kind != SpanKind::kActuate) continue;
    chain.actuations.push_back(a);
    for (const SpanRecord* e : ChildrenOf(a->id)) {
      if (e->kind == SpanKind::kEffect) chain.effects.push_back(e);
    }
  }
  return chain;
}

}  // namespace flower::obs
