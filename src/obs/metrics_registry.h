#ifndef FLOWER_OBS_METRICS_REGISTRY_H_
#define FLOWER_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace flower::obs {

/// Instrument labels, e.g. {{"layer","analytics"},{"controller",
/// "adaptive-gain"}}. Normalized (sorted by key) at registration; two
/// label sets with the same pairs address the same instrument.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. The increment is one relaxed
/// atomic add — no locks, no heap traffic — so it is safe on the
/// control-loop hot path (and from concurrent readers of a future
/// multi-threaded driver).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement (front size, gain, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: log-linear — each power-of-two range
/// ("octave") between `min` and `max` is split into `sub_buckets`
/// equal-width linear buckets, giving bounded relative error at every
/// scale with a fixed, allocation-free bucket count.
struct HistogramOptions {
  double min = 1e-3;   ///< Values below land in the underflow bucket.
  double max = 1e7;    ///< Values at/above land in the overflow bucket.
  int sub_buckets = 4; ///< Linear subdivisions per octave (>= 1).
};

/// Fixed-bucket histogram. `Record` computes a bucket index and does a
/// relaxed atomic add — no allocation, no locking. Bucket boundaries
/// are precomputed at registration time.
class Histogram {
 public:
  /// Records one observation. Never allocates.
  void Record(double v);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/Max of recorded values; 0 when empty.
  double Min() const;
  double Max() const;
  double Mean() const {
    uint64_t n = TotalCount();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }

  /// Bucket i counts values in [LowerBound(i), UpperBound(i)). Bucket 0
  /// is the underflow bucket [0, min); the last is the overflow bucket
  /// [max, +inf).
  size_t NumBuckets() const { return counts_.size(); }
  uint64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  double UpperBound(size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation within
  /// the containing bucket; NotFound when the histogram is empty.
  Result<double> Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramOptions options);

  HistogramOptions options_;
  std::vector<double> bounds_;  ///< Upper bound of each non-overflow bucket.
  /// One atomic per bucket; the vector is sized once at construction
  /// and never resized, so Record never allocates.
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of one instrument (deep copy: mutating the live
/// registry after `Snapshot()` never changes an existing snapshot).
struct CounterSample {
  std::string name;
  LabelSet labels;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  LabelSet labels;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;    ///< Upper bound per bucket.
  std::vector<uint64_t> buckets; ///< Count per bucket.
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  /// Metric name -> HELP text (see MetricsRegistry::SetHelp). Sparse:
  /// only names with registered help appear.
  std::map<std::string, std::string> help;
};

/// Named, labeled instrument registry — the process-wide source of
/// truth every Flower component reports through (§4's live charts are
/// views over it). Registration (GetCounter/GetGauge/GetHistogram)
/// takes a lock and may allocate; it returns a stable pointer the
/// caller caches, after which increments/records are lock-free and
/// allocation-free. Re-registering the same (name, labels) returns the
/// existing instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  /// `options` apply only on first registration of (name, labels).
  Histogram* GetHistogram(const std::string& name, const LabelSet& labels = {},
                          HistogramOptions options = {});

  /// Non-creating lookups: nullptr when the series was never registered.
  /// Unlike Get*, these never mutate the registry, so pollers (rollup
  /// stores, exporters) can probe for not-yet-registered series without
  /// materializing empty instruments.
  const Counter* FindCounter(const std::string& name,
                             const LabelSet& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const LabelSet& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const LabelSet& labels = {}) const;

  /// Caps distinct label-sets per metric name (all kinds combined).
  /// Once a name is at the cap, further label-sets are *not* registered:
  /// the call returns that name's shared overflow instrument (labels
  /// {{"overflow","true"}}), increments the
  /// `registry.label_overflow{metric=<name>}` counter, and logs a
  /// one-shot warning — so a buggy per-entity label (request id, host,
  /// ...) degrades to one coarse series instead of OOMing a fleet run.
  void set_max_label_cardinality(size_t cap) { max_cardinality_ = cap; }
  size_t max_label_cardinality() const { return max_cardinality_; }
  /// Registrations rejected by the cardinality guard so far.
  uint64_t label_overflow_total() const;

  /// HELP text exported with the metric family (OpenMetrics `# HELP`).
  void SetHelp(const std::string& name, std::string help);

  /// Deep copy of every instrument, sorted by (name, labels).
  MetricsSnapshot Snapshot() const;

  size_t NumInstruments() const;

  /// Canonical label form: sorted by key, duplicate keys collapsed with
  /// the last written value winning.
  static LabelSet NormalizeLabels(LabelSet labels);
  /// Series key for normalized labels — equal series, equal keys.
  static std::string SeriesKey(const std::string& name,
                               const LabelSet& labels);

 private:
  template <typename T>
  struct Entry {
    std::string name;
    LabelSet labels;
    std::unique_ptr<T> instrument;
  };

  /// True when (name, norm) may register a new series; on rejection
  /// bumps the overflow counter and warns once per name. mu_ held.
  bool AdmitSeriesLocked(const std::string& name, const LabelSet& norm);
  Counter* GetCounterLocked(const std::string& name, LabelSet norm);
  Gauge* GetGaugeLocked(const std::string& name, LabelSet norm);
  Histogram* GetHistogramLocked(const std::string& name, LabelSet norm,
                                HistogramOptions options);

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
  size_t max_cardinality_ = 1024;
  std::map<std::string, size_t> series_per_name_;
  std::map<std::string, bool> overflow_warned_;
  uint64_t label_overflow_total_ = 0;
};

}  // namespace flower::obs

#endif  // FLOWER_OBS_METRICS_REGISTRY_H_
