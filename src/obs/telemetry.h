#ifndef FLOWER_OBS_TELEMETRY_H_
#define FLOWER_OBS_TELEMETRY_H_

#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "opt/nsga2.h"

namespace flower::obs {

/// Central telemetry hub for one simulated flow: the metrics registry,
/// the control-decision log, and the trace collector, plus the
/// fault-interference scoreboard that lets the ElasticityManager stamp
/// decision records with the faults injected at the same sim time.
///
/// Ownership: the FlowBuilder/tool owns a Telemetry and hands raw
/// pointers to the manager, simulator, and fault injector; the hub must
/// outlive all of them. A manager with no external hub creates its own
/// private one, so instrumentation is never conditional.
class Telemetry {
 public:
  explicit Telemetry(size_t decision_capacity = 65536,
                     size_t trace_capacity = 1 << 20,
                     size_t span_capacity = 1 << 16)
      : decisions_(decision_capacity),
        trace_(trace_capacity),
        spans_(span_capacity) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  DecisionLog& decisions() { return decisions_; }
  const DecisionLog& decisions() const { return decisions_; }
  TraceCollector& trace() { return trace_; }
  const TraceCollector& trace() const { return trace_; }
  /// Causal control spans. Disabled by default (zero-cost no-ops);
  /// enable with spans().set_enabled(true) before the run.
  SpanCollector& spans() { return spans_; }
  const SpanCollector& spans() const { return spans_; }

  /// The kPlan span currently executing, if any — set by the
  /// ElasticityManager around a re-planning pass so coordinator-side
  /// planner observers (MakeNsga2Observer) can parent their
  /// per-generation spans under it. 0 outside a plan.
  void set_active_plan_span(SpanId span) { active_plan_span_ = span; }
  SpanId active_plan_span() const { return active_plan_span_; }

  /// Records that the fault injector interfered with `target` (a layer
  /// name) at sim time `now`. `bits` is 1 << FaultKind.
  void NoteFault(const std::string& target, FaultMask bits, SimTime now);

  /// Faults noted for `target` at exactly sim time `now`; 0 otherwise.
  /// Control steps sense/actuate at the instant they run, so an exact
  /// match is the right correlation window.
  FaultMask FaultMaskAt(const std::string& target, SimTime now) const;

  /// Writes the Chrome trace_event JSON to `path`.
  Status ExportTrace(const std::string& path) const;

  /// Writes the causal spans as Chrome trace JSON (flow events for the
  /// parent/follows arrows) to `path`, reusing the trace collector's
  /// scope and track names.
  Status ExportSpans(const std::string& path) const;

  /// Writes decision records then a metrics snapshot, one JSON object
  /// per line, to `path`. `at` stamps the snapshot lines (sim seconds).
  Status ExportJsonl(const std::string& path, SimTime at) const;

  /// Writes decision records as CSV to `path`.
  Status ExportDecisionsCsv(const std::string& path) const;

 private:
  struct FaultNote {
    SimTime time = -1.0;
    FaultMask mask = 0;
  };

  MetricsRegistry metrics_;
  DecisionLog decisions_;
  TraceCollector trace_;
  SpanCollector spans_;
  SpanId active_plan_span_ = 0;
  std::map<std::string, FaultNote> fault_notes_;
};

/// Adapts NSGA-II per-generation stats into telemetry: gauges for front
/// size / hypervolume / evaluations and one span per generation on the
/// planner track, laid out consecutively from `anchor` (sim seconds)
/// with `slice_sec` synthetic width each (the optimizer runs outside
/// the simulation clock, so generation spans are schematic).
std::function<void(const opt::Nsga2GenerationStats&)> MakeNsga2Observer(
    Telemetry* telemetry, std::string planner_name, SimTime anchor,
    double slice_sec = 0.25);

}  // namespace flower::obs

#endif  // FLOWER_OBS_TELEMETRY_H_
