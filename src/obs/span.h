#ifndef FLOWER_OBS_SPAN_H_
#define FLOWER_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"

namespace flower::obs {

/// Identifier of one causal control span. Ids are assigned sequentially
/// from 1 in record order, so a run is deterministic: the same scenario
/// produces the same ids regardless of wall clock or thread count
/// (spans are only recorded from the simulation/coordinator thread).
/// 0 means "no span".
using SpanId = uint64_t;

/// Stage of the control causal chain a span belongs to. The paper's
/// sense -> decide -> plan -> actuate -> effect pipeline, plus the
/// per-generation planner sub-spans.
enum class SpanKind : uint8_t {
  kSense = 0,    ///< One sensor read; value = measured y.
  kDecide = 1,   ///< One controller step; value = clamped u.
  kPlan = 2,     ///< One NSGA-II (re)planning pass; value = front size.
  kActuate = 3,  ///< One actuation attempt; value = applied amount.
  kEffect = 4,   ///< Settling interval actuation -> next sense;
                 ///< value = the newly observed y (Eq. 7 story).
  kGeneration = 5,  ///< One planner generation (child of kPlan).
  kArbitrate = 6,   ///< One fleet budget arbitration event; value =
                    ///< total USD granted at the boundary.
};

const char* SpanKindToString(SpanKind kind);

/// One recorded span. Durations are virtual-time: start/end are sim
/// seconds, so a kEffect span's length is the settling interval on the
/// simulation clock, not host wall time. `label` is the loop / planner
/// name — short strings stay in SSO storage, so recording does not
/// allocate for typical names.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;   ///< Direct cause (parent/child edge).
  SpanId follows = 0;  ///< Non-parental predecessor (follows-from edge):
                       ///< previous retry attempt, or the plan a
                       ///< decision's bounds came from.
  SpanKind kind = SpanKind::kSense;
  uint8_t outcome = 0;  ///< StepOutcome for decide/actuate spans.
  int pid = 1;          ///< Trace process lane (scope).
  int tid = 0;          ///< Trace thread lane within the scope.
  SimTime start = 0.0;
  SimTime end = 0.0;
  double value = 0.0;
  std::string label;
  bool open = false;  ///< Begun but not yet ended.
};

/// Bounded, preallocated collector of causal spans. Disabled by
/// default: a disabled collector's Begin/End/Emit are no-ops that
/// return SpanId 0 and touch no memory beyond one branch, so leaving
/// span plumbing compiled into the hot control path costs nothing when
/// the feature is off. Enabling reserves the ring once (no steady-state
/// allocation afterwards). When the ring is full the *oldest* spans are
/// evicted — recent causality is what post-mortems query.
///
/// Id allocation is atomic, so concurrent recorders (fleet partitions
/// that share one collector) never mint the same id twice: distinct
/// ids land in distinct ring slots while the ring has room, so
/// concurrent Begin/End calls do not tear each other's records. Slot
/// *eviction* under concurrent writers is still last-writer-wins;
/// fleet runs that need deterministic ids give every flow partition
/// its own collector with a disjoint id namespace via set_id_offset.
class SpanCollector {
 public:
  explicit SpanCollector(size_t capacity = 1 << 16);
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Enabling allocates the ring on first use; disabling keeps already
  /// recorded spans readable but stops recording new ones.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Moves this collector's id namespace to (offset, offset + 2^40]:
  /// the first recorded span gets id offset + 1. Per-flow collectors in
  /// a fleet run use deterministic disjoint offsets (partition index ×
  /// kIdStride) so ids stay unique — and reproducible — fleet-wide
  /// without any cross-partition coordination. Must be called before
  /// the first span is recorded.
  Status set_id_offset(SpanId offset);
  SpanId id_offset() const { return id_offset_; }
  /// Id-namespace stride between sibling collectors (2^40 spans each).
  static constexpr SpanId kIdStride = SpanId{1} << 40;

  /// Opens a span. Returns its id, or 0 when disabled.
  SpanId Begin(SpanKind kind, std::string_view label, SimTime start,
               int pid, int tid, SpanId parent = 0, SpanId follows = 0);
  /// Closes an open span. No-op if `id` is 0, evicted, or disabled-time.
  void End(SpanId id, SimTime end, double value = 0.0, uint8_t outcome = 0);
  /// Begin+End in one call for spans whose duration is known up front.
  SpanId Emit(SpanKind kind, std::string_view label, SimTime start,
              double dur_sec, int pid, int tid, SpanId parent = 0,
              SpanId follows = 0, double value = 0.0, uint8_t outcome = 0);

  /// Retained record for `id`, or nullptr if never recorded / evicted.
  const SpanRecord* Find(SpanId id) const;

  /// Oldest retained id (0 when empty) and one-past-newest id.
  SpanId first_retained() const;
  SpanId end_id() const { return next_id_.load(std::memory_order_relaxed); }

  size_t size() const;                ///< Retained span count.
  uint64_t total_started() const {
    uint64_t started = next_id_.load(std::memory_order_relaxed) - id_offset_ - 1;
    return started <= kIdStride ? started : kIdStride;
  }
  uint64_t evicted() const;
  size_t capacity() const { return capacity_; }

  /// Spans dropped because this collector exhausted its id namespace
  /// (total_started() reached kIdStride). Exhausted collectors return
  /// SpanId 0 from Begin/Emit instead of bleeding into the next
  /// sibling's (offset + kIdStride, ...] namespace; the first drop logs
  /// a one-shot warning.
  uint64_t id_overflows() const {
    return id_overflows_.load(std::memory_order_relaxed);
  }

  /// Test seam: burns `n` ids as if that many spans had been started,
  /// without touching the ring. Exercises namespace exhaustion without
  /// recording 2^40 spans.
  void AdvanceIdsForTest(uint64_t n) {
    next_id_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  SpanRecord* Slot(SpanId id) {
    return &ring_[(id - id_offset_ - 1) % capacity_];
  }

  bool enabled_ = false;
  size_t capacity_;
  SpanId id_offset_ = 0;
  /// Atomic so concurrent recorders never allocate one id twice (the
  /// pre-fleet plain increment dropped/collided ids under TSan).
  std::atomic<SpanId> next_id_{1};
  std::atomic<uint64_t> id_overflows_{0};
  std::vector<SpanRecord> ring_;  ///< Sized to capacity_ on first enable.
};

/// Post-run query index over a SpanCollector: resolves the causal chain
/// of a controller decision (its sensed-metric parents, actuation
/// children, observed effects, and the plan run its bounds came from).
/// Build once after the run; O(retained · log) construction, queries
/// are binary searches over sorted edge lists.
class SpanIndex {
 public:
  explicit SpanIndex(const SpanCollector& spans);

  const SpanRecord* Get(SpanId id) const { return spans_.Find(id); }
  /// Spans whose `parent` is `id`, ascending id order.
  std::vector<const SpanRecord*> ChildrenOf(SpanId id) const;
  /// Spans whose `follows` is `id`, ascending id order.
  std::vector<const SpanRecord*> FollowersOf(SpanId id) const;

  /// Everything causally attached to one kDecide span.
  struct CausalChain {
    const SpanRecord* decision = nullptr;
    std::vector<const SpanRecord*> senses;      ///< Parent chain (kSense).
    std::vector<const SpanRecord*> plans;       ///< follows-from (kPlan).
    std::vector<const SpanRecord*> actuations;  ///< Descendants (kActuate).
    std::vector<const SpanRecord*> effects;     ///< Observed settling
                                                ///< (kEffect) spans.
  };

  /// Resolves the full chain of `decision_id`. InvalidArgument when the
  /// id is not a kDecide span; NotFound when it was evicted/never
  /// recorded.
  Result<CausalChain> EffectOf(SpanId decision_id) const;

 private:
  const SpanCollector& spans_;
  /// (from, to) edges sorted by `from` then `to`.
  std::vector<std::pair<SpanId, SpanId>> children_;
  std::vector<std::pair<SpanId, SpanId>> followers_;
};

}  // namespace flower::obs

#endif  // FLOWER_OBS_SPAN_H_
