#include "obs/event_log.h"

namespace flower::obs {

const char* StepOutcomeToString(StepOutcome outcome) {
  switch (outcome) {
    case StepOutcome::kActuated: return "actuated";
    case StepOutcome::kSensorMiss: return "sensor-miss";
    case StepOutcome::kControllerError: return "controller-error";
    case StepOutcome::kBreakerOpen: return "breaker-open";
    case StepOutcome::kActuationFailed: return "actuation-failed";
  }
  return "unknown";
}

DecisionLog::DecisionLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

void DecisionLog::Append(ControlDecisionRecord record) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
}

std::vector<ControlDecisionRecord> DecisionLog::Snapshot() const {
  std::vector<ControlDecisionRecord> out;
  out.reserve(ring_.size());
  // Once full, head_ points at the oldest record.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace flower::obs
