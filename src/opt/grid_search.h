#ifndef FLOWER_OPT_GRID_SEARCH_H_
#define FLOWER_OPT_GRID_SEARCH_H_

#include <vector>

#include "common/result.h"
#include "opt/problem.h"

namespace flower::opt {

/// Exhaustively enumerates an all-integer decision space and returns the
/// exact feasible Pareto front.
///
/// This is the test oracle for NSGA-II on small provisioning problems
/// (the paper's Fig. 4 space is a few thousand points) and the baseline
/// "brute force" planner in the resource-share ablation bench. Errors:
/// non-integer variables, or a grid larger than `max_points`.
Result<std::vector<Solution>> ExhaustiveParetoFront(
    const Problem& problem, uint64_t max_points = 50'000'000);

}  // namespace flower::opt

#endif  // FLOWER_OPT_GRID_SEARCH_H_
