#include "opt/nsga2.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/sub_rng.h"
#include "exec/thread_pool.h"
#include "opt/pareto.h"

namespace flower::opt {

namespace internal {

bool CrowdedLess(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

size_t BinaryTournamentIndex(const std::vector<Individual>& pop, Rng* rng) {
  size_t n = pop.size();
  size_t a = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  if (n < 2) return a;
  // Draw without replacement: a == b would degrade the slot to a single
  // random pick with no selection pressure at all.
  size_t b = a;
  while (b == a) {
    b = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  return CrowdedLess(pop[a], pop[b]) ? a : b;
}

std::vector<std::vector<size_t>> FastNonDominatedSort(
    std::vector<Individual>* pop) {
  size_t n = pop->size();
  std::vector<std::vector<size_t>> dominated(n);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<size_t>> fronts;
  std::vector<size_t> first;
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (ConstrainedDominates((*pop)[p].sol, (*pop)[q].sol)) {
        dominated[p].push_back(q);
      } else if (ConstrainedDominates((*pop)[q].sol, (*pop)[p].sol)) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) {
      (*pop)[p].rank = 0;
      first.push_back(p);
    }
  }
  fronts.push_back(std::move(first));
  size_t i = 0;
  while (i < fronts.size() && !fronts[i].empty()) {
    std::vector<size_t> next;
    for (size_t p : fronts[i]) {
      for (size_t q : dominated[p]) {
        if (--domination_count[q] == 0) {
          (*pop)[q].rank = static_cast<int>(i) + 1;
          next.push_back(q);
        }
      }
    }
    if (next.empty()) break;
    fronts.push_back(std::move(next));
    ++i;
  }
  return fronts;
}

void AssignCrowdingDistance(const std::vector<size_t>& front,
                            std::vector<Individual>* pop) {
  if (front.empty()) return;
  for (size_t idx : front) (*pop)[idx].crowding = 0.0;
  size_t m = (*pop)[front[0]].sol.objectives.size();
  size_t l = front.size();
  if (l <= 2) {
    for (size_t idx : front) {
      (*pop)[idx].crowding = std::numeric_limits<double>::infinity();
    }
    return;
  }
  std::vector<size_t> order(front);
  for (size_t obj = 0; obj < m; ++obj) {
    // Ties broken by index so the boundary choice (and hence the
    // infinities) is stable across platforms and thread counts.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      double oa = (*pop)[a].sol.objectives[obj];
      double ob = (*pop)[b].sol.objectives[obj];
      if (oa != ob) return oa < ob;
      return a < b;
    });
    double lo = (*pop)[order.front()].sol.objectives[obj];
    double hi = (*pop)[order.back()].sol.objectives[obj];
    (*pop)[order.front()].crowding = std::numeric_limits<double>::infinity();
    (*pop)[order.back()].crowding = std::numeric_limits<double>::infinity();
    double span = hi - lo;
    // Degenerate range guard: a front where every individual shares one
    // objective value (span == 0), or a non-finite span, would divide
    // into NaN/Inf crowding and poison the crowded-comparison sort.
    if (!std::isfinite(span) || span <= 0.0) continue;
    for (size_t i = 1; i + 1 < l; ++i) {
      double gap = (*pop)[order[i + 1]].sol.objectives[obj] -
                   (*pop)[order[i - 1]].sol.objectives[obj];
      (*pop)[order[i]].crowding += gap / span;
    }
  }
}

}  // namespace internal

namespace {

using internal::Individual;

void Repair(const std::vector<VariableSpec>& specs, std::vector<double>* x) {
  for (size_t i = 0; i < specs.size(); ++i) {
    (*x)[i] = std::clamp((*x)[i], specs[i].lower, specs[i].upper);
    if (specs[i].integer) {
      (*x)[i] = std::clamp(std::round((*x)[i]), specs[i].lower,
                           specs[i].upper);
    }
  }
}

Solution Evaluate(const Problem& problem, std::vector<double> x) {
  Repair(problem.variables(), &x);
  Solution s;
  s.x = std::move(x);
  std::vector<double> violations;
  problem.Evaluate(s.x, &s.objectives, &violations);
  s.total_violation = 0.0;
  for (double v : violations) s.total_violation += std::max(0.0, v);
  return s;
}

// Simulated binary crossover (SBX) on one gene pair.
void SbxGene(double eta, double lo, double hi, Rng* rng, double* a,
             double* b) {
  if (std::fabs(*a - *b) < 1e-14) return;
  double y1 = std::min(*a, *b), y2 = std::max(*a, *b);
  double u = rng->Uniform();
  auto spread = [&](double beta) {
    double alpha = 2.0 - std::pow(beta, -(eta + 1.0));
    if (u <= 1.0 / alpha) {
      return std::pow(u * alpha, 1.0 / (eta + 1.0));
    }
    return std::pow(1.0 / (2.0 - u * alpha), 1.0 / (eta + 1.0));
  };
  double beta1 = 1.0 + 2.0 * (y1 - lo) / (y2 - y1);
  double beta2 = 1.0 + 2.0 * (hi - y2) / (y2 - y1);
  double c1 = 0.5 * ((y1 + y2) - spread(beta1) * (y2 - y1));
  double c2 = 0.5 * ((y1 + y2) + spread(beta2) * (y2 - y1));
  c1 = std::clamp(c1, lo, hi);
  c2 = std::clamp(c2, lo, hi);
  if (rng->Bernoulli(0.5)) std::swap(c1, c2);
  *a = c1;
  *b = c2;
}

// Polynomial mutation on one gene.
void PolyMutateGene(double eta, double lo, double hi, Rng* rng, double* x) {
  double span = hi - lo;
  if (span <= 0.0) return;
  double u = rng->Uniform();
  double delta;
  double rel1 = (*x - lo) / span;
  double rel2 = (hi - *x) / span;
  if (u < 0.5) {
    double val = 2.0 * u + (1.0 - 2.0 * u) * std::pow(1.0 - rel1, eta + 1.0);
    delta = std::pow(val, 1.0 / (eta + 1.0)) - 1.0;
  } else {
    double val = 2.0 * (1.0 - u) +
                 2.0 * (u - 0.5) * std::pow(1.0 - rel2, eta + 1.0);
    delta = 1.0 - std::pow(val, 1.0 / (eta + 1.0));
  }
  *x = std::clamp(*x + delta * span, lo, hi);
}

}  // namespace

Result<Nsga2Result> Nsga2::Solve(const Problem& problem) const {
  if (config_.population_size < 4 || config_.population_size % 2 != 0) {
    return Status::InvalidArgument(
        "Nsga2: population_size must be even and >= 4");
  }
  if (config_.generations == 0) {
    return Status::InvalidArgument("Nsga2: generations must be >= 1");
  }
  const auto& specs = problem.variables();
  if (specs.empty() || problem.num_objectives() == 0) {
    return Status::InvalidArgument(
        "Nsga2: problem needs variables and objectives");
  }
  for (const auto& v : specs) {
    if (!(v.lower <= v.upper)) {
      return Status::InvalidArgument("Nsga2: variable '" + v.name +
                                     "' has inverted bounds");
    }
  }
  double mut_prob = config_.mutation_prob >= 0.0
                        ? config_.mutation_prob
                        : 1.0 / static_cast<double>(specs.size());

  size_t n = config_.population_size;
  Nsga2Result result;

  // Determinism contract: every parallel task draws only from its own
  // (seed, stream, index) sub-generator — stream 0 seeds the initial
  // population per individual, stream g+1 seeds generation g per
  // offspring pair — and all selection/reduction runs on this thread.
  // The Pareto front is therefore bit-identical at any thread count.
  exec::ThreadPool pool(config_.num_threads);
  auto grain_for = [&](size_t items) {
    return std::max<size_t>(1, items / (4 * pool.num_threads()));
  };

  // Initial random population.
  std::vector<Individual> pop(n);
  FLOWER_RETURN_NOT_OK(pool.ParallelFor(
      0, n, grain_for(n), [&](size_t i) -> Status {
        Rng rng = exec::SubRng(config_.seed, 0, i);
        std::vector<double> x(specs.size());
        for (size_t j = 0; j < specs.size(); ++j) {
          x[j] = rng.Uniform(specs[j].lower, specs[j].upper);
        }
        pop[i].sol = Evaluate(problem, std::move(x));
        return Status::OK();
      }));
  result.evaluations += n;
  {
    auto fronts = internal::FastNonDominatedSort(&pop);
    for (const auto& f : fronts) internal::AssignCrowdingDistance(f, &pop);
  }

  // Hypervolume reference: the nadir of the initial population, nudged
  // down so the worst initial point still contributes area. Only 2-
  // objective problems get a hypervolume (the 2D sweep is exact).
  const bool track_hv = problem.num_objectives() == 2;
  double nadir[2] = {0.0, 0.0};
  if (track_hv) {
    for (size_t j = 0; j < 2; ++j) {
      double lo = std::numeric_limits<double>::infinity();
      for (const Individual& ind : pop) {
        lo = std::min(lo, ind.sol.objectives[j]);
      }
      nadir[j] = lo - 1e-9 * (1.0 + std::fabs(lo));
    }
  }

  size_t pairs = n / 2;
  for (size_t gen = 0; gen < config_.generations; ++gen) {
    // Offspring generation: tournament, crossover, mutation, and
    // evaluation fan out per pair; `pop` is read-only in the sweep and
    // each task writes only its two offspring slots.
    std::vector<Individual> offspring(n);
    FLOWER_RETURN_NOT_OK(pool.ParallelFor(
        0, pairs, grain_for(pairs), [&](size_t p) -> Status {
          Rng rng = exec::SubRng(config_.seed, gen + 1, p);
          std::vector<double> c1 =
              pop[internal::BinaryTournamentIndex(pop, &rng)].sol.x;
          std::vector<double> c2 =
              pop[internal::BinaryTournamentIndex(pop, &rng)].sol.x;
          if (rng.Bernoulli(config_.crossover_prob)) {
            for (size_t j = 0; j < specs.size(); ++j) {
              if (rng.Bernoulli(0.5)) {
                SbxGene(config_.eta_crossover, specs[j].lower,
                        specs[j].upper, &rng, &c1[j], &c2[j]);
              }
            }
          }
          for (auto* child : {&c1, &c2}) {
            for (size_t j = 0; j < specs.size(); ++j) {
              if (rng.Bernoulli(mut_prob)) {
                PolyMutateGene(config_.eta_mutation, specs[j].lower,
                               specs[j].upper, &rng, &(*child)[j]);
              }
            }
          }
          offspring[2 * p].sol = Evaluate(problem, std::move(c1));
          offspring[2 * p + 1].sol = Evaluate(problem, std::move(c2));
          return Status::OK();
        }));
    result.evaluations += n;

    // Environmental selection over parents + offspring.
    std::vector<Individual> merged;
    merged.reserve(pop.size() + offspring.size());
    for (auto& i : pop) merged.push_back(std::move(i));
    for (auto& i : offspring) merged.push_back(std::move(i));
    auto fronts = internal::FastNonDominatedSort(&merged);
    for (const auto& f : fronts) {
      internal::AssignCrowdingDistance(f, &merged);
    }
    std::vector<Individual> next;
    next.reserve(n);
    for (const auto& front : fronts) {
      if (next.size() + front.size() <= n) {
        for (size_t idx : front) next.push_back(std::move(merged[idx]));
      } else {
        std::vector<size_t> sorted(front);
        std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
          if (merged[a].crowding != merged[b].crowding) {
            return merged[a].crowding > merged[b].crowding;
          }
          return a < b;  // Stable truncation under crowding ties.
        });
        for (size_t idx : sorted) {
          if (next.size() >= n) break;
          next.push_back(std::move(merged[idx]));
        }
      }
      if (next.size() >= n) break;
    }
    pop = std::move(next);

    // Telemetry stays on the coordinator thread: the observer runs once
    // per generation, after the parallel section has joined.
    if (config_.on_generation) {
      Nsga2GenerationStats stats;
      stats.generation = gen;
      stats.evaluations = result.evaluations;
      std::vector<std::vector<double>> front_objs;
      for (const Individual& ind : pop) {
        if (ind.rank != 0) continue;
        ++stats.front_size;
        if (ind.sol.feasible()) front_objs.push_back(ind.sol.objectives);
      }
      if (track_hv) {
        stats.hypervolume = Hypervolume2D(front_objs, nadir[0], nadir[1]);
      }
      config_.on_generation(stats);
    }
  }

  for (const Individual& ind : pop) {
    result.final_population.push_back(ind.sol);
  }
  result.pareto_front = ParetoFront(result.final_population);
  return result;
}

}  // namespace flower::opt
