#include "opt/nsga2.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "exec/sub_rng.h"
#include "exec/thread_pool.h"
#include "opt/pareto.h"

namespace flower::opt {

namespace internal {

void SortWorkspace::Reserve(size_t n) {
  size_t words = (n + 63) / 64;
  dominates.reserve(n * words);
  domination_count.reserve(n);
  front_data.reserve(n);
  front_offsets.reserve(n + 1);
  order.reserve(n);
  truncate.reserve(n);
  selected.reserve(n);
  perm.reserve(n);
  visited.reserve(n);
}

bool CrowdedLess(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

size_t BinaryTournamentIndex(const Individual* pop, size_t n, Rng* rng) {
  size_t a = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  if (n < 2) return a;
  // Draw without replacement: a == b would degrade the slot to a single
  // random pick with no selection pressure at all.
  size_t b = a;
  while (b == a) {
    b = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  return CrowdedLess(pop[a], pop[b]) ? a : b;
}

void FastNonDominatedSort(Individual* pop, size_t n, SortWorkspace* ws) {
  size_t words = (n + 63) / 64;
  ws->words_per_row = words;
  ws->dominates.assign(n * words, 0);
  ws->domination_count.assign(n, 0);
  ws->front_data.clear();
  ws->front_offsets.clear();
  ws->front_offsets.push_back(0);
  if (n == 0) return;
  uint64_t* bits = ws->dominates.data();
  int* cnt = ws->domination_count.data();
  // Constrained domination is antisymmetric, so each unordered pair
  // needs at most two comparisons; the bit row of p lists everything p
  // dominates (ascending when scanned word-by-word, matching the
  // dominated-list order of the textbook formulation).
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = p + 1; q < n; ++q) {
      if (ConstrainedDominates(pop[p].sol, pop[q].sol)) {
        bits[p * words + q / 64] |= uint64_t{1} << (q % 64);
        ++cnt[q];
      } else if (ConstrainedDominates(pop[q].sol, pop[p].sol)) {
        bits[q * words + p / 64] |= uint64_t{1} << (p % 64);
        ++cnt[p];
      }
    }
  }
  for (size_t p = 0; p < n; ++p) {
    if (cnt[p] == 0) {
      pop[p].rank = 0;
      ws->front_data.push_back(p);
    }
  }
  ws->front_offsets.push_back(ws->front_data.size());
  size_t begin = 0;
  size_t end = ws->front_data.size();
  int rank = 0;
  while (begin < end) {
    for (size_t k = begin; k < end; ++k) {
      const uint64_t* row = bits + ws->front_data[k] * words;
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = row[w];
        while (word != 0) {
          size_t q = w * 64 + static_cast<size_t>(std::countr_zero(word));
          word &= word - 1;
          if (--cnt[q] == 0) {
            pop[q].rank = rank + 1;
            ws->front_data.push_back(q);
          }
        }
      }
    }
    begin = end;
    end = ws->front_data.size();
    ++rank;
    if (end > begin) ws->front_offsets.push_back(end);
  }
}

std::vector<std::vector<size_t>> FastNonDominatedSort(
    std::vector<Individual>* pop) {
  SortWorkspace ws;
  ws.Reserve(pop->size());
  FastNonDominatedSort(pop->data(), pop->size(), &ws);
  std::vector<std::vector<size_t>> fronts;
  for (size_t i = 0; i < ws.num_fronts(); ++i) {
    fronts.emplace_back(ws.front_begin(i), ws.front_begin(i) + ws.front_size(i));
  }
  if (fronts.empty()) fronts.emplace_back();
  return fronts;
}

void AssignCrowdingDistance(const size_t* front, size_t front_len,
                            Individual* pop,
                            std::vector<size_t>* order_scratch) {
  if (front_len == 0) return;
  for (size_t k = 0; k < front_len; ++k) pop[front[k]].crowding = 0.0;
  size_t m = pop[front[0]].sol.objectives.size();
  if (front_len <= 2) {
    for (size_t k = 0; k < front_len; ++k) {
      pop[front[k]].crowding = std::numeric_limits<double>::infinity();
    }
    return;
  }
  order_scratch->assign(front, front + front_len);
  auto& order = *order_scratch;
  for (size_t obj = 0; obj < m; ++obj) {
    // Ties broken by index so the boundary choice (and hence the
    // infinities) is stable across platforms and thread counts.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      double oa = pop[a].sol.objectives[obj];
      double ob = pop[b].sol.objectives[obj];
      if (oa != ob) return oa < ob;
      return a < b;
    });
    double lo = pop[order.front()].sol.objectives[obj];
    double hi = pop[order.back()].sol.objectives[obj];
    pop[order.front()].crowding = std::numeric_limits<double>::infinity();
    pop[order.back()].crowding = std::numeric_limits<double>::infinity();
    double span = hi - lo;
    // Degenerate range guard: a front where every individual shares one
    // objective value (span == 0), or a non-finite span, would divide
    // into NaN/Inf crowding and poison the crowded-comparison sort.
    if (!std::isfinite(span) || span <= 0.0) continue;
    for (size_t i = 1; i + 1 < front_len; ++i) {
      double gap = pop[order[i + 1]].sol.objectives[obj] -
                   pop[order[i - 1]].sol.objectives[obj];
      pop[order[i]].crowding += gap / span;
    }
  }
}

void AssignCrowdingDistance(const std::vector<size_t>& front,
                            std::vector<Individual>* pop) {
  std::vector<size_t> scratch;
  AssignCrowdingDistance(front.data(), front.size(), pop->data(), &scratch);
}

}  // namespace internal

namespace {

using internal::Individual;

void Repair(const std::vector<VariableSpec>& specs, std::vector<double>* x) {
  for (size_t i = 0; i < specs.size(); ++i) {
    (*x)[i] = std::clamp((*x)[i], specs[i].lower, specs[i].upper);
    if (specs[i].integer) {
      (*x)[i] = std::clamp(std::round((*x)[i]), specs[i].lower,
                           specs[i].upper);
    }
  }
}

// Repairs and evaluates sol->x in place, reusing the solution's
// objective buffer and a per-thread violation scratch so the
// steady-state loop stays allocation-free (Problem implementations see
// cleared vectors, exactly as if freshly constructed).
void EvaluateInPlace(const Problem& problem, Solution* sol) {
  Repair(problem.variables(), &sol->x);
  thread_local std::vector<double> violations;
  violations.clear();
  sol->objectives.clear();
  problem.Evaluate(sol->x, &sol->objectives, &violations);
  double total = 0.0;
  for (double v : violations) total += std::max(0.0, v);
  sol->total_violation = total;
}

// Simulated binary crossover (SBX) on one gene pair.
void SbxGene(double eta, double lo, double hi, Rng* rng, double* a,
             double* b) {
  if (std::fabs(*a - *b) < 1e-14) return;
  double y1 = std::min(*a, *b), y2 = std::max(*a, *b);
  double u = rng->Uniform();
  auto spread = [&](double beta) {
    double alpha = 2.0 - std::pow(beta, -(eta + 1.0));
    if (u <= 1.0 / alpha) {
      return std::pow(u * alpha, 1.0 / (eta + 1.0));
    }
    return std::pow(1.0 / (2.0 - u * alpha), 1.0 / (eta + 1.0));
  };
  double beta1 = 1.0 + 2.0 * (y1 - lo) / (y2 - y1);
  double beta2 = 1.0 + 2.0 * (hi - y2) / (y2 - y1);
  double c1 = 0.5 * ((y1 + y2) - spread(beta1) * (y2 - y1));
  double c2 = 0.5 * ((y1 + y2) + spread(beta2) * (y2 - y1));
  c1 = std::clamp(c1, lo, hi);
  c2 = std::clamp(c2, lo, hi);
  if (rng->Bernoulli(0.5)) std::swap(c1, c2);
  *a = c1;
  *b = c2;
}

// Polynomial mutation on one gene.
void PolyMutateGene(double eta, double lo, double hi, Rng* rng, double* x) {
  double span = hi - lo;
  if (span <= 0.0) return;
  double u = rng->Uniform();
  double delta;
  double rel1 = (*x - lo) / span;
  double rel2 = (hi - *x) / span;
  if (u < 0.5) {
    double val = 2.0 * u + (1.0 - 2.0 * u) * std::pow(1.0 - rel1, eta + 1.0);
    delta = std::pow(val, 1.0 / (eta + 1.0)) - 1.0;
  } else {
    double val = 2.0 * (1.0 - u) +
                 2.0 * (u - 0.5) * std::pow(1.0 - rel2, eta + 1.0);
    delta = 1.0 - std::pow(val, 1.0 / (eta + 1.0));
  }
  *x = std::clamp(*x + delta * span, lo, hi);
}

// Applies the dest <- src gather `perm` to arena in place, one move per
// element, following permutation cycles. `done` is caller scratch.
void ApplyGather(std::vector<Individual>* arena,
                 const std::vector<size_t>& perm, std::vector<char>* done) {
  size_t total = arena->size();
  done->assign(total, 0);
  for (size_t start = 0; start < total; ++start) {
    if ((*done)[start] || perm[start] == start) {
      (*done)[start] = 1;
      continue;
    }
    Individual tmp = std::move((*arena)[start]);
    size_t d = start;
    while (true) {
      size_t src = perm[d];
      (*done)[d] = 1;
      if (src == start) {
        (*arena)[d] = std::move(tmp);
        break;
      }
      (*arena)[d] = std::move((*arena)[src]);
      d = src;
    }
  }
}

}  // namespace

Result<Nsga2Result> Nsga2::Solve(const Problem& problem) const {
  if (config_.population_size < 4 || config_.population_size % 2 != 0) {
    return Status::InvalidArgument(
        "Nsga2: population_size must be even and >= 4");
  }
  if (config_.generations == 0) {
    return Status::InvalidArgument("Nsga2: generations must be >= 1");
  }
  const auto& specs = problem.variables();
  if (specs.empty() || problem.num_objectives() == 0) {
    return Status::InvalidArgument(
        "Nsga2: problem needs variables and objectives");
  }
  for (const auto& v : specs) {
    if (!(v.lower <= v.upper)) {
      return Status::InvalidArgument("Nsga2: variable '" + v.name +
                                     "' has inverted bounds");
    }
  }
  for (const auto& seed_x : config_.seed_population) {
    if (seed_x.size() != specs.size()) {
      return Status::InvalidArgument(
          "Nsga2: seed_population entry has " +
          std::to_string(seed_x.size()) + " variables, problem has " +
          std::to_string(specs.size()));
    }
  }
  double mut_prob = config_.mutation_prob >= 0.0
                        ? config_.mutation_prob
                        : 1.0 / static_cast<double>(specs.size());

  const size_t n = config_.population_size;
  const size_t num_obj = problem.num_objectives();
  Nsga2Result result;

  // Determinism contract: every parallel task draws only from its own
  // (seed, stream, index) sub-generator — stream 0 seeds the initial
  // population per individual, stream g+1 seeds generation g per
  // offspring pair — and all selection/reduction runs on this thread.
  // The Pareto front is therefore bit-identical at any thread count.
  exec::ThreadPool pool(config_.num_threads);
  auto grain_for = [&](size_t items) {
    return std::max<size_t>(1, items / (4 * pool.num_threads()));
  };

  // Persistent parent+offspring arena: parents live in [0, n), each
  // generation's offspring are written into [n, 2n), and environmental
  // selection permutes the arena instead of copying individuals. All
  // sort/crowding/selection scratch lives in `ws`; after the first
  // generation warms the buffers the loop allocates nothing.
  std::vector<Individual> arena(2 * n);
  internal::SortWorkspace ws;
  ws.Reserve(2 * n);

  // Initial population: seeded slots first (repaired to bounds by
  // EvaluateInPlace), then random fill from the same per-index streams
  // as a cold start so warm starts stay thread-count-invariant.
  const size_t num_seeds = std::min(config_.seed_population.size(), n);
  std::function<Status(size_t)> init_body = [&](size_t i) -> Status {
    Solution& sol = arena[i].sol;
    if (i < num_seeds) {
      sol.x = config_.seed_population[i];
    } else {
      Rng rng = exec::SubRng(config_.seed, 0, i);
      sol.x.resize(specs.size());
      for (size_t j = 0; j < specs.size(); ++j) {
        sol.x[j] = rng.Uniform(specs[j].lower, specs[j].upper);
      }
    }
    EvaluateInPlace(problem, &sol);
    return Status::OK();
  };
  FLOWER_RETURN_NOT_OK(pool.ParallelFor(0, n, grain_for(n), init_body));
  result.evaluations += n;
  internal::FastNonDominatedSort(arena.data(), n, &ws);
  for (size_t fi = 0; fi < ws.num_fronts(); ++fi) {
    internal::AssignCrowdingDistance(ws.front_begin(fi), ws.front_size(fi),
                                     arena.data(), &ws.order);
  }

  // Hypervolume reference: the nadir of the initial population, nudged
  // down so the worst initial point still contributes area. Only 2-
  // objective problems get a hypervolume in the generation stats (the
  // 2D sweep is exact); the convergence early-exit additionally uses an
  // exact 3D hypervolume for 3-objective problems, and a front-change
  // test otherwise.
  const bool stall_on = config_.stall_generations > 0;
  const bool track_hv = num_obj == 2;
  const bool track_hv3 = stall_on && num_obj == 3;
  const bool track_signature = stall_on && !track_hv && !track_hv3;
  double nadir[3] = {0.0, 0.0, 0.0};
  if (track_hv || track_hv3) {
    size_t dims = track_hv ? 2 : 3;
    for (size_t j = 0; j < dims; ++j) {
      double lo = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        lo = std::min(lo, arena[i].sol.objectives[j]);
      }
      nadir[j] = lo - 1e-9 * (1.0 + std::fabs(lo));
    }
  }

  // Pre-sized indicator scratch (the front holds at most n members).
  std::vector<std::pair<double, double>> hv_pairs;
  std::vector<std::array<double, 3>> hv_triples;
  std::vector<std::pair<double, double>> hv3_xy;
  std::vector<double> front_sig, prev_sig;
  if (track_hv) hv_pairs.reserve(n);
  if (track_hv3) {
    hv_triples.reserve(n);
    hv3_xy.reserve(n);
  }
  if (track_signature) {
    front_sig.reserve(n * num_obj);
    prev_sig.reserve(n * num_obj);
  }

  const size_t pairs = n / 2;
  const Individual* parents = arena.data();
  size_t cur_gen = 0;
  // Offspring generation: tournament, crossover, mutation, and
  // evaluation fan out per pair; parents are read-only in the sweep and
  // each task writes only its two offspring slots. The body is hoisted
  // out of the loop so the per-generation dispatch reuses one
  // std::function (no per-generation closure allocation).
  std::function<Status(size_t)> offspring_body = [&](size_t p) -> Status {
    Rng rng = exec::SubRng(config_.seed, cur_gen + 1, p);
    std::vector<double>& c1 = arena[n + 2 * p].sol.x;
    std::vector<double>& c2 = arena[n + 2 * p + 1].sol.x;
    c1 = parents[internal::BinaryTournamentIndex(parents, n, &rng)].sol.x;
    c2 = parents[internal::BinaryTournamentIndex(parents, n, &rng)].sol.x;
    if (rng.Bernoulli(config_.crossover_prob)) {
      for (size_t j = 0; j < specs.size(); ++j) {
        if (rng.Bernoulli(0.5)) {
          SbxGene(config_.eta_crossover, specs[j].lower, specs[j].upper,
                  &rng, &c1[j], &c2[j]);
        }
      }
    }
    for (auto* child : {&c1, &c2}) {
      for (size_t j = 0; j < specs.size(); ++j) {
        if (rng.Bernoulli(mut_prob)) {
          PolyMutateGene(config_.eta_mutation, specs[j].lower,
                         specs[j].upper, &rng, &(*child)[j]);
        }
      }
    }
    EvaluateInPlace(problem, &arena[n + 2 * p].sol);
    EvaluateInPlace(problem, &arena[n + 2 * p + 1].sol);
    return Status::OK();
  };

  size_t stall_count = 0;
  double best_indicator = 0.0;
  bool have_indicator = false;
  for (size_t gen = 0; gen < config_.generations; ++gen) {
    cur_gen = gen;
    FLOWER_RETURN_NOT_OK(
        pool.ParallelFor(0, pairs, grain_for(pairs), offspring_body));
    result.evaluations += n;

    // Environmental selection over parents + offspring: rank and crowd
    // all 2n arena slots, pick survivor *indices* front by front
    // (crowding-distance truncation on the overflow front), then gather
    // survivors into [0, n) with one move per displaced individual.
    internal::FastNonDominatedSort(arena.data(), 2 * n, &ws);
    for (size_t fi = 0; fi < ws.num_fronts(); ++fi) {
      internal::AssignCrowdingDistance(ws.front_begin(fi), ws.front_size(fi),
                                       arena.data(), &ws.order);
    }
    ws.selected.clear();
    for (size_t fi = 0; fi < ws.num_fronts(); ++fi) {
      const size_t* front = ws.front_begin(fi);
      size_t front_len = ws.front_size(fi);
      if (ws.selected.size() + front_len <= n) {
        ws.selected.insert(ws.selected.end(), front, front + front_len);
      } else {
        ws.truncate.assign(front, front + front_len);
        std::sort(ws.truncate.begin(), ws.truncate.end(),
                  [&](size_t a, size_t b) {
                    if (arena[a].crowding != arena[b].crowding) {
                      return arena[a].crowding > arena[b].crowding;
                    }
                    return a < b;  // Stable truncation under crowding ties.
                  });
        for (size_t idx : ws.truncate) {
          if (ws.selected.size() >= n) break;
          ws.selected.push_back(idx);
        }
      }
      if (ws.selected.size() >= n) break;
    }
    // Gather permutation: dest k < n reads selected[k]; dests [n, 2n)
    // absorb the unselected slots in ascending order.
    ws.visited.assign(2 * n, 0);
    for (size_t k = 0; k < n; ++k) ws.visited[ws.selected[k]] = 1;
    ws.perm.assign(2 * n, 0);
    for (size_t k = 0; k < n; ++k) ws.perm[k] = ws.selected[k];
    size_t spill = n;
    for (size_t src = 0; src < 2 * n; ++src) {
      if (!ws.visited[src]) ws.perm[spill++] = src;
    }
    ApplyGather(&arena, ws.perm, &ws.visited);

    // Generation stats and the convergence indicator both come from one
    // coordinator-side scan of the new parent population, so the
    // early-exit decision is deterministic and thread-count-invariant.
    Nsga2GenerationStats stats;
    stats.generation = gen;
    stats.evaluations = result.evaluations;
    bool early = false;
    if (config_.on_generation || stall_on) {
      hv_pairs.clear();
      hv_triples.clear();
      front_sig.clear();
      for (size_t i = 0; i < n; ++i) {
        const Individual& ind = arena[i];
        if (ind.rank != 0) continue;
        ++stats.front_size;
        if (!ind.sol.feasible()) continue;
        const std::vector<double>& obj = ind.sol.objectives;
        if (track_hv) {
          hv_pairs.emplace_back(obj[0], obj[1]);
        } else if (track_hv3) {
          hv_triples.push_back({obj[0], obj[1], obj[2]});
        } else if (track_signature) {
          front_sig.insert(front_sig.end(), obj.begin(), obj.end());
        }
      }
      double indicator = 0.0;
      bool indicator_is_hv = false;
      if (track_hv) {
        stats.hypervolume =
            Hypervolume2DInPlace(&hv_pairs, nadir[0], nadir[1]);
        indicator = stats.hypervolume;
        indicator_is_hv = true;
      } else if (track_hv3) {
        indicator = Hypervolume3DInPlace(&hv_triples, nadir[0], nadir[1],
                                         nadir[2], &hv3_xy);
        indicator_is_hv = true;
      }
      if (stall_on) {
        bool improved;
        if (indicator_is_hv) {
          if (!have_indicator) {
            improved = true;
          } else {
            double rel = (indicator - best_indicator) /
                         std::max(std::fabs(best_indicator), 1e-12);
            improved = rel > config_.stall_tolerance;
          }
          if (!have_indicator || indicator > best_indicator) {
            best_indicator = indicator;
          }
          have_indicator = true;
        } else {
          improved = gen == 0 || front_sig != prev_sig;
          prev_sig.assign(front_sig.begin(), front_sig.end());
        }
        if (improved) {
          stall_count = 0;
        } else {
          ++stall_count;
        }
        stats.stalled_generations = stall_count;
        early = stall_count >= config_.stall_generations;
      }
    }

    // Telemetry stays on the coordinator thread: the observer runs once
    // per generation, after the parallel section has joined.
    if (config_.on_generation) config_.on_generation(stats);
    result.generations_run = gen + 1;
    if (early) {
      result.early_exit = true;
      break;
    }
  }

  result.final_population.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    result.final_population.push_back(std::move(arena[i].sol));
  }
  std::vector<size_t> front_idx = ParetoFrontIndices(result.final_population);
  result.pareto_front.reserve(front_idx.size());
  for (size_t i : front_idx) {
    result.pareto_front.push_back(result.final_population[i]);
  }
  return result;
}

}  // namespace flower::opt
