#include "opt/grid_search.h"

#include <algorithm>
#include <cmath>

#include "opt/pareto.h"

namespace flower::opt {

Result<std::vector<Solution>> ExhaustiveParetoFront(const Problem& problem,
                                                    uint64_t max_points) {
  const auto& specs = problem.variables();
  if (specs.empty()) {
    return Status::InvalidArgument("ExhaustiveParetoFront: no variables");
  }
  uint64_t total = 1;
  std::vector<int64_t> lo(specs.size()), hi(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i].integer) {
      return Status::InvalidArgument(
          "ExhaustiveParetoFront: variable '" + specs[i].name +
          "' is continuous; the exhaustive oracle needs an integer grid");
    }
    lo[i] = static_cast<int64_t>(std::ceil(specs[i].lower));
    hi[i] = static_cast<int64_t>(std::floor(specs[i].upper));
    if (hi[i] < lo[i]) {
      return Status::InvalidArgument("ExhaustiveParetoFront: empty range for '" +
                                     specs[i].name + "'");
    }
    uint64_t span = static_cast<uint64_t>(hi[i] - lo[i] + 1);
    if (total > max_points / span) {
      return Status::ResourceExhausted(
          "ExhaustiveParetoFront: grid exceeds max_points");
    }
    total *= span;
  }

  // Incrementally maintained non-dominated archive. For the modest grids
  // this oracle targets, the quadratic archive update is fine.
  std::vector<Solution> archive;
  std::vector<double> x(specs.size());
  std::vector<int64_t> cur(lo);
  std::vector<double> objectives, violations;
  bool done = false;
  while (!done) {
    for (size_t i = 0; i < specs.size(); ++i) {
      x[i] = static_cast<double>(cur[i]);
    }
    problem.Evaluate(x, &objectives, &violations);
    double tv = 0.0;
    for (double v : violations) tv += std::max(0.0, v);
    if (tv <= 0.0) {
      bool dominated = false;
      for (const Solution& s : archive) {
        if (Dominates(s.objectives, objectives) ||
            s.objectives == objectives) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        std::erase_if(archive, [&](const Solution& s) {
          return Dominates(objectives, s.objectives);
        });
        Solution s;
        s.x = x;
        s.objectives = objectives;
        s.total_violation = 0.0;
        archive.push_back(std::move(s));
      }
    }
    // Odometer increment.
    size_t d = 0;
    while (d < specs.size()) {
      if (++cur[d] <= hi[d]) break;
      cur[d] = lo[d];
      ++d;
    }
    done = d == specs.size();
  }
  std::sort(archive.begin(), archive.end(),
            [](const Solution& a, const Solution& b) {
              return a.objectives < b.objectives;
            });
  return archive;
}

}  // namespace flower::opt
