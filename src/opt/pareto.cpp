#include "opt/pareto.h"

#include <algorithm>
#include <cmath>

namespace flower::opt {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better = true;
  }
  return strictly_better;
}

bool ConstrainedDominates(const Solution& a, const Solution& b) {
  bool fa = a.feasible(), fb = b.feasible();
  if (fa && !fb) return true;
  if (!fa && fb) return false;
  if (!fa && !fb) return a.total_violation < b.total_violation;
  return Dominates(a.objectives, b.objectives);
}

std::vector<Solution> ParetoFront(const std::vector<Solution>& solutions) {
  std::vector<Solution> front;
  for (const Solution& s : solutions) {
    if (!s.feasible()) continue;
    bool dominated = false;
    for (const Solution& t : solutions) {
      if (&t == &s || !t.feasible()) continue;
      if (Dominates(t.objectives, s.objectives)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool duplicate = false;
    for (const Solution& f : front) {
      if (f.objectives == s.objectives) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) front.push_back(s);
  }
  // Canonical order: lexicographic by objectives, for stable output.
  std::sort(front.begin(), front.end(),
            [](const Solution& a, const Solution& b) {
              return a.objectives < b.objectives;
            });
  return front;
}

double Hypervolume2D(const std::vector<std::vector<double>>& points,
                     double ref_x, double ref_y) {
  // Keep points strictly dominating the reference, drop dominated ones,
  // then sweep right-to-left accumulating disjoint rectangles.
  std::vector<std::pair<double, double>> kept;
  for (const auto& p : points) {
    if (p.size() != 2) continue;
    if (!(p[0] > ref_x) || !(p[1] > ref_y)) continue;
    kept.emplace_back(p[0], p[1]);
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  });
  double hv = 0.0;
  double prev_y = ref_y;
  for (const auto& [x, y] : kept) {
    if (y <= prev_y) continue;  // Dominated by an earlier (wider) point.
    hv += (x - ref_x) * (y - prev_y);
    prev_y = y;
  }
  return hv;
}

}  // namespace flower::opt
