#include "opt/pareto.h"

#include <algorithm>
#include <cmath>

namespace flower::opt {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better = true;
  }
  return strictly_better;
}

bool ConstrainedDominates(const Solution& a, const Solution& b) {
  bool fa = a.feasible(), fb = b.feasible();
  if (fa && !fb) return true;
  if (!fa && fb) return false;
  if (!fa && !fb) return a.total_violation < b.total_violation;
  return Dominates(a.objectives, b.objectives);
}

std::vector<size_t> ParetoFrontIndices(
    const std::vector<Solution>& solutions) {
  // Non-dominated feasible candidates, in input order.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < solutions.size(); ++i) {
    const Solution& s = solutions[i];
    if (!s.feasible()) continue;
    bool dominated = false;
    for (const Solution& t : solutions) {
      if (&t == &s || !t.feasible()) continue;
      if (Dominates(t.objectives, s.objectives)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) candidates.push_back(i);
  }
  // Canonical order (lexicographic by objectives, index as tie-break)
  // makes duplicates adjacent, so dedup keeps the earliest occurrence
  // without any Solution copies.
  std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
    if (solutions[a].objectives != solutions[b].objectives) {
      return solutions[a].objectives < solutions[b].objectives;
    }
    return a < b;
  });
  candidates.erase(
      std::unique(candidates.begin(), candidates.end(),
                  [&](size_t a, size_t b) {
                    return solutions[a].objectives == solutions[b].objectives;
                  }),
      candidates.end());
  return candidates;
}

std::vector<Solution> ParetoFront(const std::vector<Solution>& solutions) {
  std::vector<Solution> front;
  std::vector<size_t> idx = ParetoFrontIndices(solutions);
  front.reserve(idx.size());
  for (size_t i : idx) front.push_back(solutions[i]);
  return front;
}

namespace {

// Core 2D sweep over pairs already filtered to strictly dominate the
// reference. Sorts `pts` (x desc, y desc) then accumulates disjoint
// rectangles right-to-left.
double SweepHypervolume2D(std::vector<std::pair<double, double>>* pts,
                          double ref_x, double ref_y) {
  std::sort(pts->begin(), pts->end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  });
  double hv = 0.0;
  double prev_y = ref_y;
  for (const auto& [x, y] : *pts) {
    if (y <= prev_y) continue;  // Dominated by an earlier (wider) point.
    hv += (x - ref_x) * (y - prev_y);
    prev_y = y;
  }
  return hv;
}

}  // namespace

double Hypervolume2D(const std::vector<std::vector<double>>& points,
                     double ref_x, double ref_y) {
  // Keep points strictly dominating the reference, drop dominated ones,
  // then sweep right-to-left accumulating disjoint rectangles.
  std::vector<std::pair<double, double>> kept;
  for (const auto& p : points) {
    if (p.size() != 2) continue;
    if (!(p[0] > ref_x) || !(p[1] > ref_y)) continue;
    kept.emplace_back(p[0], p[1]);
  }
  return SweepHypervolume2D(&kept, ref_x, ref_y);
}

double Hypervolume2DInPlace(std::vector<std::pair<double, double>>* points,
                            double ref_x, double ref_y) {
  // Drop points not strictly dominating the reference in place, then
  // run the same sweep as the copying overload (identical numerics).
  points->erase(std::remove_if(points->begin(), points->end(),
                               [&](const std::pair<double, double>& p) {
                                 return !(p.first > ref_x) ||
                                        !(p.second > ref_y);
                               }),
                points->end());
  return SweepHypervolume2D(points, ref_x, ref_y);
}

double Hypervolume3DInPlace(
    std::vector<std::array<double, 3>>* points, double ref_x, double ref_y,
    double ref_z, std::vector<std::pair<double, double>>* xy_scratch) {
  auto& pts = *points;
  pts.erase(std::remove_if(pts.begin(), pts.end(),
                           [&](const std::array<double, 3>& p) {
                             return !(p[0] > ref_x) || !(p[1] > ref_y) ||
                                    !(p[2] > ref_z);
                           }),
            pts.end());
  if (pts.empty()) return 0.0;
  // Slab decomposition on f2: sort descending, then every band between
  // consecutive distinct f2 values contributes (band height) x (2D
  // hypervolume of the (f0, f1) projections of all points above it).
  std::sort(pts.begin(), pts.end(),
            [](const std::array<double, 3>& a,
               const std::array<double, 3>& b) { return a[2] > b[2]; });
  xy_scratch->clear();
  double hv = 0.0;
  size_t i = 0;
  while (i < pts.size()) {
    double z = pts[i][2];
    // Add the whole group of points sharing this f2 level, keeping the
    // projection sorted by x desc / y desc so the sweep below is O(n).
    while (i < pts.size() && pts[i][2] == z) {
      std::pair<double, double> xy{pts[i][0], pts[i][1]};
      auto pos = std::upper_bound(
          xy_scratch->begin(), xy_scratch->end(), xy,
          [](const auto& a, const auto& b) {
            if (a.first != b.first) return a.first > b.first;
            return a.second > b.second;
          });
      xy_scratch->insert(pos, xy);
      ++i;
    }
    double z_next = i < pts.size() ? pts[i][2] : ref_z;
    double area = 0.0;
    double prev_y = ref_y;
    for (const auto& [x, y] : *xy_scratch) {
      if (y <= prev_y) continue;
      area += (x - ref_x) * (y - prev_y);
      prev_y = y;
    }
    hv += area * (z - z_next);
  }
  return hv;
}

double Hypervolume3D(const std::vector<std::vector<double>>& points,
                     double ref_x, double ref_y, double ref_z) {
  std::vector<std::array<double, 3>> pts;
  for (const auto& p : points) {
    if (p.size() != 3) continue;
    pts.push_back({p[0], p[1], p[2]});
  }
  std::vector<std::pair<double, double>> scratch;
  return Hypervolume3DInPlace(&pts, ref_x, ref_y, ref_z, &scratch);
}

}  // namespace flower::opt
