#include "opt/pareto.h"

#include <algorithm>
#include <cmath>

namespace flower::opt {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better = true;
  }
  return strictly_better;
}

bool ConstrainedDominates(const Solution& a, const Solution& b) {
  bool fa = a.feasible(), fb = b.feasible();
  if (fa && !fb) return true;
  if (!fa && fb) return false;
  if (!fa && !fb) return a.total_violation < b.total_violation;
  return Dominates(a.objectives, b.objectives);
}

std::vector<Solution> ParetoFront(const std::vector<Solution>& solutions) {
  std::vector<Solution> front;
  for (const Solution& s : solutions) {
    if (!s.feasible()) continue;
    bool dominated = false;
    for (const Solution& t : solutions) {
      if (&t == &s || !t.feasible()) continue;
      if (Dominates(t.objectives, s.objectives)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool duplicate = false;
    for (const Solution& f : front) {
      if (f.objectives == s.objectives) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) front.push_back(s);
  }
  // Canonical order: lexicographic by objectives, for stable output.
  std::sort(front.begin(), front.end(),
            [](const Solution& a, const Solution& b) {
              return a.objectives < b.objectives;
            });
  return front;
}

}  // namespace flower::opt
